//! The committed example Chrome trace (`results/example_trace.chrome.json`)
//! must stay regenerable: the exact CLI pipeline documented in the README
//! (`simulate --trace` followed by `trace chrome`) reproduces it byte for
//! byte, and the result is well-formed JSON with the structure Perfetto and
//! `chrome://tracing` expect.
//!
//! Regenerate after intentional format changes with:
//!
//! ```text
//! ipg simulate ring-cn:l=2,nucleus=Q2 0.03 --trace /tmp/example.trace.jsonl --trace-interval 200
//! ipg trace chrome /tmp/example.trace.jsonl results/example_trace.chrome.json
//! ```

use std::path::PathBuf;
use std::process::Command;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn ipg(cwd: &std::path::Path, args: &[&str]) {
    let out = Command::new(env!("CARGO_BIN_EXE_ipg"))
        .current_dir(cwd)
        .args(args)
        // Pin the worker count anyway — the trace is thread-count
        // independent, but the example must not depend on that holding.
        .env("IPG_THREADS", "2")
        .output()
        .expect("spawn ipg");
    assert!(
        out.status.success(),
        "ipg {:?} failed: {}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn example_chrome_trace_is_reproducible_and_structurally_valid() {
    let committed_path = repo_root().join("results/example_trace.chrome.json");
    let committed = std::fs::read_to_string(&committed_path).expect("read committed example");

    let dir = std::env::temp_dir().join(format!("ipg-trace-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    ipg(
        &dir,
        &[
            "simulate",
            "ring-cn:l=2,nucleus=Q2",
            "0.03",
            "--trace",
            "example.trace.jsonl",
            "--trace-interval",
            "200",
        ],
    );
    ipg(
        &dir,
        &[
            "trace",
            "chrome",
            "example.trace.jsonl",
            "example.chrome.json",
        ],
    );
    let regenerated = std::fs::read_to_string(dir.join("example.chrome.json")).expect("read");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        committed, regenerated,
        "results/example_trace.chrome.json is stale; regenerate it with the \
         commands in this test's module docs"
    );

    // Structural validation: the whole file is one JSON object in the
    // Chrome trace-event "JSON Object Format".
    use serde_json::Value;
    let v = serde_json::parse_value(&committed).expect("example trace must be valid JSON");
    assert!(
        matches!(v.get("displayTimeUnit"), Some(Value::Str(_))),
        "displayTimeUnit missing"
    );
    let Some(Value::Array(events)) = v.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    assert!(events.len() > 10, "example trace looks empty");
    let mut phases = std::collections::BTreeSet::new();
    for ev in events {
        assert!(
            matches!(ev.get("name"), Some(Value::Str(_))),
            "event without a name"
        );
        assert!(
            matches!(ev.get("pid"), Some(Value::UInt(_))),
            "event without a pid"
        );
        let Some(Value::Str(ph)) = ev.get("ph") else {
            panic!("event without a ph");
        };
        phases.insert(ph.clone());
        if ph == "X" {
            // Complete events carry a timestamp and a duration.
            assert!(
                matches!(ev.get("ts"), Some(Value::UInt(_)))
                    && matches!(ev.get("dur"), Some(Value::UInt(_))),
                "ph=X event without integer ts/dur"
            );
        }
    }
    for expected in ["M", "X", "C"] {
        assert!(
            phases.contains(expected),
            "example trace lacks ph={expected} events (got {phases:?})"
        );
    }
}
