//! Multi-process determinism regression: `simulate --workers N` must
//! produce byte-identical results to the in-process engine for every
//! worker count — same stdout, same trace file, same deterministic
//! manifest records (`window` + `metrics`; the `dist` family is the
//! per-worker RSS/frame telemetry and exists only in distributed runs).
//!
//! The network under test is `ring-cn:l=3,nucleus=Q3` (512 nodes — four
//! engine shards), so 2- and 4-worker runs genuinely split the shard
//! range and exercise the cross-worker frame protocol.

use std::path::Path;
use std::process::Command;

fn run_ipg(dir: &Path, envs: &[(&str, &str)], args: &[&str]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ipg"));
    cmd.current_dir(dir);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.args(args).output().expect("spawn ipg")
}

/// The deterministic record family of a manifest, sorted (the engine's
/// record order inside a window is stable, but sorting keeps the
/// comparison independent of it, matching `tests/determinism.rs`).
fn deterministic_records(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).expect("read manifest");
    let mut lines: Vec<String> = text
        .lines()
        .filter(|l| {
            l.starts_with("{\"record\":\"window\"") || l.starts_with("{\"record\":\"metrics\"")
        })
        .map(str::to_string)
        .collect();
    assert!(
        !lines.is_empty(),
        "no deterministic records in {}",
        path.display()
    );
    lines.sort();
    lines
}

/// Run `simulate <extra..>` in-process and with `--workers 1/2/4`;
/// stdout, the trace file, and the deterministic manifest records must
/// be byte-identical across all four runs.
fn assert_dist_matches_in_process(tag: &str, extra: &[&str]) {
    let dir = std::env::temp_dir().join(format!("ipg-dist-{tag}-{}", std::process::id()));
    let base: Vec<&str> = {
        let mut v = vec!["simulate"];
        v.extend_from_slice(extra);
        v.extend_from_slice(&[
            "--obs",
            "run.manifest.jsonl",
            "--obs-interval",
            "500",
            "--trace",
            "run.trace.jsonl",
            "--trace-interval",
            "128",
        ]);
        v
    };
    let mut baseline: Option<(Vec<u8>, Vec<u8>, Vec<String>)> = None;
    for workers in ["inproc", "1", "2", "4"] {
        let d = dir.join(format!("w{workers}"));
        std::fs::create_dir_all(&d).expect("create temp dir");
        let mut args = base.clone();
        if workers != "inproc" {
            args.extend_from_slice(&["--workers", workers]);
        }
        let out = run_ipg(&d, &[], &args);
        assert!(
            out.status.success(),
            "ipg {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let trace = std::fs::read(d.join("run.trace.jsonl")).expect("read trace");
        assert!(!trace.is_empty(), "trace file must not be empty");
        let records = deterministic_records(&d.join("run.manifest.jsonl"));
        match &baseline {
            None => baseline = Some((out.stdout, trace, records)),
            Some((out1, trace1, records1)) => {
                assert_eq!(
                    out1, &out.stdout,
                    "{tag}: stdout differs between in-process and --workers {workers}"
                );
                assert_eq!(
                    trace1, &trace,
                    "{tag}: trace file differs between in-process and --workers {workers}"
                );
                assert_eq!(
                    records1, &records,
                    "{tag}: manifest records differ between in-process and --workers {workers}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dist_run_is_byte_identical_to_in_process() {
    assert_dist_matches_in_process("plain", &["ring-cn:l=3,nucleus=Q3", "0.02"]);
}

#[test]
fn dist_faulted_run_is_byte_identical_to_in_process() {
    // A scripted + rate fault campaign: detour routing, mid-run link and
    // node kills, and unreachable-packet drops must all merge across the
    // process boundary exactly as they do across threads.
    assert_dist_matches_in_process(
        "faults",
        &[
            "ring-cn:l=3,nucleus=Q3",
            "0.02",
            "--faults",
            "script:link@600:0-1+node@800:5;rate:links=0.05,at=1000",
        ],
    );
}

#[test]
fn dist_worker_count_is_clamped_to_the_shard_count() {
    // 64 nodes — a single engine shard. `--workers 4` must degrade to
    // one worker and still match the in-process run byte-for-byte.
    assert_dist_matches_in_process("clamp", &["hsn:l=2,nucleus=Q2", "0.02"]);
}

#[test]
fn dead_worker_yields_a_contextual_error_not_a_hang() {
    let dir = std::env::temp_dir().join(format!("ipg-dist-kill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    // Worker 1 exits at cycle 700 (mid-warmup). The coordinator must
    // fail promptly — the EOF is immediate; the deadline is a backstop,
    // not the mechanism — naming the worker in its error.
    let out = run_ipg(
        &dir,
        &[("IPG_DIST_TEST_EXIT", "1:700"), ("IPG_DIST_TIMEOUT", "10")],
        &[
            "simulate",
            "ring-cn:l=3,nucleus=Q3",
            "0.02",
            "--workers",
            "2",
        ],
    );
    assert!(
        !out.status.success(),
        "a run with a dead worker must not report success"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("worker 1"),
        "error must name the dead worker: {err}"
    );
    assert!(err.contains("cycle"), "error must name the cycle: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dist_clears_the_in_process_node_cap() {
    // `cn:l=2,nucleus=Q12` is 2^24 nodes — over the in-process cap. The
    // full run is bench territory; here it must at least get past
    // parsing under --workers and be rejected without it.
    let dir = std::env::temp_dir().join(format!("ipg-dist-cap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let out = run_ipg(&dir, &[], &["simulate", "cn:l=2,nucleus=Q12", "0.02"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("node cap"),
        "in-process parse must reject 2^24 nodes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
