//! Determinism regression: the same command must produce byte-identical
//! output whether the work-stealing pool runs one worker or several.
//!
//! `IPG_THREADS` is read once per process (see `rayon::current_num_threads`),
//! so each setting gets a fresh subprocess of the `ipg` binary. `dot` output
//! encodes every node's BFS rank, `info` encodes the derived metrics, and the
//! simulate manifest's deterministic family (`window` + `metrics` records)
//! encodes the instrumented counters — all must be independent of the worker
//! count.

use std::process::Command;

fn run(threads: &str, args: &[&str]) -> (Vec<u8>, Vec<u8>) {
    run_in(None, threads, args)
}

fn run_in(cwd: Option<&std::path::Path>, threads: &str, args: &[&str]) -> (Vec<u8>, Vec<u8>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ipg"));
    if let Some(dir) = cwd {
        cmd.current_dir(dir);
    }
    let out = cmd
        .args(args)
        .env("IPG_THREADS", threads)
        .output()
        .expect("spawn ipg");
    assert!(
        out.status.success(),
        "ipg {:?} (IPG_THREADS={threads}) failed: {}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    (out.stdout, out.stderr)
}

/// Stdout of `ipg <args>` must be byte-identical for 1 vs 4 workers.
fn assert_stdout_deterministic(args: &[&str]) {
    let (one, _) = run("1", args);
    let (four, _) = run("4", args);
    assert!(!one.is_empty(), "ipg {args:?} produced no output");
    assert_eq!(
        one, four,
        "ipg {args:?}: stdout differs between IPG_THREADS=1 and IPG_THREADS=4"
    );
}

#[test]
fn dot_node_ranks_are_thread_count_independent() {
    // `dot` prints every node label in BFS-rank order, so any divergence in
    // the parallel frontier numbering shows up here immediately.
    for net in ["hsn:l=2,nucleus=Q2", "ring-cn:l=3,nucleus=Q2", "star:5"] {
        assert_stdout_deterministic(&["dot", net]);
    }
}

#[test]
fn info_metrics_are_thread_count_independent() {
    for net in [
        "hsn:l=2,nucleus=Q3",
        "cn:l=3,nucleus=Q2",
        "hsn:l=2,nucleus=Q2,symmetric",
        "hypercube:8",
    ] {
        assert_stdout_deterministic(&["info", net]);
    }
}

#[test]
fn route_is_thread_count_independent() {
    assert_stdout_deterministic(&["route", "hsn:l=2,nucleus=Q3", "0", "60"]);
}

/// The deterministic record family of a run manifest (`window` and
/// `metrics`), with the nondeterministic family (`meta`, `span`, `rate`,
/// `scaling` — wall-clock and environment data) filtered out.
fn deterministic_records(path: &std::path::Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).expect("read manifest");
    let mut lines: Vec<String> = text
        .lines()
        .filter(|l| {
            l.starts_with("{\"record\":\"window\"") || l.starts_with("{\"record\":\"metrics\"")
        })
        .map(str::to_string)
        .collect();
    assert!(
        !lines.is_empty(),
        "no deterministic records in {}",
        path.display()
    );
    lines.sort();
    lines
}

#[test]
fn simulate_manifest_is_thread_count_independent() {
    let dir = std::env::temp_dir().join(format!("ipg-determinism-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    // Same *relative* manifest path from sibling working dirs: simulate
    // echoes the path on stdout, which must not differ between the runs.
    let d1 = dir.join("t1");
    let d4 = dir.join("t4");
    std::fs::create_dir_all(&d1).expect("create temp dir");
    std::fs::create_dir_all(&d4).expect("create temp dir");
    let args = [
        "simulate",
        "ring-cn:l=2,nucleus=Q2",
        "0.02",
        "--obs",
        "run.manifest.jsonl",
        "--obs-interval",
        "500",
    ];
    let (out1, _) = run_in(Some(&d1), "1", &args);
    let (out4, _) = run_in(Some(&d4), "4", &args);
    let m1 = d1.join("run.manifest.jsonl");
    let m4 = d4.join("run.manifest.jsonl");
    assert_eq!(
        out1, out4,
        "simulate stdout differs between IPG_THREADS=1 and IPG_THREADS=4"
    );
    assert_eq!(
        deterministic_records(&m1),
        deterministic_records(&m4),
        "deterministic manifest records differ between IPG_THREADS=1 and IPG_THREADS=4"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
