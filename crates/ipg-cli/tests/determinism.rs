//! Determinism regression: the same command must produce byte-identical
//! output whether the work-stealing pool runs one worker or several.
//!
//! `IPG_THREADS` is read once per process (see `rayon::current_num_threads`),
//! so each setting gets a fresh subprocess of the `ipg` binary. `dot` output
//! encodes every node's BFS rank, `info` encodes the derived metrics, and the
//! simulate manifest's deterministic family (`window` + `metrics` records)
//! encodes the instrumented counters — all must be independent of the worker
//! count.

use std::process::Command;

fn run(threads: &str, args: &[&str]) -> (Vec<u8>, Vec<u8>) {
    run_in(None, threads, args)
}

fn run_in(cwd: Option<&std::path::Path>, threads: &str, args: &[&str]) -> (Vec<u8>, Vec<u8>) {
    run_in_env(cwd, threads, &[], args)
}

fn run_in_env(
    cwd: Option<&std::path::Path>,
    threads: &str,
    envs: &[(&str, &str)],
    args: &[&str],
) -> (Vec<u8>, Vec<u8>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ipg"));
    if let Some(dir) = cwd {
        cmd.current_dir(dir);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd
        .args(args)
        .env("IPG_THREADS", threads)
        .output()
        .expect("spawn ipg");
    assert!(
        out.status.success(),
        "ipg {:?} (IPG_THREADS={threads}) failed: {}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    (out.stdout, out.stderr)
}

/// Stdout of `ipg <args>` must be byte-identical for 1 vs 4 workers.
fn assert_stdout_deterministic(args: &[&str]) {
    let (one, _) = run("1", args);
    let (four, _) = run("4", args);
    assert!(!one.is_empty(), "ipg {args:?} produced no output");
    assert_eq!(
        one, four,
        "ipg {args:?}: stdout differs between IPG_THREADS=1 and IPG_THREADS=4"
    );
}

#[test]
fn dot_node_ranks_are_thread_count_independent() {
    // `dot` prints every node label in BFS-rank order, so any divergence in
    // the parallel frontier numbering shows up here immediately.
    for net in ["hsn:l=2,nucleus=Q2", "ring-cn:l=3,nucleus=Q2", "star:5"] {
        assert_stdout_deterministic(&["dot", net]);
    }
}

#[test]
fn info_metrics_are_thread_count_independent() {
    for net in [
        "hsn:l=2,nucleus=Q3",
        "cn:l=3,nucleus=Q2",
        "hsn:l=2,nucleus=Q2,symmetric",
        "hypercube:8",
    ] {
        assert_stdout_deterministic(&["info", net]);
    }
}

#[test]
fn route_is_thread_count_independent() {
    assert_stdout_deterministic(&["route", "hsn:l=2,nucleus=Q3", "0", "60"]);
}

/// The deterministic record family of a run manifest (`window` and
/// `metrics`), with the nondeterministic family (`meta`, `span`, `rate`,
/// `scaling` — wall-clock and environment data) filtered out.
fn deterministic_records(path: &std::path::Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).expect("read manifest");
    let mut lines: Vec<String> = text
        .lines()
        .filter(|l| {
            l.starts_with("{\"record\":\"window\"") || l.starts_with("{\"record\":\"metrics\"")
        })
        .map(str::to_string)
        .collect();
    assert!(
        !lines.is_empty(),
        "no deterministic records in {}",
        path.display()
    );
    lines.sort();
    lines
}

/// Run `simulate <extra args>` under each `IPG_THREADS` setting from its own
/// working directory; stdout and the deterministic manifest records must be
/// byte-identical across every worker count.
fn assert_simulate_deterministic(tag: &str, extra: &[&str]) {
    let dir = std::env::temp_dir().join(format!("ipg-determinism-{tag}-{}", std::process::id()));
    // Same *relative* manifest path from sibling working dirs: simulate
    // echoes the path on stdout, which must not differ between the runs.
    let mut args = vec!["simulate"];
    args.extend_from_slice(extra);
    args.extend_from_slice(&["--obs", "run.manifest.jsonl", "--obs-interval", "500"]);
    let mut baseline: Option<(Vec<u8>, Vec<String>)> = None;
    for threads in ["1", "2", "4"] {
        let d = dir.join(format!("t{threads}"));
        std::fs::create_dir_all(&d).expect("create temp dir");
        let (out, _) = run_in(Some(&d), threads, &args);
        let records = deterministic_records(&d.join("run.manifest.jsonl"));
        match &baseline {
            None => baseline = Some((out, records)),
            Some((out1, records1)) => {
                assert_eq!(
                    out1, &out,
                    "simulate {extra:?}: stdout differs between IPG_THREADS=1 and IPG_THREADS={threads}"
                );
                assert_eq!(
                    records1, &records,
                    "simulate {extra:?}: deterministic manifest records differ \
                     between IPG_THREADS=1 and IPG_THREADS={threads}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn simulate_manifest_is_thread_count_independent() {
    assert_simulate_deterministic("packet", &["ring-cn:l=2,nucleus=Q2", "0.02"]);
}

#[test]
fn simulate_multi_shard_manifest_is_thread_count_independent() {
    // 512 nodes — four engine shards, so the parallel phases and the
    // shard-ordered mailbox merge are genuinely exercised.
    assert_simulate_deterministic("shards", &["ring-cn:l=3,nucleus=Q2", "0.03"]);
}

#[test]
fn simulate_trace_file_is_thread_count_independent() {
    // The flight recorder only records computation-derived values (cycle
    // numbers, counts), never wall-clock time, so the trace file itself —
    // not just the manifest — must be byte-identical across worker counts.
    assert_simulate_traced_deterministic("trace", &["ring-cn:l=3,nucleus=Q2", "0.03"]);
}

/// Like [`assert_simulate_deterministic`] but with the flight recorder on:
/// stdout, the trace file, and the deterministic manifest records must all
/// be byte-identical across worker counts.
fn assert_simulate_traced_deterministic(tag: &str, extra: &[&str]) {
    let dir = std::env::temp_dir().join(format!("ipg-determinism-{tag}-{}", std::process::id()));
    let mut args = vec!["simulate"];
    args.extend_from_slice(extra);
    args.extend_from_slice(&[
        "--obs",
        "run.manifest.jsonl",
        "--obs-interval",
        "500",
        "--trace",
        "run.trace.jsonl",
        "--trace-interval",
        "128",
    ]);
    let mut baseline: Option<(Vec<u8>, Vec<u8>, Vec<String>)> = None;
    for threads in ["1", "2", "4"] {
        let d = dir.join(format!("t{threads}"));
        std::fs::create_dir_all(&d).expect("create temp dir");
        let (out, _) = run_in(Some(&d), threads, &args);
        let trace = std::fs::read(d.join("run.trace.jsonl")).expect("read trace");
        assert!(!trace.is_empty(), "trace file must not be empty");
        let records = deterministic_records(&d.join("run.manifest.jsonl"));
        match &baseline {
            None => baseline = Some((out, trace, records)),
            Some((out1, trace1, records1)) => {
                assert_eq!(
                    out1, &out,
                    "simulate {extra:?}: stdout differs between IPG_THREADS=1 and IPG_THREADS={threads}"
                );
                assert_eq!(
                    trace1, &trace,
                    "simulate {extra:?}: trace file differs between IPG_THREADS=1 and IPG_THREADS={threads}"
                );
                assert_eq!(
                    records1, &records,
                    "simulate {extra:?}: manifest records differ between IPG_THREADS=1 and IPG_THREADS={threads}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn simulate_scripted_faults_are_thread_count_independent() {
    // Scripted kills on a 512-node, four-shard network: stdout, the trace
    // file, and the manifest's deterministic records must not depend on
    // the worker count even while links and nodes die mid-run.
    assert_simulate_traced_deterministic(
        "faults-script",
        &[
            "ring-cn:l=3,nucleus=Q2",
            "0.03",
            "--faults",
            "script:link@600:0-1+link@900:10-11+node@1200:5",
        ],
    );
}

#[test]
fn simulate_rate_faults_are_thread_count_independent() {
    // Rate-drawn kills expand at compile time from per-node/per-edge RNG
    // streams, so the same byte-identity must hold for the random mode.
    assert_simulate_traced_deterministic(
        "faults-rate",
        &[
            "ring-cn:l=3,nucleus=Q2",
            "0.03",
            "--faults",
            "rate:links=0.05,nodes=0.01,at=800",
        ],
    );
}

/// Run `simulate <extra args>` once with the default sparse worklist
/// kernel (`IPG_DENSE_ENGINE=0`) and once with the dense oracle
/// (`IPG_DENSE_ENGINE=1`): stdout, the trace file, and the deterministic
/// manifest records must be byte-identical — the DESIGN.md §13 contract.
fn assert_sparse_matches_dense(tag: &str, extra: &[&str]) {
    let dir = std::env::temp_dir().join(format!("ipg-sparse-dense-{tag}-{}", std::process::id()));
    let mut args = vec!["simulate"];
    args.extend_from_slice(extra);
    args.extend_from_slice(&[
        "--obs",
        "run.manifest.jsonl",
        "--obs-interval",
        "500",
        "--trace",
        "run.trace.jsonl",
        "--trace-interval",
        "128",
    ]);
    let mut baseline: Option<(Vec<u8>, Vec<u8>, Vec<String>)> = None;
    for engine in ["0", "1"] {
        let d = dir.join(format!("e{engine}"));
        std::fs::create_dir_all(&d).expect("create temp dir");
        let (out, _) = run_in_env(Some(&d), "2", &[("IPG_DENSE_ENGINE", engine)], &args);
        let trace = std::fs::read(d.join("run.trace.jsonl")).expect("read trace");
        assert!(!trace.is_empty(), "trace file must not be empty");
        let records = deterministic_records(&d.join("run.manifest.jsonl"));
        match &baseline {
            None => baseline = Some((out, trace, records)),
            Some((out1, trace1, records1)) => {
                assert_eq!(
                    out1, &out,
                    "simulate {extra:?}: stdout differs between the sparse kernel and the dense oracle"
                );
                assert_eq!(
                    trace1, &trace,
                    "simulate {extra:?}: trace file differs between the sparse kernel and the dense oracle"
                );
                assert_eq!(
                    records1, &records,
                    "simulate {extra:?}: manifest records differ between the sparse kernel and the dense oracle"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sparse_packet_kernel_matches_dense_oracle_end_to_end() {
    // Multi-shard network with mid-run kills: worklist re-activation after
    // purges must not leak into any deterministic output.
    assert_sparse_matches_dense(
        "packet",
        &[
            "ring-cn:l=3,nucleus=Q2",
            "0.03",
            "--faults",
            "script:link@600:0-1+node@1200:5",
        ],
    );
}

#[test]
fn sparse_wormhole_kernel_matches_dense_oracle_end_to_end() {
    assert_sparse_matches_dense(
        "wormhole",
        &[
            "hsn:l=2,nucleus=Q2",
            "0.05",
            "--wormhole",
            "--vcs",
            "3",
            "--flits",
            "4",
            "--policy",
            "hop",
        ],
    );
}

#[test]
fn simulate_wormhole_manifest_is_thread_count_independent() {
    assert_simulate_deterministic(
        "wormhole",
        &[
            "hsn:l=2,nucleus=Q2",
            "0.05",
            "--wormhole",
            "--vcs",
            "3",
            "--flits",
            "4",
            "--policy",
            "hop",
        ],
    );
}
