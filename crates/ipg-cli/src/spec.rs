//! The CLI's network mini-language.
//!
//! A network is written `family` or `family:args`, where `args` is a
//! comma-separated list of integers or `key=value` pairs. Examples:
//!
//! ```text
//! hypercube:10            folded:8            torus:32
//! star:7                  pancake:6           petersen
//! debruijn:8              se:8                ccc:5
//! ring:64                 complete:16         gh:3,4,5
//! hsn:l=3,nucleus=Q4      ring-cn:l=4,nucleus=FQ4
//! cn:l=3,nucleus=P        superflip:l=3,nucleus=Q2
//! hcn:4                   hfn:3               hhn:3
//! rcc:l=2,m=8             hse:l=2,n=4         cpn:3
//! macro-star:l=2,n=2      rotator:6
//! ```
//!
//! Nucleus names: `Q<n>` (hypercube), `FQ<n>` (folded hypercube), `K<n>`
//! (complete), `S<n>` (star), `P` (Petersen), `C<n>` (ring),
//! `GH<r>x<r>...` (generalized hypercube).

use ipg_cluster::partition::{self, Partition};
use ipg_core::graph::Csr;
use ipg_core::superip::TupleNetwork;
use ipg_networks::{classic, hier, ipdefs};

/// A parsed network: graph, display name, and (when a natural packing
/// exists) the §5 module partition.
#[derive(Debug)]
pub struct ParsedNetwork {
    /// Display name.
    pub name: String,
    /// The graph.
    pub graph: Csr,
    /// Natural module packing, if the family has one.
    pub partition: Option<Partition>,
    /// The tuple form, when the network is a super-IP graph (enables
    /// hierarchical routing display).
    pub tuple: Option<TupleNetwork>,
}

/// Parse errors carry a human-readable message.
pub fn parse(input: &str) -> Result<ParsedNetwork, String> {
    let (family, rest) = match input.split_once(':') {
        Some((f, r)) => (f, r),
        None => (input, ""),
    };
    // bare tokens: digits are positional integers, words are flags
    let ints: Vec<usize> = rest
        .split(',')
        .filter(|s| {
            !s.is_empty() && !s.contains('=') && s.starts_with(|c: char| c.is_ascii_digit())
        })
        .map(|s| s.parse::<usize>().map_err(|_| format!("bad integer `{s}`")))
        .collect::<Result<_, _>>()?;
    let flag = |name: &str| rest.split(',').any(|s| s == name);
    let kv = |key: &str| -> Option<&str> {
        rest.split(',')
            .filter_map(|s| s.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    };
    let int_kv = |key: &str| -> Result<Option<usize>, String> {
        kv(key)
            .map(|v| v.parse::<usize>().map_err(|_| format!("bad {key}=`{v}`")))
            .transpose()
    };
    let need = |idx: usize, what: &str| -> Result<usize, String> {
        ints.get(idx)
            .copied()
            .ok_or_else(|| format!("{family} needs {what}, e.g. `{family}:8`"))
    };

    let simple = |name: String, graph: Csr, partition: Option<Partition>| {
        Ok(ParsedNetwork {
            name,
            graph,
            partition,
            tuple: None,
        })
    };

    match family {
        "hypercube" | "cube" | "q" => {
            let n = need(0, "a dimension")?;
            let part = partition::subcube_partition(n, n.min(4));
            simple(format!("Q{n}"), classic::hypercube(n), Some(part))
        }
        "folded" | "fq" => {
            let n = need(0, "a dimension")?;
            let part = partition::subcube_partition(n, n.min(4));
            simple(format!("FQ{n}"), classic::folded_hypercube(n), Some(part))
        }
        "torus" => {
            let k = need(0, "a side length")?;
            let part = (k % 4 == 0).then(|| partition::torus_block_partition(k, 4, 4));
            simple(format!("torus {k}x{k}"), classic::torus2d(k), part)
        }
        "kary" => {
            let k = need(0, "radix")?;
            let n = need(1, "dimensions")?;
            simple(format!("{k}-ary {n}-cube"), classic::kary_ncube(k, n), None)
        }
        "ring" => {
            let n = need(0, "a length")?;
            simple(format!("C{n}"), classic::ring(n), None)
        }
        "complete" => {
            let n = need(0, "a size")?;
            simple(format!("K{n}"), classic::complete(n), None)
        }
        "star" => {
            let n = need(0, "a size")?;
            let labels = classic::star_labels(n);
            let part = partition::substar_partition(&labels, 3.min(n));
            simple(format!("S{n}"), classic::star(n), Some(part))
        }
        "pancake" => {
            let n = need(0, "a size")?;
            simple(format!("pancake-{n}"), classic::pancake(n), None)
        }
        "petersen" => simple("Petersen".into(), classic::petersen(), None),
        "debruijn" | "db" => {
            let n = need(0, "a dimension")?;
            let part = partition::subcube_partition(n, n.min(4));
            simple(format!("DB(2,{n})"), classic::debruijn(n), Some(part))
        }
        "se" | "shuffle-exchange" => {
            let n = need(0, "a dimension")?;
            simple(format!("SE{n}"), classic::shuffle_exchange(n), None)
        }
        "ccc" => {
            let n = need(0, "a dimension")?;
            let part = partition::ccc_cycle_partition(n);
            simple(format!("CCC({n})"), classic::ccc(n), Some(part))
        }
        "gh" => {
            if ints.len() < 2 {
                return Err("gh needs at least two radices, e.g. `gh:3,4`".into());
            }
            simple(
                format!(
                    "GH({})",
                    ints.iter()
                        .map(|r| r.to_string())
                        .collect::<Vec<_>>()
                        .join("x")
                ),
                classic::generalized_hypercube(&ints),
                None,
            )
        }
        "rotator" => {
            let n = need(0, "a size")?;
            let ip = ipdefs::rotator_ip(n)
                .generate()
                .map_err(|e| e.to_string())?;
            simple(format!("rotator-{n}"), ip.to_directed_csr(), None)
        }
        "macro-star" | "ms" => {
            let l = int_kv("l")?.ok_or("macro-star needs l=..")?;
            let n = int_kv("n")?.ok_or("macro-star needs n=..")?;
            let ip = ipdefs::macro_star_ip(l, n)
                .generate()
                .map_err(|e| e.to_string())?;
            simple(format!("MS({l},{n})"), ip.to_undirected_csr(), None)
        }
        "hcn" => {
            let n = need(0, "a dimension")?;
            let tn = hier::hsn(2, classic::hypercube(n), &format!("Q{n}"));
            let graph = tn.build();
            let (class, count) = tn.nucleus_partition();
            Ok(ParsedNetwork {
                name: format!("HCN({n},{n})"),
                graph,
                partition: Some(Partition::new(class, count)),
                tuple: Some(tn),
            })
        }
        "hfn" => {
            let n = need(0, "a dimension")?;
            let tn = hier::hfn(n);
            let graph = tn.build();
            let (class, count) = tn.nucleus_partition();
            Ok(ParsedNetwork {
                name: tn.name.clone(),
                graph,
                partition: Some(Partition::new(class, count)),
                tuple: Some(tn),
            })
        }
        "hhn" => {
            let k = need(0, "a dimension")?;
            simple(format!("HHN({k})"), hier::hhn(k), None)
        }
        "rcc" => {
            let l = int_kv("l")?.ok_or("rcc needs l=..")?;
            let m = int_kv("m")?.ok_or("rcc needs m=..")?;
            tuple_network(hier::rcc(l, m))
        }
        "hse" => {
            let l = int_kv("l")?.ok_or("hse needs l=..")?;
            let n = int_kv("n")?.ok_or("hse needs n=..")?;
            tuple_network(hier::hse(l, n))
        }
        "cpn" => {
            let l = need(0, "a depth")?;
            tuple_network(hier::cyclic_petersen(l))
        }
        "hsn" | "ring-cn" | "cn" | "complete-cn" | "superflip" => {
            let l = int_kv("l")?.ok_or_else(|| format!("{family} needs l=.."))?;
            let (nucleus, nname) = parse_nucleus(kv("nucleus").unwrap_or("Q2"))?;
            let mut tn = match family {
                "hsn" => hier::hsn(l, nucleus, &nname),
                "ring-cn" => hier::ring_cn(l, nucleus, &nname),
                "cn" | "complete-cn" => hier::complete_cn(l, nucleus, &nname),
                _ => hier::superflip(l, nucleus, &nname),
            };
            if flag("symmetric") {
                tn = hier::symmetric(&tn);
            }
            tuple_network(tn)
        }
        other => Err(format!(
            "unknown family `{other}`; see `ipg help` for the list"
        )),
    }
}

fn tuple_network(tn: TupleNetwork) -> Result<ParsedNetwork, String> {
    let graph = tn.build();
    let (class, count) = tn.nucleus_partition();
    Ok(ParsedNetwork {
        name: tn.name.clone(),
        graph,
        partition: Some(Partition::new(class, count)),
        tuple: Some(tn),
    })
}

/// Parse a nucleus name: `Q4`, `FQ3`, `K8`, `S4`, `P`, `C6`, `GH3x4`.
pub fn parse_nucleus(s: &str) -> Result<(Csr, String), String> {
    let num = |prefix: &str| -> Result<usize, String> {
        s[prefix.len()..]
            .parse::<usize>()
            .map_err(|_| format!("bad nucleus `{s}`"))
    };
    if s == "P" {
        return Ok((classic::petersen(), "P".into()));
    }
    if let Some(rest) = s.strip_prefix("GH") {
        let radices: Vec<usize> = rest
            .split('x')
            .map(|r| r.parse::<usize>().map_err(|_| format!("bad nucleus `{s}`")))
            .collect::<Result<_, _>>()?;
        return Ok((classic::generalized_hypercube(&radices), s.to_string()));
    }
    if s.starts_with("FQ") {
        return Ok((classic::folded_hypercube(num("FQ")?), s.to_string()));
    }
    match s.as_bytes().first() {
        Some(b'Q') => Ok((classic::hypercube(num("Q")?), s.to_string())),
        Some(b'K') => Ok((classic::complete(num("K")?), s.to_string())),
        Some(b'S') => Ok((classic::star(num("S")?), s.to_string())),
        Some(b'C') => Ok((classic::ring(num("C")?), s.to_string())),
        _ => Err(format!("unknown nucleus `{s}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_families() {
        assert_eq!(parse("hypercube:6").unwrap().graph.node_count(), 64);
        assert_eq!(parse("torus:8").unwrap().graph.node_count(), 64);
        assert_eq!(parse("star:5").unwrap().graph.node_count(), 120);
        assert_eq!(parse("petersen").unwrap().graph.node_count(), 10);
        assert_eq!(parse("gh:3,4").unwrap().graph.node_count(), 12);
        assert_eq!(parse("ccc:3").unwrap().graph.node_count(), 24);
    }

    #[test]
    fn parse_super_ip_families() {
        let p = parse("hsn:l=3,nucleus=Q2").unwrap();
        assert_eq!(p.graph.node_count(), 64);
        assert!(p.tuple.is_some());
        assert!(p.partition.is_some());

        let p = parse("ring-cn:l=2,nucleus=FQ3").unwrap();
        assert_eq!(p.graph.node_count(), 64);

        let p = parse("cn:l=2,nucleus=P").unwrap();
        assert_eq!(p.graph.node_count(), 100);

        let p = parse("hsn:l=2,nucleus=Q1,symmetric").unwrap();
        assert_eq!(p.graph.node_count(), 8); // 2!·2^2
    }

    #[test]
    fn parse_hierarchical_names() {
        assert_eq!(parse("hcn:3").unwrap().graph.node_count(), 64);
        assert_eq!(parse("hfn:2").unwrap().graph.node_count(), 16);
        assert_eq!(parse("hhn:2").unwrap().graph.node_count(), 64);
        assert_eq!(parse("cpn:2").unwrap().graph.node_count(), 100);
        assert_eq!(parse("rcc:l=2,m=4").unwrap().graph.node_count(), 16);
        assert_eq!(parse("macro-star:l=2,n=2").unwrap().graph.node_count(), 120);
        assert_eq!(parse("rotator:4").unwrap().graph.node_count(), 24);
    }

    #[test]
    fn errors_are_helpful() {
        assert!(parse("frobcube:3").unwrap_err().contains("unknown family"));
        assert!(parse("hypercube").unwrap_err().contains("dimension"));
        assert!(parse("hsn:nucleus=Q2").unwrap_err().contains("l="));
        assert!(parse("hsn:l=2,nucleus=Z9").unwrap_err().contains("nucleus"));
    }
}
