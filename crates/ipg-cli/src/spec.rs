//! The CLI's network mini-language.
//!
//! A network is written `family` or `family:args`, where `args` is a
//! comma-separated list of integers or `key=value` pairs. Examples:
//!
//! ```text
//! hypercube:10            folded:8            torus:32
//! star:7                  pancake:6           petersen
//! debruijn:8              se:8                ccc:5
//! ring:64                 complete:16         gh:3,4,5
//! hsn:l=3,nucleus=Q4      ring-cn:l=4,nucleus=FQ4
//! cn:l=3,nucleus=P        superflip:l=3,nucleus=Q2
//! hcn:4                   hfn:3               hhn:3
//! rcc:l=2,m=8             hse:l=2,n=4         cpn:3
//! macro-star:l=2,n=2      rotator:6
//! ```
//!
//! Nucleus names: `Q<n>` (hypercube), `FQ<n>` (folded hypercube), `K<n>`
//! (complete), `S<n>` (star), `P` (Petersen), `C<n>` (ring),
//! `GH<r>x<r>...` (generalized hypercube).

use ipg_cluster::partition::{self, Partition};
use ipg_core::graph::Csr;
use ipg_core::superip::TupleNetwork;
use ipg_networks::{classic, hier, ipdefs};

/// Hard ceiling on generated graph size (2^22 ~ 4.2M nodes). Specs whose
/// node count would exceed it are rejected at parse time with a sizing
/// error, so a typo like `hsn:l=9999999` fails fast instead of trying to
/// materialize the graph.
const MAX_NODES: usize = 1 << 22;

/// Ceiling for the multi-process simulation path (`--workers`): workers
/// route super-IP families by tuple codec without materializing the
/// graph, so per-process memory is bounded by a shard range, not the
/// network — the cap can afford 2^24 (~16.8M nodes).
pub const DIST_MAX_NODES: usize = 1 << 24;

/// Check `v` against an inclusive range with a contextual error message.
fn in_range(ctx: &str, what: &str, v: usize, lo: usize, hi: usize) -> Result<usize, String> {
    if v >= lo && v <= hi {
        Ok(v)
    } else {
        Err(format!(
            "{ctx}: {what} must be between {lo} and {hi}, got {v}"
        ))
    }
}

/// `base^exp` with overflow checking, refusing results past `cap`.
fn sized_pow(ctx: &str, base: usize, exp: usize, cap: usize) -> Result<usize, String> {
    let mut acc = 1usize;
    for _ in 0..exp {
        acc = acc
            .checked_mul(base)
            .filter(|&n| n <= cap)
            .ok_or_else(|| format!("{ctx}: {base}^{exp} nodes exceeds the {cap}-node cap"))?;
    }
    Ok(acc)
}

/// `n!` with overflow checking, refusing results past `cap`.
fn sized_factorial(ctx: &str, n: usize, cap: usize) -> Result<usize, String> {
    (1..=n).try_fold(1usize, |acc, k| {
        acc.checked_mul(k)
            .filter(|&m| m <= cap)
            .ok_or_else(|| format!("{ctx}: {n}! nodes exceeds the {cap}-node cap"))
    })
}

/// A parsed network: graph, display name, and (when a natural packing
/// exists) the §5 module partition.
#[derive(Debug)]
pub struct ParsedNetwork {
    /// Display name.
    pub name: String,
    /// The graph.
    pub graph: Csr,
    /// Natural module packing, if the family has one.
    pub partition: Option<Partition>,
    /// The tuple form, when the network is a super-IP graph (enables
    /// hierarchical routing display).
    pub tuple: Option<TupleNetwork>,
}

/// A parse result that has not committed to materializing the graph:
/// either a classic family (whose graph was built eagerly — they are
/// cheap and have no tuple form) or a super-IP tuple network whose CSR
/// can be built on demand. Letting callers skip `tn.build()` is what
/// keeps distributed workers' memory bounded by their shard range.
enum Parsed {
    Graph(ParsedNetwork),
    Tuple {
        tn: TupleNetwork,
        /// Display-name override (`hcn` renames its HSN tuple form).
        name: Option<String>,
    },
}

/// Parse errors carry a human-readable message.
pub fn parse(input: &str) -> Result<ParsedNetwork, String> {
    parse_with_cap(input, MAX_NODES)
}

/// [`parse`] with an explicit node-count ceiling — the multi-process
/// path passes [`DIST_MAX_NODES`].
pub fn parse_with_cap(input: &str, cap: usize) -> Result<ParsedNetwork, String> {
    match parse_capped(input, cap)? {
        Parsed::Graph(p) => Ok(p),
        Parsed::Tuple { tn, name } => {
            let graph = tn.build();
            let (class, count) = tn.nucleus_partition();
            Ok(ParsedNetwork {
                name: name.unwrap_or_else(|| tn.name.clone()),
                graph,
                partition: Some(Partition::new(class, count)),
                tuple: Some(tn),
            })
        }
    }
}

/// What a distributed worker needs to rebuild its router: the tuple
/// form always (when one exists), the graph only when `graph_needed`.
/// Codec-routable fault-free runs pass `graph_needed = false` and never
/// materialize the CSR — the distributed memory win.
pub struct WorkerNetwork {
    /// The full graph, when requested or when the family has no tuple form.
    pub graph: Option<Csr>,
    /// The tuple form, for codec routing.
    pub tuple: Option<TupleNetwork>,
}

/// Parse for a worker process (see [`WorkerNetwork`]).
pub fn parse_worker(input: &str, cap: usize, graph_needed: bool) -> Result<WorkerNetwork, String> {
    match parse_capped(input, cap)? {
        Parsed::Graph(p) => Ok(WorkerNetwork {
            graph: Some(p.graph),
            tuple: None,
        }),
        Parsed::Tuple { tn, .. } => Ok(WorkerNetwork {
            graph: graph_needed.then(|| tn.build()),
            tuple: Some(tn),
        }),
    }
}

fn parse_capped(input: &str, cap: usize) -> Result<Parsed, String> {
    let (family, rest) = match input.split_once(':') {
        Some((f, r)) => (f, r),
        None => (input, ""),
    };
    // bare tokens: digits are positional integers, words are flags
    let ints: Vec<usize> = rest
        .split(',')
        .filter(|s| {
            !s.is_empty() && !s.contains('=') && s.starts_with(|c: char| c.is_ascii_digit())
        })
        .map(|s| s.parse::<usize>().map_err(|_| format!("bad integer `{s}`")))
        .collect::<Result<_, _>>()?;
    let flag = |name: &str| rest.split(',').any(|s| s == name);
    let kv = |key: &str| -> Option<&str> {
        rest.split(',')
            .filter_map(|s| s.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    };
    let int_kv = |key: &str| -> Result<Option<usize>, String> {
        kv(key)
            .map(|v| v.parse::<usize>().map_err(|_| format!("bad {key}=`{v}`")))
            .transpose()
    };
    let need = |idx: usize, what: &str| -> Result<usize, String> {
        ints.get(idx)
            .copied()
            .ok_or_else(|| format!("{family} needs {what}, e.g. `{family}:8`"))
    };

    let simple = |name: String, graph: Csr, partition: Option<Partition>| {
        Ok(Parsed::Graph(ParsedNetwork {
            name,
            graph,
            partition,
            tuple: None,
        }))
    };

    match family {
        "hypercube" | "cube" | "q" => {
            let n = in_range(family, "dimension", need(0, "a dimension")?, 1, 22)?;
            let part = partition::subcube_partition(n, n.min(4));
            simple(format!("Q{n}"), classic::hypercube(n), Some(part))
        }
        "folded" | "fq" => {
            let n = in_range(family, "dimension", need(0, "a dimension")?, 1, 22)?;
            let part = partition::subcube_partition(n, n.min(4));
            simple(format!("FQ{n}"), classic::folded_hypercube(n), Some(part))
        }
        "torus" => {
            let k = in_range(family, "side length", need(0, "a side length")?, 2, 2048)?;
            let part = (k % 4 == 0).then(|| partition::torus_block_partition(k, 4, 4));
            simple(format!("torus {k}x{k}"), classic::torus2d(k), part)
        }
        "kary" => {
            let k = in_range(family, "radix", need(0, "radix")?, 2, MAX_NODES)?;
            let n = in_range(family, "dimension count", need(1, "dimensions")?, 1, 22)?;
            sized_pow(family, k, n, cap)?;
            simple(format!("{k}-ary {n}-cube"), classic::kary_ncube(k, n), None)
        }
        "ring" => {
            let n = in_range(family, "length", need(0, "a length")?, 3, MAX_NODES)?;
            simple(format!("C{n}"), classic::ring(n), None)
        }
        "complete" => {
            let n = in_range(family, "size", need(0, "a size")?, 1, 2048)?;
            simple(format!("K{n}"), classic::complete(n), None)
        }
        "star" => {
            let n = in_range(family, "size", need(0, "a size")?, 1, 10)?;
            let labels = classic::star_labels(n);
            let part = partition::substar_partition(&labels, 3.min(n));
            simple(format!("S{n}"), classic::star(n), Some(part))
        }
        "pancake" => {
            let n = in_range(family, "size", need(0, "a size")?, 1, 10)?;
            simple(format!("pancake-{n}"), classic::pancake(n), None)
        }
        "petersen" => simple("Petersen".into(), classic::petersen(), None),
        "debruijn" | "db" => {
            let n = in_range(family, "dimension", need(0, "a dimension")?, 1, 22)?;
            let part = partition::subcube_partition(n, n.min(4));
            simple(format!("DB(2,{n})"), classic::debruijn(n), Some(part))
        }
        "se" | "shuffle-exchange" => {
            let n = in_range(family, "dimension", need(0, "a dimension")?, 2, 22)?;
            simple(format!("SE{n}"), classic::shuffle_exchange(n), None)
        }
        "ccc" => {
            let n = in_range(family, "dimension", need(0, "a dimension")?, 3, 17)?;
            let part = partition::ccc_cycle_partition(n);
            simple(format!("CCC({n})"), classic::ccc(n), Some(part))
        }
        "gh" => {
            if ints.len() < 2 {
                return Err("gh needs at least two radices, e.g. `gh:3,4`".into());
            }
            ints.iter().try_fold(1usize, |acc, &r| {
                in_range(family, "radix", r, 2, MAX_NODES)?;
                acc.checked_mul(r)
                    .filter(|&n| n <= MAX_NODES)
                    .ok_or_else(|| format!("{family}: node count exceeds the {MAX_NODES}-node cap"))
            })?;
            simple(
                format!(
                    "GH({})",
                    ints.iter()
                        .map(|r| r.to_string())
                        .collect::<Vec<_>>()
                        .join("x")
                ),
                classic::generalized_hypercube(&ints),
                None,
            )
        }
        "rotator" => {
            let n = in_range(family, "size", need(0, "a size")?, 2, 10)?;
            let ip = ipdefs::rotator_ip(n)
                .generate()
                .map_err(|e| e.to_string())?;
            simple(format!("rotator-{n}"), ip.to_directed_csr(), None)
        }
        "macro-star" | "ms" => {
            let l = in_range(
                family,
                "l",
                int_kv("l")?.ok_or("macro-star needs l=..")?,
                1,
                9,
            )?;
            let n = in_range(
                family,
                "n",
                int_kv("n")?.ok_or("macro-star needs n=..")?,
                1,
                9,
            )?;
            // MS(l,n) lives on (l·n+1)! permutations; keep that materializable.
            sized_factorial(family, l * n + 1, cap)?;
            let ip = ipdefs::macro_star_ip(l, n)
                .generate()
                .map_err(|e| e.to_string())?;
            simple(format!("MS({l},{n})"), ip.to_undirected_csr(), None)
        }
        "hcn" => {
            let n = in_range(family, "dimension", need(0, "a dimension")?, 1, 11)?;
            Ok(Parsed::Tuple {
                tn: hier::hsn(2, classic::hypercube(n), &format!("Q{n}")),
                name: Some(format!("HCN({n},{n})")),
            })
        }
        "hfn" => {
            let n = in_range(family, "dimension", need(0, "a dimension")?, 1, 11)?;
            Ok(Parsed::Tuple {
                tn: hier::hfn(n),
                name: None,
            })
        }
        "hhn" => {
            let k = in_range(family, "dimension", need(0, "a dimension")?, 1, 4)?;
            simple(format!("HHN({k})"), hier::hhn(k), None)
        }
        "rcc" => {
            let l = in_range(family, "l", int_kv("l")?.ok_or("rcc needs l=..")?, 1, 22)?;
            let m = in_range(family, "m", int_kv("m")?.ok_or("rcc needs m=..")?, 2, 2048)?;
            sized_pow(family, m, l, cap)?;
            tuple_network(hier::rcc(l, m))
        }
        "hse" => {
            let l = in_range(family, "l", int_kv("l")?.ok_or("hse needs l=..")?, 1, 22)?;
            let n = in_range(family, "n", int_kv("n")?.ok_or("hse needs n=..")?, 2, 22)?;
            sized_pow(family, 1usize << n, l, cap)?;
            tuple_network(hier::hse(l, n))
        }
        "cpn" => {
            let l = in_range(family, "depth", need(0, "a depth")?, 1, 6)?;
            tuple_network(hier::cyclic_petersen(l))
        }
        "hsn" | "ring-cn" | "cn" | "complete-cn" | "superflip" => {
            let l = in_range(
                family,
                "l",
                int_kv("l")?.ok_or_else(|| format!("{family} needs l=.."))?,
                1,
                22,
            )?;
            let (nucleus, nname) = parse_nucleus(kv("nucleus").unwrap_or("Q2"))?;
            let size = sized_pow(family, nucleus.node_count(), l, cap)?;
            if flag("symmetric") {
                // the symmetric closure multiplies the address space by l!
                sized_factorial(family, l, cap).and_then(|f| {
                    f.checked_mul(size).filter(|&n| n <= cap).ok_or_else(|| {
                        format!("{family}: symmetric closure exceeds the {cap}-node cap")
                    })
                })?;
            }
            let mut tn = match family {
                "hsn" => hier::hsn(l, nucleus, &nname),
                "ring-cn" => hier::ring_cn(l, nucleus, &nname),
                "cn" | "complete-cn" => hier::complete_cn(l, nucleus, &nname),
                _ => hier::superflip(l, nucleus, &nname),
            };
            if flag("symmetric") {
                tn = hier::symmetric(&tn);
            }
            tuple_network(tn)
        }
        other => Err(format!(
            "unknown family `{other}`; see `ipg help` for the list"
        )),
    }
}

fn tuple_network(tn: TupleNetwork) -> Result<Parsed, String> {
    Ok(Parsed::Tuple { tn, name: None })
}

/// Parse a nucleus name: `Q4`, `FQ3`, `K8`, `S4`, `P`, `C6`, `GH3x4`.
pub fn parse_nucleus(s: &str) -> Result<(Csr, String), String> {
    let num = |prefix: &str| -> Result<usize, String> {
        s[prefix.len()..]
            .parse::<usize>()
            .map_err(|_| format!("bad nucleus `{s}`"))
    };
    if s == "P" {
        return Ok((classic::petersen(), "P".into()));
    }
    if let Some(rest) = s.strip_prefix("GH") {
        let radices: Vec<usize> = rest
            .split('x')
            .map(|r| r.parse::<usize>().map_err(|_| format!("bad nucleus `{s}`")))
            .collect::<Result<_, _>>()?;
        radices.iter().try_fold(1usize, |acc, &r| {
            in_range("nucleus", "radix", r, 2, MAX_NODES)?;
            acc.checked_mul(r)
                .filter(|&n| n <= MAX_NODES)
                .ok_or_else(|| format!("nucleus `{s}` exceeds the {MAX_NODES}-node cap"))
        })?;
        return Ok((classic::generalized_hypercube(&radices), s.to_string()));
    }
    if s.starts_with("FQ") {
        let n = in_range("nucleus", "dimension", num("FQ")?, 1, 22)?;
        return Ok((classic::folded_hypercube(n), s.to_string()));
    }
    match s.as_bytes().first() {
        Some(b'Q') => {
            let n = in_range("nucleus", "dimension", num("Q")?, 1, 22)?;
            Ok((classic::hypercube(n), s.to_string()))
        }
        Some(b'K') => {
            let n = in_range("nucleus", "size", num("K")?, 1, 2048)?;
            Ok((classic::complete(n), s.to_string()))
        }
        Some(b'S') => {
            let n = in_range("nucleus", "size", num("S")?, 1, 10)?;
            Ok((classic::star(n), s.to_string()))
        }
        Some(b'C') => {
            let n = in_range("nucleus", "length", num("C")?, 3, MAX_NODES)?;
            Ok((classic::ring(n), s.to_string()))
        }
        _ => Err(format!("unknown nucleus `{s}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_families() {
        assert_eq!(parse("hypercube:6").unwrap().graph.node_count(), 64);
        assert_eq!(parse("torus:8").unwrap().graph.node_count(), 64);
        assert_eq!(parse("star:5").unwrap().graph.node_count(), 120);
        assert_eq!(parse("petersen").unwrap().graph.node_count(), 10);
        assert_eq!(parse("gh:3,4").unwrap().graph.node_count(), 12);
        assert_eq!(parse("ccc:3").unwrap().graph.node_count(), 24);
    }

    #[test]
    fn parse_super_ip_families() {
        let p = parse("hsn:l=3,nucleus=Q2").unwrap();
        assert_eq!(p.graph.node_count(), 64);
        assert!(p.tuple.is_some());
        assert!(p.partition.is_some());

        let p = parse("ring-cn:l=2,nucleus=FQ3").unwrap();
        assert_eq!(p.graph.node_count(), 64);

        let p = parse("cn:l=2,nucleus=P").unwrap();
        assert_eq!(p.graph.node_count(), 100);

        let p = parse("hsn:l=2,nucleus=Q1,symmetric").unwrap();
        assert_eq!(p.graph.node_count(), 8); // 2!·2^2
    }

    #[test]
    fn parse_hierarchical_names() {
        assert_eq!(parse("hcn:3").unwrap().graph.node_count(), 64);
        assert_eq!(parse("hfn:2").unwrap().graph.node_count(), 16);
        assert_eq!(parse("hhn:2").unwrap().graph.node_count(), 64);
        assert_eq!(parse("cpn:2").unwrap().graph.node_count(), 100);
        assert_eq!(parse("rcc:l=2,m=4").unwrap().graph.node_count(), 16);
        assert_eq!(parse("macro-star:l=2,n=2").unwrap().graph.node_count(), 120);
        assert_eq!(parse("rotator:4").unwrap().graph.node_count(), 24);
    }

    #[test]
    fn errors_are_helpful() {
        assert!(parse("frobcube:3").unwrap_err().contains("unknown family"));
        assert!(parse("hypercube").unwrap_err().contains("dimension"));
        assert!(parse("hsn:nucleus=Q2").unwrap_err().contains("l="));
        assert!(parse("hsn:l=2,nucleus=Z9").unwrap_err().contains("nucleus"));
    }

    // Each of these inputs used to panic (or hang) in a downstream
    // constructor; they must now come back as contextual `Err`s.
    #[test]
    fn zero_level_super_ip_is_rejected() {
        assert!(parse("hsn:l=0,nucleus=Q2").unwrap_err().contains("l must"));
        assert!(parse("cn:l=0,nucleus=P").unwrap_err().contains("l must"));
        assert!(parse("ring-cn:l=0,nucleus=Q2")
            .unwrap_err()
            .contains("l must"));
        assert!(parse("superflip:l=0,nucleus=Q2")
            .unwrap_err()
            .contains("l must"));
    }

    #[test]
    fn oversized_super_ip_is_rejected_fast() {
        // used to hang trying to materialize 4^9999999 nodes
        let e = parse("hsn:l=9999999,nucleus=Q2").unwrap_err();
        assert!(e.contains("l must be between 1 and 22"), "{e}");
        let e = parse("hsn:l=22,nucleus=Q4").unwrap_err();
        assert!(e.contains("node cap"), "{e}");
        let e = parse("hsn:l=8,nucleus=Q2,symmetric").unwrap_err();
        assert!(e.contains("symmetric closure"), "{e}");
    }

    #[test]
    fn degenerate_classic_sizes_are_rejected() {
        assert!(parse("ring:1").unwrap_err().contains("length must"));
        assert!(parse("ring:2").unwrap_err().contains("length must"));
        assert!(parse("kary:1,2").unwrap_err().contains("radix must"));
        assert!(parse("kary:2,0").unwrap_err().contains("dimension count"));
        assert!(parse("ccc:0").unwrap_err().contains("dimension must"));
        assert!(parse("ccc:2").unwrap_err().contains("dimension must"));
        assert!(parse("hypercube:80")
            .unwrap_err()
            .contains("between 1 and 22"));
        assert!(parse("folded:0").unwrap_err().contains("dimension must"));
        assert!(parse("se:1").unwrap_err().contains("dimension must"));
        assert!(parse("torus:1").unwrap_err().contains("side length"));
        assert!(parse("gh:1,4").unwrap_err().contains("radix must"));
    }

    #[test]
    fn oversized_permutation_families_are_rejected() {
        assert!(parse("star:11").unwrap_err().contains("size must"));
        assert!(parse("pancake:13").unwrap_err().contains("size must"));
        assert!(parse("rotator:1").unwrap_err().contains("size must"));
        assert!(parse("rotator:12").unwrap_err().contains("size must"));
        let e = parse("macro-star:l=3,n=4").unwrap_err();
        assert!(e.contains("13! nodes exceeds"), "{e}");
    }

    #[test]
    fn hierarchical_bounds_are_checked() {
        assert!(parse("hhn:5").unwrap_err().contains("dimension must"));
        assert!(parse("hcn:0").unwrap_err().contains("dimension must"));
        assert!(parse("hfn:20").unwrap_err().contains("dimension must"));
        assert!(parse("cpn:0").unwrap_err().contains("depth must"));
        assert!(parse("cpn:9").unwrap_err().contains("depth must"));
        assert!(parse("rcc:l=0,m=4").unwrap_err().contains("l must"));
        assert!(parse("rcc:l=2,m=1").unwrap_err().contains("m must"));
        let e = parse("rcc:l=10,m=10").unwrap_err();
        assert!(e.contains("node cap"), "{e}");
        assert!(parse("hse:l=1,n=1").unwrap_err().contains("n must"));
        let e = parse("hse:l=10,n=10").unwrap_err();
        assert!(e.contains("node cap"), "{e}");
    }

    #[test]
    fn malformed_nuclei_are_rejected() {
        assert!(parse("hsn:l=2,nucleus=Q0")
            .unwrap_err()
            .contains("dimension must"));
        assert!(parse("hsn:l=2,nucleus=Q99")
            .unwrap_err()
            .contains("dimension must"));
        assert!(parse("hsn:l=2,nucleus=C2")
            .unwrap_err()
            .contains("length must"));
        assert!(parse("hsn:l=2,nucleus=S12")
            .unwrap_err()
            .contains("size must"));
        assert!(parse("hsn:l=2,nucleus=GH1x3")
            .unwrap_err()
            .contains("radix must"));
        assert!(parse("hsn:l=2,nucleus=Qx")
            .unwrap_err()
            .contains("bad nucleus"));
    }

    #[test]
    fn dist_cap_admits_larger_super_ip_networks() {
        // 2^24 nodes: over the in-process cap, exactly at the dist cap.
        let spec = "cn:l=2,nucleus=Q12";
        let e = parse(spec).unwrap_err();
        assert!(e.contains("node cap"), "{e}");
        let w = parse_worker(spec, DIST_MAX_NODES, false).unwrap();
        assert!(w.graph.is_none());
        assert_eq!(
            w.tuple.unwrap().node_count(),
            DIST_MAX_NODES,
            "CN(2,Q12) should sit exactly at the dist cap"
        );
    }

    #[test]
    fn worker_parse_skips_graph_materialization_on_demand() {
        let lazy = parse_worker("hsn:l=3,nucleus=Q2", MAX_NODES, false).unwrap();
        assert!(lazy.graph.is_none());
        assert!(lazy.tuple.is_some());

        let eager = parse_worker("hsn:l=3,nucleus=Q2", MAX_NODES, true).unwrap();
        assert_eq!(eager.graph.unwrap().node_count(), 64);

        // Classic families have no tuple form: graph comes back regardless.
        let classic = parse_worker("hypercube:6", MAX_NODES, false).unwrap();
        assert_eq!(classic.graph.unwrap().node_count(), 64);
        assert!(classic.tuple.is_none());
    }

    #[test]
    fn parse_with_cap_matches_parse_at_the_default_cap() {
        for spec in ["hcn:3", "hfn:2", "hsn:l=3,nucleus=Q2", "torus:8"] {
            let a = parse(spec).unwrap();
            let b = parse_with_cap(spec, MAX_NODES).unwrap();
            assert_eq!(a.name, b.name);
            assert_eq!(a.graph.node_count(), b.graph.node_count());
            assert_eq!(a.tuple.is_some(), b.tuple.is_some());
        }
    }

    #[test]
    fn valid_edge_sizes_still_parse() {
        // boundary values just inside the caps must keep working
        assert_eq!(parse("ring:3").unwrap().graph.node_count(), 3);
        assert_eq!(parse("kary:2,3").unwrap().graph.node_count(), 8);
        assert_eq!(parse("ccc:3").unwrap().graph.node_count(), 24);
        assert_eq!(parse("hhn:1").unwrap().graph.node_count(), 8);
        assert_eq!(parse("hsn:l=1,nucleus=Q2").unwrap().graph.node_count(), 4);
    }
}
