//! `ipg` — command-line interface to the IP-graph workspace.
//!
//! ```text
//! ipg info <network>                  topology + §5 metrics
//! ipg compare <network> <network>...  side-by-side cost table
//! ipg dot <network>                   Graphviz DOT on stdout
//! ipg route <network> <src> <dst>     shortest route (node ids)
//! ipg simulate <network> [rate]       packet simulation
//! ipg trace summary <trace.jsonl>     summarize a flight-recorder trace
//! ipg help                            the network mini-language
//! ```

mod spec;

use ipg_cluster::{costs, imetrics, partition::Partition};
use ipg_core::algo;
use ipg_core::tuple_routing::{ShortestTupleRouter, SHORTEST_ROUTER_MAX_L};
use ipg_obs::{MetaVal, Obs, Trace, TraceConfig};
use ipg_sim::engine::{SimConfig, Simulator};
use ipg_sim::fault::{FaultPlan, FaultSpec};
use ipg_sim::router::{DetourRouter, Router};
use ipg_sim::table::RoutingTable;
use ipg_sim::wormhole::{VcPolicy, WormholeConfig, WormholeOutcome, WormholeSim};
use spec::{parse, ParsedNetwork};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        // Hidden mode: `simulate --workers N` re-executes this binary as
        // `ipg worker` for each shard-range process (stdin carries the
        // coordinator socket — never invoked by hand).
        Some("worker") => cmd_dist_worker(),
        Some("info") => with_network(&args, 1, cmd_info),
        Some("compare") => cmd_compare(&args[1..]),
        Some("dot") => with_network(&args, 1, cmd_dot),
        Some("route") => cmd_route(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("layout") => with_network(&args, 1, cmd_layout),
        Some("solve") => cmd_solve(&args[1..]),
        Some("help") | None => {
            print_help();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`; try `ipg help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn with_network(
    args: &[String],
    idx: usize,
    f: impl Fn(&ParsedNetwork) -> Result<(), String>,
) -> Result<(), String> {
    let spec = args
        .get(idx)
        .ok_or("missing network argument; try `ipg help`")?;
    f(&parse(spec)?)
}

fn print_help() {
    println!("ipg — hierarchical interconnection networks (Yeh & Parhami, ICPP 1999)");
    println!();
    println!("commands:");
    println!("  info <network>                 topology + clustered (§5) metrics");
    println!("  compare <network> <network>..  cost table (DD / ID / II)");
    println!("  dot <network>                  Graphviz DOT on stdout");
    println!("  route <network> <src> <dst>    shortest route between node ids");
    println!("  simulate <network> [rate]      packet simulation (default rate 0.01)");
    println!("      --obs <path>               write a JSON-lines run manifest");
    println!("      --obs-interval <cycles>    also snapshot metrics every N cycles");
    println!("      --wormhole                 flit-level wormhole switching instead");
    println!("      --vcs <n> --flits <n>      wormhole VC count / packet length");
    println!("      --policy single|hop        wormhole VC allocation policy");
    println!("      --faults <spec>            deterministic fault campaign; routing");
    println!("                                 becomes fault-aware (detour). Spec, e.g.:");
    println!(
        "                                 script:link@600:0-1+node@800:5;rate:links=0.05,at=1000"
    );
    println!("      --trace <path>             write a flight-recorder trace (JSON lines)");
    println!("      --trace-interval <cycles>  trace sampling interval (default 64)");
    println!("      --workers <n>              run across n OS processes (packet engine");
    println!("                                 only); results are byte-identical to the");
    println!("                                 in-process run, per-worker memory is");
    println!("                                 bounded by its shard range");
    println!("  trace summary <t.jsonl>        summarize a trace (--top <n> hottest links)");
    println!("  trace chrome <t.jsonl> <out>   convert to Chrome/Perfetto trace JSON");
    println!("  layout <network>               bisection width + grid-layout wirelength");
    println!("  solve <game> <src> <dst>       solve a ball-arrangement game (games:");
    println!("                                 star:n, pancake:n; labels like 654321)");
    println!();
    println!("networks (family:args):");
    println!("  hypercube:10  folded:8  torus:32  kary:4,3  ring:64  complete:16");
    println!("  star:7  pancake:6  petersen  debruijn:8  se:8  ccc:5  gh:3,4,5");
    println!("  rotator:6  macro-star:l=2,n=3");
    println!("  hsn:l=3,nucleus=Q4      ring-cn:l=4,nucleus=FQ4");
    println!("  cn:l=3,nucleus=P        superflip:l=3,nucleus=Q2");
    println!("  hsn:l=2,nucleus=Q2,symmetric   (distinct-symbol Cayley variant)");
    println!("  hcn:4  hfn:3  hhn:3  rcc:l=2,m=8  hse:l=2,n=4  cpn:3");
    println!();
    println!("nuclei: Q<n> FQ<n> K<n> S<n> C<n> P GH<r>x<r>");
}

fn cmd_info(net: &ParsedNetwork) -> Result<(), String> {
    let g = &net.graph;
    println!("network:      {}", net.name);
    println!("nodes:        {}", g.node_count());
    println!(
        "links:        {}{}",
        g.arc_count() / 2,
        if g.is_symmetric() {
            ""
        } else {
            " (directed arcs/2)"
        }
    );
    println!("degree:       {}..{}", g.min_degree(), g.max_degree());
    if g.node_count() <= 100_000 {
        println!("diameter:     {}", algo::diameter(g));
        println!("avg distance: {:.3}", algo::average_distance(g));
    } else {
        println!("diameter:     (skipped; > 100k nodes)");
    }
    if g.node_count() <= 5_000 {
        if let Some(girth) = algo::girth(g) {
            println!("girth:        {girth}");
        }
    }
    if let Some(part) = &net.partition {
        let m = imetrics::exact_metrics(g, part);
        println!();
        println!(
            "packing:        {} modules of ≤ {} nodes",
            part.count,
            part.max_module_size()
        );
        println!("I-degree:       {:.2}", m.i_degree);
        println!("I-diameter:     {}", m.i_diameter);
        println!("avg I-distance: {:.2}", m.avg_i_distance);
    }
    Ok(())
}

fn cmd_compare(specs: &[String]) -> Result<(), String> {
    if specs.is_empty() {
        return Err("compare needs at least one network".into());
    }
    println!(
        "{:<24} {:>8} {:>4} {:>5} {:>8} {:>6} {:>7} {:>8} {:>8}",
        "network", "N", "deg", "diam", "DD", "I-deg", "I-diam", "ID", "II"
    );
    for s in specs {
        let net = parse(s)?;
        let part = net
            .partition
            .clone()
            .unwrap_or_else(|| Partition::singletons(net.graph.node_count()));
        let c = costs::summarize(&net.name, &net.graph, &part);
        println!(
            "{:<24} {:>8} {:>4} {:>5} {:>8.0} {:>6.2} {:>7} {:>8.1} {:>8.1}",
            c.name,
            c.nodes,
            c.degree,
            c.diameter,
            c.dd_cost(),
            c.i_degree,
            c.i_diameter,
            c.id_cost(),
            c.ii_cost()
        );
    }
    Ok(())
}

fn cmd_dot(net: &ParsedNetwork) -> Result<(), String> {
    if net.graph.node_count() > 2_000 {
        return Err("refusing to emit DOT for > 2000 nodes".into());
    }
    print!(
        "{}",
        ipg_networks::viz::to_dot(&net.graph, &net.name, |v| v.to_string())
    );
    Ok(())
}

fn cmd_route(args: &[String]) -> Result<(), String> {
    let net = parse(args.first().ok_or("route needs a network")?)?;
    let parse_node = |s: &String| -> Result<u32, String> {
        let v = s.parse::<u32>().map_err(|_| format!("bad node id `{s}`"))?;
        if (v as usize) < net.graph.node_count() {
            Ok(v)
        } else {
            Err(format!("node {v} out of range"))
        }
    };
    let src = parse_node(args.get(1).ok_or("route needs <src> <dst>")?)?;
    let dst = parse_node(args.get(2).ok_or("route needs <src> <dst>")?)?;
    let path = algo::shortest_path(&net.graph, src, dst).ok_or("destination unreachable")?;
    println!(
        "{}: {} -> {} in {} hops",
        net.name,
        src,
        dst,
        path.len() - 1
    );
    for w in path.windows(2) {
        let off = net
            .partition
            .as_ref()
            .map(|p| !p.same(w[0], w[1]))
            .unwrap_or(false);
        println!(
            "  {} -> {}{}",
            w[0],
            w[1],
            if off { "   (off-module)" } else { "" }
        );
    }
    if let Some(tn) = &net.tuple {
        let (_, t_src) = tn.decode(src);
        let (_, t_dst) = tn.decode(dst);
        println!("  tuples: {t_src:?} -> {t_dst:?}");
    }
    Ok(())
}

fn cmd_layout(net: &ParsedNetwork) -> Result<(), String> {
    if net.graph.node_count() > 4_096 {
        return Err("layout analysis capped at 4096 nodes".into());
    }
    let b = ipg_layout::bisection::bisection_width_kl(&net.graph, 16, 0xcafe);
    println!("network:            {}", net.name);
    println!("bisection (KL ub):  {b}");
    println!(
        "Thompson area ≥     {}",
        ipg_layout::grid::thompson_area_lower_bound(b as u64)
    );
    let naive = ipg_layout::grid::row_major_layout(net.graph.node_count());
    println!(
        "row-major layout:   area {}, total wirelength {}, max wire {}",
        naive.area(),
        naive.total_wirelength(&net.graph),
        naive.max_wirelength(&net.graph)
    );
    if let Some(tn) = &net.tuple {
        let rec = ipg_layout::grid::recursive_layout(tn);
        println!(
            "recursive layout:   area {}, total wirelength {}, max wire {}",
            rec.area(),
            rec.total_wirelength(&net.graph),
            rec.max_wirelength(&net.graph)
        );
    }
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    use ipg_core::label::Label;
    use ipg_core::solve::solve;
    use ipg_core::spec::IpGraphSpec;

    let game = args.first().ok_or("solve needs a game, e.g. `star:6`")?;
    let spec: IpGraphSpec = match game.split_once(':') {
        Some(("star", n)) => IpGraphSpec::star(n.parse().map_err(|_| format!("bad size `{n}`"))?),
        Some(("pancake", n)) => {
            IpGraphSpec::pancake(n.parse().map_err(|_| format!("bad size `{n}`"))?)
        }
        _ => return Err(format!("unknown game `{game}` (star:n or pancake:n)")),
    };
    let src = Label::parse(args.get(1).ok_or("solve needs <src> <dst> labels")?)
        .ok_or("bad src label")?;
    let dst = Label::parse(args.get(2).ok_or("solve needs <src> <dst> labels")?)
        .ok_or("bad dst label")?;
    let sol = solve(&spec, &src, &dst, 50_000_000).map_err(|e| e.to_string())?;
    println!("{} -> {} in {} moves:", src, dst, sol.len());
    let mut cur = src.symbols().to_vec();
    for &m in &sol.moves {
        cur = spec.generators[m].perm.apply(&cur);
        println!(
            "  {:<8} -> {}",
            spec.generators[m].name,
            Label::from(cur.clone())
        );
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    // peel off flags; the rest stay positional
    let mut positional: Vec<&String> = Vec::new();
    let mut obs_path: Option<std::path::PathBuf> = None;
    let mut obs_interval: u32 = 0;
    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut trace_interval: u32 = 64;
    let mut wormhole = false;
    let mut vcs: usize = 2;
    let mut flits: u32 = 4;
    let mut policy = VcPolicy::HopIndexed;
    let mut faults_arg: Option<String> = None;
    let mut workers: Option<u32> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--obs" => {
                obs_path = Some(it.next().ok_or("--obs needs a file path")?.into());
            }
            "--obs-interval" => {
                let v = it.next().ok_or("--obs-interval needs a cycle count")?;
                obs_interval = v.parse().map_err(|_| format!("bad --obs-interval `{v}`"))?;
            }
            "--trace" => {
                trace_path = Some(it.next().ok_or("--trace needs a file path")?.into());
            }
            "--trace-interval" => {
                let v = it.next().ok_or("--trace-interval needs a cycle count")?;
                trace_interval = v
                    .parse()
                    .map_err(|_| format!("bad --trace-interval `{v}`"))?;
                if trace_interval == 0 {
                    return Err("--trace-interval must be ≥ 1".into());
                }
            }
            "--wormhole" => wormhole = true,
            "--vcs" => {
                let v = it.next().ok_or("--vcs needs a channel count")?;
                vcs = v.parse().map_err(|_| format!("bad --vcs `{v}`"))?;
                if vcs == 0 {
                    return Err("--vcs must be ≥ 1".into());
                }
            }
            "--flits" => {
                let v = it.next().ok_or("--flits needs a packet length")?;
                flits = v.parse().map_err(|_| format!("bad --flits `{v}`"))?;
                if flits == 0 {
                    return Err("--flits must be ≥ 1".into());
                }
            }
            "--policy" => {
                policy = match it.next().ok_or("--policy needs single|hop")?.as_str() {
                    "single" => VcPolicy::Single,
                    "hop" => VcPolicy::HopIndexed,
                    other => return Err(format!("bad --policy `{other}` (single|hop)")),
                };
            }
            "--faults" => {
                faults_arg = Some(
                    it.next()
                        .ok_or("--faults needs a spec (see `ipg help`)")?
                        .clone(),
                );
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a process count")?;
                let w: u32 = v.parse().map_err(|_| format!("bad --workers `{v}`"))?;
                if w == 0 {
                    return Err("--workers must be ≥ 1".into());
                }
                workers = Some(w);
            }
            _ => positional.push(a),
        }
    }
    if workers.is_some() && wormhole {
        return Err("--workers applies to the packet engine only, not --wormhole".into());
    }
    let netspec = positional.first().ok_or("simulate needs a network")?;
    // The multi-process path admits larger networks: workers route by
    // tuple codec without materializing the graph, so the memory bound
    // is per shard range, not per network.
    let net = if workers.is_some() {
        spec::parse_with_cap(netspec, spec::DIST_MAX_NODES)?
    } else {
        parse(netspec)?
    };
    let rate: f64 = positional
        .get(1)
        .map(|s| s.parse().map_err(|_| format!("bad rate `{s}`")))
        .transpose()?
        .unwrap_or(0.01);
    let cfg = SimConfig {
        injection_rate: rate,
        warmup_cycles: 500,
        measure_cycles: 2_000,
        drain_cycles: 4_000,
        ..SimConfig::default()
    };
    let module: Vec<u32> = match &net.partition {
        Some(p) => p.class.clone(),
        None => vec![0; net.graph.node_count()],
    };
    // Routing backend: super-IP specs route arithmetically on their codec
    // digits (no per-pair state); everything else falls back to the
    // all-pairs BFS table, whose O(N²) memory caps it at 65,536 nodes.
    let codec_eligible = net
        .tuple
        .as_ref()
        .is_some_and(|tn| tn.l <= SHORTEST_ROUTER_MAX_L);
    // A fault campaign compiles against the topology and the run seed
    // (the seed only matters for `rate:` sections) and upgrades the
    // router to the fault-aware detour wrapper.
    let fault_plan = match &faults_arg {
        Some(s) => {
            let spec = FaultSpec::parse(s).map_err(|e| format!("bad --faults: {e}"))?;
            let plan = FaultPlan::compile(&spec, &net.graph, cfg.seed)
                .map_err(|e| format!("bad --faults: {e}"))?;
            Some(plan)
        }
        None => None,
    };
    let router_kind = match (codec_eligible, fault_plan.is_some()) {
        (true, false) => "codec (table-free)",
        (true, true) => "detour-codec (fault-aware)",
        (false, false) => "all-pairs table",
        (false, true) => "detour-table (fault-aware)",
    };
    if !codec_eligible && net.graph.node_count() > 65_536 {
        return Err(format!(
            "{} nodes exceed the 65536-node bound of the all-pairs routing table \
             (table-free codec routing needs a super-IP spec with l ≤ {SHORTEST_ROUTER_MAX_L})",
            net.graph.node_count()
        ));
    }
    let obs = match &obs_path {
        Some(p) => Obs::to_file(p).map_err(|e| format!("cannot open {}: {e}", p.display()))?,
        None => Obs::disabled(),
    };
    let trace_cfg = trace_path
        .as_ref()
        .map(|_| TraceConfig::with_interval(trace_interval));
    obs.emit_meta(
        "ipg-simulate",
        &[
            ("network", MetaVal::from(net.name.as_str())),
            ("nodes", MetaVal::from(net.graph.node_count())),
            (
                "mode",
                MetaVal::from(if wormhole { "wormhole" } else { "packet" }),
            ),
            ("router", MetaVal::from(router_kind)),
            (
                "faults",
                MetaVal::from(faults_arg.as_deref().unwrap_or("none")),
            ),
            ("injection_rate", MetaVal::from(rate)),
            ("warmup_cycles", MetaVal::from(cfg.warmup_cycles as u64)),
            ("measure_cycles", MetaVal::from(cfg.measure_cycles as u64)),
            ("drain_cycles", MetaVal::from(cfg.drain_cycles as u64)),
            ("seed", MetaVal::from(cfg.seed)),
            (
                "ipg_threads",
                MetaVal::from(rayon::current_num_threads() as u64),
            ),
        ],
    );
    let base_router: Box<dyn Router> = if codec_eligible {
        let tn = net
            .tuple
            .clone()
            .ok_or("codec routing without a tuple form")?;
        Box::new(ShortestTupleRouter::new(tn).map_err(|e| e.to_string())?)
    } else {
        Box::new(RoutingTable::new_instrumented(&net.graph, &obs))
    };
    let router: Box<dyn Router> = if fault_plan.is_some() {
        Box::new(DetourRouter::new(base_router, net.graph.clone()).map_err(|e| e.to_string())?)
    } else {
        base_router
    };
    println!("network:    {}", net.name);
    println!("router:     {router_kind}");
    println!("rate:       {rate}");
    if wormhole {
        let wcfg = WormholeConfig {
            vcs,
            packet_flits: flits,
            injection_rate: rate,
            policy,
            ..WormholeConfig::default()
        };
        let mut sim = WormholeSim::with_router(router, &net.graph);
        sim.set_fault_plan(fault_plan);
        let (out, trace) = sim.run_traced(&wcfg, &obs, obs_interval, trace_cfg.as_ref());
        obs.finish();
        println!("mode:       wormhole ({vcs} VCs, {flits}-flit packets)");
        match out {
            WormholeOutcome::Completed(s) => {
                println!("injected:   {}", s.injected);
                println!(
                    "delivered:  {} ({:.1}%)",
                    s.delivered,
                    100.0 * s.delivered as f64 / s.injected.max(1) as f64
                );
                if faults_arg.is_some() {
                    println!("dropped:    {} (unreachable)", s.dropped);
                }
                println!("latency:    avg {:.2}", s.avg_latency);
            }
            WormholeOutcome::Deadlocked {
                at_cycle,
                stuck_packets,
            } => {
                println!("deadlocked: cycle {at_cycle}, {stuck_packets} packets stuck");
            }
        }
        write_trace(trace, trace_path.as_deref())?;
    } else {
        // Both engines print through the same block below: a distributed
        // run's stdout, manifest, and trace are byte-compatible with the
        // in-process engine's (the manifest gains `dist` records — the
        // per-worker RSS/frame gauges — which sit outside the
        // deterministic record family).
        let (r, trace) = match workers {
            Some(w) => {
                drop(router); // coordinator never routes; workers rebuild their own
                let exe = std::env::current_exe()
                    .map_err(|e| format!("cannot locate the worker binary: {e}"))?;
                let exe = exe
                    .to_str()
                    .ok_or("worker binary path is not valid UTF-8")?
                    .to_string();
                let timeout = std::env::var("IPG_DIST_TIMEOUT")
                    .ok()
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or(120);
                let dc = ipg_sim::dist::DistConfig {
                    workers: w,
                    worker_argv: vec![exe, "worker".into()],
                    netspec: (*netspec).clone(),
                    window: obs_interval,
                    trace: trace_cfg.clone(),
                    read_timeout: std::time::Duration::from_secs(timeout.max(1)),
                };
                let run = ipg_sim::dist::run_dist(
                    &net.graph,
                    |v| module[v as usize],
                    &cfg,
                    fault_plan.as_ref(),
                    &obs,
                    &dc,
                )
                .map_err(|e| e.to_string())?;
                (run.result, run.trace)
            }
            None => {
                let mut sim =
                    Simulator::with_router(router, &net.graph, |v| module[v as usize], &cfg);
                sim.set_fault_plan(fault_plan);
                sim.run_traced(&cfg, &obs, obs_interval, trace_cfg.as_ref())
            }
        };
        obs.finish();
        println!("injected:   {}", r.injected);
        println!(
            "delivered:  {} ({:.1}%)",
            r.delivered,
            100.0 * r.delivered as f64 / r.injected.max(1) as f64
        );
        if faults_arg.is_some() {
            println!("dropped:    {} (unreachable)", r.dropped_unreachable);
        }
        println!(
            "in flight:  {} at end; {} drained unmeasured",
            r.in_flight_at_end, r.unmeasured_delivered
        );
        println!(
            "latency:    avg {:.2}, max {}",
            r.avg_latency, r.max_latency
        );
        println!("throughput: {:.4} packets/node/cycle", r.throughput);
        write_trace(trace, trace_path.as_deref())?;
    }
    if let Some(p) = obs_path {
        println!("manifest:   {}", p.display());
    }
    Ok(())
}

/// The hidden `ipg worker` mode: adopt the coordinator socket from
/// stdin and run the worker half of the distributed cycle protocol.
fn cmd_dist_worker() -> Result<(), String> {
    ipg_sim::dist::worker_main(build_worker_router, vm_hwm_kb).map_err(|e| e.to_string())
}

/// Rebuild this worker's router from the shipped netspec. The router
/// choice mirrors `cmd_simulate` exactly — same codec-eligibility rule,
/// same detour wrapper under faults — so per-hop decisions are
/// byte-identical to the in-process run. Codec-eligible fault-free
/// networks never materialize the graph: per-worker memory stays
/// bounded by the shard range, which is what lets `--workers` clear the
/// in-process node cap.
fn build_worker_router(ws: &ipg_sim::dist::WorkerSetup) -> Result<Box<dyn Router>, String> {
    let probe = spec::parse_worker(&ws.netspec, spec::DIST_MAX_NODES, false)?;
    let codec_eligible = probe
        .tuple
        .as_ref()
        .is_some_and(|tn| tn.l <= SHORTEST_ROUTER_MAX_L);
    if codec_eligible && !ws.faulted {
        let tn = probe.tuple.ok_or("codec routing without a tuple form")?;
        return Ok(Box::new(
            ShortestTupleRouter::new(tn).map_err(|e| e.to_string())?,
        ));
    }
    // Fault-aware or table-routed: the graph is needed after all.
    let wn = match probe.graph {
        Some(_) => probe,
        None => spec::parse_worker(&ws.netspec, spec::DIST_MAX_NODES, true)?,
    };
    let g = wn.graph.ok_or("worker could not rebuild the graph")?;
    let base: Box<dyn Router> = if codec_eligible {
        let tn = wn.tuple.ok_or("codec routing without a tuple form")?;
        Box::new(ShortestTupleRouter::new(tn).map_err(|e| e.to_string())?)
    } else {
        Box::new(RoutingTable::new(&g))
    };
    if ws.faulted {
        Ok(Box::new(
            DetourRouter::new(base, g).map_err(|e| e.to_string())?,
        ))
    } else {
        Ok(base)
    }
}

/// Peak resident set size of this process in KiB, from the kernel's
/// `VmHWM` high-water mark. Returns 0 where procfs is unavailable.
fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Write a collected flight-recorder trace as JSON lines and report it.
/// Event and drop counts are computation-derived, so the printed line is
/// byte-identical across `IPG_THREADS` settings.
fn write_trace(trace: Option<Trace>, path: Option<&std::path::Path>) -> Result<(), String> {
    let (Some(trace), Some(p)) = (trace, path) else {
        return Ok(());
    };
    std::fs::write(p, trace.to_jsonl())
        .map_err(|e| format!("cannot write {}: {e}", p.display()))?;
    println!(
        "trace:      {} ({} events, {} dropped)",
        p.display(),
        trace.events.len(),
        trace.dropped
    );
    Ok(())
}

/// `ipg trace summary <t.jsonl>` / `ipg trace chrome <t.jsonl> <out.json>`:
/// post-process a flight-recorder trace written by `simulate --trace`.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    const USAGE: &str =
        "trace needs a subcommand: summary <t.jsonl> [--top <n>] | chrome <t.jsonl> <out.json> [--name <s>]";
    let load = |p: &String| -> Result<Trace, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
        Trace::from_jsonl(&text).map_err(|e| format!("{p}: {e}"))
    };
    match args.first().map(String::as_str) {
        Some("summary") => {
            let mut top: usize = 10;
            let mut positional: Vec<&String> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--top" => {
                        let v = it.next().ok_or("--top needs a count")?;
                        top = v.parse().map_err(|_| format!("bad --top `{v}`"))?;
                    }
                    _ => positional.push(a),
                }
            }
            let path = positional.first().ok_or("trace summary needs a file")?;
            print!("{}", load(path)?.summarize(top).render());
            Ok(())
        }
        Some("chrome") => {
            let mut name = String::from("ipg-trace");
            let mut positional: Vec<&String> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--name" => {
                        name = it.next().ok_or("--name needs a string")?.clone();
                    }
                    _ => positional.push(a),
                }
            }
            let input = positional
                .first()
                .ok_or("trace chrome needs an input file")?;
            let out = positional
                .get(1)
                .ok_or("trace chrome needs an output file")?;
            let json = load(input)?.to_chrome_json(&name);
            std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("chrome trace: {out} (load in ui.perfetto.dev or chrome://tracing)");
            Ok(())
        }
        _ => Err(USAGE.into()),
    }
}
