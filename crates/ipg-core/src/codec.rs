//! Arithmetic node addressing for super-IP graphs: label ↔ dense-id codec.
//!
//! Theorem 3.2 gives every super-IP graph a closed-form size (`M^l` for
//! repeated seeds, `|H|·M^l` for symmetric seeds), which means node
//! identity is *computable*, not something that must be discovered by
//! hashing: a node id is a mixed-radix number over per-block nucleus
//! ranks, plus a block-order rank for symmetric seeds. [`NodeCodec`]
//! implements that bijection both ways in `O(l·m)` with zero heap
//! allocation, and [`NodeCodec::build_directed_csr`] uses it to emit the
//! generated graph's CSR directly — no label vector, no hash interning.
//!
//! The id layout matches [`TupleNetwork`](crate::superip::TupleNetwork)
//! exactly (`id = order_idx·M^l + Σ_j digit_j·M^j`, where `digit_j` is the
//! nucleus node id of block `j`), so codec ids interoperate with
//! [`TupleRouter`](crate::tuple_routing::TupleRouter) and the tuple-level
//! metric machinery without translation.
//!
//! Labels of at most [`PACKED_MAX`] symbols additionally get a packed
//! representation: the whole label lives in one `u128` and every full
//! generator becomes a precomputed byte-shuffle table, so a neighbor is a
//! shuffle + re-rank with no `Vec<u8>` in sight ([`PackedLabel`]).

use crate::builder::IpGraph;
use crate::error::{IpgError, Result};
use crate::graph::Csr;
use crate::label::Label;
use crate::perm::Perm;
use crate::rank;
use crate::superip::{SeedKind, SuperIpSpec};
use crate::util::factorial;

/// Maximum label length for the packed (`u128`) representation.
pub const PACKED_MAX: usize = 16;

/// Maximum number of blocks `l` the codec supports (buffers are
/// stack-allocated at this size; real super-IP specs are far smaller).
pub const MAX_BLOCKS: usize = 32;

/// Sentinel for "arrangement rank is not a nucleus node".
const NONE: u32 = u32::MAX;

/// Largest nucleus arrangement table the codec will materialize
/// (`(Σc)!/Πcᵢ!` entries). Specs beyond this fall back to hash interning.
const MAX_ARRANGEMENTS: u64 = 1 << 22;

/// Largest `l!` color table for symmetric seeds.
const MAX_ORDER_RANKS: u64 = 1 << 20;

/// A whole node label packed into one `u128` (little-endian: byte `i` is
/// the symbol at position `i`). Only valid for labels of at most
/// [`PACKED_MAX`] symbols; unused high bytes are zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PackedLabel(u128);

impl PackedLabel {
    /// Pack a symbol slice; `None` if it exceeds [`PACKED_MAX`] symbols.
    pub fn pack(symbols: &[u8]) -> Option<PackedLabel> {
        if symbols.len() > PACKED_MAX {
            return None;
        }
        let mut bytes = [0u8; PACKED_MAX];
        bytes[..symbols.len()].copy_from_slice(symbols);
        Some(PackedLabel(u128::from_le_bytes(bytes)))
    }

    /// Write the first `out.len()` symbols into `out`.
    pub fn unpack_into(self, out: &mut [u8]) {
        debug_assert!(out.len() <= PACKED_MAX);
        let bytes = self.0.to_le_bytes();
        out.copy_from_slice(&bytes[..out.len()]);
    }

    /// The symbol at position `i`.
    #[inline]
    pub fn get(self, i: usize) -> u8 {
        debug_assert!(i < PACKED_MAX);
        (self.0 >> (8 * i)) as u8
    }

    /// Apply a byte-shuffle table: output byte `i` is input byte
    /// `table[i]`. A position permutation in one-line image form is
    /// exactly such a table, so this *is* generator application.
    #[inline]
    pub fn shuffle(self, table: &[u8; PACKED_MAX]) -> PackedLabel {
        let src = self.0.to_le_bytes();
        let mut out = [0u8; PACKED_MAX];
        for (o, &p) in out.iter_mut().zip(table.iter()) {
            *o = src[p as usize];
        }
        PackedLabel(u128::from_le_bytes(out))
    }
}

/// Label ↔ dense-id codec for one super-IP spec (all four §3 families,
/// repeated and symmetric seeds).
///
/// Construction enumerates the nucleus once (`M` nodes) and precomputes:
/// the arrangement-rank → nucleus-id table, the flat nucleus label and
/// arc tables, the block-order group with a dense generator-transition
/// table (symmetric seeds), and — for labels of ≤ [`PACKED_MAX`] symbols —
/// one byte-shuffle table per full-label generator.
pub struct NodeCodec {
    l: usize,
    m: usize,
    k: usize,
    seed_kind: SeedKind,
    m_nodes: u32,
    /// `pow[j] = M^j` for `j = 0..=l`.
    pow: Vec<u64>,
    node_count: u64,
    /// Multiset-arrangement rank → nucleus node id ([`NONE`] if the
    /// arrangement is not in the nucleus orbit).
    rank_to_id: Vec<u32>,
    /// Flat nucleus labels: `nucleus_syms[id·m..(id+1)·m]`.
    nucleus_syms: Vec<u8>,
    /// Dense nucleus generator successors: `nucleus_arcs[id·d_n + gi]`.
    nucleus_arcs: Vec<u32>,
    d_n: usize,
    block_perms: Vec<Perm>,
    /// Block-order group `H` (identity only for repeated seeds), in the
    /// same closure order as [`SuperIpSpec::block_group`].
    order_group: Vec<Perm>,
    /// Dense transitions: `order_next[oi·supers + si]`.
    order_next: Vec<u32>,
    /// `S_l` permutation rank → order index ([`NONE`] outside `H`);
    /// empty for repeated seeds.
    sl_rank_to_order: Vec<u32>,
    /// Smallest symbol of the nucleus seed (color base, symmetric seeds).
    nucleus_min: u8,
    /// Byte-shuffle tables for the `d_n + supers` full-label generators,
    /// present when `k ≤ PACKED_MAX`.
    shuffles: Vec<[u8; PACKED_MAX]>,
}

impl NodeCodec {
    /// Build a codec for `spec`. Errors when the spec is outside the
    /// arithmetic fast path (oversized arrangement/order tables, id space
    /// beyond `u32`, or an unreachable block) — callers should then fall
    /// back to hash-interned generation.
    pub fn new(spec: &SuperIpSpec) -> Result<NodeCodec> {
        let l = spec.l;
        let m = spec.m();
        let bad = |reason: String| IpgError::InvalidSpec { reason };
        if !(1..=MAX_BLOCKS).contains(&l) {
            return Err(bad(format!(
                "codec supports 1..={MAX_BLOCKS} blocks, got {l}"
            )));
        }
        // Cap the arrangement table *before* generating the nucleus: the
        // nucleus node count is bounded by the arrangement count, so this
        // also bounds generation cost.
        let nucleus_seed = spec.nucleus.spec.seed.symbols();
        let mut counts = [0u32; 256];
        for &s in nucleus_seed {
            counts[s as usize] += 1;
        }
        let arrangements = rank::multiset_count(&counts);
        if arrangements > MAX_ARRANGEMENTS {
            return Err(bad(format!(
                "nucleus arrangement table too large ({arrangements})"
            )));
        }
        let nucleus = spec.nucleus.generate()?;
        let m_nodes = nucleus.node_count();
        let mut rank_to_id = vec![NONE; arrangements as usize];
        let mut nucleus_syms = Vec::with_capacity(m_nodes * m);
        for v in 0..m_nodes as u32 {
            let syms = nucleus.label(v).symbols();
            rank_to_id[rank::multiset_rank(syms) as usize] = v;
            nucleus_syms.extend_from_slice(syms);
        }
        let d_n = nucleus.generator_count();
        let mut nucleus_arcs = Vec::with_capacity(m_nodes * d_n);
        for v in 0..m_nodes as u32 {
            nucleus_arcs.extend_from_slice(nucleus.arcs_of(v));
        }

        // Block-order machinery.
        let block_perms = spec.block_perms();
        let (order_group, sl_rank_to_order) = match spec.seed_kind {
            SeedKind::Repeated => (vec![Perm::identity(l)], Vec::new()),
            SeedKind::DistinctShifted => {
                if !spec.nucleus.spec.seed.has_distinct_symbols() {
                    return Err(bad(
                        "symmetric seeds need a distinct-symbol nucleus seed (§3.5)".into(),
                    ));
                }
                let ranks = factorial(l);
                if ranks > MAX_ORDER_RANKS {
                    return Err(bad(format!("order rank table too large ({l}! = {ranks})")));
                }
                let group = spec.block_group();
                let mut table = vec![NONE; ranks as usize];
                for (i, p) in group.iter().enumerate() {
                    table[perm_rank_of(p) as usize] = i as u32;
                }
                (group, table)
            }
        };
        let mut order_next = vec![0u32; order_group.len() * block_perms.len()];
        if order_group.len() > 1 {
            for (oi, sigma) in order_group.iter().enumerate() {
                for (si, bp) in block_perms.iter().enumerate() {
                    let next = perm_rank_of(&sigma.then(bp));
                    order_next[oi * block_perms.len() + si] = sl_rank_to_order[next as usize];
                }
            }
        }

        let mut pow = Vec::with_capacity(l + 1);
        let mut p = 1u64;
        for _ in 0..=l {
            pow.push(p);
            p = p
                .checked_mul(m_nodes as u64)
                .ok_or_else(|| bad("id space overflows u64".into()))?;
        }
        let node_count = pow[l]
            .checked_mul(order_group.len() as u64)
            .filter(|&n| n <= u32::MAX as u64 + 1)
            .ok_or_else(|| bad("id space exceeds u32".into()))?;
        if !spec.all_blocks_reach_leftmost() {
            return Err(bad(
                "some super-symbol can never reach the leftmost position".into(),
            ));
        }

        // Packed-label shuffle tables (identity-padded to PACKED_MAX).
        let k = l * m;
        let shuffles = if k <= PACKED_MAX {
            spec.to_ip_spec()
                .generators
                .iter()
                .map(|g| {
                    let mut t = [0u8; PACKED_MAX];
                    for (i, slot) in t.iter_mut().enumerate() {
                        *slot = g.perm.image().get(i).map_or(i as u8, |&p| p as u8);
                    }
                    t
                })
                .collect()
        } else {
            Vec::new()
        };

        Ok(NodeCodec {
            l,
            m,
            k,
            seed_kind: spec.seed_kind,
            m_nodes: m_nodes as u32,
            pow,
            node_count,
            rank_to_id,
            nucleus_syms,
            nucleus_arcs,
            d_n,
            block_perms,
            order_group,
            order_next,
            sl_rank_to_order,
            nucleus_min: nucleus_seed.iter().copied().min().unwrap_or(0),
            shuffles,
        })
    }

    /// Total node count `|H|·M^l` (Theorem 3.2 / §3.5).
    pub fn node_count(&self) -> usize {
        self.node_count as usize
    }

    /// Label length `l·m`.
    pub fn label_len(&self) -> usize {
        self.k
    }

    /// Number of generators (`d_N` nucleus + super), i.e. out-arcs per node.
    pub fn generator_count(&self) -> usize {
        self.d_n + self.block_perms.len()
    }

    /// True when labels fit the packed `u128` representation.
    pub fn supports_packed(&self) -> bool {
        !self.shuffles.is_empty()
    }

    /// Nucleus node id and color of one block, or `None` if the block is
    /// not (a shifted copy of) a nucleus-orbit label.
    fn block_digit(&self, block: &[u8]) -> Option<(u32, u8)> {
        let (shift, color) = match self.seed_kind {
            SeedKind::Repeated => (0u8, 0u8),
            SeedKind::DistinctShifted => {
                let blk_min = block.iter().copied().min()?;
                let c = (blk_min.checked_sub(self.nucleus_min)? as usize) / self.m;
                if c >= self.l {
                    return None;
                }
                ((c * self.m) as u8, c as u8)
            }
        };
        let mut buf = [0u8; 256];
        let shifted = &mut buf[..self.m];
        for (o, &s) in shifted.iter_mut().zip(block.iter()) {
            *o = s.checked_sub(shift)?;
        }
        // The multiset must match the nucleus seed's, otherwise the rank
        // below is an index into a different arrangement family.
        let mut counts = [0u32; 256];
        for &s in shifted.iter() {
            counts[s as usize] += 1;
        }
        for &s in shifted.iter() {
            let mut want = 0u32;
            for &t in &self.nucleus_syms[..self.m] {
                want += (t == s) as u32;
            }
            if counts[s as usize] != want {
                return None;
            }
        }
        let r = rank::multiset_rank(shifted) as usize;
        match self.rank_to_id.get(r) {
            Some(&id) if id != NONE => Some((id, color)),
            _ => None,
        }
    }

    /// Dense id of the node labelled `symbols`, or `None` if the label is
    /// not a node of this super-IP graph. `O(l·m)`-ish, allocation-free.
    pub fn encode(&self, symbols: &[u8]) -> Option<u32> {
        if symbols.len() != self.k {
            return None;
        }
        let mut id = 0u64;
        let mut colors = [0u8; MAX_BLOCKS];
        for j in 0..self.l {
            let (digit, color) = self.block_digit(&symbols[j * self.m..(j + 1) * self.m])?;
            colors[j] = color;
            id += digit as u64 * self.pow[j];
        }
        let order_idx = match self.seed_kind {
            SeedKind::Repeated => 0u64,
            SeedKind::DistinctShifted => {
                // colors must form a permutation of 0..l inside H
                let mut seen = 0u32;
                for &c in &colors[..self.l] {
                    let bit = 1u32 << c;
                    if seen & bit != 0 {
                        return None;
                    }
                    seen |= bit;
                }
                let r = rank::multiset_rank(&colors[..self.l]) as usize;
                match self.sl_rank_to_order.get(r) {
                    Some(&oi) if oi != NONE => oi as u64,
                    _ => return None,
                }
            }
        };
        Some((id + order_idx * self.pow[self.l]) as u32)
    }

    /// [`NodeCodec::encode`] over a packed label.
    pub fn encode_packed(&self, packed: PackedLabel) -> Option<u32> {
        debug_assert!(self.supports_packed());
        let mut buf = [0u8; PACKED_MAX];
        packed.unpack_into(&mut buf[..self.k]);
        self.encode(&buf[..self.k])
    }

    /// Write the label of node `id` into `out` (length must be `l·m`).
    /// Inverse of [`NodeCodec::encode`]; allocation-free.
    pub fn decode_into(&self, id: u32, out: &mut [u8]) {
        debug_assert!((id as u64) < self.node_count);
        debug_assert_eq!(out.len(), self.k);
        let mut rest = id as u64;
        let oi = (rest / self.pow[self.l]) as usize;
        rest %= self.pow[self.l];
        let sigma = &self.order_group[oi];
        for j in 0..self.l {
            let digit = (rest % self.m_nodes as u64) as usize;
            rest /= self.m_nodes as u64;
            let shift = match self.seed_kind {
                SeedKind::Repeated => 0u8,
                SeedKind::DistinctShifted => (sigma.image()[j] as usize * self.m) as u8,
            };
            let src = &self.nucleus_syms[digit * self.m..(digit + 1) * self.m];
            for (o, &s) in out[j * self.m..(j + 1) * self.m].iter_mut().zip(src) {
                *o = s + shift;
            }
        }
    }

    /// The label of node `id` (allocating convenience wrapper).
    pub fn decode(&self, id: u32) -> Label {
        let mut out = vec![0u8; self.k];
        self.decode_into(id, &mut out);
        Label::from(out)
    }

    /// Packed label of node `id` (requires [`NodeCodec::supports_packed`]).
    pub fn decode_packed(&self, id: u32) -> PackedLabel {
        let mut buf = [0u8; PACKED_MAX];
        self.decode_into(id, &mut buf[..self.k]);
        // ipg-analyze: allow(PANIC001) reason="supports_packed precondition: k <= PACKED_MAX"
        PackedLabel::pack(&buf[..self.k]).expect("k <= PACKED_MAX")
    }

    /// Apply full-label generator `gi` (nucleus generators first, then
    /// supers — the [`SuperIpSpec::to_ip_spec`] order) to a packed label:
    /// one byte shuffle, no allocation.
    #[inline]
    pub fn apply_packed(&self, packed: PackedLabel, gi: usize) -> PackedLabel {
        packed.shuffle(&self.shuffles[gi])
    }

    /// All `d_N + supers` generator successors of `id`, in generator
    /// order, self-arcs included — the arithmetic equivalent of
    /// [`IpGraph::arcs_of`]. Pure mixed-radix arithmetic: nucleus moves
    /// replace digit 0 via the nucleus arc table, super moves permute
    /// digits and step the order component through a dense table.
    pub fn arcs_into(&self, id: u32, out: &mut Vec<u32>) {
        let mut digits = [0u32; MAX_BLOCKS];
        let mut rest = id as u64;
        let oi = (rest / self.pow[self.l]) as usize;
        rest %= self.pow[self.l];
        for d in digits[..self.l].iter_mut() {
            *d = (rest % self.m_nodes as u64) as u32;
            rest /= self.m_nodes as u64;
        }
        // nucleus generators: digit 0 has weight M^0 = 1
        let base = id - digits[0];
        for gi in 0..self.d_n {
            out.push(base + self.nucleus_arcs[digits[0] as usize * self.d_n + gi]);
        }
        // super generators: permute digits, advance the order component
        let supers = self.block_perms.len();
        for (si, bp) in self.block_perms.iter().enumerate() {
            let mut sum = 0u64;
            for (j, &p) in bp.image().iter().enumerate() {
                sum += digits[p as usize] as u64 * self.pow[j];
            }
            let oi2 = self.order_next[oi * supers + si] as u64;
            out.push((oi2 * self.pow[self.l] + sum) as u32);
        }
    }

    /// Generator successor of `id` computed the packed way — shuffle the
    /// label, re-rank. Slower than [`NodeCodec::arcs_into`] (which never
    /// touches symbols) but exercises the label-level path; used for
    /// cross-checking and for callers that already hold packed labels.
    pub fn packed_neighbor(&self, id: u32, gi: usize) -> u32 {
        let next = self.apply_packed(self.decode_packed(id), gi);
        self.encode_packed(next)
            // ipg-analyze: allow(PANIC001) reason="Cayley closure: a generator image of a node is a node"
            .expect("generator image of a node is a node")
    }

    /// Emit the directed simple CSR of the whole graph (self-arcs
    /// dropped, parallel arcs deduplicated — same view as
    /// [`IpGraph::to_directed_csr`]) in codec-id numbering, without ever
    /// materializing a label or touching a hash map. Rows are computed
    /// per id, so parallel chunking by id range is deterministic for any
    /// `IPG_THREADS` value.
    pub fn build_directed_csr(&self) -> Csr {
        Csr::from_fn_par(self.node_count(), |id, out| self.arcs_into(id, out))
    }

    /// The symmetrized (physical-network) view of
    /// [`NodeCodec::build_directed_csr`].
    pub fn build_undirected_csr(&self) -> Csr {
        self.build_directed_csr().symmetrized()
    }

    /// Codec id of every node of a hash-interned [`IpGraph`], indexed by
    /// BFS node id — the bridge used to cross-check the two builders
    /// (`ip.to_directed_csr().relabeled(&map) == codec.build_directed_csr()`).
    pub fn renumbering(&self, ip: &IpGraph) -> Result<Vec<u32>> {
        if ip.node_count() != self.node_count() {
            return Err(IpgError::InvalidSpec {
                reason: format!(
                    "node counts differ: interned={} codec={}",
                    ip.node_count(),
                    self.node_count()
                ),
            });
        }
        (0..ip.node_count() as u32)
            .map(|v| {
                self.encode(ip.label(v).symbols())
                    .ok_or_else(|| IpgError::UnknownLabel {
                        label: ip.label(v).to_string(),
                    })
            })
            .collect()
    }
}

/// Lexicographic rank of a block permutation among all of `S_l` (images
/// are distinct, so the multiset rank is the factoradic rank).
fn perm_rank_of(p: &Perm) -> u64 {
    let mut buf = [0u8; MAX_BLOCKS];
    for (o, &v) in buf.iter_mut().zip(p.image().iter()) {
        *o = v as u8;
    }
    rank::multiset_rank(&buf[..p.len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::superip::{explicit_isomorphism, NucleusSpec, TupleNetwork};

    fn specs() -> Vec<SuperIpSpec> {
        vec![
            SuperIpSpec::hsn(2, NucleusSpec::hypercube(2)),
            SuperIpSpec::hsn(3, NucleusSpec::hypercube(1)),
            SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(1)),
            SuperIpSpec::complete_cn(4, NucleusSpec::hypercube(1)),
            SuperIpSpec::superflip(3, NucleusSpec::hypercube(1)),
            SuperIpSpec::hsn(2, NucleusSpec::complete(4)),
            SuperIpSpec::ring_cn(2, NucleusSpec::ring(4)),
            SuperIpSpec::hsn(2, NucleusSpec::hypercube(1)).symmetric(),
            SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(1)).symmetric(),
            SuperIpSpec::superflip(3, NucleusSpec::hypercube(1)).symmetric(),
        ]
    }

    #[test]
    fn roundtrip_all_ids() {
        for spec in specs() {
            let codec = NodeCodec::new(&spec).unwrap();
            assert_eq!(
                codec.node_count() as u64,
                spec.expected_size().unwrap(),
                "{}",
                spec.name
            );
            let mut buf = vec![0u8; codec.label_len()];
            for id in 0..codec.node_count() as u32 {
                codec.decode_into(id, &mut buf);
                assert_eq!(codec.encode(&buf), Some(id), "{}: id {id}", spec.name);
            }
        }
    }

    #[test]
    fn ids_match_tuple_network() {
        for spec in specs() {
            let codec = NodeCodec::new(&spec).unwrap();
            let ip = spec.to_ip_spec().generate().unwrap();
            let tn = TupleNetwork::from_spec(&spec).unwrap();
            let iso = explicit_isomorphism(&spec, &ip, &tn).unwrap();
            for v in 0..ip.node_count() as u32 {
                assert_eq!(
                    codec.encode(ip.label(v).symbols()),
                    Some(iso[v as usize]),
                    "{}: node {v}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn csr_identical_to_interned_builder() {
        for spec in specs() {
            let codec = NodeCodec::new(&spec).unwrap();
            let ip = spec.to_ip_spec().generate().unwrap();
            let map = codec.renumbering(&ip).unwrap();
            assert_eq!(
                ip.to_directed_csr().relabeled(&map),
                codec.build_directed_csr(),
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn packed_neighbors_agree_with_arithmetic() {
        for spec in specs() {
            let codec = NodeCodec::new(&spec).unwrap();
            if !codec.supports_packed() {
                continue;
            }
            let mut arcs = Vec::new();
            for id in 0..codec.node_count() as u32 {
                arcs.clear();
                codec.arcs_into(id, &mut arcs);
                for (gi, &w) in arcs.iter().enumerate() {
                    assert_eq!(
                        codec.packed_neighbor(id, gi),
                        w,
                        "{}: id {id} gen {gi}",
                        spec.name
                    );
                }
            }
        }
    }

    #[test]
    fn packed_shuffle_matches_perm_apply() {
        let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2));
        let codec = NodeCodec::new(&spec).unwrap();
        let gens = spec.to_ip_spec().generators;
        let label = Label::parse("3434 4343").unwrap();
        let packed = PackedLabel::pack(label.symbols()).unwrap();
        for (gi, g) in gens.iter().enumerate() {
            let want = g.perm.apply(label.symbols());
            let got = codec.apply_packed(packed, gi);
            let mut out = vec![0u8; label.len()];
            got.unpack_into(&mut out);
            assert_eq!(out, want, "generator {gi}");
        }
    }

    #[test]
    fn foreign_labels_rejected() {
        let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2));
        let codec = NodeCodec::new(&spec).unwrap();
        // wrong length
        assert_eq!(codec.encode(&[1, 2, 3]), None);
        // right multiset per block, but `1324` is outside the Q2 orbit
        // (only pair swaps (1,2) and (3,4) are generators)
        assert_eq!(
            codec.encode(Label::parse("1324 1234").unwrap().symbols()),
            None
        );
        // wrong multiset per block
        assert_eq!(
            codec.encode(Label::parse("3344 3344").unwrap().symbols()),
            None
        );
        // wrong alphabet entirely
        assert_eq!(codec.encode(&[9u8; 8]), None);
    }

    #[test]
    fn symmetric_foreign_colors_rejected() {
        let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(1)).symmetric();
        let codec = NodeCodec::new(&spec).unwrap();
        // duplicate colors: both blocks from color-0 range
        assert_eq!(codec.encode(&[1, 2, 1, 2]), None);
        assert_eq!(codec.node_count(), 8); // 2!·2²
    }

    #[test]
    fn oversized_specs_error_cleanly() {
        // star-9 nucleus: 9! = 362880 arrangements is fine, but star-11
        // would need an 11!-entry table — over the cap.
        let spec = SuperIpSpec::hsn(2, NucleusSpec::star(11));
        assert!(NodeCodec::new(&spec).is_err());
    }
}
