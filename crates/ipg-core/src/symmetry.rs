//! Symmetry and isomorphism checks.
//!
//! Used to validate the paper's structural claims: symmetric super-IP graphs
//! are vertex-symmetric and regular (§3.5), plain super-IP graphs generally
//! are not, and the IP-generated graphs agree with their direct
//! constructions (e.g. HSN(2, Q_n) ≡ HCN(n,n) without diameter links).

use crate::algo;
use crate::graph::Csr;
use crate::util::FxHashMap;

/// Iterated 1-dimensional Weisfeiler–Leman color refinement. Returns a
/// stable coloring; nodes with different colors lie in different
/// automorphism orbits (the converse does not hold).
pub fn wl_colors(g: &Csr) -> Vec<u32> {
    let n = g.node_count();
    let mut colors: Vec<u32> = (0..n as u32).map(|u| g.degree(u) as u32).collect();
    // normalize
    let mut classes = renumber(&mut colors);
    loop {
        let mut sigs: Vec<(u32, Vec<u32>)> = (0..n as u32)
            .map(|u| {
                let mut nb: Vec<u32> = g.neighbors(u).iter().map(|&v| colors[v as usize]).collect();
                nb.sort_unstable();
                (colors[u as usize], nb)
            })
            .collect();
        let mut index: FxHashMap<(u32, Vec<u32>), u32> = FxHashMap::default();
        let mut next: Vec<u32> = Vec::with_capacity(n);
        for sig in sigs.drain(..) {
            let len = index.len() as u32;
            let c = *index.entry(sig).or_insert(len);
            next.push(c);
        }
        let new_classes = index.len();
        colors = next;
        if new_classes == classes {
            return colors;
        }
        classes = new_classes;
    }
}

fn renumber(colors: &mut [u32]) -> usize {
    let mut index: FxHashMap<u32, u32> = FxHashMap::default();
    for c in colors.iter_mut() {
        let len = index.len() as u32;
        *c = *index.entry(*c).or_insert(len);
    }
    index.len()
}

/// Result of a vertex-transitivity test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transitivity {
    /// Proven vertex-transitive (automorphisms found mapping node 0 to
    /// every node).
    Yes,
    /// Proven not vertex-transitive (an invariant separates two nodes).
    No,
    /// Search budget exhausted before a proof either way.
    Unknown,
}

/// Decide vertex-transitivity. Fast refutations first (degree, WL colors,
/// distance histograms); then, within `budget` backtracking steps per node,
/// an explicit automorphism search mapping node 0 to every other node.
pub fn vertex_transitivity(g: &Csr, budget: usize) -> Transitivity {
    let n = g.node_count();
    if n <= 1 {
        return Transitivity::Yes;
    }
    if !g.is_regular() {
        return Transitivity::No;
    }
    let wl = wl_colors(g);
    if wl.iter().any(|&c| c != wl[0]) {
        return Transitivity::No;
    }
    // distance-histogram invariant
    let h0 = algo::distance_histogram(g, 0);
    for v in 1..n as u32 {
        if algo::distance_histogram(g, v) != h0 {
            return Transitivity::No;
        }
    }
    // explicit search: find an automorphism sending 0 to v for every v
    for v in 1..n as u32 {
        match find_isomorphism_seeded(g, g, 0, v, budget) {
            Some(true) => {}
            Some(false) => return Transitivity::No,
            None => return Transitivity::Unknown,
        }
    }
    Transitivity::Yes
}

/// Are `a` and `b` isomorphic? `budget` bounds backtracking steps.
///
/// - `None` — budget exhausted, inconclusive;
/// - `Some(None)` — proven non-isomorphic;
/// - `Some(Some(map))` — isomorphic, with `map[u]` the image of `u`.
pub fn are_isomorphic(a: &Csr, b: &Csr, budget: usize) -> Option<Option<Vec<u32>>> {
    if a.node_count() != b.node_count() || a.arc_count() != b.arc_count() {
        return Some(None);
    }
    let n = a.node_count();
    if n == 0 {
        return Some(Some(vec![]));
    }
    let mut wa = wl_colors(a);
    let mut wb = wl_colors(b);
    // compare color class sizes (canonical by sorted histogram)
    let ca = renumber(&mut wa);
    let cb = renumber(&mut wb);
    if ca != cb {
        return Some(None);
    }
    let mut search = IsoSearch {
        a,
        b,
        map: vec![u32::MAX; n],
        used: vec![false; n],
        steps: 0,
        budget,
    };
    match search.extend(0) {
        SearchOutcome::Found => Some(Some(search.map)),
        SearchOutcome::Exhausted => Some(None),
        SearchOutcome::Budget => None,
    }
}

/// Inner helper: does an isomorphism `a -> b` with `src -> dst` exist?
/// `Some(true)`/`Some(false)` are proofs; `None` = budget exhausted.
fn find_isomorphism_seeded(a: &Csr, b: &Csr, src: u32, dst: u32, budget: usize) -> Option<bool> {
    let n = a.node_count();
    let mut search = IsoSearch {
        a,
        b,
        map: vec![u32::MAX; n],
        used: vec![false; n],
        steps: 0,
        budget,
    };
    search.map[src as usize] = dst;
    search.used[dst as usize] = true;
    match search.extend(0) {
        SearchOutcome::Found => Some(true),
        SearchOutcome::Exhausted => Some(false),
        SearchOutcome::Budget => None,
    }
}

enum SearchOutcome {
    Found,
    Exhausted,
    Budget,
}

struct IsoSearch<'g> {
    a: &'g Csr,
    b: &'g Csr,
    map: Vec<u32>,
    used: Vec<bool>,
    steps: usize,
    budget: usize,
}

impl IsoSearch<'_> {
    /// Standard VF2-style extension in node order with adjacency
    /// consistency checks against all previously mapped nodes.
    fn extend(&mut self, from: usize) -> SearchOutcome {
        let n = self.a.node_count();
        // find next unmapped node
        let mut u = from;
        while u < n && self.map[u] != u32::MAX {
            u += 1;
        }
        if u == n {
            return SearchOutcome::Found;
        }
        for cand in 0..n as u32 {
            if self.used[cand as usize] {
                continue;
            }
            self.steps += 1;
            if self.steps > self.budget {
                return SearchOutcome::Budget;
            }
            if self.a.degree(u as u32) != self.b.degree(cand) {
                continue;
            }
            // consistency with already-mapped nodes
            let ok = self.a.neighbors(u as u32).iter().all(|&w| {
                let mw = self.map[w as usize];
                mw == u32::MAX || self.b.has_arc(cand, mw)
            }) && (0..n).all(|w| {
                let mw = self.map[w];
                mw == u32::MAX || (self.a.has_arc(w as u32, u as u32) == self.b.has_arc(mw, cand))
            });
            if !ok {
                continue;
            }
            self.map[u] = cand;
            self.used[cand as usize] = true;
            match self.extend(u + 1) {
                SearchOutcome::Found => return SearchOutcome::Found,
                SearchOutcome::Budget => return SearchOutcome::Budget,
                SearchOutcome::Exhausted => {}
            }
            self.map[u] = u32::MAX;
            self.used[cand as usize] = false;
        }
        SearchOutcome::Exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Csr {
        Csr::from_fn(n, |u, out| {
            out.push((u + 1) % n as u32);
            out.push((u + n as u32 - 1) % n as u32);
        })
    }

    #[test]
    fn cycle_is_vertex_transitive() {
        assert_eq!(vertex_transitivity(&cycle(8), 100_000), Transitivity::Yes);
    }

    #[test]
    fn path_is_not_vertex_transitive() {
        let g = Csr::from_edges(4, [(0, 1), (1, 2), (2, 3)], true);
        assert_eq!(vertex_transitivity(&g, 100_000), Transitivity::No);
    }

    #[test]
    fn wl_separates_endpoints() {
        let g = Csr::from_edges(4, [(0, 1), (1, 2), (2, 3)], true);
        let c = wl_colors(&g);
        assert_eq!(c[0], c[3]);
        assert_eq!(c[1], c[2]);
        assert_ne!(c[0], c[1]);
    }

    #[test]
    fn isomorphic_cycles() {
        let a = cycle(7);
        // relabeled cycle
        let b = Csr::from_fn(7, |u, out| {
            let p = |x: u32| (3 * x + 2) % 7;
            let inv = |y: u32| (0..7).find(|&x| p(x) == y).unwrap();
            let x = inv(u);
            out.push(p((x + 1) % 7));
            out.push(p((x + 6) % 7));
        });
        let res = are_isomorphic(&a, &b, 1_000_000).unwrap().unwrap();
        // verify the witness
        for u in 0..7u32 {
            for &v in a.neighbors(u) {
                assert!(b.has_arc(res[u as usize], res[v as usize]));
            }
        }
    }

    #[test]
    fn non_isomorphic_same_degree() {
        // C6 vs two triangles: 3-regular? both 2-regular, 6 nodes, 6 edges.
        let a = cycle(6);
        let b = Csr::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)], true);
        assert_eq!(are_isomorphic(&a, &b, 1_000_000), Some(None));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let a = cycle(12);
        let b = cycle(12);
        assert_eq!(are_isomorphic(&a, &b, 1), None);
    }

    #[test]
    fn petersen_is_vertex_transitive() {
        // Kneser graph K(5,2)
        let pairs: Vec<(u8, u8)> = (0..5u8)
            .flat_map(|i| (i + 1..5).map(move |j| (i, j)))
            .collect();
        let g = Csr::from_fn(10, |u, out| {
            let (a, b) = pairs[u as usize];
            for (v, &(c, d)) in pairs.iter().enumerate() {
                if a != c && a != d && b != c && b != d {
                    out.push(v as u32);
                }
            }
        });
        assert_eq!(vertex_transitivity(&g, 1_000_000), Transitivity::Yes);
    }
}
