//! Multiset labels: sequences of possibly repeated symbols.
//!
//! This is the core relaxation that turns the Cayley-graph model into the IP
//! graph model (paper §2): *"there may be several identical symbols in the
//! label of a node"*. Symbols are small integers (`u8`), displayed either as
//! digits/letters or as space-separated groups when a super-symbol width is
//! known.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node label: a boxed sequence of symbols.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Label(Box<[u8]>);

impl Label {
    /// Build a label from raw symbols.
    pub fn new(symbols: impl Into<Box<[u8]>>) -> Self {
        Label(symbols.into())
    }

    /// Parse a label from a compact string such as `"3434"`, where digits
    /// `0-9` map to symbols 0–9 and letters `a-z`/`A-Z` map to 10–35.
    /// Whitespace is ignored (the paper inserts spaces between
    /// super-symbols purely for readability).
    pub fn parse(s: &str) -> Option<Self> {
        let mut out = Vec::with_capacity(s.len());
        for c in s.chars() {
            if c.is_whitespace() {
                continue;
            }
            let v = match c {
                '0'..='9' => c as u8 - b'0',
                'a'..='z' => c as u8 - b'a' + 10,
                'A'..='Z' => c as u8 - b'A' + 10,
                _ => return None,
            };
            out.push(v);
        }
        Some(Label(out.into_boxed_slice()))
    }

    /// The identity-style label `1 2 3 … k` (symbols `1..=k`), the seed used
    /// for Cayley graphs such as the star graph.
    pub fn distinct(k: usize) -> Self {
        assert!(k <= u8::MAX as usize, "label alphabet limited to u8");
        Label((1..=k as u8).collect())
    }

    /// Concatenate `copies` copies of `block` (the repeated-seed construction
    /// of super-IP graphs, §3.1).
    pub fn repeat_block(block: &[u8], copies: usize) -> Self {
        let mut out = Vec::with_capacity(block.len() * copies);
        for _ in 0..copies {
            out.extend_from_slice(block);
        }
        Label(out.into_boxed_slice())
    }

    /// Number of symbols.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty label.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Symbol slice.
    #[inline]
    pub fn symbols(&self) -> &[u8] {
        &self.0
    }

    /// The `i`-th width-`m` group of symbols (super-symbol, §3.1).
    pub fn block(&self, i: usize, m: usize) -> &[u8] {
        &self.0[i * m..(i + 1) * m]
    }

    /// Sorted copy of the symbols — the *multiset signature*. Two labels in
    /// the same IP graph always share this signature (generators only
    /// rearrange symbols), which is a useful invariant for tests.
    pub fn multiset_signature(&self) -> Vec<u8> {
        let mut v = self.0.to_vec();
        v.sort_unstable();
        v
    }

    /// Does the label consist of pairwise-distinct symbols? (If so, the IP
    /// graph generated from it is a Cayley graph, §3.5.)
    pub fn has_distinct_symbols(&self) -> bool {
        let mut seen = [false; 256];
        for &s in self.0.iter() {
            if seen[s as usize] {
                return false;
            }
            seen[s as usize] = true;
        }
        true
    }

    /// Render with a space between every `m` symbols, like the paper's
    /// `3434 3434` notation.
    pub fn display_grouped(&self, m: usize) -> String {
        let mut out = String::with_capacity(self.0.len() + self.0.len() / m.max(1));
        for (i, &s) in self.0.iter().enumerate() {
            if i > 0 && m > 0 && i % m == 0 {
                out.push(' ');
            }
            out.push(symbol_char(s));
        }
        out
    }
}

fn symbol_char(s: u8) -> char {
    match s {
        0..=9 => (b'0' + s) as char,
        10..=35 => (b'a' + s - 10) as char,
        _ => '?',
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &s in self.0.iter() {
            write!(f, "{}", symbol_char(s))?;
        }
        Ok(())
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({self})")
    }
}

/// Lets hash maps keyed by `Label` be probed with a bare `&[u8]`, so the
/// generation hot loop never allocates a `Label` just to test membership.
impl std::borrow::Borrow<[u8]> for Label {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Label {
    fn from(v: Vec<u8>) -> Self {
        Label(v.into_boxed_slice())
    }
}

impl From<&[u8]> for Label {
    fn from(v: &[u8]) -> Self {
        Label(v.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let l = Label::parse("3434 3434").unwrap();
        assert_eq!(l.symbols(), &[3, 4, 3, 4, 3, 4, 3, 4]);
        assert_eq!(l.to_string(), "34343434");
        assert_eq!(l.display_grouped(4), "3434 3434");
    }

    #[test]
    fn parse_letters() {
        let l = Label::parse("ab01").unwrap();
        assert_eq!(l.symbols(), &[10, 11, 0, 1]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Label::parse("12#4").is_none());
    }

    #[test]
    fn distinct_seed() {
        let l = Label::distinct(6);
        assert_eq!(l.to_string(), "123456");
        assert!(l.has_distinct_symbols());
    }

    #[test]
    fn repeated_seed_is_not_distinct() {
        let l = Label::repeat_block(&[3, 4], 3);
        assert_eq!(l.to_string(), "343434");
        assert!(!l.has_distinct_symbols());
    }

    #[test]
    fn blocks() {
        let l = Label::parse("12345678").unwrap();
        assert_eq!(l.block(1, 4), &[5, 6, 7, 8]);
        assert_eq!(l.block(3, 2), &[7, 8]);
    }

    #[test]
    fn multiset_signature_is_sorted() {
        let l = Label::parse("4343").unwrap();
        assert_eq!(l.multiset_signature(), vec![3, 3, 4, 4]);
    }
}
