//! Graph algorithms: BFS, eccentricities, diameter, average distance,
//! 0/1-weighted BFS (for inter-cluster metrics), and connectivity.
//!
//! All-pairs sweeps (diameter, average distance) are embarrassingly parallel
//! over sources and run on rayon. Distances are `u32`, with `UNREACHABLE`
//! marking disconnected pairs.

use crate::graph::Csr;
use rayon::prelude::*;
use std::collections::VecDeque;

/// Distance value for unreachable pairs.
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `src` over out-arcs.
pub fn bfs(g: &Csr, src: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS with parent tracking; returns (distances, parents). `parents[src]`
/// is `src` itself; unreachable nodes have parent `UNREACHABLE`.
pub fn bfs_parents(g: &Csr, src: u32) -> (Vec<u32>, Vec<u32>) {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut parent = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    parent[src as usize] = src;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                parent[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    (dist, parent)
}

/// Shortest path from `src` to `dst` as a node sequence (inclusive), or
/// `None` if unreachable.
pub fn shortest_path(g: &Csr, src: u32, dst: u32) -> Option<Vec<u32>> {
    let (dist, parent) = bfs_parents(g, src);
    if dist[dst as usize] == UNREACHABLE {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parent[cur as usize];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Eccentricity of `src` (max finite BFS distance); `UNREACHABLE` if any
/// node is unreachable.
pub fn eccentricity(g: &Csr, src: u32) -> u32 {
    bfs(g, src).into_iter().max().unwrap_or(0)
}

/// Exact diameter by all-sources parallel BFS. Returns `UNREACHABLE` for
/// disconnected graphs.
///
/// Parallel-reduction audit: `max` over `u32` — order-independent (ties
/// between equal eccentricities carry no payload).
pub fn diameter(g: &Csr) -> u32 {
    (0..g.node_count() as u32)
        .into_par_iter()
        .map(|s| eccentricity(g, s))
        .max()
        .unwrap_or(0)
}

/// Diameter estimated from a subset of sources (exact if the graph is
/// vertex-transitive and `sources` is non-empty, since then all
/// eccentricities are equal).
pub fn diameter_from_sources(g: &Csr, sources: &[u32]) -> u32 {
    sources
        .par_iter()
        .map(|&s| eccentricity(g, s))
        .max()
        .unwrap_or(0)
}

/// Sum of distances and finite-pair count from one source.
fn distance_sum(g: &Csr, src: u32) -> (u64, u64) {
    let d = bfs(g, src);
    let mut sum = 0u64;
    let mut cnt = 0u64;
    for (v, &dv) in d.iter().enumerate() {
        if dv != UNREACHABLE && v as u32 != src {
            sum += dv as u64;
            cnt += 1;
        }
    }
    (sum, cnt)
}

/// Average distance over all ordered pairs of distinct, mutually reachable
/// nodes (all-sources parallel BFS).
///
/// Parallel-reduction audit: the reduce is over `u64` sums — associative
/// and commutative, so any chunking gives the exact sequential value; the
/// single float division happens after the reduction.
pub fn average_distance(g: &Csr) -> f64 {
    let (sum, cnt) = (0..g.node_count() as u32)
        .into_par_iter()
        .map(|s| distance_sum(g, s))
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    if cnt == 0 {
        0.0
    } else {
        sum as f64 / cnt as f64
    }
}

/// Average distance estimated from the given sources only.
pub fn average_distance_from_sources(g: &Csr, sources: &[u32]) -> f64 {
    let (sum, cnt) = sources
        .par_iter()
        .map(|&s| distance_sum(g, s))
        // Parallel-reduction audit: `(u64 sum, u64 count)` — associative
        // and commutative, exact for any chunking (same argument as
        // `average_distance` above).
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    if cnt == 0 {
        0.0
    } else {
        sum as f64 / cnt as f64
    }
}

/// Distance histogram from one source: `hist[d]` = number of nodes at
/// distance `d` (unreachable nodes excluded).
pub fn distance_histogram(g: &Csr, src: u32) -> Vec<u64> {
    let d = bfs(g, src);
    let max = d
        .iter()
        .copied()
        .filter(|&x| x != UNREACHABLE)
        .max()
        .unwrap_or(0);
    let mut hist = vec![0u64; max as usize + 1];
    for &dv in &d {
        if dv != UNREACHABLE {
            hist[dv as usize] += 1;
        }
    }
    hist
}

/// 0/1-weighted BFS: arcs for which `heavy(u, v)` is true cost 1, others
/// cost 0. Used for exact inter-cluster distances (off-module hops cost 1,
/// on-module hops are free — paper §5.2).
pub fn bfs_01(g: &Csr, src: u32, mut heavy: impl FnMut(u32, u32) -> bool) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut deque = VecDeque::new();
    dist[src as usize] = 0;
    deque.push_back(src);
    while let Some(u) = deque.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            let w = if heavy(u, v) { 1 } else { 0 };
            let nd = du + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                if w == 0 {
                    deque.push_front(v);
                } else {
                    deque.push_back(v);
                }
            }
        }
    }
    dist
}

/// Is the graph (weakly) connected? Checks reachability in the symmetrized
/// graph.
pub fn is_connected(g: &Csr) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    let sym = if g.is_symmetric() {
        g.clone()
    } else {
        g.symmetrized()
    };
    bfs(&sym, 0).iter().all(|&d| d != UNREACHABLE)
}

/// Is the directed graph strongly connected? (Every node reachable from 0
/// and 0 reachable from every node.)
pub fn is_strongly_connected(g: &Csr) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    bfs(g, 0).iter().all(|&d| d != UNREACHABLE)
        && bfs(&g.reversed(), 0).iter().all(|&d| d != UNREACHABLE)
}

/// Girth (length of the shortest cycle) of an undirected simple graph, or
/// `None` for forests. O(n·m); fine for the validation sizes we use it at.
pub fn girth(g: &Csr) -> Option<u32> {
    let n = g.node_count();
    let mut best: u32 = UNREACHABLE;
    for src in 0..n as u32 {
        // BFS that detects the shortest cycle through src.
        let mut dist = vec![UNREACHABLE; n];
        let mut parent = vec![UNREACHABLE; n];
        let mut queue = VecDeque::new();
        dist[src as usize] = 0;
        parent[src as usize] = src;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            if dist[u as usize] * 2 >= best {
                break;
            }
            for &v in g.neighbors(u) {
                if dist[v as usize] == UNREACHABLE {
                    dist[v as usize] = dist[u as usize] + 1;
                    parent[v as usize] = u;
                    queue.push_back(v);
                } else if parent[u as usize] != v {
                    best = best.min(dist[u as usize] + dist[v as usize] + 1);
                }
            }
        }
    }
    (best != UNREACHABLE).then_some(best)
}

/// A cheap structural fingerprint: (n, arcs, min/max degree, diameter,
/// distance histogram from node 0, girth). Equal fingerprints do not prove
/// isomorphism but are a strong necessary condition used to cross-validate
/// direct constructions against IP-generated graphs at sizes where exact
/// isomorphism search is too slow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// Node count.
    pub nodes: usize,
    /// Arc count.
    pub arcs: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Exact diameter.
    pub diameter: u32,
    /// Sorted multiset of all-node distance histograms (vertex-invariant).
    pub sorted_histograms: Vec<Vec<u64>>,
    /// Girth (None for forests).
    pub girth: Option<u32>,
}

/// Compute the [`Fingerprint`] of a graph.
pub fn fingerprint(g: &Csr) -> Fingerprint {
    let mut hists: Vec<Vec<u64>> = (0..g.node_count() as u32)
        .into_par_iter()
        .map(|s| distance_histogram(g, s))
        .collect();
    hists.sort();
    let diameter = hists.iter().map(|h| h.len() as u32 - 1).max().unwrap_or(0);
    Fingerprint {
        nodes: g.node_count(),
        arcs: g.arc_count(),
        min_degree: g.min_degree(),
        max_degree: g.max_degree(),
        diameter,
        sorted_histograms: hists,
        girth: girth(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Csr {
        Csr::from_fn(n, |u, out| {
            out.push((u + 1) % n as u32);
            out.push((u + n as u32 - 1) % n as u32);
        })
    }

    #[test]
    fn bfs_on_cycle() {
        let g = cycle(6);
        let d = bfs(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn diameter_of_cycles() {
        assert_eq!(diameter(&cycle(6)), 3);
        assert_eq!(diameter(&cycle(7)), 3);
        assert_eq!(diameter(&cycle(8)), 4);
    }

    #[test]
    fn average_distance_of_c4() {
        // C4: each node sees distances 1,1,2 => mean 4/3.
        let avg = average_distance(&cycle(4));
        assert!((avg - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn shortest_path_endpoints() {
        let g = cycle(8);
        let p = shortest_path(&g, 0, 4).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p[0], 0);
        assert_eq!(*p.last().unwrap(), 4);
        for w in p.windows(2) {
            assert!(g.has_arc(w[0], w[1]));
        }
    }

    #[test]
    fn unreachable_marked() {
        let g = Csr::from_edges(4, [(0, 1), (2, 3)], true);
        let d = bfs(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
        assert!(!is_connected(&g));
    }

    #[test]
    fn directed_connectivity() {
        let ring = Csr::from_fn(5, |u, out| out.push((u + 1) % 5));
        assert!(!ring.is_symmetric());
        assert!(is_strongly_connected(&ring));
        let path = Csr::from_edges(3, [(0, 1), (1, 2)], false);
        assert!(!is_strongly_connected(&path));
        assert!(is_connected(&path));
    }

    #[test]
    fn zero_one_bfs_prefers_free_arcs() {
        // 0-1-2 with heavy arc 0->2 direct: distance should be 0 via free path.
        let g = Csr::from_edges(3, [(0, 1), (1, 2), (0, 2)], true);
        let d = bfs_01(&g, 0, |u, v| (u, v) == (0, 2) || (u, v) == (2, 0));
        assert_eq!(d, vec![0, 0, 0]);
        let d2 = bfs_01(&g, 0, |_, _| true);
        assert_eq!(d2, vec![0, 1, 1]);
    }

    #[test]
    fn girth_values() {
        assert_eq!(girth(&cycle(5)), Some(5));
        assert_eq!(girth(&cycle(4)), Some(4));
        let tree = Csr::from_edges(4, [(0, 1), (0, 2), (0, 3)], true);
        assert_eq!(girth(&tree), None);
    }

    #[test]
    fn fingerprints_distinguish() {
        let c6 = fingerprint(&cycle(6));
        let two_triangles = {
            let g = Csr::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)], true);
            fingerprint(&g)
        };
        assert_ne!(c6, two_triangles); // same n, arcs, degrees — girth differs
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = cycle(9);
        let h = distance_histogram(&g, 2);
        assert_eq!(h.iter().sum::<u64>(), 9);
    }
}
