//! IP graph specifications: a seed label plus a set of named generators.

use crate::builder::{BuildOptions, IpGraph};
use crate::error::{IpgError, Result};
use crate::label::Label;
use crate::perm::Perm;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named generator: a permutation of label positions.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Generator {
    /// Display name, e.g. `"(1,2)"` or `"T2"` or `"L1"`.
    pub name: String,
    /// The position permutation.
    pub perm: Perm,
}

impl Generator {
    /// Create a named generator.
    pub fn new(name: impl Into<String>, perm: Perm) -> Self {
        Generator {
            name: name.into(),
            perm,
        }
    }

    /// Create with the cycle-notation name derived from the permutation.
    pub fn auto(perm: Perm) -> Self {
        Generator {
            name: perm.to_string(),
            perm,
        }
    }
}

impl fmt::Debug for Generator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Generator({} = {})", self.name, self.perm)
    }
}

/// An IP graph specification (paper §2): *"an IP graph is defined by a set of
/// generators and a seed element"*.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IpGraphSpec {
    /// Human-readable name of the network this spec describes.
    pub name: String,
    /// The seed label; repeats allowed (that is the point of the model).
    pub seed: Label,
    /// The generators, in a fixed order (arc slots follow this order).
    pub generators: Vec<Generator>,
}

impl IpGraphSpec {
    /// Create a spec, validating that every generator acts on exactly
    /// `seed.len()` positions.
    pub fn new(name: impl Into<String>, seed: Label, generators: Vec<Generator>) -> Result<Self> {
        let k = seed.len();
        for g in &generators {
            if g.perm.len() != k {
                return Err(IpgError::LengthMismatch {
                    expected: k,
                    found: g.perm.len(),
                    generator: g.name.clone(),
                });
            }
        }
        Ok(IpGraphSpec {
            name: name.into(),
            seed,
            generators,
        })
    }

    /// Number of generators (upper bound on node out-degree, Theorem 3.1).
    pub fn generator_count(&self) -> usize {
        self.generators.len()
    }

    /// Is the generator set closed under inverses? If so the generated graph
    /// is symmetric (undirected), like Cayley graphs with involution-closed
    /// generator sets.
    pub fn is_inverse_closed(&self) -> bool {
        self.generators.iter().all(|g| {
            let inv = g.perm.inverse();
            self.generators.iter().any(|h| h.perm == inv)
        })
    }

    /// Generate the IP graph by breadth-first closure of the seed under the
    /// generators, with default options.
    pub fn generate(&self) -> Result<IpGraph> {
        IpGraph::generate(self.clone(), BuildOptions::default())
    }

    /// Generate with explicit options (node budget etc.).
    pub fn generate_with(&self, opts: BuildOptions) -> Result<IpGraph> {
        IpGraph::generate(self.clone(), opts)
    }

    /// Generate, reporting progress through a [`crate::probe::BuildProbe`]
    /// (see [`IpGraph::generate_instrumented`]).
    pub fn generate_instrumented(&self, probe: &dyn crate::probe::BuildProbe) -> Result<IpGraph> {
        IpGraph::generate_instrumented(self.clone(), BuildOptions::default(), probe)
    }

    /// The star graph `S_n` spec: seed `1 2 … n`, generators `(1,i)` for
    /// `i = 2..n` (paper §2 example).
    pub fn star(n: usize) -> Self {
        let seed = Label::distinct(n);
        let generators = (1..n)
            .map(|i| Generator::new(format!("(1,{})", i + 1), Perm::transposition(n, 0, i)))
            .collect();
        IpGraphSpec {
            name: format!("star-{n}"),
            seed,
            generators,
        }
    }

    /// The pancake graph `P_n` spec: seed `1 2 … n`, generators = prefix
    /// flips of length `2..=n`.
    pub fn pancake(n: usize) -> Self {
        let seed = Label::distinct(n);
        let generators = (2..=n)
            .map(|i| Generator::new(format!("F{i}"), Perm::flip_prefix(n, i)))
            .collect();
        IpGraphSpec {
            name: format!("pancake-{n}"),
            seed,
            generators,
        }
    }

    /// The paper's 36-node Section-2 example: a 6-symbol seed with repeated
    /// symbols (two copies of `123`), generators `(1,2)`, `(1,3)` and the
    /// cyclic shift `456123`. Repeatedly applying the three generators
    /// yields exactly 36 distinct labels.
    pub fn section2_example() -> Self {
        IpGraphSpec {
            name: "sec2-example".into(),
            // ipg-analyze: allow(PANIC001) reason="static literal is a valid label; covered by unit tests"
            seed: Label::parse("123123").expect("static label"),
            generators: vec![
                Generator::new("(1,2)", Perm::transposition(6, 0, 1)),
                Generator::new("(1,3)", Perm::transposition(6, 0, 2)),
                Generator::new("456123", Perm::cyclic_left(6, 3)),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_spec_shape() {
        let s = IpGraphSpec::star(6);
        assert_eq!(s.generator_count(), 5);
        assert_eq!(s.seed.to_string(), "123456");
        assert!(s.is_inverse_closed());
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = IpGraphSpec::new(
            "bad",
            Label::distinct(4),
            vec![Generator::auto(Perm::transposition(5, 0, 1))],
        )
        .unwrap_err();
        matches!(err, IpgError::LengthMismatch { .. })
            .then_some(())
            .expect("expected LengthMismatch");
    }

    #[test]
    fn cyclic_spec_not_inverse_closed() {
        let s = IpGraphSpec::new(
            "rot",
            Label::distinct(5),
            vec![Generator::auto(Perm::cyclic_left(5, 1))],
        )
        .unwrap();
        assert!(!s.is_inverse_closed());
    }
}
