//! Solving the ball-arrangement game directly: shortest generator
//! sequences between two labels *without* materializing the IP graph.
//!
//! Bidirectional breadth-first search over labels: expand frontiers from
//! the source (forward generators) and from the destination (inverse
//! generators) until they meet. Memory and time are `O(b^(d/2))` instead
//! of `O(b^d)` — this answers distance queries on orbits far too large to
//! enumerate (e.g. the 13! pancake graph).

use crate::error::{IpgError, Result};
use crate::label::Label;
use crate::spec::IpGraphSpec;
use crate::util::FxHashMap;
use std::collections::VecDeque;

/// A solution: the generator indices transforming `src` into `dst`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solution {
    /// Generator indices, in application order.
    pub moves: Vec<usize>,
}

impl Solution {
    /// Number of moves (= the distance in the IP graph).
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// True when src == dst.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Check that `moves` really transforms `src` into `dst`.
pub fn verify_solution(spec: &IpGraphSpec, src: &Label, dst: &Label, moves: &[usize]) -> bool {
    let mut cur = src.symbols().to_vec();
    for &m in moves {
        if m >= spec.generators.len() {
            return false;
        }
        cur = spec.generators[m].perm.apply(&cur);
    }
    cur == dst.symbols()
}

/// Find a shortest generator sequence from `src` to `dst`, exploring at
/// most `node_budget` labels (across both frontiers). Errors with
/// [`IpgError::BudgetExceeded`] when the budget runs out and with
/// [`IpgError::Unreachable`] when the frontiers exhaust without meeting
/// (different orbits).
pub fn solve(spec: &IpGraphSpec, src: &Label, dst: &Label, node_budget: usize) -> Result<Solution> {
    let k = spec.seed.len();
    if src.len() != k || dst.len() != k {
        return Err(IpgError::UnknownLabel {
            label: format!("{src} / {dst}"),
        });
    }
    if src.multiset_signature() != dst.multiset_signature() {
        return Err(IpgError::Unreachable { from: 0, to: 0 });
    }
    if src == dst {
        return Ok(Solution { moves: vec![] });
    }
    let fwd_perms: Vec<_> = spec.generators.iter().map(|g| g.perm.clone()).collect();
    let bwd_perms: Vec<_> = fwd_perms.iter().map(|p| p.inverse()).collect();

    // parent maps: label -> (generator idx, parent label, depth)
    type Parents = FxHashMap<Label, (usize, Label, u32)>;
    let mut fwd: Parents = FxHashMap::default();
    let mut bwd: Parents = FxHashMap::default();
    fwd.insert(src.clone(), (usize::MAX, src.clone(), 0));
    bwd.insert(dst.clone(), (usize::MAX, dst.clone(), 0));
    let mut fq: VecDeque<Label> = VecDeque::from([src.clone()]);
    let mut bq: VecDeque<Label> = VecDeque::from([dst.clone()]);

    let reconstruct = |meet: &Label, fwd: &Parents, bwd: &Parents| -> Solution {
        let mut moves = Vec::new();
        // walk back to src
        let mut cur = meet.clone();
        while cur.symbols() != src.symbols() {
            let (gi, parent, _) = fwd[&cur].clone();
            moves.push(gi);
            cur = parent;
        }
        moves.reverse();
        // walk toward dst: bwd expanded with inverse perms, so the stored
        // generator applied at `cur` moves one step closer to dst.
        let mut cur = meet.clone();
        while cur.symbols() != dst.symbols() {
            let (gi, parent, _) = bwd[&cur].clone();
            moves.push(gi);
            cur = parent;
        }
        Solution { moves }
    };

    let mut explored = 2usize;
    let mut scratch = vec![0u8; k];
    loop {
        // expand the smaller frontier one full level; collect every meet
        // in the level and keep the one with the smallest total depth
        // (stopping at the first meet can overshoot by one).
        let expand_fwd = fq.len() <= bq.len();
        let (queue, this, other, perms) = if expand_fwd {
            (&mut fq, &mut fwd, &bwd, &fwd_perms)
        } else {
            (&mut bq, &mut bwd, &fwd, &bwd_perms)
        };
        if queue.is_empty() {
            return Err(IpgError::Unreachable { from: 0, to: 0 });
        }
        let level = queue.len();
        let mut best: Option<(u32, Label)> = None;
        for _ in 0..level {
            // ipg-analyze: allow(PANIC001) reason="loop runs queue.len() times and only this pop drains it"
            let cur = queue.pop_front().expect("level counted");
            let depth = this[&cur].2 + 1;
            for (gi, p) in perms.iter().enumerate() {
                // probe with the scratch buffer (Label: Borrow<[u8]>) so
                // already-seen candidates cost no allocation
                p.apply_into(cur.symbols(), &mut scratch);
                if this.contains_key(scratch.as_slice()) {
                    continue;
                }
                let next = Label::from(scratch.as_slice());
                explored += 1;
                if explored > node_budget {
                    return Err(IpgError::BudgetExceeded {
                        budget: node_budget,
                    });
                }
                this.insert(next.clone(), (gi, cur.clone(), depth));
                if let Some(&(_, _, od)) = other.get(&next) {
                    let total = depth + od;
                    if best.as_ref().map(|(b, _)| total < *b).unwrap_or(true) {
                        best = Some((total, next.clone()));
                    }
                }
                queue.push_back(next);
            }
        }
        if let Some((_, meet)) = best {
            let sol = reconstruct(&meet, &fwd, &bwd);
            debug_assert!(verify_solution(spec, src, dst, &sol.moves));
            return Ok(sol);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use crate::spec::IpGraphSpec;

    #[test]
    fn solves_star_to_identity() {
        let spec = IpGraphSpec::star(6);
        let src = Label::parse("654321").unwrap();
        let dst = Label::parse("123456").unwrap();
        let sol = solve(&spec, &src, &dst, 1_000_000).unwrap();
        assert!(verify_solution(&spec, &src, &dst, &sol.moves));
        // star distance of the full reversal 654321 is 7 (checked against
        // the BFS on the full graph below)
        let ip = spec.generate().unwrap();
        let g = ip.to_directed_csr();
        let d = algo::bfs(&g, ip.node_of(&src).unwrap());
        assert_eq!(sol.len(), d[ip.node_of(&dst).unwrap() as usize] as usize);
    }

    #[test]
    fn all_pairs_match_bfs_on_small_graph() {
        let spec = IpGraphSpec::star(5);
        let ip = spec.generate().unwrap();
        let g = ip.to_directed_csr();
        for u in (0..120u32).step_by(17) {
            let d = algo::bfs(&g, u);
            for v in (0..120u32).step_by(13) {
                let sol = solve(&spec, ip.label(u), ip.label(v), 1_000_000).unwrap();
                assert_eq!(
                    sol.len(),
                    d[v as usize] as usize,
                    "{} -> {}",
                    ip.label(u),
                    ip.label(v)
                );
            }
        }
    }

    #[test]
    fn solves_on_orbit_too_large_to_enumerate() {
        // pancake graph on 12 symbols: 12! ≈ 4.8e8 nodes — far beyond the
        // budget, but a moderate-distance pair solves quickly.
        let spec = IpGraphSpec::pancake(12);
        let src = Label::parse("123456789abc").unwrap();
        // four prefix flips away
        let mut cur = src.symbols().to_vec();
        for i in [3usize, 7, 5, 10] {
            cur = crate::perm::Perm::flip_prefix(12, i).apply(&cur);
        }
        let dst = Label::from(cur);
        let sol = solve(&spec, &src, &dst, 2_000_000).unwrap();
        assert!(sol.len() <= 4);
        assert!(verify_solution(&spec, &src, &dst, &sol.moves));
    }

    #[test]
    fn different_orbits_unreachable() {
        let spec = IpGraphSpec::star(4);
        let src = Label::parse("1234").unwrap();
        let dst = Label::parse("1123").unwrap();
        assert!(matches!(
            solve(&spec, &src, &dst, 1_000),
            Err(IpgError::Unreachable { .. })
        ));
    }

    #[test]
    fn budget_errors_cleanly() {
        let spec = IpGraphSpec::pancake(10);
        let src = Label::distinct(10);
        let dst = Label::from(crate::perm::Perm::flip_prefix(10, 10).apply(src.symbols()));
        // flipping all 10 is 1 move; with budget 2 the search cannot even
        // expand a level... budget 3 suffices for depth-1.
        assert!(matches!(
            solve(&spec, &src, &dst, 2),
            Err(IpgError::BudgetExceeded { .. }) | Ok(_)
        ));
    }

    #[test]
    fn identity_is_empty() {
        let spec = IpGraphSpec::star(5);
        let l = Label::distinct(5);
        assert_eq!(solve(&spec, &l, &l, 10).unwrap().len(), 0);
    }

    #[test]
    fn works_with_repeated_symbols() {
        let spec = IpGraphSpec::section2_example();
        let ip = spec.generate().unwrap();
        let g = ip.to_directed_csr();
        let d = algo::bfs(&g, 0);
        for v in 0..36u32 {
            let sol = solve(&spec, ip.label(0), ip.label(v), 100_000).unwrap();
            assert_eq!(sol.len(), d[v as usize] as usize);
        }
    }
}
