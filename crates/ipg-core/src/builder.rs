//! Generation of IP graphs: breadth-first closure of the seed label under
//! the generator set (the state-transition graph of the ball-arrangement
//! game, paper §2).

use crate::error::{IpgError, Result};
use crate::graph::Csr;
use crate::label::Label;
use crate::probe::{BuildProbe, NoProbe};
use crate::spec::IpGraphSpec;
use crate::util::FxHashMap;
use rayon::prelude::*;

/// Options controlling generation.
#[derive(Clone, Copy, Debug)]
pub struct BuildOptions {
    /// Abort with [`IpgError::BudgetExceeded`] if more nodes than this would
    /// be generated. Guards against accidentally huge generator sets.
    pub node_budget: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            node_budget: 64 << 20, // 64Mi nodes
        }
    }
}

/// A generated IP graph: node labels plus the dense arc table.
///
/// Arcs are stored densely: node `v` has exactly `g` out-arcs (one per
/// generator, in spec order), so [`IpGraph::arc`]`(v, i)` is the node reached
/// from `v` by generator `i`. Self-arcs occur when a generator fixes a label
/// (in the paper's HCN(2,2) example, applying `T_{2,4}` to the seed
/// `3434 3434` yields the seed itself); they are kept here because routing
/// needs the full generator action, and dropped when converting to a
/// [`Csr`] for metric computations.
#[derive(Clone, Debug)]
pub struct IpGraph {
    spec: IpGraphSpec,
    labels: Vec<Label>,
    arcs: Vec<u32>, // n * g, row-major: arcs[v*g + i]
    index: FxHashMap<Label, u32>,
}

impl IpGraph {
    /// Run the breadth-first closure. Nodes are numbered in BFS order from
    /// the seed (node 0 is the seed).
    pub fn generate(spec: IpGraphSpec, opts: BuildOptions) -> Result<Self> {
        Self::generate_instrumented(spec, opts, &NoProbe)
    }

    /// [`IpGraph::generate`] reporting progress through a
    /// [`BuildProbe`]: per-level BFS frontier sizes plus final
    /// node/arc/dedup totals. The shipped `ipg-obs` implementation maps
    /// these onto an `ip_generate` span, node/arc/dedup counters, a
    /// frontier-size histogram, and nodes/arcs-per-second `rate`
    /// records; elapsed time is measured inside the probe, so this
    /// crate stays clock-free.
    ///
    /// The closure is level-synchronous: each BFS frontier is expanded in
    /// parallel (per-frontier-node generator application — the pure,
    /// hash-free part), then the candidate labels are deduplicated and
    /// ranked *sequentially in (node, generator) order*. Node ids therefore
    /// come out in exactly the BFS discovery order of the old one-node-at-a-
    /// time loop, for any `IPG_THREADS` value.
    pub fn generate_instrumented(
        spec: IpGraphSpec,
        opts: BuildOptions,
        probe: &dyn BuildProbe,
    ) -> Result<Self> {
        let mut dedup_hits = 0u64;

        let g = spec.generators.len();
        let k = spec.seed.len();
        let mut index: FxHashMap<Label, u32> = FxHashMap::default();
        let mut labels: Vec<Label> = Vec::new();
        let mut arcs: Vec<u32> = Vec::new();

        index.insert(spec.seed.clone(), 0);
        labels.push(spec.seed.clone());
        probe.on_frontier(1); // depth-0 frontier: the seed

        // Frontier of the current level: nodes [level_start, level_end).
        let mut level_start = 0usize;
        let mut level_end = 1usize;
        while level_start < level_end {
            // Expansion phase (parallel): apply every generator to every
            // frontier label. Pure reads of `labels`; the ordered collect
            // keeps candidates in (node, generator) order.
            let candidates: Vec<Vec<u8>> = (level_start..level_end)
                .into_par_iter()
                .map(|v| {
                    let src = labels[v].symbols();
                    let mut out = vec![0u8; g * k];
                    for (i, gen) in spec.generators.iter().enumerate() {
                        gen.perm.apply_into(src, &mut out[i * k..(i + 1) * k]);
                    }
                    out
                })
                .collect();
            // Dedup/rank phase (sequential, deterministic): first occurrence
            // in (node, generator) order wins the next id — the same
            // numbering the sequential closure produced.
            for cand in &candidates {
                for i in 0..g {
                    let buf = &cand[i * k..(i + 1) * k];
                    let id = match index.get(buf) {
                        Some(&id) => {
                            dedup_hits += 1;
                            id
                        }
                        None => {
                            let id = labels.len() as u32;
                            if labels.len() >= opts.node_budget {
                                return Err(IpgError::BudgetExceeded {
                                    budget: opts.node_budget,
                                });
                            }
                            let lab = Label::from(buf.to_vec());
                            index.insert(lab.clone(), id);
                            labels.push(lab);
                            id
                        }
                    };
                    arcs.push(id);
                }
            }
            level_start = level_end;
            level_end = labels.len();
            if level_end > level_start {
                probe.on_frontier((level_end - level_start) as u64);
            }
        }
        debug_assert_eq!(arcs.len(), labels.len() * g);
        // Wall-clock never enters this crate: the probe implementation
        // owns the span timer and derives nodes/arcs-per-second rates
        // itself (ipg-obs `ObsBuildProbe`), so ipg-core stays clock-free
        // (DET003/LAYER001).
        probe.on_finish(labels.len() as u64, arcs.len() as u64, dedup_hits);
        Ok(IpGraph {
            spec,
            labels,
            arcs,
            index,
        })
    }

    /// The specification this graph was generated from.
    pub fn spec(&self) -> &IpGraphSpec {
        &self.spec
    }

    /// Number of generated nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of generators `g` (every node has exactly `g` out-arcs).
    pub fn generator_count(&self) -> usize {
        self.spec.generators.len()
    }

    /// Label of node `v`.
    pub fn label(&self, v: u32) -> &Label {
        &self.labels[v as usize]
    }

    /// All labels, indexed by node id.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Node id of `label`, if it was generated.
    pub fn node_of(&self, label: &Label) -> Option<u32> {
        self.index.get(label.symbols()).copied()
    }

    /// Node reached from `v` by generator `i` (may equal `v`).
    #[inline]
    pub fn arc(&self, v: u32, i: usize) -> u32 {
        self.arcs[v as usize * self.generator_count() + i]
    }

    /// All `g` generator successors of `v`, in generator order.
    #[inline]
    pub fn arcs_of(&self, v: u32) -> &[u32] {
        let g = self.generator_count();
        &self.arcs[v as usize * g..(v as usize + 1) * g]
    }

    /// Which generator (if any) moves `from` to `to` in one step?
    pub fn generator_between(&self, from: u32, to: u32) -> Option<usize> {
        self.arcs_of(from).iter().position(|&w| w == to)
    }

    /// Convert to a directed simple [`Csr`] (drops self-arcs, dedups).
    pub fn to_directed_csr(&self) -> Csr {
        let g = self.generator_count();
        let n = self.node_count();
        Csr::from_fn(n, |u, out| {
            out.extend_from_slice(&self.arcs[u as usize * g..(u as usize + 1) * g]);
        })
    }

    /// Convert to an undirected simple [`Csr`] (symmetrizes, drops
    /// self-arcs, dedups). This is the physical-network view: the paper
    /// treats links as bidirectional channels.
    pub fn to_undirected_csr(&self) -> Csr {
        self.to_directed_csr().symmetrized()
    }

    /// Verify the closure property: the image of every node under every
    /// generator is a node. (Always true by construction; used in tests.)
    pub fn verify_closed(&self) -> bool {
        let mut buf = vec![0u8; self.spec.seed.len()];
        for v in 0..self.node_count() as u32 {
            for (i, gen) in self.spec.generators.iter().enumerate() {
                gen.perm.apply_into(self.label(v).symbols(), &mut buf);
                match self.index.get(buf.as_slice()) {
                    Some(&w) if w == self.arc(v, i) => {}
                    _ => return false,
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use crate::perm::Perm;
    use crate::spec::{Generator, IpGraphSpec};

    #[test]
    fn six_star_has_720_nodes() {
        // Paper §2: repeatedly applying the 5 generators yields all 720
        // labels of the 6-star.
        let ip = IpGraphSpec::star(6).generate().unwrap();
        assert_eq!(ip.node_count(), 720);
        assert!(ip.verify_closed());
        let g = ip.to_undirected_csr();
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn section2_example_has_36_nodes() {
        // Paper §2: "Repeatedly applying the 3 generators ... will result in
        // 36 distinct nodes for this IP graph example."
        // (The paper's seed in that passage is the 6-symbol label with two
        // repeated triples; the generators are (1,2), (1,3) and 456123.)
        let ip = IpGraphSpec::section2_example().generate().unwrap();
        assert_eq!(ip.node_count(), 36);
    }

    #[test]
    fn seed_neighbors_match_paper_star_example() {
        let ip = IpGraphSpec::star(6).generate().unwrap();
        let want = ["213456", "321456", "423156", "523416", "623451"];
        for (i, w) in want.iter().enumerate() {
            let v = ip.arc(0, i);
            assert_eq!(ip.label(v).to_string(), *w);
        }
    }

    #[test]
    fn multiset_signature_is_invariant() {
        let ip = IpGraphSpec::section2_example().generate().unwrap();
        let sig = ip.label(0).multiset_signature();
        for v in 0..ip.node_count() as u32 {
            assert_eq!(ip.label(v).multiset_signature(), sig);
        }
    }

    #[test]
    fn self_arc_kept_in_arcs_dropped_in_csr() {
        // A transposition of two equal symbols fixes the label.
        let spec = IpGraphSpec::new(
            "loopy",
            Label::parse("1122").unwrap(),
            vec![
                Generator::new("(1,2)", Perm::transposition(4, 0, 1)),
                Generator::new("(1,3)", Perm::transposition(4, 0, 2)),
            ],
        )
        .unwrap();
        let ip = spec.generate().unwrap();
        assert_eq!(ip.arc(0, 0), 0, "swap of equal symbols is a self-arc");
        let g = ip.to_undirected_csr();
        for v in 0..g.node_count() as u32 {
            assert!(!g.has_arc(v, v));
        }
    }

    #[test]
    fn budget_is_enforced() {
        let err = IpGraphSpec::star(8)
            .generate_with(BuildOptions { node_budget: 100 })
            .unwrap_err();
        assert!(matches!(err, IpgError::BudgetExceeded { budget: 100 }));
    }

    #[test]
    fn node_of_roundtrip() {
        let ip = IpGraphSpec::star(5).generate().unwrap();
        for v in 0..ip.node_count() as u32 {
            assert_eq!(ip.node_of(ip.label(v)), Some(v));
        }
        assert_eq!(ip.node_of(&Label::parse("99999").unwrap()), None);
    }

    #[test]
    fn any_seed_generates_same_graph_size() {
        // Paper §2: using any generated node's label as the seed produces
        // the same graph.
        let ip = IpGraphSpec::star(5).generate().unwrap();
        let other = IpGraphSpec::new(
            "star-reseeded",
            ip.label(17).clone(),
            ip.spec().generators.clone(),
        )
        .unwrap()
        .generate()
        .unwrap();
        assert_eq!(other.node_count(), ip.node_count());
    }
}
