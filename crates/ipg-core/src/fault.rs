//! Compact fault views over CSR graphs.
//!
//! A [`FaultView`] records which nodes and links of a fixed graph are
//! currently dead: a bitset for nodes, a sorted arc-key vector for links
//! (fault sets are small relative to the graph, so binary search beats a
//! hash probe and — unlike a default-hasher set — has no iteration-order
//! trap). The view is plain data: queries are pure, mutation bumps an
//! `epoch` counter so consumers (e.g. the fault-aware router in
//! `ipg-sim`) can cache derived state per fault configuration.
//!
//! [`bfs_faulted`] is the reference routing oracle on the faulted graph:
//! exact hop distances with every dead node and dead arc removed. The
//! property-test battery checks the adaptive router against it, and the
//! connectivity-threshold sweeps (Jin/Reidys-style random induced
//! subgraphs) are built from [`largest_alive_component`].

use crate::algo::UNREACHABLE;
use crate::graph::Csr;
use std::collections::VecDeque;

/// The dead-node / dead-link state of a graph with `n` nodes.
///
/// Links are undirected: killing `{u, v}` removes both arcs. Node and
/// arc ids are *not* validated against a graph here — the view is a pure
/// set; callers resolve ids against their topology (the fault-plan
/// compiler in `ipg-sim` rejects kills that name absent links).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultView {
    n: usize,
    /// Bitset over node ids.
    dead_nodes: Vec<u64>,
    /// Sorted `(u << 32) | v` keys; both directions of a killed link.
    dead_arcs: Vec<u64>,
    dead_node_count: usize,
    epoch: u64,
}

#[inline]
fn arc_key(u: u32, v: u32) -> u64 {
    (u64::from(u) << 32) | u64::from(v)
}

impl FaultView {
    /// A fully-healthy view over `n` nodes.
    pub fn new(n: usize) -> Self {
        FaultView {
            n,
            dead_nodes: vec![0u64; n.div_ceil(64)],
            dead_arcs: Vec::new(),
            dead_node_count: 0,
            epoch: 0,
        }
    }

    /// Number of nodes the view spans.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// True when nothing is dead — the healthy-network fast path.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dead_node_count == 0 && self.dead_arcs.is_empty()
    }

    /// Monotone counter bumped by every kill; equal epochs on the same
    /// view imply an identical fault set, so derived state (BFS distance
    /// fields) may be cached keyed by it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Dead-node count.
    pub fn dead_nodes(&self) -> usize {
        self.dead_node_count
    }

    /// Dead-link count (undirected).
    pub fn dead_links(&self) -> usize {
        self.dead_arcs.len() / 2
    }

    /// Kill node `v` (idempotent).
    pub fn kill_node(&mut self, v: u32) {
        let (w, b) = (v as usize / 64, v as usize % 64);
        if self.dead_nodes[w] & (1u64 << b) == 0 {
            self.dead_nodes[w] |= 1u64 << b;
            self.dead_node_count += 1;
            self.epoch += 1;
        }
    }

    /// Kill the undirected link `{u, v}` — both arcs (idempotent).
    pub fn kill_link(&mut self, u: u32, v: u32) {
        let mut changed = false;
        for key in [arc_key(u, v), arc_key(v, u)] {
            if let Err(pos) = self.dead_arcs.binary_search(&key) {
                self.dead_arcs.insert(pos, key);
                changed = true;
            }
        }
        if changed {
            self.epoch += 1;
        }
    }

    /// Is node `v` dead?
    #[inline]
    pub fn node_dead(&self, v: u32) -> bool {
        self.dead_nodes[v as usize / 64] & (1u64 << (v as usize % 64)) != 0
    }

    /// Is the arc `u -> v` dead (killed as part of link `{u, v}`)?
    #[inline]
    pub fn arc_dead(&self, u: u32, v: u32) -> bool {
        !self.dead_arcs.is_empty() && self.dead_arcs.binary_search(&arc_key(u, v)).is_ok()
    }

    /// Can a packet traverse `u -> v`? False when the arc or either
    /// endpoint is dead.
    #[inline]
    pub fn arc_usable(&self, u: u32, v: u32) -> bool {
        !self.node_dead(u) && !self.node_dead(v) && !self.arc_dead(u, v)
    }
}

/// BFS hop distances from `src` on `g` restricted to alive nodes and
/// arcs. Dead nodes (including a dead `src`) get [`UNREACHABLE`], as does
/// everything cut off by the fault set.
pub fn bfs_faulted(g: &Csr, view: &FaultView, src: u32) -> Vec<u32> {
    // ipg-analyze: allow(ALLOC001) reason="distance field allocated once per destination per fault epoch and LRU-cached by DetourRouter::field; not steady-state"
    let mut dist = vec![UNREACHABLE; g.node_count()];
    if view.node_dead(src) {
        return dist;
    }
    dist[src as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE && view.arc_usable(u, v) {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Size of the largest connected component among alive nodes, honoring
/// dead links. Drives the empirical connectivity-threshold sweeps.
pub fn largest_alive_component(g: &Csr, view: &FaultView) -> usize {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut best = 0usize;
    for s in 0..n as u32 {
        if seen[s as usize] || view.node_dead(s) {
            continue;
        }
        let dist = bfs_faulted(g, view, s);
        let mut size = 0usize;
        for v in 0..n {
            if dist[v] != UNREACHABLE {
                seen[v] = true;
                size += 1;
            }
        }
        best = best.max(size);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    fn path4() -> Csr {
        // 0 - 1 - 2 - 3
        Csr::from_edges(4, [(0, 1), (1, 2), (2, 3)], true)
    }

    #[test]
    fn kills_are_idempotent_and_bump_epoch_once() {
        let mut v = FaultView::new(4);
        assert!(v.is_empty());
        v.kill_node(2);
        let e = v.epoch();
        v.kill_node(2);
        assert_eq!(v.epoch(), e, "re-killing a dead node must not bump epoch");
        v.kill_link(0, 1);
        assert!(v.arc_dead(0, 1) && v.arc_dead(1, 0), "links die both ways");
        let e2 = v.epoch();
        v.kill_link(1, 0);
        assert_eq!(v.epoch(), e2, "same link in either order is one kill");
        assert_eq!(v.dead_nodes(), 1);
        assert_eq!(v.dead_links(), 1);
        assert!(!v.is_empty());
    }

    #[test]
    fn bfs_faulted_respects_dead_links_and_nodes() {
        let g = path4();
        let healthy = FaultView::new(4);
        assert_eq!(bfs_faulted(&g, &healthy, 0), algo::bfs(&g, 0));

        let mut cut = FaultView::new(4);
        cut.kill_link(1, 2);
        let d = bfs_faulted(&g, &cut, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);

        let mut dead_mid = FaultView::new(4);
        dead_mid.kill_node(1);
        let d = bfs_faulted(&g, &dead_mid, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], UNREACHABLE, "dead nodes are unreachable");
        assert_eq!(d[2], UNREACHABLE, "paths may not cross dead nodes");

        let mut dead_src = FaultView::new(4);
        dead_src.kill_node(0);
        assert!(bfs_faulted(&g, &dead_src, 0)
            .iter()
            .all(|&x| x == UNREACHABLE));
    }

    #[test]
    fn largest_alive_component_counts_survivors() {
        let g = path4();
        let mut v = FaultView::new(4);
        assert_eq!(largest_alive_component(&g, &v), 4);
        v.kill_node(1);
        // components: {0}, {2, 3}
        assert_eq!(largest_alive_component(&g, &v), 2);
        v.kill_link(2, 3);
        assert_eq!(largest_alive_component(&g, &v), 1);
    }
}
