//! Permutations of label positions.
//!
//! A generator of an IP graph is a permutation of the `k` positions of a node
//! label (paper §2). We store permutations in *one-line image form*: applying
//! permutation `p` to a label `x` yields the label `y` with
//! `y[i] = x[p.image()[i]]` — i.e. `image()[i]` says which old position the
//! new position `i` reads from. This matches the paper's notation, where a
//! generator written as the sequence `456123` maps `x1..x6` to `x4 x5 x6 x1
//! x2 x3`.

use crate::error::{IpgError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A permutation of `k` positions, stored in one-line image form.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Perm {
    image: Box<[u16]>,
}

impl Perm {
    /// The identity permutation on `k` positions.
    pub fn identity(k: usize) -> Self {
        Perm {
            image: (0..k as u16).collect(),
        }
    }

    /// Build from a one-line image: `image[i]` is the old position that new
    /// position `i` reads from. Fails unless `image` is a bijection on
    /// `0..image.len()`.
    pub fn from_image(image: Vec<u16>) -> Result<Self> {
        let k = image.len();
        if k > u16::MAX as usize {
            return Err(IpgError::InvalidPermutation {
                reason: format!("length {k} exceeds the u16 position limit"),
            });
        }
        let mut seen = vec![false; k];
        for &p in &image {
            if (p as usize) >= k {
                return Err(IpgError::InvalidPermutation {
                    reason: format!("index {p} out of range for length {k}"),
                });
            }
            if seen[p as usize] {
                return Err(IpgError::InvalidPermutation {
                    reason: format!("index {p} appears twice"),
                });
            }
            seen[p as usize] = true;
        }
        Ok(Perm {
            image: image.into_boxed_slice(),
        })
    }

    /// The transposition `(i, j)` on `k` positions (0-based): swaps the
    /// symbols at positions `i` and `j`. The paper writes this `(i+1; j+1)`.
    pub fn transposition(k: usize, i: usize, j: usize) -> Self {
        assert!(i < k && j < k, "transposition positions out of range");
        let mut image: Vec<u16> = (0..k as u16).collect();
        image.swap(i, j);
        Perm {
            image: image.into_boxed_slice(),
        }
    }

    /// Build from disjoint cycles (0-based positions). The cycle
    /// `(p0 p1 … pr)` moves the symbol at `p0` to `p1`, `p1` to `p2`, …, and
    /// `pr` back to `p0`.
    pub fn from_cycles(k: usize, cycles: &[&[usize]]) -> Result<Self> {
        let mut image: Vec<u16> = (0..k as u16).collect();
        let mut touched = vec![false; k];
        for cycle in cycles {
            for w in 0..cycle.len() {
                let from = cycle[w];
                let to = cycle[(w + 1) % cycle.len()];
                if from >= k || to >= k {
                    return Err(IpgError::InvalidPermutation {
                        reason: format!("cycle position out of range for length {k}"),
                    });
                }
                if touched[from] {
                    return Err(IpgError::InvalidPermutation {
                        reason: format!("position {from} appears in two cycles"),
                    });
                }
                touched[from] = true;
                // symbol at `from` moves to `to` => new position `to` reads old `from`.
                image[to] = from as u16;
            }
        }
        Perm::from_image(image)
    }

    /// Cyclic left shift by `s` positions: `x1 x2 … xk ↦ x_{s+1} … xk x1 … xs`.
    pub fn cyclic_left(k: usize, s: usize) -> Self {
        let image: Vec<u16> = (0..k).map(|i| ((i + s) % k) as u16).collect();
        Perm {
            image: image.into_boxed_slice(),
        }
    }

    /// Cyclic right shift by `s` positions (the inverse of
    /// [`Perm::cyclic_left`] by the same amount).
    pub fn cyclic_right(k: usize, s: usize) -> Self {
        Perm::cyclic_left(k, (k - s % k) % k)
    }

    /// Reversal of the first `i` positions (the *flip* of §3.4 acts on
    /// super-symbols; this is its positional building block).
    pub fn flip_prefix(k: usize, i: usize) -> Self {
        assert!(i <= k, "flip prefix longer than permutation");
        let image: Vec<u16> = (0..k)
            .map(|p| if p < i { (i - 1 - p) as u16 } else { p as u16 })
            .collect();
        Perm {
            image: image.into_boxed_slice(),
        }
    }

    /// Number of positions this permutation acts on.
    #[inline]
    pub fn len(&self) -> usize {
        self.image.len()
    }

    /// True for the zero-length permutation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.image.is_empty()
    }

    /// One-line image form; `image()[i]` is the old position read by new
    /// position `i`.
    #[inline]
    pub fn image(&self) -> &[u16] {
        &self.image
    }

    /// Apply to a slice of symbols, writing into `out` (must be same length).
    #[inline]
    pub fn apply_into(&self, src: &[u8], out: &mut [u8]) {
        debug_assert_eq!(src.len(), self.image.len());
        debug_assert_eq!(out.len(), self.image.len());
        for (o, &p) in out.iter_mut().zip(self.image.iter()) {
            *o = src[p as usize];
        }
    }

    /// Apply to a slice of symbols, allocating the result.
    pub fn apply(&self, src: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; src.len()];
        self.apply_into(src, &mut out);
        out
    }

    /// Is this the identity?
    pub fn is_identity(&self) -> bool {
        self.image.iter().enumerate().all(|(i, &p)| i as u16 == p)
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0u16; self.image.len()];
        for (i, &p) in self.image.iter().enumerate() {
            inv[p as usize] = i as u16;
        }
        Perm {
            image: inv.into_boxed_slice(),
        }
    }

    /// Composition `self.then(next)`: apply `self` first, then `next`.
    /// `(self.then(next)).apply(x) == next.apply(&self.apply(x))`.
    pub fn then(&self, next: &Perm) -> Self {
        assert_eq!(self.len(), next.len(), "composing mismatched lengths");
        let image: Vec<u16> = next.image.iter().map(|&p| self.image[p as usize]).collect();
        Perm {
            image: image.into_boxed_slice(),
        }
    }

    /// Is this permutation an involution (its own inverse)?
    pub fn is_involution(&self) -> bool {
        self.image
            .iter()
            .enumerate()
            .all(|(i, &p)| self.image[p as usize] as usize == i)
    }

    /// Multiplicative order of the permutation (lcm of cycle lengths).
    pub fn order(&self) -> u64 {
        let mut seen = vec![false; self.len()];
        let mut ord: u64 = 1;
        for start in 0..self.len() {
            if seen[start] {
                continue;
            }
            let mut len: u64 = 0;
            let mut cur = start;
            while !seen[cur] {
                seen[cur] = true;
                cur = self.image[cur] as usize;
                len += 1;
            }
            ord = lcm(ord, len);
        }
        ord
    }

    /// Cycle decomposition (non-trivial cycles only, 0-based positions),
    /// following the movement convention of [`Perm::from_cycles`].
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        // image[i] = p means symbol at p moves to i, so the successor of p
        // in movement order is i = inverse image.
        let inv = self.inverse();
        let mut seen = vec![false; self.len()];
        let mut out = Vec::new();
        for start in 0..self.len() {
            if seen[start] {
                continue;
            }
            let mut cycle = Vec::new();
            let mut cur = start;
            while !seen[cur] {
                seen[cur] = true;
                cycle.push(cur);
                cur = inv.image[cur] as usize;
            }
            if cycle.len() > 1 {
                out.push(cycle);
            }
        }
        out
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

impl fmt::Debug for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Perm[")?;
        for (i, p) in self.image.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cycles = self.cycles();
        if cycles.is_empty() {
            return write!(f, "id");
        }
        for cycle in cycles {
            write!(f, "(")?;
            for (i, p) in cycle.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", p + 1)?; // 1-based like the paper
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transposition_swaps() {
        let p = Perm::transposition(6, 0, 1);
        assert_eq!(p.apply(b"123456"), b"213456".to_vec());
        assert!(p.is_involution());
    }

    #[test]
    fn star_generators_match_paper_example() {
        // Paper §2: X = 123456, generators (1,2), (1,3), (1,4), (1,5), (1,6).
        let x = b"123456";
        let expected: [&[u8; 6]; 5] = [b"213456", b"321456", b"423156", b"523416", b"623451"];
        for (i, want) in expected.iter().enumerate() {
            let p = Perm::transposition(6, 0, i + 1);
            assert_eq!(p.apply(x), want.to_vec(), "generator (1,{})", i + 2);
        }
    }

    #[test]
    fn cyclic_shift_matches_paper_example() {
        // Paper §2: pi6 = 456123 maps y1..y6 to y4 y5 y6 y1 y2 y3.
        let p = Perm::cyclic_left(6, 3);
        assert_eq!(p.apply(b"121212"), b"212121".to_vec());
        assert_eq!(p.apply(b"abcdef"), b"defabc".to_vec());
    }

    #[test]
    fn cyclic_right_is_inverse_of_left() {
        for k in 1..8 {
            for s in 0..k {
                let l = Perm::cyclic_left(k, s);
                let r = Perm::cyclic_right(k, s);
                assert!(l.then(&r).is_identity(), "k={k} s={s}");
            }
        }
    }

    #[test]
    fn flip_prefix_reverses() {
        let p = Perm::flip_prefix(6, 4);
        assert_eq!(p.apply(b"abcdef"), b"dcbaef".to_vec());
        assert!(p.is_involution());
    }

    #[test]
    fn compose_order() {
        let a = Perm::transposition(3, 0, 1);
        let b = Perm::cyclic_left(3, 1);
        let ab = a.then(&b);
        let x = b"xyz";
        assert_eq!(ab.apply(x), b.apply(&a.apply(x)));
    }

    #[test]
    fn inverse_roundtrip() {
        let p = Perm::cyclic_left(7, 3);
        assert!(p.then(&p.inverse()).is_identity());
        assert!(p.inverse().then(&p).is_identity());
    }

    #[test]
    fn from_cycles_movement_convention() {
        // (0 1 2): symbol at 0 moves to 1, 1 to 2, 2 to 0.
        let p = Perm::from_cycles(3, &[&[0, 1, 2]]).unwrap();
        assert_eq!(p.apply(b"abc"), b"cab".to_vec());
        assert_eq!(p.order(), 3);
    }

    #[test]
    fn from_image_rejects_duplicates() {
        assert!(Perm::from_image(vec![0, 0, 1]).is_err());
        assert!(Perm::from_image(vec![0, 3]).is_err());
    }

    #[test]
    fn cycles_roundtrip() {
        let p = Perm::cyclic_left(5, 2);
        let cycles = p.cycles();
        let refs: Vec<&[usize]> = cycles.iter().map(|c| c.as_slice()).collect();
        let q = Perm::from_cycles(5, &refs).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn display_uses_one_based_cycles() {
        let p = Perm::transposition(4, 0, 2);
        assert_eq!(p.to_string(), "(1,3)");
        assert_eq!(Perm::identity(4).to_string(), "id");
    }

    #[test]
    fn order_of_involution_is_two() {
        assert_eq!(Perm::transposition(5, 1, 3).order(), 2);
        assert_eq!(Perm::identity(5).order(), 1);
    }
}
