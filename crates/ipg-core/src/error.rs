//! Error type shared across the workspace.

use std::fmt;

/// Errors raised while constructing or analyzing IP graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpgError {
    /// A permutation image was not a bijection on `0..k`.
    InvalidPermutation {
        /// Human-readable reason (duplicate index, out of range, ...).
        reason: String,
    },
    /// A generator's length does not match the seed label length.
    LengthMismatch {
        /// Length expected (seed label length).
        expected: usize,
        /// Length found on the offending generator.
        found: usize,
        /// Name of the offending generator.
        generator: String,
    },
    /// Generation exceeded the configured node budget.
    BudgetExceeded {
        /// The budget that was exceeded.
        budget: usize,
    },
    /// A routing request referenced a label outside the generated graph.
    UnknownLabel {
        /// Display form of the unknown label.
        label: String,
    },
    /// No path exists (disconnected directed reachability).
    Unreachable {
        /// Source node index.
        from: u32,
        /// Destination node index.
        to: u32,
    },
    /// A super-IP specification was internally inconsistent.
    InvalidSpec {
        /// Human-readable reason.
        reason: String,
    },
    /// A distributed simulation component failed (frame protocol
    /// violation, worker death, transport error).
    Dist {
        /// Worker index the failure is attributed to (`u32::MAX` when
        /// it is not attributable to one worker).
        worker: u32,
        /// Simulation cycle at the time of failure (`u64::MAX` before
        /// the cycle loop starts).
        cycle: u64,
        /// Human-readable context: what was expected, what was seen,
        /// the last frame successfully processed.
        detail: String,
    },
}

impl fmt::Display for IpgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpgError::InvalidPermutation { reason } => {
                write!(f, "invalid permutation: {reason}")
            }
            IpgError::LengthMismatch {
                expected,
                found,
                generator,
            } => write!(
                f,
                "generator `{generator}` acts on {found} positions but the seed has {expected}"
            ),
            IpgError::BudgetExceeded { budget } => {
                write!(f, "generation exceeded the node budget of {budget}")
            }
            IpgError::UnknownLabel { label } => {
                write!(f, "label `{label}` is not a node of the generated graph")
            }
            IpgError::Unreachable { from, to } => {
                write!(f, "node {to} is unreachable from node {from}")
            }
            IpgError::InvalidSpec { reason } => write!(f, "invalid super-IP spec: {reason}"),
            IpgError::Dist {
                worker,
                cycle,
                detail,
            } => {
                write!(f, "distributed simulation failed")?;
                if *worker != u32::MAX {
                    write!(f, " (worker {worker}")?;
                    if *cycle != u64::MAX {
                        write!(f, ", cycle {cycle}")?;
                    }
                    write!(f, ")")?;
                } else if *cycle != u64::MAX {
                    write!(f, " (cycle {cycle})")?;
                }
                write!(f, ": {detail}")
            }
        }
    }
}

impl std::error::Error for IpgError {}

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, IpgError>;
