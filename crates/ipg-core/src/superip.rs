//! Super-IP graphs (paper §3): IP graphs whose seed consists of `l` groups
//! (*super-symbols*) of `m` symbols, with *nucleus generators* permuting the
//! symbols of the leftmost group and *super-generators* permuting whole
//! groups.
//!
//! Two equivalent constructions are provided:
//!
//! 1. [`SuperIpSpec::to_ip_spec`] expands the spec into a plain
//!    [`IpGraphSpec`] and generates the graph label-by-label, exactly as the
//!    paper's ball-arrangement game does.
//! 2. [`TupleNetwork`] builds the same graph directly on tuples
//!    `(g_1, …, g_l) ∈ V(G)^l` (plus a block-order component for symmetric
//!    variants): nucleus edges act on coordinate 1, super-generators permute
//!    coordinates. This is *O(N·deg)* with no hashing and works for any
//!    nucleus graph — even ones that are awkward to express with generators
//!    (e.g. the Petersen graph).
//!
//! [`explicit_isomorphism`] maps construction 1 onto construction 2
//! node-by-node, giving a machine-checked proof (used heavily in tests) that
//! they agree.

use crate::builder::IpGraph;
use crate::error::{IpgError, Result};
use crate::graph::Csr;
use crate::label::Label;
use crate::perm::Perm;
use crate::spec::{Generator, IpGraphSpec};
use crate::util::FxHashMap;
use serde::{Deserialize, Serialize};

/// The nucleus of a super-IP graph: a small IP graph on `m` symbols.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NucleusSpec {
    /// The underlying IP-graph spec (seed length = `m`).
    pub spec: IpGraphSpec,
}

impl NucleusSpec {
    /// Wrap an arbitrary IP-graph spec as a nucleus.
    pub fn new(spec: IpGraphSpec) -> Self {
        NucleusSpec { spec }
    }

    /// Number of symbols `m` per super-symbol.
    pub fn m(&self) -> usize {
        self.spec.seed.len()
    }

    /// The hypercube `Q_n` as an IP graph: `2n` symbols in `n` pairs; the
    /// order within pair `i` encodes bit `i`; generators are the pair
    /// transpositions `(2i−1, 2i)` (paper §2, HCN construction).
    pub fn hypercube(n: usize) -> Self {
        let m = 2 * n;
        let gens = (0..n)
            .map(|i| {
                Generator::new(
                    format!("({},{})", 2 * i + 1, 2 * i + 2),
                    Perm::transposition(m, 2 * i, 2 * i + 1),
                )
            })
            .collect();
        NucleusSpec {
            spec: IpGraphSpec {
                name: format!("Q{n}"),
                seed: Label::distinct(m),
                generators: gens,
            },
        }
    }

    /// The folded hypercube `FQ_n`: `Q_n` plus the complement generator that
    /// swaps *every* pair simultaneously (flipping all `n` bits at once).
    pub fn folded_hypercube(n: usize) -> Self {
        let m = 2 * n;
        let mut nucleus = NucleusSpec::hypercube(n);
        let cycles: Vec<Vec<usize>> = (0..n).map(|i| vec![2 * i, 2 * i + 1]).collect();
        let refs: Vec<&[usize]> = cycles.iter().map(|c| c.as_slice()).collect();
        // ipg-analyze: allow(PANIC001) reason="cycles (2i, 2i+1) are disjoint by construction"
        let comp = Perm::from_cycles(m, &refs).expect("disjoint pair swaps");
        nucleus.spec.generators.push(Generator::new("C", comp));
        nucleus.spec.name = format!("FQ{n}");
        nucleus
    }

    /// The complete graph `K_r` as an IP graph: one marker symbol among
    /// `r − 1` blanks; all transpositions moving the marker. The marker
    /// position is the node identity.
    pub fn complete(r: usize) -> Self {
        assert!(r >= 2);
        let mut seed = vec![0u8; r];
        seed[0] = 1;
        let gens = (0..r)
            .flat_map(|i| (i + 1..r).map(move |j| (i, j)))
            .map(|(i, j)| {
                Generator::new(
                    format!("({},{})", i + 1, j + 1),
                    Perm::transposition(r, i, j),
                )
            })
            .collect();
        NucleusSpec {
            spec: IpGraphSpec {
                name: format!("K{r}"),
                seed: Label::from(seed),
                generators: gens,
            },
        }
    }

    /// The star graph `S_n` as a nucleus (a Cayley graph, distinct symbols).
    pub fn star(n: usize) -> Self {
        NucleusSpec {
            spec: IpGraphSpec::star(n),
        }
    }

    /// The generalized hypercube of Bhuyan & Agrawal \[7\] as an IP graph:
    /// one symbol group of `r` slots per dimension, a marker's slot
    /// encoding the digit; generators are all in-group transpositions
    /// (transpositions not moving a marker are self-loops and vanish in
    /// the simple graph). §4 recommends GH nuclei for diameter-optimal
    /// super-IP graphs (Theorem 4.4).
    pub fn generalized_hypercube(radices: &[usize]) -> Self {
        assert!(!radices.is_empty());
        let m: usize = radices.iter().sum();
        let mut seed = vec![0u8; m];
        let mut gens = Vec::new();
        let mut base = 0usize;
        for (d, &r) in radices.iter().enumerate() {
            assert!(r >= 2);
            seed[base] = (d + 1) as u8; // distinct marker per dimension
            for i in 0..r {
                for j in i + 1..r {
                    gens.push(Generator::new(
                        format!("d{d}({},{})", i + 1, j + 1),
                        Perm::transposition(m, base + i, base + j),
                    ));
                }
            }
            base += r;
        }
        let name = format!(
            "GH({})",
            radices
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join("x")
        );
        NucleusSpec {
            spec: IpGraphSpec {
                name,
                seed: Label::from(seed),
                generators: gens,
            },
        }
    }

    /// A ring `C_r` as an IP graph: one marker among blanks, rotated left or
    /// right by one position.
    pub fn ring(r: usize) -> Self {
        assert!(r >= 3);
        let mut seed = vec![0u8; r];
        seed[0] = 1;
        NucleusSpec {
            spec: IpGraphSpec {
                name: format!("C{r}"),
                seed: Label::from(seed),
                generators: vec![
                    Generator::new("L", Perm::cyclic_left(r, 1)),
                    Generator::new("R", Perm::cyclic_right(r, 1)),
                ],
            },
        }
    }

    /// Generate the nucleus graph.
    pub fn generate(&self) -> Result<IpGraph> {
        self.spec.generate()
    }
}

/// A super-generator kind (paper §3.2–3.4). All act on super-symbol (block)
/// indices; `0` is the leftmost block.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuperGen {
    /// `T_{i+1,m}` — swap block 0 with block `i` (§3.2, gives HSNs).
    Transpose(usize),
    /// `L_{s,m}` — cyclic left shift of the blocks by `s` (§3.3).
    CyclicL(usize),
    /// `R_{s,m}` — cyclic right shift of the blocks by `s` (§3.3).
    CyclicR(usize),
    /// `F_{i,m}` — reverse the order of the first `i` blocks (§3.4).
    Flip(usize),
    /// Any other block permutation.
    Custom(Perm),
}

impl SuperGen {
    /// The block-level permutation (over `l` block positions).
    pub fn block_perm(&self, l: usize) -> Perm {
        match self {
            SuperGen::Transpose(i) => Perm::transposition(l, 0, *i),
            SuperGen::CyclicL(s) => Perm::cyclic_left(l, *s),
            SuperGen::CyclicR(s) => Perm::cyclic_right(l, *s),
            SuperGen::Flip(i) => Perm::flip_prefix(l, *i),
            SuperGen::Custom(p) => {
                assert_eq!(p.len(), l, "custom block perm length mismatch");
                p.clone()
            }
        }
    }

    /// Paper-style display name.
    pub fn name(&self) -> String {
        match self {
            SuperGen::Transpose(i) => format!("T{}", i + 1),
            SuperGen::CyclicL(s) => format!("L{s}"),
            SuperGen::CyclicR(s) => format!("R{s}"),
            SuperGen::Flip(i) => format!("F{i}"),
            SuperGen::Custom(p) => format!("B{p}"),
        }
    }

    /// Expand to a position permutation over `l·m` label positions: block
    /// `j` of the result is block `blockperm[j]` of the input, symbols
    /// untouched (§3.1: super-generators do not reorder symbols within
    /// groups).
    pub fn position_perm(&self, l: usize, m: usize) -> Perm {
        let bp = self.block_perm(l);
        let mut image = Vec::with_capacity(l * m);
        for j in 0..l {
            let src = bp.image()[j] as usize;
            for r in 0..m {
                image.push((src * m + r) as u16);
            }
        }
        // ipg-analyze: allow(PANIC001) reason="block image enumerates each src*m+r exactly once"
        Perm::from_image(image).expect("block perm expands to valid perm")
    }
}

/// Seed style for a super-IP graph (paper §3.1 vs §3.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedKind {
    /// `S₁ S₁ … S₁` — `l` identical copies of the nucleus seed. The graph
    /// has `M^l` nodes (Theorem 3.2).
    Repeated,
    /// `S₁ S₂ … S_l` with `S_i` = nucleus seed shifted into its own symbol
    /// range — all symbols distinct, so the graph is a Cayley graph
    /// (vertex-symmetric and regular, §3.5). The graph has `|H|·M^l` nodes
    /// where `H` is the group generated by the block permutations
    /// (`l!` for HSNs, `l` for cyclic-shift networks).
    DistinctShifted,
}

/// A complete super-IP graph specification.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SuperIpSpec {
    /// Display name.
    pub name: String,
    /// The nucleus.
    pub nucleus: NucleusSpec,
    /// Number of super-symbols `l`.
    pub l: usize,
    /// The super-generators.
    pub supers: Vec<SuperGen>,
    /// Repeated (plain) or distinct (symmetric) seed.
    pub seed_kind: SeedKind,
}

impl SuperIpSpec {
    /// Hierarchical swapped network HSN(l, G) (§3.2): transposition
    /// super-generators `T_2 … T_l`. `HSN(2, Q_n)` ≡ HCN(n,n) without
    /// diameter links.
    pub fn hsn(l: usize, nucleus: NucleusSpec) -> Self {
        assert!(l >= 2);
        let supers = (1..l).map(SuperGen::Transpose).collect();
        SuperIpSpec {
            name: format!("HSN({l},{})", nucleus.spec.name),
            nucleus,
            l,
            supers,
            seed_kind: SeedKind::Repeated,
        }
    }

    /// Ring cyclic-shift network ring-CN(l, G) = basic-CN(l, G) (§3.3):
    /// super-generators `L_1` and `R_1` (identical when `l = 2`).
    pub fn ring_cn(l: usize, nucleus: NucleusSpec) -> Self {
        assert!(l >= 2);
        let supers = if l == 2 {
            vec![SuperGen::CyclicL(1)]
        } else {
            vec![SuperGen::CyclicL(1), SuperGen::CyclicR(1)]
        };
        SuperIpSpec {
            name: format!("ring-CN({l},{})", nucleus.spec.name),
            nucleus,
            l,
            supers,
            seed_kind: SeedKind::Repeated,
        }
    }

    /// Complete cyclic-shift network complete-CN(l, G) (§3.3): all cyclic
    /// shifts `L_1 … L_{l−1}` (note `R_i = L_{l−i}`, so this is
    /// inverse-closed with `l − 1` super-generators, matching §5.3's
    /// off-module link counts).
    pub fn complete_cn(l: usize, nucleus: NucleusSpec) -> Self {
        assert!(l >= 2);
        let supers = (1..l).map(SuperGen::CyclicL).collect();
        SuperIpSpec {
            name: format!("complete-CN({l},{})", nucleus.spec.name),
            nucleus,
            l,
            supers,
            seed_kind: SeedKind::Repeated,
        }
    }

    /// Directed cyclic-shift network (Corollary 4.2 lists it alongside the
    /// undirected families): the single super-generator `L_1`, giving a
    /// digraph with inter-cluster out-degree 1 for every `l`.
    pub fn directed_ring_cn(l: usize, nucleus: NucleusSpec) -> Self {
        assert!(l >= 2);
        SuperIpSpec {
            name: format!("dir-CN({l},{})", nucleus.spec.name),
            nucleus,
            l,
            supers: vec![SuperGen::CyclicL(1)],
            seed_kind: SeedKind::Repeated,
        }
    }

    /// Super-flip network (§3.4): flip super-generators `F_2 … F_l`.
    pub fn superflip(l: usize, nucleus: NucleusSpec) -> Self {
        assert!(l >= 2);
        let supers = (2..=l).map(SuperGen::Flip).collect();
        SuperIpSpec {
            name: format!("superflip({l},{})", nucleus.spec.name),
            nucleus,
            l,
            supers,
            seed_kind: SeedKind::Repeated,
        }
    }

    /// The symmetric variant (§3.5): same generators, distinct-symbol seed.
    pub fn symmetric(mut self) -> Self {
        self.seed_kind = SeedKind::DistinctShifted;
        self.name = format!("sym-{}", self.name);
        self
    }

    /// Number of symbols per super-symbol.
    pub fn m(&self) -> usize {
        self.nucleus.m()
    }

    /// Total label length `l·m`.
    pub fn label_len(&self) -> usize {
        self.l * self.m()
    }

    /// Number of nucleus generators `d_N`.
    pub fn nucleus_generator_count(&self) -> usize {
        self.nucleus.spec.generators.len()
    }

    /// Number of super-generators `d_S` (Theorem 3.1's bound on the
    /// inter-cluster degree).
    pub fn super_generator_count(&self) -> usize {
        self.supers.len()
    }

    /// Block-level permutations of the super-generators.
    pub fn block_perms(&self) -> Vec<Perm> {
        self.supers.iter().map(|s| s.block_perm(self.l)).collect()
    }

    /// The subgroup of `S_l` generated by the block permutations,
    /// enumerated by closure (identity first). Its size multiplies `M^l`
    /// for symmetric variants.
    pub fn block_group(&self) -> Vec<Perm> {
        let gens = self.block_perms();
        let mut elems: Vec<Perm> = vec![Perm::identity(self.l)];
        let mut seen: FxHashMap<Perm, u32> = FxHashMap::default();
        seen.insert(elems[0].clone(), 0);
        let mut next = 0;
        while next < elems.len() {
            let cur = elems[next].clone();
            for g in &gens {
                let prod = cur.then(g);
                if !seen.contains_key(&prod) {
                    seen.insert(prod.clone(), elems.len() as u32);
                    elems.push(prod);
                }
            }
            next += 1;
        }
        elems
    }

    /// Expected node count (Theorem 3.2 and its §3.5 refinement):
    /// `M^l` for repeated seeds, `|H|·M^l` for distinct seeds.
    pub fn expected_size(&self) -> Result<u64> {
        let nucleus = self.nucleus.generate()?;
        let m_n = nucleus.node_count() as u64;
        let base = m_n
            .checked_pow(self.l as u32)
            .ok_or_else(|| IpgError::InvalidSpec {
                reason: "size overflows u64".into(),
            })?;
        Ok(match self.seed_kind {
            SeedKind::Repeated => base,
            SeedKind::DistinctShifted => base * self.block_group().len() as u64,
        })
    }

    /// Check the §3.1 reachability requirement: every block can be brought
    /// to the leftmost position by some sequence of super-generators.
    pub fn all_blocks_reach_leftmost(&self) -> bool {
        let group = self.block_group();
        (0..self.l).all(|b| group.iter().any(|p| p.image()[0] as usize == b))
    }

    /// The arithmetic label ↔ id codec for this spec, when supported
    /// (tables within bounds, id space fits `u32`).
    pub fn codec(&self) -> Result<crate::codec::NodeCodec> {
        crate::codec::NodeCodec::new(self)
    }

    /// Directed simple CSR of the generated graph via the rank-indexed
    /// fast path — no label vector, no hash interning. Falls back to
    /// hash-interned BFS generation when the codec does not support the
    /// spec; note the two paths number nodes differently (mixed-radix
    /// codec ids vs. BFS discovery order), so use
    /// [`crate::codec::NodeCodec::renumbering`] to compare them.
    pub fn fast_directed_csr(&self) -> Result<Csr> {
        match self.codec() {
            Ok(codec) => Ok(codec.build_directed_csr()),
            Err(_) => Ok(self.to_ip_spec().generate()?.to_directed_csr()),
        }
    }

    /// Undirected (symmetrized) counterpart of
    /// [`SuperIpSpec::fast_directed_csr`].
    pub fn fast_undirected_csr(&self) -> Result<Csr> {
        Ok(self.fast_directed_csr()?.symmetrized())
    }

    /// Expand into a plain IP-graph spec: nucleus generators act on the
    /// leftmost block's positions, super-generators permute blocks, and the
    /// seed follows [`SeedKind`].
    pub fn to_ip_spec(&self) -> IpGraphSpec {
        let l = self.l;
        let m = self.m();
        let k = l * m;
        let mut generators =
            Vec::with_capacity(self.nucleus.spec.generators.len() + self.supers.len());
        for g in &self.nucleus.spec.generators {
            // Embed the m-position nucleus permutation into the first block.
            let mut image: Vec<u16> = (0..k as u16).collect();
            for (i, &p) in g.perm.image().iter().enumerate() {
                image[i] = p;
            }
            generators.push(Generator::new(
                g.name.clone(),
                // ipg-analyze: allow(PANIC001) reason="relabeling a bijection by a bijection stays bijective"
                Perm::from_image(image).expect("embedding preserves bijection"),
            ));
        }
        for s in &self.supers {
            generators.push(Generator::new(s.name(), s.position_perm(l, m)));
        }
        let base = self.nucleus.spec.seed.symbols();
        let seed = match self.seed_kind {
            SeedKind::Repeated => Label::repeat_block(base, l),
            SeedKind::DistinctShifted => {
                assert!(
                    self.nucleus.spec.seed.has_distinct_symbols(),
                    "symmetric super-IP graphs need a distinct-symbol nucleus seed (§3.5)"
                );
                let mut out = Vec::with_capacity(k);
                for block in 0..l {
                    for &s in base {
                        out.push(s + (block * m) as u8);
                    }
                }
                Label::from(out)
            }
        };
        IpGraphSpec {
            name: self.name.clone(),
            seed,
            generators,
        }
    }
}

/// Direct tuple construction of a (symmetric) super-IP graph over an
/// arbitrary nucleus graph.
///
/// Nodes are `(order, g_1 … g_l)` where `g_j ∈ V(G)` and `order` indexes the
/// block-order group `H` (trivial for plain super-IP graphs). Edges:
///
/// - `(σ, g) ~ (σ, g')` when `g'` differs from `g` only in coordinate 0 and
///   `g_0 ~ g'_0` in the nucleus (nucleus generators act on the leftmost
///   super-symbol);
/// - `(σ, g) ~ (σ·β, g∘β)` for each super-generator block permutation `β`.
#[derive(Clone, Debug)]
pub struct TupleNetwork {
    /// Display name.
    pub name: String,
    /// The nucleus graph (should be connected; usually undirected).
    pub nucleus: Csr,
    /// Number of blocks.
    pub l: usize,
    /// Block permutations of the super-generators.
    pub block_perms: Vec<Perm>,
    /// Block-order group (identity only for plain super-IP graphs).
    order_group: Vec<Perm>,
    order_index: FxHashMap<Perm, u32>,
    /// Dense order transitions: `order_next[oi·supers + si]` is the index
    /// of `order_group[oi].then(&block_perms[si])`. Kills the hash lookup
    /// on the per-edge hot path of [`TupleNetwork::build`].
    order_next: Vec<u32>,
}

impl TupleNetwork {
    /// Build the tuple form of `spec` using its generated nucleus graph.
    pub fn from_spec(spec: &SuperIpSpec) -> Result<Self> {
        let nucleus = spec.nucleus.generate()?.to_undirected_csr();
        Ok(Self::new(
            spec.name.clone(),
            nucleus,
            spec.l,
            spec.block_perms(),
            spec.seed_kind,
        ))
    }

    /// Build directly from any nucleus graph.
    pub fn new(
        name: impl Into<String>,
        nucleus: Csr,
        l: usize,
        block_perms: Vec<Perm>,
        seed_kind: SeedKind,
    ) -> Self {
        assert!(l >= 1);
        for p in &block_perms {
            assert_eq!(p.len(), l, "block perm length must equal l");
        }
        let order_group = match seed_kind {
            SeedKind::Repeated => vec![Perm::identity(l)],
            SeedKind::DistinctShifted => {
                // closure of the block perms
                let mut elems = vec![Perm::identity(l)];
                let mut seen: FxHashMap<Perm, u32> = FxHashMap::default();
                seen.insert(elems[0].clone(), 0);
                let mut next = 0;
                while next < elems.len() {
                    let cur = elems[next].clone();
                    for g in &block_perms {
                        let prod = cur.then(g);
                        if !seen.contains_key(&prod) {
                            seen.insert(prod.clone(), elems.len() as u32);
                            elems.push(prod);
                        }
                    }
                    next += 1;
                }
                elems
            }
        };
        let order_index: FxHashMap<Perm, u32> = order_group
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u32))
            .collect();
        let mut order_next = vec![0u32; order_group.len() * block_perms.len()];
        if order_group.len() > 1 {
            for (oi, sigma) in order_group.iter().enumerate() {
                for (si, bp) in block_perms.iter().enumerate() {
                    order_next[oi * block_perms.len() + si] = order_index[&sigma.then(bp)];
                }
            }
        }
        TupleNetwork {
            name: name.into(),
            nucleus,
            l,
            block_perms,
            order_group,
            order_index,
            order_next,
        }
    }

    /// Nucleus size `M`.
    pub fn m_nodes(&self) -> usize {
        self.nucleus.node_count()
    }

    /// Size of the block-order group `H`.
    pub fn order_count(&self) -> usize {
        self.order_group.len()
    }

    /// Total node count `|H|·M^l`.
    pub fn node_count(&self) -> usize {
        self.order_count() * self.m_nodes().pow(self.l as u32)
    }

    /// Encode `(order_idx, tuple)` as a node id.
    pub fn encode(&self, order_idx: u32, tuple: &[u32]) -> u32 {
        debug_assert_eq!(tuple.len(), self.l);
        let m = self.m_nodes() as u64;
        let mut id = 0u64;
        for &g in tuple.iter().rev() {
            debug_assert!((g as usize) < self.m_nodes());
            id = id * m + g as u64;
        }
        id += order_idx as u64 * m.pow(self.l as u32);
        // ipg-analyze: allow(PANIC001) reason="TupleNetwork::new rejects node counts past u32"
        u32::try_from(id).expect("node id fits u32")
    }

    /// Decode a node id into `(order_idx, tuple)`.
    pub fn decode(&self, node: u32) -> (u32, Vec<u32>) {
        let mut tuple = vec![0u32; self.l];
        let order_idx = self.decode_into(node, &mut tuple);
        (order_idx, tuple)
    }

    /// Allocation-free [`TupleNetwork::decode`]: fill `tuple` (length `l`)
    /// and return the order index.
    pub fn decode_into(&self, node: u32, tuple: &mut [u32]) -> u32 {
        debug_assert_eq!(tuple.len(), self.l);
        let m = self.m_nodes() as u64;
        let base = m.pow(self.l as u32);
        let mut id = node as u64;
        let order_idx = (id / base) as u32;
        id %= base;
        for slot in tuple.iter_mut() {
            *slot = (id % m) as u32;
            id /= m;
        }
        order_idx
    }

    /// Materialize the undirected graph. Entirely arithmetic: coordinate 0
    /// has mixed-radix weight 1, so a nucleus edge is `node − g_0 + g_0'`,
    /// and order transitions come from the dense `order_next` table — no
    /// hashing, no per-node allocation.
    pub fn build(&self) -> Csr {
        let n = self.node_count();
        let mut tuple = vec![0u32; self.l];
        let mut buf = vec![0u32; self.l];
        let supers = self.block_perms.len();
        Csr::from_fn(n, |node, row| {
            let oi = self.decode_into(node, &mut tuple);
            // nucleus edges on coordinate 0 (weight M^0 = 1)
            let base_id = node - tuple[0];
            for &nb in self.nucleus.neighbors(tuple[0]) {
                row.push(base_id + nb);
            }
            // super edges
            for (si, bp) in self.block_perms.iter().enumerate() {
                for (j, slot) in buf.iter_mut().enumerate() {
                    *slot = tuple[bp.image()[j] as usize];
                }
                let oi2 = self.order_next[oi as usize * supers + si];
                row.push(self.encode(oi2, &buf));
            }
        })
        .symmetrized()
    }

    /// The block-order permutation at index `idx`.
    pub fn order_perm(&self, idx: u32) -> &Perm {
        &self.order_group[idx as usize]
    }

    /// Apply super-generator `gen_idx` to the order component: the index
    /// of `order_perm(idx).then(block_perms[gen_idx])` (always 0 for
    /// plain repeated-seed networks). A dense table lookup.
    #[inline]
    pub fn order_apply(&self, idx: u32, gen_idx: usize) -> u32 {
        self.order_next[idx as usize * self.block_perms.len() + gen_idx]
    }

    /// Module id of each node under the paper's §5 packing: one nucleus
    /// copy per module (coordinate 0 varies within a module). Returns the
    /// per-node module array and the number of modules.
    pub fn nucleus_partition(&self) -> (Vec<u32>, usize) {
        let n = self.node_count();
        let m = self.m_nodes() as u64;
        let modules = n / self.m_nodes();
        let class: Vec<u32> = (0..n as u64)
            .map(|id| {
                let order = id / m.pow(self.l as u32);
                let rest = (id % m.pow(self.l as u32)) / m; // drop coordinate 0
                                                            // ipg-analyze: allow(PANIC001) reason="class index is below the u32 node count"
                u32::try_from(order * m.pow(self.l as u32 - 1) + rest).expect("fits")
            })
            .collect();
        (class, modules)
    }
}

/// Construct the explicit isomorphism from an IP-generated super-IP graph to
/// its tuple network: parse each label's blocks, identify the nucleus node
/// of each block and (for symmetric seeds) the block colors. Returns the
/// node map `ip node -> tuple node` after verifying it is a bijection that
/// preserves adjacency; errors otherwise.
pub fn explicit_isomorphism(
    spec: &SuperIpSpec,
    ip: &IpGraph,
    tn: &TupleNetwork,
) -> Result<Vec<u32>> {
    let l = spec.l;
    let m = spec.m();
    let nucleus_ip = spec.nucleus.generate()?;
    let mismatch = |reason: String| IpgError::InvalidSpec { reason };

    if ip.node_count() != tn.node_count() {
        return Err(mismatch(format!(
            "node counts differ: ip={} tuple={}",
            ip.node_count(),
            tn.node_count()
        )));
    }

    // Block-color bookkeeping for symmetric seeds: the block whose symbols
    // were shifted by c·m has color c.
    let nucleus_min = spec
        .nucleus
        .spec
        .seed
        .symbols()
        .iter()
        .copied()
        .min()
        .unwrap_or(0) as usize;
    let map: Result<Vec<u32>> = (0..ip.node_count() as u32)
        .map(|v| {
            let lab = ip.label(v);
            let mut tuple = Vec::with_capacity(l);
            let mut sigma_img = Vec::with_capacity(l);
            for j in 0..l {
                let block = lab.block(j, m);
                let (color, base): (usize, Vec<u8>) = match spec.seed_kind {
                    SeedKind::Repeated => (0, block.to_vec()),
                    SeedKind::DistinctShifted => {
                        let blk_min = block.iter().copied().min().unwrap_or(0) as usize;
                        let c = (blk_min - nucleus_min) / m;
                        (c, block.iter().map(|&s| s - (c * m) as u8).collect())
                    }
                };
                sigma_img.push(color as u16);
                let nuc_label = Label::from(base);
                let nid = nucleus_ip.node_of(&nuc_label).ok_or_else(|| {
                    mismatch(format!("block `{nuc_label}` is not a nucleus node"))
                })?;
                tuple.push(nid);
            }
            let order_idx = match spec.seed_kind {
                SeedKind::Repeated => 0,
                SeedKind::DistinctShifted => {
                    let sigma = Perm::from_image(sigma_img)
                        .map_err(|e| mismatch(format!("colors not a permutation: {e}")))?;
                    *tn.order_index
                        .get(&sigma)
                        .ok_or_else(|| mismatch("block order outside group".into()))?
                }
            };
            Ok(tn.encode(order_idx, &tuple))
        })
        .collect();
    let map = map?;

    // bijection check
    let mut seen = vec![false; tn.node_count()];
    for &t in &map {
        if seen[t as usize] {
            return Err(mismatch("node map is not injective".into()));
        }
        seen[t as usize] = true;
    }

    // adjacency preservation (undirected views)
    let ip_csr = ip.to_undirected_csr();
    let tn_csr = tn.build();
    for u in 0..ip_csr.node_count() as u32 {
        for &v in ip_csr.neighbors(u) {
            if !tn_csr.has_arc(map[u as usize], map[v as usize]) {
                return Err(mismatch(format!("edge ({u},{v}) not preserved")));
            }
        }
    }
    if ip_csr.arc_count() != tn_csr.arc_count() {
        return Err(mismatch(format!(
            "arc counts differ: ip={} tuple={}",
            ip_csr.arc_count(),
            tn_csr.arc_count()
        )));
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn hypercube_nucleus_sizes() {
        for n in 1..=4 {
            let ip = NucleusSpec::hypercube(n).generate().unwrap();
            assert_eq!(ip.node_count(), 1 << n, "Q{n}");
            let g = ip.to_undirected_csr();
            assert!(g.is_regular());
            assert_eq!(g.max_degree(), n);
            assert_eq!(algo::diameter(&g), n as u32);
        }
    }

    #[test]
    fn folded_hypercube_props() {
        // FQ3: 8 nodes, degree 4, diameter ceil(3/2) = 2.
        let ip = NucleusSpec::folded_hypercube(3).generate().unwrap();
        assert_eq!(ip.node_count(), 8);
        let g = ip.to_undirected_csr();
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 4);
        assert_eq!(algo::diameter(&g), 2);
    }

    #[test]
    fn complete_nucleus() {
        let ip = NucleusSpec::complete(5).generate().unwrap();
        assert_eq!(ip.node_count(), 5);
        let g = ip.to_undirected_csr();
        assert_eq!(g.max_degree(), 4);
        assert_eq!(algo::diameter(&g), 1);
    }

    #[test]
    fn ring_nucleus() {
        let ip = NucleusSpec::ring(6).generate().unwrap();
        assert_eq!(ip.node_count(), 6);
        let g = ip.to_undirected_csr();
        assert_eq!(g.max_degree(), 2);
        assert_eq!(algo::diameter(&g), 3);
    }

    #[test]
    fn hcn22_is_hsn2_q2() {
        // Paper Fig 1a: HSN(2, Q2) = HCN(2,2) without diameter links: 16
        // nodes, and the IP generation from seed `3434 3434`-style labels
        // matches the tuple construction.
        let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2));
        let ip = spec.to_ip_spec().generate().unwrap();
        assert_eq!(ip.node_count(), 16);
        let tn = TupleNetwork::from_spec(&spec).unwrap();
        explicit_isomorphism(&spec, &ip, &tn).unwrap();
    }

    #[test]
    fn theorem_3_2_sizes() {
        // N = M^l for repeated seeds.
        for l in 2..=3 {
            let spec = SuperIpSpec::hsn(l, NucleusSpec::hypercube(2));
            let ip = spec.to_ip_spec().generate().unwrap();
            assert_eq!(ip.node_count() as u64, spec.expected_size().unwrap());
            assert_eq!(ip.node_count(), 4usize.pow(l as u32));
        }
    }

    #[test]
    fn symmetric_sizes() {
        // Symmetric HSN: l!·M^l; symmetric ring-CN: l·M^l.
        let hsn = SuperIpSpec::hsn(3, NucleusSpec::hypercube(1)).symmetric();
        let ip = hsn.to_ip_spec().generate().unwrap();
        assert_eq!(ip.node_count(), 6 * 8); // 3!·2^3
        assert_eq!(ip.node_count() as u64, hsn.expected_size().unwrap());

        let cn = SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(1)).symmetric();
        let ip = cn.to_ip_spec().generate().unwrap();
        assert_eq!(ip.node_count(), 3 * 8); // 3·2^3
        assert_eq!(ip.node_count() as u64, cn.expected_size().unwrap());
    }

    #[test]
    fn symmetric_variants_are_regular() {
        for spec in [
            SuperIpSpec::hsn(3, NucleusSpec::hypercube(1)).symmetric(),
            SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(1)).symmetric(),
            SuperIpSpec::superflip(3, NucleusSpec::hypercube(1)).symmetric(),
        ] {
            let ip = spec.to_ip_spec().generate().unwrap();
            let g = ip.to_undirected_csr();
            assert!(g.is_regular(), "{} not regular", spec.name);
            assert!(ip.spec().seed.has_distinct_symbols());
        }
    }

    #[test]
    fn tuple_matches_ip_for_all_families() {
        let nuc = NucleusSpec::hypercube(2);
        for spec in [
            SuperIpSpec::hsn(3, nuc.clone()),
            SuperIpSpec::ring_cn(3, nuc.clone()),
            SuperIpSpec::complete_cn(4, NucleusSpec::hypercube(1)),
            SuperIpSpec::superflip(3, nuc.clone()),
            SuperIpSpec::hsn(2, nuc.clone()).symmetric(),
            SuperIpSpec::ring_cn(4, NucleusSpec::hypercube(1)).symmetric(),
            SuperIpSpec::superflip(3, NucleusSpec::hypercube(1)).symmetric(),
        ] {
            let ip = spec.to_ip_spec().generate().unwrap();
            let tn = TupleNetwork::from_spec(&spec).unwrap();
            explicit_isomorphism(&spec, &ip, &tn).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn block_reachability() {
        for spec in [
            SuperIpSpec::hsn(4, NucleusSpec::hypercube(1)),
            SuperIpSpec::ring_cn(4, NucleusSpec::hypercube(1)),
            SuperIpSpec::complete_cn(5, NucleusSpec::hypercube(1)),
            SuperIpSpec::superflip(4, NucleusSpec::hypercube(1)),
        ] {
            assert!(spec.all_blocks_reach_leftmost(), "{}", spec.name);
        }
    }

    #[test]
    fn block_groups() {
        // transpositions generate S_l; single rotations generate C_l;
        // flips generate S_l.
        assert_eq!(
            SuperIpSpec::hsn(4, NucleusSpec::hypercube(1))
                .block_group()
                .len(),
            24
        );
        assert_eq!(
            SuperIpSpec::ring_cn(4, NucleusSpec::hypercube(1))
                .block_group()
                .len(),
            4
        );
        assert_eq!(
            SuperIpSpec::complete_cn(5, NucleusSpec::hypercube(1))
                .block_group()
                .len(),
            5
        );
        assert_eq!(
            SuperIpSpec::superflip(4, NucleusSpec::hypercube(1))
                .block_group()
                .len(),
            24
        );
    }

    #[test]
    fn degree_bounds_theorem_3_1() {
        let spec = SuperIpSpec::hsn(3, NucleusSpec::hypercube(2));
        let ip = spec.to_ip_spec().generate().unwrap();
        let g = ip.to_undirected_csr();
        assert!(g.max_degree() <= spec.nucleus_generator_count() + spec.super_generator_count());
    }

    #[test]
    fn nucleus_partition_shape() {
        let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2));
        let tn = TupleNetwork::from_spec(&spec).unwrap();
        let (class, modules) = tn.nucleus_partition();
        assert_eq!(modules, 4); // 16 nodes / 4 per nucleus
        let mut counts = vec![0; modules];
        for &c in &class {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4));
    }

    #[test]
    fn generalized_hypercube_nucleus() {
        // GH(3x4): 12 nodes, degree (3−1)+(4−1) = 5, diameter 2.
        let nuc = NucleusSpec::generalized_hypercube(&[3, 4]);
        let ip = nuc.generate().unwrap();
        assert_eq!(ip.node_count(), 12);
        let g = ip.to_undirected_csr();
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 5);
        assert_eq!(algo::diameter(&g), 2);
    }

    #[test]
    fn gh_nucleus_makes_low_diameter_super_ip() {
        // Theorem 4.4 direction: GH(4x4) (16 nodes, diameter 2) gives
        // HSN(2, GH) diameter (2+1)·2 − 1 = 5 at 256 nodes, vs 9 for a
        // Q4 nucleus of the same size.
        let spec = SuperIpSpec::hsn(2, NucleusSpec::generalized_hypercube(&[4, 4]));
        let g = spec.to_ip_spec().generate().unwrap().to_undirected_csr();
        assert_eq!(g.node_count(), 256);
        assert_eq!(algo::diameter(&g), 5);
    }

    #[test]
    fn directed_ring_cn_diameter() {
        // directed diameter still (D_G+1)·l − 1 (Cor. 4.2): BFS over the
        // directed arcs.
        let spec = SuperIpSpec::directed_ring_cn(3, NucleusSpec::hypercube(2));
        let ip = spec.to_ip_spec().generate().unwrap();
        assert_eq!(ip.node_count(), 64);
        let g = ip.to_directed_csr();
        assert!(algo::is_strongly_connected(&g));
        assert_eq!(algo::diameter(&g), 8);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let spec = SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(2)).symmetric();
        let tn = TupleNetwork::from_spec(&spec).unwrap();
        for node in 0..tn.node_count() as u32 {
            let (oi, t) = tn.decode(node);
            assert_eq!(tn.encode(oi, &t), node);
        }
    }
}
