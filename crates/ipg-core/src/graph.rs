//! Compact CSR graph representation shared by every crate in the workspace.
//!
//! Interconnection networks here are *simple* graphs for metric purposes:
//! the constructors deduplicate parallel edges and drop self-loops (a
//! generator may map a label to itself — e.g. the first generated node in
//! the paper's HCN(2,2) example is the seed itself — but such a move is not
//! a physical link).

use serde::{Deserialize, Serialize};

/// Compressed sparse row graph. May be directed; [`Csr::is_symmetric`]
/// reports whether every arc has a reverse arc (i.e. the graph can be read
/// as undirected).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Build from an arc list. `symmetrize` adds the reverse of every arc.
    /// Self-loops are dropped and parallel arcs deduplicated.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (u32, u32)>,
        symmetrize: bool,
    ) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (u, v) in edges {
            let (u, v) = (u as usize, v as usize);
            assert!(u < n && v < n, "edge endpoint out of range");
            if u == v {
                continue;
            }
            adj[u].push(v as u32);
            if symmetrize {
                adj[v].push(u as u32);
            }
        }
        Csr::from_adj(adj)
    }

    /// Build from per-node neighbor lists (deduplicates, drops self-loops).
    pub fn from_adj(mut adj: Vec<Vec<u32>>) -> Self {
        let n = adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut total = 0usize;
        for (u, row) in adj.iter_mut().enumerate() {
            row.sort_unstable();
            row.dedup();
            row.retain(|&v| v as usize != u);
            total += row.len();
            assert!(total <= u32::MAX as usize, "arc count exceeds u32");
            offsets.push(total as u32);
        }
        let mut targets = Vec::with_capacity(total);
        for row in adj {
            targets.extend_from_slice(&row);
        }
        Csr { offsets, targets }
    }

    /// Build a graph by calling `neighbors(u, &mut out)` for each node.
    /// Rows are written straight into the CSR arrays (one reused scratch
    /// buffer, no per-node allocation); as with [`Csr::from_adj`], each row
    /// is sorted, deduplicated, and stripped of self-loops.
    pub fn from_fn(n: usize, mut neighbors: impl FnMut(u32, &mut Vec<u32>)) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut targets: Vec<u32> = Vec::new();
        let mut buf: Vec<u32> = Vec::new();
        for u in 0..n as u32 {
            buf.clear();
            neighbors(u, &mut buf);
            buf.sort_unstable();
            buf.dedup();
            buf.retain(|&v| v != u);
            let total = targets.len() + buf.len();
            assert!(total <= u32::MAX as usize, "arc count exceeds u32");
            targets.extend_from_slice(&buf);
            offsets.push(total as u32);
        }
        Csr { offsets, targets }
    }

    /// Parallel [`Csr::from_fn`]: rows are computed concurrently and then
    /// concatenated in id order, so the result is identical to the
    /// sequential build for any thread count (`neighbors` must be a pure
    /// function of `u`).
    pub fn from_fn_par(n: usize, neighbors: impl Fn(u32, &mut Vec<u32>) + Sync) -> Self {
        use rayon::prelude::*;
        // Parallel-reduction audit: ordered `collect`, no reduce — each row
        // is a pure function of `u` and rows are concatenated in id order
        // below, so the CSR bytes are identical for every `IPG_THREADS`.
        let rows: Vec<Vec<u32>> = (0..n)
            .into_par_iter()
            .map(|u| {
                let mut buf = Vec::new();
                neighbors(u as u32, &mut buf);
                buf.sort_unstable();
                buf.dedup();
                buf.retain(|&v| v != u as u32);
                buf
            })
            .collect();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut total = 0usize;
        for row in &rows {
            total += row.len();
            assert!(total <= u32::MAX as usize, "arc count exceeds u32");
            offsets.push(total as u32);
        }
        let mut targets = Vec::with_capacity(total);
        for row in &rows {
            targets.extend_from_slice(row);
        }
        Csr { offsets, targets }
    }

    /// The same graph under a node renumbering: old node `u` becomes
    /// `new_ids[u]`. Panics unless `new_ids` is a bijection on `0..n`.
    /// Used to compare graphs built in different numberings (e.g. the
    /// BFS-interned builder vs. the arithmetic codec builder).
    pub fn relabeled(&self, new_ids: &[u32]) -> Csr {
        let n = self.node_count();
        assert_eq!(new_ids.len(), n, "relabeling length mismatch");
        let mut old_of = vec![u32::MAX; n];
        for (old, &new) in new_ids.iter().enumerate() {
            assert!((new as usize) < n, "relabeling target out of range");
            assert_eq!(
                old_of[new as usize],
                u32::MAX,
                "relabeling is not injective"
            );
            old_of[new as usize] = old as u32;
        }
        Csr::from_fn(n, |u, out| {
            for &v in self.neighbors(old_of[u as usize]) {
                out.push(new_ids[v as usize]);
            }
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs (an undirected edge counts twice).
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of undirected edges, assuming the graph is symmetric.
    pub fn edge_count_undirected(&self) -> usize {
        debug_assert!(self.is_symmetric());
        self.targets.len() / 2
    }

    /// Out-neighbors of `u` (sorted, unique).
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.targets[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count() as u32)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Minimum out-degree.
    pub fn min_degree(&self) -> usize {
        (0..self.node_count() as u32)
            .map(|u| self.degree(u))
            .min()
            .unwrap_or(0)
    }

    /// True when every node has the same degree.
    pub fn is_regular(&self) -> bool {
        self.min_degree() == self.max_degree()
    }

    /// Does `u -> v` exist? (binary search; rows are sorted)
    pub fn has_arc(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// True when every arc has a reverse arc.
    pub fn is_symmetric(&self) -> bool {
        (0..self.node_count() as u32).all(|u| self.neighbors(u).iter().all(|&v| self.has_arc(v, u)))
    }

    /// The graph with every arc reversed.
    pub fn reversed(&self) -> Csr {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.node_count()];
        for u in 0..self.node_count() as u32 {
            for &v in self.neighbors(u) {
                adj[v as usize].push(u);
            }
        }
        Csr::from_adj(adj)
    }

    /// The symmetrized graph (union of arcs and reverse arcs).
    pub fn symmetrized(&self) -> Csr {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.node_count()];
        for u in 0..self.node_count() as u32 {
            for &v in self.neighbors(u) {
                adj[u as usize].push(v);
                adj[v as usize].push(u);
            }
        }
        Csr::from_adj(adj)
    }

    /// Iterate over all arcs `(u, v)`.
    pub fn arcs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.node_count() as u32)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Quotient graph: merge nodes by `class[u]` (classes must be
    /// `0..num_classes`), dedup edges, drop intra-class loops. Used for the
    /// paper's quotient networks (e.g. QCN(l, Q7/Q3), Fig. 3) and for fast
    /// inter-cluster distance computation.
    pub fn quotient(&self, class: &[u32], num_classes: usize) -> Csr {
        assert_eq!(class.len(), self.node_count());
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); num_classes];
        for (u, v) in self.arcs() {
            let (cu, cv) = (class[u as usize], class[v as usize]);
            if cu != cv {
                adj[cu as usize].push(cv);
            }
        }
        Csr::from_adj(adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Csr {
        Csr::from_edges(3, [(0, 1), (1, 2)], true)
    }

    #[test]
    fn basic_counts() {
        let g = path3();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.arc_count(), 4);
        assert_eq!(g.edge_count_undirected(), 2);
        assert_eq!(g.degree(1), 2);
        assert!(g.is_symmetric());
        assert!(!g.is_regular());
    }

    #[test]
    fn dedup_and_loops() {
        let g = Csr::from_edges(2, [(0, 1), (0, 1), (0, 0), (1, 1)], true);
        assert_eq!(g.arc_count(), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn directed_reverse() {
        let g = Csr::from_edges(3, [(0, 1), (1, 2)], false);
        assert!(!g.is_symmetric());
        let r = g.reversed();
        assert!(r.has_arc(1, 0));
        assert!(r.has_arc(2, 1));
        assert!(!r.has_arc(0, 1));
        assert_eq!(g.symmetrized().arc_count(), 4);
    }

    #[test]
    fn quotient_merges() {
        // square 0-1-2-3-0, classes {0,1} and {2,3}
        let g = Csr::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)], true);
        let q = g.quotient(&[0, 0, 1, 1], 2);
        assert_eq!(q.node_count(), 2);
        assert_eq!(q.arc_count(), 2); // one undirected edge
        assert!(q.has_arc(0, 1));
    }

    #[test]
    fn from_fn_builder() {
        let g = Csr::from_fn(4, |u, out| {
            out.push((u + 1) % 4);
            out.push((u + 3) % 4);
        });
        assert!(g.is_symmetric());
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn from_fn_dedups_and_drops_loops() {
        let g = Csr::from_fn(3, |u, out| {
            out.push(u); // self-loop, dropped
            out.push((u + 1) % 3);
            out.push((u + 1) % 3); // duplicate, merged
        });
        assert_eq!(g.arc_count(), 3);
        for u in 0..3 {
            assert!(!g.has_arc(u, u));
        }
    }

    #[test]
    fn from_fn_par_matches_sequential() {
        let f = |u: u32, out: &mut Vec<u32>| {
            out.push(u); // self-loop
            out.push((u * 7 + 3) % 100);
            out.push((u * 13 + 1) % 100);
            out.push((u * 7 + 3) % 100); // duplicate
        };
        assert_eq!(Csr::from_fn(100, f), Csr::from_fn_par(100, f));
    }

    #[test]
    fn relabeled_reverses_a_rotation() {
        // directed triangle 0->1->2->0, rotated by one
        let g = Csr::from_edges(3, [(0, 1), (1, 2), (2, 0)], false);
        let r = g.relabeled(&[1, 2, 0]);
        assert!(r.has_arc(1, 2));
        assert!(r.has_arc(2, 0));
        assert!(r.has_arc(0, 1));
        // identity relabeling is a no-op
        assert_eq!(g.relabeled(&[0, 1, 2]), g);
    }

    #[test]
    #[should_panic(expected = "not injective")]
    fn relabeled_rejects_non_bijection() {
        path3().relabeled(&[0, 0, 1]);
    }
}
