//! Table-free hierarchical routing on [`TupleNetwork`]s.
//!
//! [`crate::routing::SuperRouter`] routes by rewriting labels — faithful
//! to the paper, but it needs the generated [`crate::IpGraph`] to map
//! labels back to nodes. `TupleRouter` implements the same Theorem-4.1
//! algorithm directly on tuple node ids: per-node state is just the
//! nucleus next-hop table (`O(M²)`) and the super-generator schedule
//! (`O(l!)` worst case, computed once), so it routes on million-node
//! networks without materializing the graph.

use crate::algo;
use crate::error::{IpgError, Result};
use crate::perm::Perm;
use crate::rank;
use crate::superip::TupleNetwork;
use crate::util::{factorial, FxHashMap};
use std::collections::VecDeque;

/// Largest `l` for which the schedule search uses flat per-state arrays
/// (`l!·2^l` entries: 645,120 at `l = 7`). Beyond that the sparse
/// hash-map search is both smaller and faster, since BFS rarely touches
/// the full state space.
const FLAT_SCHEDULE_MAX_L: usize = 7;

/// `via` sentinel: state not yet discovered.
const VIA_UNSEEN: u8 = 0xFF;
/// `via` sentinel: the BFS start state.
const VIA_START: u8 = 0xFE;

/// Minimal super-generator schedule over raw block permutations: visits
/// every block at the leftmost position; optionally ends at `target`.
/// (The [`crate::routing`] spec-level helpers delegate to this search.)
///
/// States are `(block arrangement, visited set)`. For `l ≤ 7` the search
/// runs over flat arrays indexed by `perm_rank(arrangement)·2^l ∣ visited`
/// — no hashing, no per-state `Perm` clones in the parent map. The FIFO
/// order and generator iteration order are identical to the hash-map
/// fallback, so both produce the same schedule.
pub fn schedule_over_perms(perms: &[Perm], l: usize, target: Option<&Perm>) -> Option<Vec<usize>> {
    let full: u32 = (1u32 << l) - 1;
    // The start state (identity arrangement, block 0 visited) may already
    // satisfy the goal — only possible when l = 1.
    if full == 1 && target.map(|t| t == &Perm::identity(l)).unwrap_or(true) {
        return Some(vec![]);
    }
    if l <= FLAT_SCHEDULE_MAX_L && perms.len() < VIA_START as usize {
        schedule_flat(perms, l, target, full)
    } else {
        schedule_hashed(perms, l, target, full)
    }
}

/// Lexicographic rank of a block arrangement — the flat-state row index.
#[inline]
fn arrangement_rank(p: &Perm) -> usize {
    let mut buf = [0u8; FLAT_SCHEDULE_MAX_L];
    for (o, &v) in buf.iter_mut().zip(p.image().iter()) {
        *o = v as u8;
    }
    rank::multiset_rank(&buf[..p.len()]) as usize
}

fn schedule_flat(perms: &[Perm], l: usize, target: Option<&Perm>, full: u32) -> Option<Vec<usize>> {
    let states = factorial(l) as usize * (1usize << l);
    // Discovery bookkeeping: which generator reached each state, and from
    // which state. `via` doubles as the visited set.
    let mut via = vec![VIA_UNSEEN; states];
    let mut parent = vec![0u32; states];
    let start = Perm::identity(l);
    let start_idx = (arrangement_rank(&start) << l) | 1; // block 0 starts leftmost
    via[start_idx] = VIA_START;
    let mut queue: VecDeque<(Perm, u32, u32)> = VecDeque::new();
    queue.push_back((start, 1, start_idx as u32));
    while let Some((arrangement, visited, idx)) = queue.pop_front() {
        for (gi, bp) in perms.iter().enumerate() {
            let arr = arrangement.then(bp);
            let nvis = visited | (1 << arr.image()[0]);
            let nidx = (arrangement_rank(&arr) << l) | nvis as usize;
            if via[nidx] != VIA_UNSEEN {
                continue;
            }
            via[nidx] = gi as u8;
            parent[nidx] = idx;
            if nvis == full && target.map(|t| &arr == t).unwrap_or(true) {
                let mut steps = Vec::new();
                let mut cur = nidx;
                while via[cur] != VIA_START {
                    steps.push(via[cur] as usize);
                    cur = parent[cur] as usize;
                }
                steps.reverse();
                return Some(steps);
            }
            queue.push_back((arr, nvis, nidx as u32));
        }
    }
    None
}

fn schedule_hashed(
    perms: &[Perm],
    l: usize,
    target: Option<&Perm>,
    full: u32,
) -> Option<Vec<usize>> {
    let start = (Perm::identity(l), 1u32);
    let done =
        |state: &(Perm, u32)| state.1 == full && target.map(|t| &state.0 == t).unwrap_or(true);
    if done(&start) {
        return Some(vec![]);
    }
    let mut prev: FxHashMap<(Perm, u32), (usize, (Perm, u32))> = FxHashMap::default();
    prev.insert(start.clone(), (usize::MAX, start.clone()));
    let mut queue = VecDeque::new();
    queue.push_back(start.clone());
    while let Some(state) = queue.pop_front() {
        for (gi, bp) in perms.iter().enumerate() {
            let arr = state.0.then(bp);
            let visited = state.1 | (1 << arr.image()[0]);
            let nstate = (arr, visited);
            if prev.contains_key(&nstate) {
                continue;
            }
            prev.insert(nstate.clone(), (gi, state.clone()));
            if done(&nstate) {
                let mut steps = Vec::new();
                let mut cur = nstate;
                while cur != start {
                    let (gi, parent) = prev[&cur].clone();
                    steps.push(gi);
                    cur = parent;
                }
                steps.reverse();
                return Some(steps);
            }
            queue.push_back(nstate);
        }
    }
    None
}

/// Hierarchical router over tuple node ids.
pub struct TupleRouter<'n> {
    tn: &'n TupleNetwork,
    /// nucleus distances, row-major.
    ndist: Vec<u16>,
    /// default schedule (plain networks).
    schedule: Vec<usize>,
}

impl<'n> TupleRouter<'n> {
    /// Precompute nucleus distances and the default schedule.
    pub fn new(tn: &'n TupleNetwork) -> Result<Self> {
        let m = tn.m_nodes();
        let mut ndist = vec![u16::MAX; m * m];
        for a in 0..m as u32 {
            for (b, d) in algo::bfs(&tn.nucleus, a).into_iter().enumerate() {
                if d != algo::UNREACHABLE {
                    ndist[a as usize * m + b] = d as u16;
                }
            }
        }
        let schedule = schedule_over_perms(&tn.block_perms, tn.l, None).ok_or_else(|| {
            IpgError::InvalidSpec {
                reason: "some super-symbol can never reach the leftmost position".into(),
            }
        })?;
        Ok(TupleRouter {
            tn,
            ndist,
            schedule,
        })
    }

    fn nd(&self, a: u32, b: u32) -> u16 {
        self.ndist[a as usize * self.tn.m_nodes() + b as usize]
    }

    /// Nucleus-route coordinate 0 of `tuple` to value `target`, pushing
    /// every intermediate node id.
    fn sort_coord0(
        &self,
        order_idx: u32,
        tuple: &mut [u32],
        target: u32,
        path: &mut Vec<u32>,
    ) -> Result<()> {
        while tuple[0] != target {
            let d = self.nd(tuple[0], target);
            if d == u16::MAX {
                return Err(IpgError::Unreachable {
                    from: tuple[0],
                    to: target,
                });
            }
            let mut advanced = false;
            for &nb in self.tn.nucleus.neighbors(tuple[0]) {
                if self.nd(nb, target) + 1 == d {
                    tuple[0] = nb;
                    path.push(self.tn.encode(order_idx, tuple));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return Err(IpgError::InvalidSpec {
                    reason: "nucleus distance table inconsistent".into(),
                });
            }
        }
        Ok(())
    }

    /// Route between two node ids, returning the node-id path (inclusive).
    /// Path length ≤ `l·D_G + t` (Theorem 4.1) for plain networks, and
    /// ≤ `l·D_G + t_S` for symmetric ones (Theorem 4.3).
    pub fn route(&self, src: u32, dst: u32) -> Result<Vec<u32>> {
        let l = self.tn.l;
        let (src_o, src_t) = self.tn.decode(src);
        let (dst_o, dst_t) = self.tn.decode(dst);

        // Required final block arrangement. For plain networks any
        // all-visiting schedule works; for symmetric ones the block-order
        // components must match: σ_dst = σ_src ∘ β  ⇒  β = σ_src⁻¹ σ_dst.
        let schedule: Vec<usize> = if self.tn.order_count() == 1 {
            self.schedule.clone()
        } else {
            let sigma_src = self.tn.order_perm(src_o);
            let sigma_dst = self.tn.order_perm(dst_o);
            // σ_src.then(β) = σ_dst  ⇒  β = σ_src⁻¹.then(σ_dst)
            let beta = sigma_src.inverse().then(sigma_dst);
            schedule_over_perms(&self.tn.block_perms, l, Some(&beta)).ok_or_else(|| {
                IpgError::InvalidSpec {
                    reason: "required block arrangement unreachable".into(),
                }
            })?
        };

        // final position of the block initially at position i
        let mut arrangement = Perm::identity(l);
        for &gi in &schedule {
            arrangement = arrangement.then(&self.tn.block_perms[gi]);
        }
        let inv = arrangement.inverse();
        let final_pos: Vec<usize> = (0..l).map(|i| inv.image()[i] as usize).collect();

        let mut order = src_o;
        let mut tuple = src_t;
        let mut path = vec![src];
        self.sort_coord0(order, &mut tuple, dst_t[final_pos[0]], &mut path)?;

        let mut sorted = vec![false; l];
        sorted[0] = true;
        let mut arr = Perm::identity(l);
        let mut buf = vec![0u32; l];
        for &gi in &schedule {
            let bp = &self.tn.block_perms[gi];
            arr = arr.then(bp);
            for (j, slot) in buf.iter_mut().enumerate() {
                *slot = tuple[bp.image()[j] as usize];
            }
            tuple.copy_from_slice(&buf);
            order = self.tn.order_apply(order, gi);
            let next = self.tn.encode(order, &tuple);
            // a super-generator may fix the current node (e.g. swapping
            // two equal blocks); that is a no-op, not a link traversal
            // ipg-analyze: allow(PANIC001) reason="path starts with src and only grows"
            if next != *path.last().expect("non-empty") {
                path.push(next);
            }
            let origin = arr.image()[0] as usize;
            if !sorted[origin] {
                sorted[origin] = true;
                self.sort_coord0(order, &mut tuple, dst_t[final_pos[origin]], &mut path)?;
            }
        }
        // ipg-analyze: allow(PANIC001) reason="path starts with src and only grows"
        let last = *path.last().expect("non-empty");
        if last != dst {
            return Err(IpgError::InvalidSpec {
                reason: format!("tuple routing ended at {last} not {dst}"),
            });
        }
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::superip::{NucleusSpec, SeedKind, SuperIpSpec, TupleNetwork};

    fn check_all_pairs(spec: &SuperIpSpec) {
        let tn = TupleNetwork::from_spec(spec).unwrap();
        let g = tn.build();
        let router = TupleRouter::new(&tn).unwrap();
        let bound = crate::routing::predicted_diameter(spec).unwrap() as usize;
        for u in 0..g.node_count() as u32 {
            for v in 0..g.node_count() as u32 {
                let path = router.route(u, v).unwrap();
                assert_eq!(path[0], u);
                assert_eq!(*path.last().unwrap(), v);
                for w in path.windows(2) {
                    assert!(
                        g.has_arc(w[0], w[1]),
                        "{}: {} -> {} not an arc",
                        spec.name,
                        w[0],
                        w[1]
                    );
                }
                assert!(path.len() - 1 <= bound, "{}: {u}->{v}", spec.name);
            }
        }
    }

    #[test]
    fn all_pairs_hsn() {
        check_all_pairs(&SuperIpSpec::hsn(2, NucleusSpec::hypercube(2)));
        check_all_pairs(&SuperIpSpec::hsn(3, NucleusSpec::hypercube(1)));
    }

    #[test]
    fn all_pairs_cn_and_flip() {
        check_all_pairs(&SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(1)));
        check_all_pairs(&SuperIpSpec::superflip(3, NucleusSpec::hypercube(1)));
    }

    #[test]
    fn all_pairs_symmetric() {
        check_all_pairs(&SuperIpSpec::hsn(2, NucleusSpec::hypercube(1)).symmetric());
        check_all_pairs(&SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(1)).symmetric());
    }

    #[test]
    fn agrees_with_label_router() {
        let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2));
        let tn = TupleNetwork::from_spec(&spec).unwrap();
        let tr = TupleRouter::new(&tn).unwrap();
        let sr = crate::routing::SuperRouter::new(&spec).unwrap();
        let ip = spec.to_ip_spec().generate().unwrap();
        let iso = crate::superip::explicit_isomorphism(&spec, &ip, &tn).unwrap();
        for (u, v) in [(0u32, 15u32), (3, 9), (12, 4)] {
            let lp = sr.route(ip.label(u), ip.label(v)).unwrap();
            let tp = tr.route(iso[u as usize], iso[v as usize]).unwrap();
            assert_eq!(lp.len(), tp.len(), "route lengths must agree");
        }
    }

    #[test]
    fn routes_on_large_network_without_building_it() {
        // CN(5, Q4): 2^20 nodes; the router needs only the 16-node
        // nucleus table and the schedule.
        let nucleus = crate::superip::NucleusSpec::hypercube(4)
            .generate()
            .unwrap()
            .to_undirected_csr();
        let perms: Vec<Perm> = (1..5).map(|s| Perm::cyclic_left(5, s)).collect();
        let tn = TupleNetwork::new("CN(5,Q4)", nucleus, 5, perms, SeedKind::Repeated);
        assert_eq!(tn.node_count(), 1 << 20);
        let router = TupleRouter::new(&tn).unwrap();
        let path = router.route(0, (1 << 20) - 1).unwrap();
        assert!(path.len() - 1 <= 24); // (4+1)·5 − 1
                                       // verify the walk against locally computed neighbor sets
        let g_small_check = |a: u32, b: u32| -> bool {
            let (oa, ta) = tn.decode(a);
            let (_, tb) = tn.decode(b);
            // nucleus move?
            if ta[1..] == tb[1..] && tn.nucleus.has_arc(ta[0], tb[0]) {
                return true;
            }
            // supergen move?
            for (gi, bp) in tn.block_perms.iter().enumerate() {
                let mut img = vec![0u32; tn.l];
                for (j, slot) in img.iter_mut().enumerate() {
                    *slot = ta[bp.image()[j] as usize];
                }
                if img == tb && tn.encode(tn.order_apply(oa, gi), &img) == b {
                    return true;
                }
            }
            false
        };
        for w in path.windows(2) {
            assert!(g_small_check(w[0], w[1]), "{} -> {}", w[0], w[1]);
        }
    }
}
