//! Table-free hierarchical routing on [`TupleNetwork`]s.
//!
//! [`crate::routing::SuperRouter`] routes by rewriting labels — faithful
//! to the paper, but it needs the generated [`crate::IpGraph`] to map
//! labels back to nodes. `TupleRouter` implements the same Theorem-4.1
//! algorithm directly on tuple node ids: per-node state is just the
//! nucleus next-hop table (`O(M²)`) and the super-generator schedule
//! (`O(l!)` worst case, computed once), so it routes on million-node
//! networks without materializing the graph.

use crate::algo;
use crate::error::{IpgError, Result};
use crate::perm::Perm;
use crate::rank;
use crate::superip::TupleNetwork;
use crate::util::{factorial, FxHashMap};
use std::collections::VecDeque;

/// Largest `l` for which the schedule search uses flat per-state arrays
/// (`l!·2^l` entries: 645,120 at `l = 7`). Beyond that the sparse
/// hash-map search is both smaller and faster, since BFS rarely touches
/// the full state space.
const FLAT_SCHEDULE_MAX_L: usize = 7;

/// `via` sentinel: state not yet discovered.
const VIA_UNSEEN: u8 = 0xFF;
/// `via` sentinel: the BFS start state.
const VIA_START: u8 = 0xFE;

/// Minimal super-generator schedule over raw block permutations: visits
/// every block at the leftmost position; optionally ends at `target`.
/// (The [`crate::routing`] spec-level helpers delegate to this search.)
///
/// States are `(block arrangement, visited set)`. For `l ≤ 7` the search
/// runs over flat arrays indexed by `perm_rank(arrangement)·2^l ∣ visited`
/// — no hashing, no per-state `Perm` clones in the parent map. The FIFO
/// order and generator iteration order are identical to the hash-map
/// fallback, so both produce the same schedule.
pub fn schedule_over_perms(perms: &[Perm], l: usize, target: Option<&Perm>) -> Option<Vec<usize>> {
    let full: u32 = (1u32 << l) - 1;
    // The start state (identity arrangement, block 0 visited) may already
    // satisfy the goal — only possible when l = 1.
    if full == 1 && target.map(|t| t == &Perm::identity(l)).unwrap_or(true) {
        return Some(vec![]);
    }
    if l <= FLAT_SCHEDULE_MAX_L && perms.len() < VIA_START as usize {
        schedule_flat(perms, l, target, full)
    } else {
        schedule_hashed(perms, l, target, full)
    }
}

/// Lexicographic rank of a block arrangement — the flat-state row index.
#[inline]
fn arrangement_rank(p: &Perm) -> usize {
    arrangement_rank_img(p.image())
}

/// [`arrangement_rank`] over a raw image slice, for callers that compose
/// permutations into stack buffers instead of allocating a [`Perm`].
#[inline]
fn arrangement_rank_img(image: &[u16]) -> usize {
    let mut buf = [0u8; FLAT_SCHEDULE_MAX_L];
    for (o, &v) in buf.iter_mut().zip(image.iter()) {
        *o = v as u8;
    }
    rank::multiset_rank(&buf[..image.len()]) as usize
}

fn schedule_flat(perms: &[Perm], l: usize, target: Option<&Perm>, full: u32) -> Option<Vec<usize>> {
    let states = factorial(l) as usize * (1usize << l);
    // Discovery bookkeeping: which generator reached each state, and from
    // which state. `via` doubles as the visited set.
    let mut via = vec![VIA_UNSEEN; states];
    let mut parent = vec![0u32; states];
    let start = Perm::identity(l);
    let start_idx = (arrangement_rank(&start) << l) | 1; // block 0 starts leftmost
    via[start_idx] = VIA_START;
    let mut queue: VecDeque<(Perm, u32, u32)> = VecDeque::new();
    queue.push_back((start, 1, start_idx as u32));
    while let Some((arrangement, visited, idx)) = queue.pop_front() {
        for (gi, bp) in perms.iter().enumerate() {
            let arr = arrangement.then(bp);
            let nvis = visited | (1 << arr.image()[0]);
            let nidx = (arrangement_rank(&arr) << l) | nvis as usize;
            if via[nidx] != VIA_UNSEEN {
                continue;
            }
            via[nidx] = gi as u8;
            parent[nidx] = idx;
            if nvis == full && target.map(|t| &arr == t).unwrap_or(true) {
                let mut steps = Vec::new();
                let mut cur = nidx;
                while via[cur] != VIA_START {
                    steps.push(via[cur] as usize);
                    cur = parent[cur] as usize;
                }
                steps.reverse();
                return Some(steps);
            }
            queue.push_back((arr, nvis, nidx as u32));
        }
    }
    None
}

fn schedule_hashed(
    perms: &[Perm],
    l: usize,
    target: Option<&Perm>,
    full: u32,
) -> Option<Vec<usize>> {
    let start = (Perm::identity(l), 1u32);
    let done =
        |state: &(Perm, u32)| state.1 == full && target.map(|t| &state.0 == t).unwrap_or(true);
    if done(&start) {
        return Some(vec![]);
    }
    let mut prev: FxHashMap<(Perm, u32), (usize, (Perm, u32))> = FxHashMap::default();
    prev.insert(start.clone(), (usize::MAX, start.clone()));
    let mut queue = VecDeque::new();
    queue.push_back(start.clone());
    while let Some(state) = queue.pop_front() {
        for (gi, bp) in perms.iter().enumerate() {
            let arr = state.0.then(bp);
            let visited = state.1 | (1 << arr.image()[0]);
            let nstate = (arr, visited);
            if prev.contains_key(&nstate) {
                continue;
            }
            prev.insert(nstate.clone(), (gi, state.clone()));
            if done(&nstate) {
                let mut steps = Vec::new();
                let mut cur = nstate;
                while cur != start {
                    let (gi, parent) = prev[&cur].clone();
                    steps.push(gi);
                    cur = parent;
                }
                steps.reverse();
                return Some(steps);
            }
            queue.push_back(nstate);
        }
    }
    None
}

/// Hierarchical router over tuple node ids.
pub struct TupleRouter<'n> {
    tn: &'n TupleNetwork,
    /// nucleus distances, row-major.
    ndist: Vec<u16>,
    /// default schedule (plain networks).
    schedule: Vec<usize>,
}

impl<'n> TupleRouter<'n> {
    /// Precompute nucleus distances and the default schedule.
    pub fn new(tn: &'n TupleNetwork) -> Result<Self> {
        let m = tn.m_nodes();
        let mut ndist = vec![u16::MAX; m * m];
        for a in 0..m as u32 {
            for (b, d) in algo::bfs(&tn.nucleus, a).into_iter().enumerate() {
                if d != algo::UNREACHABLE {
                    ndist[a as usize * m + b] = d as u16;
                }
            }
        }
        let schedule = schedule_over_perms(&tn.block_perms, tn.l, None).ok_or_else(|| {
            IpgError::InvalidSpec {
                reason: "some super-symbol can never reach the leftmost position".into(),
            }
        })?;
        Ok(TupleRouter {
            tn,
            ndist,
            schedule,
        })
    }

    fn nd(&self, a: u32, b: u32) -> u16 {
        self.ndist[a as usize * self.tn.m_nodes() + b as usize]
    }

    /// Nucleus-route coordinate 0 of `tuple` to value `target`, pushing
    /// every intermediate node id.
    fn sort_coord0(
        &self,
        order_idx: u32,
        tuple: &mut [u32],
        target: u32,
        path: &mut Vec<u32>,
    ) -> Result<()> {
        while tuple[0] != target {
            let d = self.nd(tuple[0], target);
            if d == u16::MAX {
                return Err(IpgError::Unreachable {
                    from: tuple[0],
                    to: target,
                });
            }
            let mut advanced = false;
            for &nb in self.tn.nucleus.neighbors(tuple[0]) {
                if self.nd(nb, target) + 1 == d {
                    tuple[0] = nb;
                    path.push(self.tn.encode(order_idx, tuple));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return Err(IpgError::InvalidSpec {
                    reason: "nucleus distance table inconsistent".into(),
                });
            }
        }
        Ok(())
    }

    /// Route between two node ids, returning the node-id path (inclusive).
    /// Path length ≤ `l·D_G + t` (Theorem 4.1) for plain networks, and
    /// ≤ `l·D_G + t_S` for symmetric ones (Theorem 4.3).
    pub fn route(&self, src: u32, dst: u32) -> Result<Vec<u32>> {
        let l = self.tn.l;
        let (src_o, src_t) = self.tn.decode(src);
        let (dst_o, dst_t) = self.tn.decode(dst);

        // Required final block arrangement. For plain networks any
        // all-visiting schedule works; for symmetric ones the block-order
        // components must match: σ_dst = σ_src ∘ β  ⇒  β = σ_src⁻¹ σ_dst.
        let schedule: Vec<usize> = if self.tn.order_count() == 1 {
            self.schedule.clone()
        } else {
            let sigma_src = self.tn.order_perm(src_o);
            let sigma_dst = self.tn.order_perm(dst_o);
            // σ_src.then(β) = σ_dst  ⇒  β = σ_src⁻¹.then(σ_dst)
            let beta = sigma_src.inverse().then(sigma_dst);
            schedule_over_perms(&self.tn.block_perms, l, Some(&beta)).ok_or_else(|| {
                IpgError::InvalidSpec {
                    reason: "required block arrangement unreachable".into(),
                }
            })?
        };

        // final position of the block initially at position i
        let mut arrangement = Perm::identity(l);
        for &gi in &schedule {
            arrangement = arrangement.then(&self.tn.block_perms[gi]);
        }
        let inv = arrangement.inverse();
        let final_pos: Vec<usize> = (0..l).map(|i| inv.image()[i] as usize).collect();

        let mut order = src_o;
        let mut tuple = src_t;
        let mut path = vec![src];
        self.sort_coord0(order, &mut tuple, dst_t[final_pos[0]], &mut path)?;

        let mut sorted = vec![false; l];
        sorted[0] = true;
        let mut arr = Perm::identity(l);
        let mut buf = vec![0u32; l];
        for &gi in &schedule {
            let bp = &self.tn.block_perms[gi];
            arr = arr.then(bp);
            for (j, slot) in buf.iter_mut().enumerate() {
                *slot = tuple[bp.image()[j] as usize];
            }
            tuple.copy_from_slice(&buf);
            order = self.tn.order_apply(order, gi);
            let next = self.tn.encode(order, &tuple);
            // a super-generator may fix the current node (e.g. swapping
            // two equal blocks); that is a no-op, not a link traversal
            // ipg-analyze: allow(PANIC001) reason="path starts with src and only grows"
            if next != *path.last().expect("non-empty") {
                path.push(next);
            }
            let origin = arr.image()[0] as usize;
            if !sorted[origin] {
                sorted[origin] = true;
                self.sort_coord0(order, &mut tuple, dst_t[final_pos[origin]], &mut path)?;
            }
        }
        // ipg-analyze: allow(PANIC001) reason="path starts with src and only grows"
        let last = *path.last().expect("non-empty");
        if last != dst {
            return Err(IpgError::InvalidSpec {
                reason: format!("tuple routing ended at {last} not {dst}"),
            });
        }
        Ok(path)
    }
}

// ---------------------------------------------------------------------------
// Exact-distance table-free routing
// ---------------------------------------------------------------------------

/// Largest `l` supported by [`ShortestTupleRouter`] (its word tables are
/// flat `l!·2^l` arrays, the same bound as [`FLAT_SCHEDULE_MAX_L`]).
pub const SHORTEST_ROUTER_MAX_L: usize = FLAT_SCHEDULE_MAX_L;

/// Distance sentinel: unreachable.
const DIST_INF: u32 = u32::MAX;

/// A candidate final block arrangement: its flat rank, the inverse image
/// (`inv[q]` = final position of the block starting at position `q`), and
/// the shortest word length realizing it with no visit requirement.
struct ProductCand {
    rank: u32,
    inv: [u8; FLAT_SCHEDULE_MAX_L],
    base: u16,
}

/// Exact shortest-path router over tuple node ids — the codec-backed
/// `next_hop` used by the `ipg-sim` engine on super-IP networks.
///
/// Unlike [`TupleRouter`] (the literal Theorem-4.1 schedule, whose paths
/// only meet the *diameter* bound), this router computes the true graph
/// distance of [`TupleNetwork::build`]'s symmetrized graph and walks it
/// one hop at a time, so iterated `next_hop` reproduces BFS-shortest path
/// lengths with `O(M² + l!·2^l)` memory — no `O(N²)` table.
///
/// Distance formula: a path from `u` to `d` projects onto a word `w` over
/// the inverse-closed super-generator set with product `π` (constrained to
/// `σ_u⁻¹σ_d` on symmetric seeds), plus nucleus corrections applied to a
/// block only while it sits at position 0. Writing `fp(q)` for the final
/// position of the block starting at `q` (`fp = π⁻¹`),
///
/// ```text
/// dist(u,d) = min over π [ Σ_q ndist(t_u[q], t_d[fp(q)])
///                          + W(π, {q : t_u[q] ≠ t_d[fp(q)]}) ]
/// ```
///
/// where `W(π, V)` is the shortest word with product `π` whose prefix
/// products put every block of `V` at position 0 at least once. `≤` holds
/// because every such plan is realizable as a walk (steps fixing the node
/// cost nothing), `≥` because projecting any path yields such a plan.
/// `W` comes from one BFS over `(arrangement, visited)` states followed by
/// a superset-min sweep over the visited masks.
pub struct ShortestTupleRouter {
    tn: TupleNetwork,
    /// Super-generator block perms closed under inverses (the symmetrized
    /// graph contains the reverse arc of every non-involutive generator).
    gens: Vec<Perm>,
    /// nucleus distances, row-major `M×M`.
    ndist: Vec<u16>,
    /// `wmin[rank·2^l | V] = min over V' ⊇ V of W_exact(arrangement, V')`.
    wmin: Vec<u16>,
    /// Reachable products, sorted by `base` for early-exit pruning.
    prods: Vec<ProductCand>,
    /// Order transitions under `gens` (empty for plain seeds):
    /// `order_next[oi·gens.len() + gi]`.
    order_next: Vec<u32>,
}

impl ShortestTupleRouter {
    /// Precompute nucleus distances and the word tables. Errors when
    /// `l > SHORTEST_ROUTER_MAX_L`.
    pub fn new(tn: TupleNetwork) -> Result<Self> {
        let l = tn.l;
        if l > SHORTEST_ROUTER_MAX_L {
            return Err(IpgError::InvalidSpec {
                reason: format!(
                    "table-free routing supports l <= {SHORTEST_ROUTER_MAX_L}, got {l}"
                ),
            });
        }
        let m = tn.m_nodes();
        let mut ndist = vec![u16::MAX; m * m];
        for a in 0..m as u32 {
            for (b, d) in algo::bfs(&tn.nucleus, a).into_iter().enumerate() {
                if d != algo::UNREACHABLE {
                    ndist[a as usize * m + b] = d as u16;
                }
            }
        }

        // close the generator set under inverses, preserving order
        let mut gens = tn.block_perms.clone();
        for bp in &tn.block_perms {
            let inv = bp.inverse();
            if !gens.contains(&inv) {
                gens.push(inv);
            }
        }

        // BFS over (arrangement, visited-blocks) states; `visited` tracks
        // which blocks occupied position 0 after some prefix (block 0
        // starts there).
        let states = factorial(l) as usize * (1usize << l);
        let mut wmin = vec![u16::MAX; states];
        let start = Perm::identity(l);
        let start_idx = (arrangement_rank(&start) << l) | 1;
        wmin[start_idx] = 0;
        let mut reached: Vec<(u32, Perm)> = vec![(arrangement_rank(&start) as u32, start.clone())];
        let mut queue: VecDeque<(Perm, u32)> = VecDeque::new();
        queue.push_back((start, 1));
        while let Some((arrangement, visited)) = queue.pop_front() {
            let here = wmin[(arrangement_rank(&arrangement) << l) | visited as usize];
            for bp in &gens {
                let arr = arrangement.then(bp);
                let nvis = visited | (1 << arr.image()[0]);
                let rank = arrangement_rank(&arr);
                let nidx = (rank << l) | nvis as usize;
                if wmin[nidx] != u16::MAX {
                    continue;
                }
                wmin[nidx] = here + 1;
                if !reached.iter().any(|(r, _)| *r == rank as u32) {
                    reached.push((rank as u32, arr.clone()));
                }
                queue.push_back((arr, nvis));
            }
        }
        // superset-min over the visited masks of each arrangement row
        for row in wmin.chunks_mut(1 << l) {
            for b in 0..l {
                let bit = 1usize << b;
                for v in 0..row.len() {
                    if v & bit == 0 {
                        row[v] = row[v].min(row[v | bit]);
                    }
                }
            }
        }

        let mut prods: Vec<ProductCand> = reached
            .into_iter()
            .map(|(rank, p)| {
                let mut inv = [0u8; FLAT_SCHEDULE_MAX_L];
                for (o, &v) in inv.iter_mut().zip(p.inverse().image().iter()) {
                    *o = v as u8;
                }
                let base = wmin[(rank as usize) << l];
                ProductCand { rank, inv, base }
            })
            .collect();
        prods.sort_by_key(|c| c.base);

        // order transitions for the closed generator set (symmetric seeds):
        // the order group is closed, so every σ·g⁻¹ is a member.
        let order_next = if tn.order_count() > 1 {
            let index: FxHashMap<&Perm, u32> = (0..tn.order_count() as u32)
                .map(|i| (tn.order_perm(i), i))
                .collect();
            let mut table = vec![0u32; tn.order_count() * gens.len()];
            for oi in 0..tn.order_count() as u32 {
                for (gi, g) in gens.iter().enumerate() {
                    let prod = tn.order_perm(oi).then(g);
                    let Some(&next) = index.get(&prod) else {
                        return Err(IpgError::InvalidSpec {
                            reason: "block-order group is not closed under the generators".into(),
                        });
                    };
                    table[oi as usize * gens.len() + gi] = next;
                }
            }
            table
        } else {
            Vec::new()
        };

        Ok(ShortestTupleRouter {
            tn,
            gens,
            ndist,
            wmin,
            prods,
            order_next,
        })
    }

    /// The underlying network.
    pub fn network(&self) -> &TupleNetwork {
        &self.tn
    }

    #[inline]
    fn nd(&self, a: u32, b: u32) -> u16 {
        self.ndist[a as usize * self.tn.m_nodes() + b as usize]
    }

    /// Cost of one candidate product: nucleus corrections plus the word.
    #[inline]
    fn eval(&self, rank: u32, inv: &[u8], ut: &[u32], dt: &[u32]) -> u32 {
        let l = self.tn.l;
        let mut mism = 0usize;
        let mut nc = 0u32;
        for (q, &u_val) in ut.iter().enumerate() {
            let nd = self.nd(u_val, dt[inv[q] as usize]);
            if nd == u16::MAX {
                return DIST_INF;
            }
            nc += nd as u32;
            if nd > 0 {
                mism |= 1 << q;
            }
        }
        let w = self.wmin[((rank as usize) << l) | mism];
        if w == u16::MAX {
            return DIST_INF;
        }
        nc + w as u32
    }

    /// Distance between decoded endpoints (`DIST_INF` when unreachable).
    fn dist_parts(&self, uo: u32, ut: &[u32], do_: u32, dt: &[u32]) -> u32 {
        if self.tn.order_count() > 1 {
            // The product is forced: σ_u.then(π) = σ_d. Compose
            // β = σ_u⁻¹∘σ_d and its inverse in stack buffers — this runs
            // once per neighbor per hop, so it must not allocate.
            let su = self.tn.order_perm(uo).image();
            let sd = self.tn.order_perm(do_).image();
            let mut inv_u = [0u16; FLAT_SCHEDULE_MAX_L];
            for (j, &p) in su.iter().enumerate() {
                inv_u[p as usize] = j as u16;
            }
            let mut beta = [0u16; FLAT_SCHEDULE_MAX_L];
            for (b, &p) in beta.iter_mut().zip(sd.iter()) {
                *b = inv_u[p as usize];
            }
            let rank = arrangement_rank_img(&beta[..sd.len()]) as u32;
            let mut inv = [0u8; FLAT_SCHEDULE_MAX_L];
            for (i, &b) in beta[..sd.len()].iter().enumerate() {
                inv[b as usize] = i as u8;
            }
            self.eval(rank, &inv, ut, dt)
        } else {
            let mut best = DIST_INF;
            for c in &self.prods {
                if (c.base as u32) >= best {
                    break; // sorted by base: nothing cheaper follows
                }
                best = best.min(self.eval(c.rank, &c.inv, ut, dt));
            }
            best
        }
    }

    /// Graph distance from `u` to `d` (`None` when unreachable).
    pub fn dist(&self, u: u32, d: u32) -> Option<u32> {
        if u == d {
            return Some(0);
        }
        let l = self.tn.l;
        let mut ut = [0u32; FLAT_SCHEDULE_MAX_L];
        let mut dt = [0u32; FLAT_SCHEDULE_MAX_L];
        let uo = self.tn.decode_into(u, &mut ut[..l]);
        let do_ = self.tn.decode_into(d, &mut dt[..l]);
        match self.dist_parts(uo, &ut[..l], do_, &dt[..l]) {
            DIST_INF => None,
            v => Some(v),
        }
    }

    /// First hop of a shortest path from `u` to `d`: the first neighbor
    /// (nucleus arcs in CSR order, then super-generators in closed-set
    /// order) whose distance to `d` is one less — so iterating `next_hop`
    /// yields a path of length exactly `dist(u, d)`, deterministically.
    pub fn next_hop(&self, u: u32, d: u32) -> Option<u32> {
        if u == d {
            return None;
        }
        let l = self.tn.l;
        let mut ut = [0u32; FLAT_SCHEDULE_MAX_L];
        let mut dt = [0u32; FLAT_SCHEDULE_MAX_L];
        let mut vt = [0u32; FLAT_SCHEDULE_MAX_L];
        let uo = self.tn.decode_into(u, &mut ut[..l]);
        let do_ = self.tn.decode_into(d, &mut dt[..l]);
        let here = self.dist_parts(uo, &ut[..l], do_, &dt[..l]);
        if here == DIST_INF {
            return None;
        }
        // nucleus arcs: coordinate 0 has mixed-radix weight 1
        let t0 = ut[0];
        let base_id = u - t0;
        for &nb in self.tn.nucleus.neighbors(t0) {
            ut[0] = nb;
            let v = self.dist_parts(uo, &ut[..l], do_, &dt[..l]);
            if v != DIST_INF && v + 1 == here {
                return Some(base_id + nb);
            }
        }
        ut[0] = t0;
        // super-generator arcs (the closed set covers the symmetrized
        // reverse arcs of non-involutive generators)
        for (gi, g) in self.gens.iter().enumerate() {
            for (j, slot) in vt[..l].iter_mut().enumerate() {
                *slot = ut[g.image()[j] as usize];
            }
            let vo = if self.order_next.is_empty() {
                0
            } else {
                self.order_next[uo as usize * self.gens.len() + gi]
            };
            let vid = self.tn.encode(vo, &vt[..l]);
            if vid == u {
                continue; // generator fixes the node: a dropped self-loop
            }
            let v = self.dist_parts(vo, &vt[..l], do_, &dt[..l]);
            if v != DIST_INF && v + 1 == here {
                return Some(vid);
            }
        }
        None
    }

    /// Shortest node-id path `u -> d` (inclusive); its length is exactly
    /// `dist(u, d)`.
    pub fn path(&self, u: u32, d: u32) -> Result<Vec<u32>> {
        let mut path = vec![u];
        let mut cur = u;
        while cur != d {
            match self.next_hop(cur, d) {
                Some(next) => {
                    cur = next;
                    path.push(cur);
                }
                None => {
                    return Err(IpgError::Unreachable { from: u, to: d });
                }
            }
        }
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Csr;
    use crate::superip::{NucleusSpec, SeedKind, SuperIpSpec, TupleNetwork};

    fn check_all_pairs(spec: &SuperIpSpec) {
        let tn = TupleNetwork::from_spec(spec).unwrap();
        let g = tn.build();
        let router = TupleRouter::new(&tn).unwrap();
        let bound = crate::routing::predicted_diameter(spec).unwrap() as usize;
        for u in 0..g.node_count() as u32 {
            for v in 0..g.node_count() as u32 {
                let path = router.route(u, v).unwrap();
                assert_eq!(path[0], u);
                assert_eq!(*path.last().unwrap(), v);
                for w in path.windows(2) {
                    assert!(
                        g.has_arc(w[0], w[1]),
                        "{}: {} -> {} not an arc",
                        spec.name,
                        w[0],
                        w[1]
                    );
                }
                assert!(path.len() - 1 <= bound, "{}: {u}->{v}", spec.name);
            }
        }
    }

    #[test]
    fn all_pairs_hsn() {
        check_all_pairs(&SuperIpSpec::hsn(2, NucleusSpec::hypercube(2)));
        check_all_pairs(&SuperIpSpec::hsn(3, NucleusSpec::hypercube(1)));
    }

    #[test]
    fn all_pairs_cn_and_flip() {
        check_all_pairs(&SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(1)));
        check_all_pairs(&SuperIpSpec::superflip(3, NucleusSpec::hypercube(1)));
    }

    #[test]
    fn all_pairs_symmetric() {
        check_all_pairs(&SuperIpSpec::hsn(2, NucleusSpec::hypercube(1)).symmetric());
        check_all_pairs(&SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(1)).symmetric());
    }

    #[test]
    fn agrees_with_label_router() {
        let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2));
        let tn = TupleNetwork::from_spec(&spec).unwrap();
        let tr = TupleRouter::new(&tn).unwrap();
        let sr = crate::routing::SuperRouter::new(&spec).unwrap();
        let ip = spec.to_ip_spec().generate().unwrap();
        let iso = crate::superip::explicit_isomorphism(&spec, &ip, &tn).unwrap();
        for (u, v) in [(0u32, 15u32), (3, 9), (12, 4)] {
            let lp = sr.route(ip.label(u), ip.label(v)).unwrap();
            let tp = tr.route(iso[u as usize], iso[v as usize]).unwrap();
            assert_eq!(lp.len(), tp.len(), "route lengths must agree");
        }
    }

    /// All-pairs check: `ShortestTupleRouter::dist` equals BFS distance on
    /// the materialized graph, and iterated `next_hop` realizes it.
    fn check_shortest_matches_bfs(tn: TupleNetwork) {
        let g = tn.build();
        let name = tn.name.clone();
        let r = ShortestTupleRouter::new(tn).unwrap();
        for u in 0..g.node_count() as u32 {
            let dist = algo::bfs(&g, u);
            for v in 0..g.node_count() as u32 {
                let d = dist[v as usize];
                assert_ne!(d, algo::UNREACHABLE, "{name}: {u}->{v} disconnected");
                assert_eq!(r.dist(u, v), Some(d), "{name}: dist {u}->{v}");
                let p = r.path(u, v).unwrap();
                assert_eq!(p.len() as u32 - 1, d, "{name}: path length {u}->{v}");
                assert_eq!(p[0], u);
                assert_eq!(*p.last().unwrap(), v);
                for w in p.windows(2) {
                    assert!(
                        g.has_arc(w[0], w[1]),
                        "{name}: {}->{} not an arc",
                        w[0],
                        w[1]
                    );
                }
            }
        }
    }

    #[test]
    fn shortest_matches_bfs_on_plain_families() {
        for spec in [
            SuperIpSpec::hsn(2, NucleusSpec::hypercube(2)),
            SuperIpSpec::hsn(3, NucleusSpec::hypercube(1)),
            SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(1)),
            SuperIpSpec::complete_cn(3, NucleusSpec::hypercube(1)),
            SuperIpSpec::superflip(3, NucleusSpec::hypercube(1)),
        ] {
            check_shortest_matches_bfs(TupleNetwork::from_spec(&spec).unwrap());
        }
    }

    #[test]
    fn shortest_matches_bfs_on_symmetric_families() {
        for spec in [
            SuperIpSpec::hsn(2, NucleusSpec::hypercube(1)).symmetric(),
            SuperIpSpec::hsn(2, NucleusSpec::hypercube(2)).symmetric(),
            SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(1)).symmetric(),
        ] {
            check_shortest_matches_bfs(TupleNetwork::from_spec(&spec).unwrap());
        }
    }

    #[test]
    fn shortest_handles_non_involutive_generators() {
        // dir-CN's single rotation L_1 is not self-inverse: the symmetrized
        // graph contains R_1 arcs the router must route over too.
        let spec = SuperIpSpec::directed_ring_cn(3, NucleusSpec::hypercube(1));
        check_shortest_matches_bfs(TupleNetwork::from_spec(&spec).unwrap());
        // same situation over a triangle nucleus via the raw constructor
        let triangle = Csr::from_fn(3, |u, row| {
            row.push((u + 1) % 3);
            row.push((u + 2) % 3);
        });
        let tn = TupleNetwork::new(
            "rot3-C3",
            triangle,
            3,
            vec![Perm::cyclic_left(3, 1)],
            SeedKind::Repeated,
        );
        check_shortest_matches_bfs(tn);
    }

    #[test]
    fn shortest_beats_or_matches_schedule_router() {
        // the Theorem-4.1 schedule router meets the diameter bound but is
        // not shortest; the shortest router must never be longer
        let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2));
        let tn = TupleNetwork::from_spec(&spec).unwrap();
        let sched = TupleRouter::new(&tn).unwrap();
        let short = ShortestTupleRouter::new(tn.clone()).unwrap();
        let mut strictly_shorter = 0;
        for u in 0..tn.node_count() as u32 {
            for v in 0..tn.node_count() as u32 {
                let a = short.path(u, v).unwrap().len();
                let b = sched.route(u, v).unwrap().len();
                assert!(a <= b, "{u}->{v}: shortest {a} vs schedule {b}");
                if a < b {
                    strictly_shorter += 1;
                }
            }
        }
        assert!(strictly_shorter > 0, "expected some strictly shorter pairs");
    }

    #[test]
    fn shortest_router_scales_past_the_table_bound() {
        // CN(5, Q3): 2^15 nodes — an O(N²) table would be a gigabyte.
        // The router's tables are O(M² + l!·2^l); verify sampled distances
        // against one true BFS of the built graph.
        let nucleus = crate::superip::NucleusSpec::hypercube(3)
            .generate()
            .unwrap()
            .to_undirected_csr();
        let perms: Vec<Perm> = (1..5).map(|s| Perm::cyclic_left(5, s)).collect();
        let tn = TupleNetwork::new("CN(5,Q3)", nucleus, 5, perms, SeedKind::Repeated);
        assert_eq!(tn.node_count(), 1 << 15);
        let g = tn.build();
        let r = ShortestTupleRouter::new(tn).unwrap();
        let dist = algo::bfs(&g, 0);
        let n = g.node_count() as u32;
        for i in 0..64u32 {
            let v = i * (n / 64) + 17 * i % (n / 64);
            assert_eq!(r.dist(0, v), Some(dist[v as usize]), "0->{v}");
        }
        let far = (n - 1, dist[n as usize - 1]);
        let p = r.path(0, far.0).unwrap();
        assert_eq!(p.len() as u32 - 1, far.1);
        for w in p.windows(2) {
            assert!(g.has_arc(w[0], w[1]));
        }
    }

    #[test]
    fn rejects_oversized_l() {
        let tn = TupleNetwork::new(
            "big-l",
            Csr::from_fn(2, |u, row| row.push(1 - u)),
            8,
            vec![Perm::cyclic_left(8, 1)],
            SeedKind::Repeated,
        );
        assert!(ShortestTupleRouter::new(tn).is_err());
    }

    #[test]
    fn routes_on_large_network_without_building_it() {
        // CN(5, Q4): 2^20 nodes; the router needs only the 16-node
        // nucleus table and the schedule.
        let nucleus = crate::superip::NucleusSpec::hypercube(4)
            .generate()
            .unwrap()
            .to_undirected_csr();
        let perms: Vec<Perm> = (1..5).map(|s| Perm::cyclic_left(5, s)).collect();
        let tn = TupleNetwork::new("CN(5,Q4)", nucleus, 5, perms, SeedKind::Repeated);
        assert_eq!(tn.node_count(), 1 << 20);
        let router = TupleRouter::new(&tn).unwrap();
        let path = router.route(0, (1 << 20) - 1).unwrap();
        assert!(path.len() - 1 <= 24); // (4+1)·5 − 1
                                       // verify the walk against locally computed neighbor sets
        let g_small_check = |a: u32, b: u32| -> bool {
            let (oa, ta) = tn.decode(a);
            let (_, tb) = tn.decode(b);
            // nucleus move?
            if ta[1..] == tb[1..] && tn.nucleus.has_arc(ta[0], tb[0]) {
                return true;
            }
            // supergen move?
            for (gi, bp) in tn.block_perms.iter().enumerate() {
                let mut img = vec![0u32; tn.l];
                for (j, slot) in img.iter_mut().enumerate() {
                    *slot = ta[bp.image()[j] as usize];
                }
                if img == tb && tn.encode(tn.order_apply(oa, gi), &img) == b {
                    return true;
                }
            }
            false
        };
        for w in path.windows(2) {
            assert!(g_small_check(w[0], w[1]), "{} -> {}", w[0], w[1]);
        }
    }
}
