//! Ranking and unranking of labels: lexicographic index ↔ label, for
//! permutations (Cayley-graph labels) and multiset arrangements (general
//! IP-graph labels).
//!
//! When an IP graph's node set is the *full* arrangement orbit of its seed
//! multiset (true for star/pancake graphs and, blockwise, for every
//! super-IP family in this workspace), ranking gives an `O(k²)`,
//! allocation-free node-id computation — an alternative to the hash-based
//! interning the generator uses, and the basis for compact routing-table
//! indexing.

/// Number of distinct arrangements of a multiset given per-symbol counts:
/// `(Σc)! / Π cᵢ!`. Panics on u64 overflow (labels ≤ 20 distinct-symbol
/// positions are always safe).
pub fn multiset_count(counts: &[u32]) -> u64 {
    let total: u32 = counts.iter().sum();
    // incremental binomial product avoids intermediate factorial overflow:
    // C(total, c1)·C(total−c1, c2)·…
    let mut remaining = total;
    let mut result: u64 = 1;
    for &c in counts {
        result = result
            .checked_mul(binomial(remaining, c))
            // ipg-analyze: allow(PANIC001) reason="deliberate overflow guard: label spaces past u64 are unsupported"
            .expect("multiset count overflows u64");
        remaining -= c;
    }
    result
}

fn binomial(n: u32, k: u32) -> u64 {
    let k = k.min(n - k.min(n));
    let mut num: u64 = 1;
    for i in 0..k as u64 {
        num = num
            .checked_mul(n as u64 - i)
            // ipg-analyze: allow(PANIC001) reason="deliberate overflow guard: label spaces past u64 are unsupported"
            .expect("binomial overflows u64")
            / (i + 1);
    }
    num
}

/// Lexicographic rank of `label` among all arrangements of its multiset.
pub fn multiset_rank(label: &[u8]) -> u64 {
    let mut counts = [0u32; 256];
    for &s in label {
        counts[s as usize] += 1;
    }
    let mut rank = 0u64;
    for (i, &s) in label.iter().enumerate() {
        let remaining = (label.len() - i) as u32;
        for smaller in 0..s as usize {
            if counts[smaller] == 0 {
                continue;
            }
            // arrangements of the remaining positions if we placed
            // `smaller` here
            counts[smaller] -= 1;
            rank += arrangements_of(&counts, remaining - 1);
            counts[smaller] += 1;
        }
        counts[s as usize] -= 1;
    }
    rank
}

fn arrangements_of(counts: &[u32; 256], total: u32) -> u64 {
    debug_assert_eq!(counts.iter().sum::<u32>(), total);
    let mut remaining = total;
    let mut result: u64 = 1;
    for &c in counts.iter().filter(|&&c| c > 0) {
        result *= binomial(remaining, c);
        remaining -= c;
    }
    result
}

/// Inverse of [`multiset_rank`]: the `rank`-th arrangement (lexicographic)
/// of the multiset given by `counts` (`counts[s]` = multiplicity of symbol
/// `s`). Returns `None` if `rank` is out of range.
pub fn multiset_unrank(counts: &[u32], rank: u64) -> Option<Vec<u8>> {
    assert!(counts.len() <= 256);
    let mut cnt = [0u32; 256];
    cnt[..counts.len()].copy_from_slice(counts);
    let total: u32 = counts.iter().sum();
    if rank >= multiset_count(counts) {
        return None;
    }
    let mut rank = rank;
    let mut out = Vec::with_capacity(total as usize);
    for pos in 0..total {
        let remaining = total - pos;
        let mut placed = false;
        for s in 0..256usize {
            if cnt[s] == 0 {
                continue;
            }
            cnt[s] -= 1;
            let block = arrangements_of(&cnt, remaining - 1);
            if rank < block {
                out.push(s as u8);
                placed = true;
                break;
            }
            rank -= block;
            cnt[s] += 1;
        }
        debug_assert!(placed, "rank exhausted prematurely");
    }
    Some(out)
}

/// Lexicographic rank of a permutation label (all symbols distinct) —
/// the factoradic specialization of [`multiset_rank`].
pub fn perm_rank(label: &[u8]) -> u64 {
    debug_assert!(
        crate::label::Label::from(label).has_distinct_symbols(),
        "perm_rank needs distinct symbols"
    );
    multiset_rank(label)
}

/// The `rank`-th permutation (lexicographic) of the sorted symbol slice.
pub fn perm_unrank(symbols: &[u8], rank: u64) -> Option<Vec<u8>> {
    let mut counts = [0u32; 256];
    for &s in symbols {
        counts[s as usize] += 1;
    }
    multiset_unrank(&counts, rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(multiset_count(&[1, 1, 1]), 6); // 3 distinct
        assert_eq!(multiset_count(&[2, 2]), 6); // aabb arrangements
        assert_eq!(multiset_count(&[3]), 1);
        // HCN(2,2)-style label: 2 of each of 4 symbols
        assert_eq!(multiset_count(&[2, 2, 2, 2]), 2520);
    }

    #[test]
    fn rank_first_and_last() {
        assert_eq!(multiset_rank(&[0, 0, 1, 1]), 0);
        assert_eq!(multiset_rank(&[1, 1, 0, 0]), 5);
        assert_eq!(multiset_rank(&[1, 2, 3]), 0);
        assert_eq!(multiset_rank(&[3, 2, 1]), 5);
    }

    #[test]
    fn rank_unrank_roundtrip_multiset() {
        let counts = [2u32, 1, 2];
        let total = multiset_count(&counts);
        assert_eq!(total, 30);
        let mut prev: Option<Vec<u8>> = None;
        for r in 0..total {
            let label = multiset_unrank(&counts, r).unwrap();
            assert_eq!(multiset_rank(&label), r);
            if let Some(p) = &prev {
                assert!(p < &label, "lexicographic order violated at {r}");
            }
            prev = Some(label);
        }
        assert_eq!(multiset_unrank(&counts, total), None);
    }

    #[test]
    fn perm_rank_factoradic() {
        // 4-symbol permutations of 1234: rank of 1234 is 0, of 4321 is 23.
        assert_eq!(perm_rank(&[1, 2, 3, 4]), 0);
        assert_eq!(perm_rank(&[4, 3, 2, 1]), 23);
        assert_eq!(perm_unrank(&[1, 2, 3, 4], 0).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(perm_unrank(&[1, 2, 3, 4], 23).unwrap(), vec![4, 3, 2, 1]);
    }

    #[test]
    fn ranks_cover_star_graph() {
        // all 120 labels of the 5-star get distinct ranks < 120
        let ip = crate::spec::IpGraphSpec::star(5).generate().unwrap();
        let mut seen = [false; 120];
        for v in 0..ip.node_count() as u32 {
            let r = perm_rank(ip.label(v).symbols()) as usize;
            assert!(r < 120);
            assert!(!seen[r]);
            seen[r] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn ranks_cover_section2_orbit_subset() {
        // the §2 example's orbit (36 nodes) is a strict subset of its
        // multiset's 90 arrangements; ranks are distinct and < 90.
        let ip = crate::spec::IpGraphSpec::section2_example()
            .generate()
            .unwrap();
        let mut ranks: Vec<u64> = (0..ip.node_count() as u32)
            .map(|v| multiset_rank(ip.label(v).symbols()))
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        assert_eq!(ranks.len(), 36);
        assert!(*ranks.last().unwrap() < 90);
        assert_eq!(multiset_count(&[0, 2, 2, 2]), 90);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
    }
}
