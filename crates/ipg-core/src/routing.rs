//! Routing in (symmetric) super-IP graphs — the constructive algorithm of
//! Theorem 4.1 and the super-generator schedules it relies on.
//!
//! Routing in an IP graph is *sorting the source label into the destination
//! label* (paper §4). For super-IP graphs the algorithm is:
//!
//! 1. pick a `t`-step schedule of super-generators that brings every
//!    super-symbol to the leftmost position at least once (for symmetric
//!    graphs, a `t_S`-step schedule that additionally realizes the required
//!    final block arrangement, Theorem 4.3);
//! 2. sort the leftmost super-symbol to its destination value with nucleus
//!    generators (≤ `D_G` steps);
//! 3. run the schedule, sorting each super-symbol the first time it arrives
//!    at the leftmost position.
//!
//! Total: ≤ `l·D_G + t` steps, which Theorem 4.1 shows is exactly the
//! diameter.

use crate::algo;
use crate::builder::IpGraph;
use crate::error::{IpgError, Result};
use crate::label::Label;
use crate::perm::Perm;
use crate::superip::{SeedKind, SuperIpSpec};

/// A sequence of super-generator indices (into `spec.supers`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Super-generator indices, in application order.
    pub steps: Vec<usize>,
}

impl Schedule {
    /// Number of super-generator applications (the `t` of Theorem 4.1).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when no steps are needed.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// State-space search over (block arrangement, visited set).
///
/// `target`: `None` finds the minimum schedule after which every block has
/// visited the leftmost position (Theorem 4.1's `t`); `Some(perm)`
/// additionally requires the final arrangement to equal `perm`
/// (Theorem 4.3's per-destination requirement).
///
/// Delegates to [`crate::tuple_routing::schedule_over_perms`], which runs
/// over flat per-state arrays (no hashing, no label clones) for `l ≤ 7`.
fn schedule_search(spec: &SuperIpSpec, target: Option<&Perm>) -> Option<Schedule> {
    crate::tuple_routing::schedule_over_perms(&spec.block_perms(), spec.l, target)
        .map(|steps| Schedule { steps })
}

/// Theorem 4.1's `t`: the minimum number of super-generator applications
/// bringing every super-symbol to the leftmost position at least once.
/// `None` if the §3.1 reachability requirement fails.
pub fn t_value(spec: &SuperIpSpec) -> Option<usize> {
    schedule_search(spec, None).map(|s| s.len())
}

/// The minimal schedule realizing Theorem 4.1's `t`.
pub fn min_visit_schedule(spec: &SuperIpSpec) -> Option<Schedule> {
    schedule_search(spec, None)
}

/// The minimal schedule that visits every block and ends in arrangement
/// `target` (needed for symmetric super-IP routing, Theorem 4.3).
pub fn min_visit_schedule_to(spec: &SuperIpSpec, target: &Perm) -> Option<Schedule> {
    schedule_search(spec, Some(target))
}

/// Theorem 4.3's `t_S`: the worst case over all required final block
/// arrangements (all elements of the block-permutation group).
pub fn t_s_value(spec: &SuperIpSpec) -> Option<usize> {
    let group = spec.block_group();
    let mut worst = 0usize;
    for g in &group {
        worst = worst.max(min_visit_schedule_to(spec, g)?.len());
    }
    Some(worst)
}

/// The diameter predicted by Theorem 4.1 (plain seeds) or Theorem 4.3
/// (symmetric seeds): `l·D_G + t` resp. `l·D_G + t_S`.
pub fn predicted_diameter(spec: &SuperIpSpec) -> Result<u32> {
    let nucleus = spec.nucleus.generate()?;
    let d_g = algo::diameter(&nucleus.to_undirected_csr());
    let t = match spec.seed_kind {
        SeedKind::Repeated => t_value(spec),
        SeedKind::DistinctShifted => t_s_value(spec),
    }
    .ok_or_else(|| IpgError::InvalidSpec {
        reason: "some super-symbol can never reach the leftmost position".into(),
    })?;
    Ok(spec.l as u32 * d_g + t as u32)
}

/// Corollary 4.2's closed form for the Section-3 families (`t = l − 1`):
/// `diameter = (D_G + 1)·log_M N − 1 = (D_G + 1)·l − 1`.
pub fn corollary_4_2_diameter(l: usize, nucleus_diameter: u32) -> u32 {
    (nucleus_diameter + 1) * l as u32 - 1
}

/// Hierarchical router for a (symmetric) super-IP graph.
///
/// Precomputes the nucleus all-pairs distance table and the super-generator
/// schedule(s); [`SuperRouter::route`] then produces an explicit label path
/// realizing Theorem 4.1's bound.
pub struct SuperRouter {
    spec: SuperIpSpec,
    nucleus: IpGraph,
    /// nucleus directed distances, row-major `dist[a·M + b]`.
    nucleus_dist: Vec<u16>,
    schedule: Schedule,
    /// expanded full-label permutations: nucleus generators first, then
    /// super-generators (same order as `spec.to_ip_spec()`).
    full_perms: Vec<Perm>,
}

impl SuperRouter {
    /// Build a router for `spec`.
    pub fn new(spec: &SuperIpSpec) -> Result<Self> {
        let nucleus = spec.nucleus.generate()?;
        let g = nucleus.to_directed_csr();
        let m = g.node_count();
        let mut nucleus_dist = vec![u16::MAX; m * m];
        for a in 0..m as u32 {
            for (b, d) in algo::bfs(&g, a).into_iter().enumerate() {
                if d != algo::UNREACHABLE {
                    nucleus_dist[a as usize * m + b] = d as u16;
                }
            }
        }
        let schedule = min_visit_schedule(spec).ok_or_else(|| IpgError::InvalidSpec {
            reason: "some super-symbol can never reach the leftmost position".into(),
        })?;
        let full_perms = spec
            .to_ip_spec()
            .generators
            .into_iter()
            .map(|g| g.perm)
            .collect();
        Ok(SuperRouter {
            spec: spec.clone(),
            nucleus,
            nucleus_dist,
            schedule,
            full_perms,
        })
    }

    /// The spec this router was built for.
    pub fn spec(&self) -> &SuperIpSpec {
        &self.spec
    }

    /// Nucleus distance between two nucleus nodes.
    fn ndist(&self, a: u32, b: u32) -> u16 {
        self.nucleus_dist[a as usize * self.nucleus.node_count() + b as usize]
    }

    /// Identify the nucleus node and color of a block's content.
    fn block_id(&self, block: &[u8]) -> Result<(u32, usize)> {
        let m = self.spec.m();
        match self.spec.seed_kind {
            SeedKind::Repeated => {
                let lab = Label::from(block);
                let id = self
                    .nucleus
                    .node_of(&lab)
                    .ok_or_else(|| IpgError::UnknownLabel {
                        label: lab.to_string(),
                    })?;
                Ok((id, 0))
            }
            SeedKind::DistinctShifted => {
                let nucleus_min = self
                    .nucleus
                    .spec()
                    .seed
                    .symbols()
                    .iter()
                    .copied()
                    .min()
                    .unwrap_or(0) as usize;
                let blk_min = block.iter().copied().min().unwrap_or(0) as usize;
                let c = (blk_min - nucleus_min) / m;
                let lab = Label::from(
                    block
                        .iter()
                        .map(|&s| s - (c * m) as u8)
                        .collect::<Vec<u8>>(),
                );
                let id = self
                    .nucleus
                    .node_of(&lab)
                    .ok_or_else(|| IpgError::UnknownLabel {
                        label: lab.to_string(),
                    })?;
                Ok((id, c))
            }
        }
    }

    /// Sort the leftmost block of `cur` to match `target_block`, appending
    /// every intermediate label to `path`. Uses greedy descent on the
    /// nucleus distance table (≤ `D_G` steps). `scratch` must have the
    /// same length as `cur` (permutation output buffer, no allocation).
    fn sort_leftmost(
        &self,
        cur: &mut Vec<u8>,
        target_block: &[u8],
        path: &mut Vec<Label>,
        scratch: &mut Vec<u8>,
    ) -> Result<()> {
        let m = self.spec.m();
        let (mut a, _) = self.block_id(&cur[..m])?;
        let (b, _) = self.block_id(target_block)?;
        let n_nuc = self.spec.nucleus.spec.generators.len();
        while a != b {
            let d = self.ndist(a, b);
            if d == u16::MAX {
                return Err(IpgError::InvalidSpec {
                    reason: "nucleus graph is not strongly connected".into(),
                });
            }
            let mut advanced = false;
            for gi in 0..n_nuc {
                let succ = self.nucleus.arc(a, gi);
                if self.ndist(succ, b) + 1 == d {
                    // apply the corresponding full-label generator
                    self.full_perms[gi].apply_into(cur, scratch);
                    std::mem::swap(cur, scratch);
                    path.push(Label::from(cur.as_slice()));
                    a = succ;
                    advanced = true;
                    break;
                }
            }
            debug_assert!(advanced, "distance table inconsistent");
            if !advanced {
                return Err(IpgError::InvalidSpec {
                    reason: "nucleus routing failed to advance".into(),
                });
            }
        }
        Ok(())
    }

    /// Route from `src` to `dst`, returning the full label path (inclusive
    /// of both endpoints). The path length is at most `l·D_G + t`
    /// (`l·D_G + t_S` for symmetric graphs).
    pub fn route(&self, src: &Label, dst: &Label) -> Result<Vec<Label>> {
        let l = self.spec.l;
        let m = self.spec.m();
        if src.len() != l * m || dst.len() != l * m {
            return Err(IpgError::UnknownLabel {
                label: format!("bad label length for route: {src} -> {dst}"),
            });
        }
        // Pick the schedule. For symmetric graphs the colors dictate the
        // required final arrangement.
        let schedule = match self.spec.seed_kind {
            SeedKind::Repeated => self.schedule.clone(),
            SeedKind::DistinctShifted => {
                let mut src_colors = Vec::with_capacity(l);
                let mut dst_colors = Vec::with_capacity(l);
                for j in 0..l {
                    src_colors.push(self.block_id(src.block(j, m))?.1);
                    dst_colors.push(self.block_id(dst.block(j, m))?.1);
                }
                // target arrangement A: position j of the result holds the
                // source block whose color is dst_colors[j].
                let mut image = vec![0u16; l];
                for (j, &c) in dst_colors.iter().enumerate() {
                    let i = src_colors
                        .iter()
                        .position(|&sc| sc == c)
                        // ipg-analyze: allow(PANIC001) reason="src and dst colors are rearrangements of one multiset"
                        .expect("colors are a permutation");
                    image[j] = i as u16;
                }
                // ipg-analyze: allow(PANIC001) reason="image built from position() over distinct indices is a bijection"
                let target = Perm::from_image(image).expect("bijection");
                min_visit_schedule_to(&self.spec, &target).ok_or_else(|| IpgError::InvalidSpec {
                    reason: "required block arrangement unreachable".into(),
                })?
            }
        };

        // Final position d_i of the block initially at position i.
        let mut arrangement = Perm::identity(l);
        for &gi in &schedule.steps {
            arrangement = arrangement.then(&self.spec.supers[gi].block_perm(l));
        }
        let inv = arrangement.inverse();
        let final_pos: Vec<usize> = (0..l).map(|i| inv.image()[i] as usize).collect();

        let super_gen_offset = self.spec.nucleus.spec.generators.len();

        let mut cur = src.symbols().to_vec();
        let mut scratch = vec![0u8; cur.len()];
        let mut path = vec![src.clone()];
        // Sort the block currently leftmost (initial position 0).
        self.sort_leftmost(
            &mut cur,
            dst.block(final_pos[0], m),
            &mut path,
            &mut scratch,
        )?;

        let mut sorted = vec![false; l];
        sorted[0] = true;
        let mut arr = Perm::identity(l);
        for &gi in &schedule.steps {
            let bp = self.spec.supers[gi].block_perm(l);
            arr = arr.then(&bp);
            self.full_perms[super_gen_offset + gi].apply_into(&cur, &mut scratch);
            let changed = scratch != cur;
            std::mem::swap(&mut cur, &mut scratch);
            if changed {
                // label fixed points are no-ops, not link traversals
                path.push(Label::from(cur.as_slice()));
            }
            let leftmost_origin = arr.image()[0] as usize;
            if !sorted[leftmost_origin] {
                sorted[leftmost_origin] = true;
                self.sort_leftmost(
                    &mut cur,
                    dst.block(final_pos[leftmost_origin], m),
                    &mut path,
                    &mut scratch,
                )?;
            }
        }
        debug_assert_eq!(
            cur,
            dst.symbols(),
            "routing must terminate at the destination"
        );
        if cur != dst.symbols() {
            return Err(IpgError::InvalidSpec {
                reason: format!("routing ended at {} not {dst}", Label::from(cur)),
            });
        }
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::superip::{NucleusSpec, SuperIpSpec};

    fn check_route_all_pairs(spec: &SuperIpSpec) {
        let ip = spec.to_ip_spec().generate().unwrap();
        let router = SuperRouter::new(spec).unwrap();
        let g = ip.to_undirected_csr();
        let bound = predicted_diameter(spec).unwrap() as usize;
        let mut worst = 0usize;
        for u in 0..ip.node_count() as u32 {
            let du = algo::bfs(&g, u);
            for v in 0..ip.node_count() as u32 {
                let path = router.route(ip.label(u), ip.label(v)).unwrap();
                // path is a real walk
                for w in path.windows(2) {
                    let a = ip.node_of(&w[0]).unwrap();
                    let b = ip.node_of(&w[1]).unwrap();
                    assert!(
                        ip.arcs_of(a).contains(&b),
                        "{}: {} -> {} is not an arc",
                        spec.name,
                        w[0],
                        w[1]
                    );
                }
                let len = path.len() - 1;
                assert!(len >= du[v as usize] as usize, "shorter than BFS?!");
                assert!(
                    len <= bound,
                    "{}: route {} -> {} took {len} > bound {bound}",
                    spec.name,
                    ip.label(u),
                    ip.label(v)
                );
                worst = worst.max(len);
            }
        }
        // Theorem 4.1/4.3: the bound is the exact diameter, and the
        // constructive algorithm attains it on the worst pair.
        assert_eq!(
            algo::diameter(&g) as usize,
            bound,
            "{}: BFS diameter vs predicted",
            spec.name
        );
    }

    #[test]
    fn t_is_l_minus_1_for_section3_families() {
        for l in 2..=5 {
            let nuc = NucleusSpec::hypercube(1);
            assert_eq!(t_value(&SuperIpSpec::hsn(l, nuc.clone())), Some(l - 1));
            assert_eq!(t_value(&SuperIpSpec::ring_cn(l, nuc.clone())), Some(l - 1));
            assert_eq!(
                t_value(&SuperIpSpec::complete_cn(l, nuc.clone())),
                Some(l - 1)
            );
            assert_eq!(
                t_value(&SuperIpSpec::superflip(l, nuc.clone())),
                Some(l - 1)
            );
        }
    }

    #[test]
    fn corollary_4_2_matches_theorem_4_1() {
        for l in 2..=4 {
            for spec in [
                SuperIpSpec::hsn(l, NucleusSpec::hypercube(2)),
                SuperIpSpec::ring_cn(l, NucleusSpec::hypercube(2)),
                SuperIpSpec::complete_cn(l, NucleusSpec::hypercube(2)),
                SuperIpSpec::superflip(l, NucleusSpec::hypercube(2)),
            ] {
                assert_eq!(
                    predicted_diameter(&spec).unwrap(),
                    corollary_4_2_diameter(l, 2),
                    "{}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn routed_paths_valid_hsn2_q2() {
        check_route_all_pairs(&SuperIpSpec::hsn(2, NucleusSpec::hypercube(2)));
    }

    #[test]
    fn routed_paths_valid_hsn3_q1() {
        check_route_all_pairs(&SuperIpSpec::hsn(3, NucleusSpec::hypercube(1)));
    }

    #[test]
    fn routed_paths_valid_ring_cn() {
        check_route_all_pairs(&SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(1)));
        check_route_all_pairs(&SuperIpSpec::ring_cn(4, NucleusSpec::hypercube(1)));
    }

    #[test]
    fn routed_paths_valid_superflip() {
        check_route_all_pairs(&SuperIpSpec::superflip(3, NucleusSpec::hypercube(1)));
    }

    #[test]
    fn routed_paths_valid_complete_cn() {
        check_route_all_pairs(&SuperIpSpec::complete_cn(3, NucleusSpec::hypercube(1)));
    }

    #[test]
    fn routed_paths_valid_star_nucleus() {
        check_route_all_pairs(&SuperIpSpec::hsn(2, NucleusSpec::star(3)));
    }

    #[test]
    fn symmetric_routing_respects_colors() {
        let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(1)).symmetric();
        check_route_all_pairs(&spec);
    }

    #[test]
    fn symmetric_ring_cn_routing() {
        let spec = SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(1)).symmetric();
        check_route_all_pairs(&spec);
    }

    #[test]
    fn schedule_is_minimal() {
        let spec = SuperIpSpec::hsn(4, NucleusSpec::hypercube(1));
        let s = min_visit_schedule(&spec).unwrap();
        assert_eq!(s.len(), 3);
    }
}
