//! Edge betweenness centrality (Brandes' algorithm).
//!
//! §5.2 of the paper assumes "the off-module links are uniformly
//! utilized" when relating throughput to the average inter-cluster
//! distance. Edge betweenness — the number of shortest paths crossing
//! each link, with even splitting among equal-length paths — makes that
//! assumption checkable: on edge-transitive networks every link carries
//! the same load; on super-IP graphs the off-module links form one or few
//! orbits and carry near-identical loads.

use crate::graph::Csr;
use rayon::prelude::*;
use std::collections::VecDeque;

/// Brandes edge betweenness for unweighted graphs: for every ordered
/// source, shortest-path counts are accumulated onto arcs. The returned
/// vector is indexed like the CSR arc array (`arc_index(u, i)` for the
/// `i`-th neighbor of `u`); for undirected graphs the two directions of
/// an edge receive equal values, so either can be read.
///
/// Parallel-reduction audit: this is the one *order-sensitive* reduce in
/// the workspace — element-wise `f64` addition of per-source contribution
/// vectors, where round-off depends on association order. The vendored
/// pool's chunk tree depends only on the source count (never the worker
/// count) and chunk results merge in ascending chunk order, so the output
/// is bit-for-bit identical for every `IPG_THREADS` value. It may differ
/// from a strict left-to-right fold by ulps, which the tolerance-based
/// invariants (symmetry, totals) absorb.
pub fn edge_betweenness(g: &Csr) -> Vec<f64> {
    let n = g.node_count();
    // arc index base per node
    let mut base = vec![0usize; n + 1];
    for u in 0..n {
        base[u + 1] = base[u] + g.degree(u as u32);
    }
    let arcs_total = base[n];

    (0..n as u32)
        .into_par_iter()
        .map(|s| {
            let mut contribution = vec![0.0f64; arcs_total];
            // BFS with shortest-path counting
            let mut dist = vec![u32::MAX; n];
            let mut sigma = vec![0.0f64; n];
            let mut order: Vec<u32> = Vec::with_capacity(n);
            let mut queue = VecDeque::new();
            dist[s as usize] = 0;
            sigma[s as usize] = 1.0;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                order.push(u);
                for &v in g.neighbors(u) {
                    if dist[v as usize] == u32::MAX {
                        dist[v as usize] = dist[u as usize] + 1;
                        queue.push_back(v);
                    }
                    if dist[v as usize] == dist[u as usize] + 1 {
                        sigma[v as usize] += sigma[u as usize];
                    }
                }
            }
            // dependency accumulation in reverse BFS order
            let mut delta = vec![0.0f64; n];
            for &u in order.iter().rev() {
                for (i, &v) in g.neighbors(u).iter().enumerate() {
                    if dist[v as usize] == dist[u as usize] + 1 {
                        let share =
                            sigma[u as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
                        contribution[base[u as usize] + i] += share;
                        delta[u as usize] += share;
                    }
                }
            }
            contribution
        })
        // Parallel-reduction audit: element-wise f64 vec-sum — the one
        // order-sensitive reduce; bit-for-bit stable only because the pool's
        // chunk tree is fixed by input length (full analysis in the doc
        // comment above).
        .reduce(
            || vec![0.0f64; arcs_total],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
}

/// Summary of link loads split by a module partition: (min, max, mean)
/// betweenness for on-module and off-module links separately.
#[derive(Clone, Copy, Debug)]
pub struct LoadSplit {
    /// (min, max, mean) over on-module links.
    pub on_module: (f64, f64, f64),
    /// (min, max, mean) over off-module links.
    pub off_module: (f64, f64, f64),
}

/// Split edge-betweenness statistics by module boundary.
pub fn load_split(g: &Csr, class: &[u32]) -> LoadSplit {
    let bc = edge_betweenness(g);
    let mut idx = 0usize;
    let mut on: Vec<f64> = Vec::new();
    let mut off: Vec<f64> = Vec::new();
    for u in 0..g.node_count() as u32 {
        for &v in g.neighbors(u) {
            if class[u as usize] == class[v as usize] {
                on.push(bc[idx]);
            } else {
                off.push(bc[idx]);
            }
            idx += 1;
        }
    }
    let stats = |v: &[f64]| -> (f64, f64, f64) {
        if v.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mn = v.iter().copied().fold(f64::INFINITY, f64::min);
        let mx = v.iter().copied().fold(0.0f64, f64::max);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        (mn, mx, mean)
    };
    LoadSplit {
        on_module: stats(&on),
        off_module: stats(&off),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Csr {
        Csr::from_fn(n, |u, out| {
            out.push((u + 1) % n as u32);
            out.push((u + n as u32 - 1) % n as u32);
        })
    }

    #[test]
    fn cycle_edges_are_uniform() {
        let g = cycle(8);
        let bc = edge_betweenness(&g);
        let first = bc[0];
        assert!(first > 0.0);
        for &b in &bc {
            assert!((b - first).abs() < 1e-9, "cycle edges must be uniform");
        }
    }

    #[test]
    fn path_center_edge_carries_most() {
        let g = Csr::from_edges(4, [(0, 1), (1, 2), (2, 3)], true);
        let bc = edge_betweenness(&g);
        // arcs in CSR order: 0→1, 1→0, 1→2, 2→1, 2→3, 3→2
        let end_edge = bc[0];
        let center_edge = bc[2];
        assert!(center_edge > end_edge);
        // center edge is crossed by 4 ordered pairs (0,1)x(2,3) + ... = 8
        assert!((center_edge - 4.0).abs() < 1e-9); // per direction: 4 pairs
    }

    #[test]
    fn total_betweenness_equals_total_distance() {
        // Σ over arcs of betweenness = Σ over ordered pairs of distance
        let g = cycle(7);
        let bc = edge_betweenness(&g);
        let total: f64 = bc.iter().sum();
        let avg = crate::algo::average_distance(&g);
        let pairs = 7.0 * 6.0;
        assert!((total - avg * pairs).abs() < 1e-6);
    }

    #[test]
    fn hypercube_is_uniform() {
        let g = Csr::from_fn(16, |u, out| {
            for b in 0..4 {
                out.push(u ^ (1 << b));
            }
        });
        let bc = edge_betweenness(&g);
        let first = bc[0];
        for &b in &bc {
            assert!((b - first).abs() < 1e-9);
        }
    }
}
