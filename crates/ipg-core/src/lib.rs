//! # ipg-core — the index-permutation (IP) graph model
//!
//! This crate implements the model introduced by Yeh & Parhami in *"The
//! Index-Permutation Graph Model for Hierarchical Interconnection Networks"*
//! (ICPP 1999): a generalization of Cayley graphs in which node labels are
//! sequences of **possibly repeated** symbols and edges are the actions of a
//! fixed set of position permutations (*generators*) on those labels.
//!
//! The paper visualizes the model as a *ball-arrangement game*: `k` numbered
//! balls (numbers may repeat) are rearranged by a fixed set of permissible
//! moves; states are network nodes, moves are links, and routing is solving
//! the game.
//!
//! ## Layout
//!
//! - [`perm`] — permutations of label positions (one-line and cycle forms).
//! - [`label`] — symbol sequences with repeats (multiset labels).
//! - [`spec`] — [`IpGraphSpec`]: seed + named generators.
//! - [`builder`] — breadth-first closure of the seed under the generators,
//!   producing an [`IpGraph`] (the state-transition graph of the game).
//! - [`probe`] — clock-free instrumentation hooks for the builder
//!   ([`BuildProbe`]); the observability impl lives in `ipg-obs`.
//! - [`graph`] — compact CSR graphs shared by every crate in the workspace.
//! - [`algo`] — BFS, diameters, average distances, 0/1-weighted BFS,
//!   connectivity; all-pairs sweeps are parallelized with rayon.
//! - [`fault`] — compact dead-node/dead-link views over CSR graphs and
//!   the faulted-graph BFS oracle backing fault-aware routing.
//! - [`superip`] — super-IP graphs: nucleus + super-generators, the
//!   equivalent *tuple network* construction, and symmetric variants.
//! - [`codec`] — arithmetic node addressing for super-IP graphs: label ↔
//!   dense-id codec (mixed-radix over nucleus ranks) and the rank-indexed
//!   CSR builder that skips hash interning entirely.
//! - [`routing`] — the constructive routing algorithm of Theorem 4.1 and the
//!   super-generator schedules `t`/`t_S` it relies on.
//! - [`symmetry`] — regularity, vertex-transitivity and isomorphism checks
//!   used to cross-validate IP definitions against direct constructions.
//! - [`embed`] — dilation measurement for embeddings (e.g. hypercube into
//!   HSN with dilation 3, paper §3.2).
//!
//! ## Quick example
//!
//! Build the 16-node HCN(2,2) without diameter links (≡ HSN(2, Q₂)) exactly
//! as Section 2 of the paper does — three generators applied to the seed
//! `3434 3434`:
//!
//! ```
//! use ipg_core::prelude::*;
//!
//! let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2));
//! let ip = spec.to_ip_spec().generate().unwrap();
//! assert_eq!(ip.node_count(), 16);            // Theorem 3.2: N = M^l = 4^2
//! let g = ip.to_undirected_csr();
//! assert_eq!(ipg_core::algo::diameter(&g), 5); // Corollary 4.2: (D+1)l - 1
//! ```

pub mod algo;
pub mod builder;
pub mod centrality;
pub mod codec;
pub mod connectivity;
pub mod embed;
pub mod error;
pub mod fault;
pub mod graph;
pub mod label;
pub mod perm;
pub mod probe;
pub mod rank;
pub mod routing;
pub mod solve;
pub mod spec;
pub mod superip;
pub mod symmetry;
pub mod tuple_routing;
pub mod util;

pub use builder::IpGraph;
pub use codec::{NodeCodec, PackedLabel};
pub use error::{IpgError, Result};
pub use fault::FaultView;
pub use graph::Csr;
pub use label::Label;
pub use perm::Perm;
pub use probe::{BuildProbe, NoProbe};
pub use spec::{Generator, IpGraphSpec};
pub use superip::{NucleusSpec, SeedKind, SuperGen, SuperIpSpec, TupleNetwork};

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::algo;
    pub use crate::builder::IpGraph;
    pub use crate::codec::{NodeCodec, PackedLabel};
    pub use crate::error::{IpgError, Result};
    pub use crate::fault::FaultView;
    pub use crate::graph::Csr;
    pub use crate::label::Label;
    pub use crate::perm::Perm;
    pub use crate::routing;
    pub use crate::spec::{Generator, IpGraphSpec};
    pub use crate::superip::{NucleusSpec, SeedKind, SuperGen, SuperIpSpec, TupleNetwork};
}
