//! Vertex and edge connectivity — the fault-tolerance attributes the
//! paper's introduction highlights for Cayley-graph networks (e.g. the
//! star graph's "fault tolerance properties").
//!
//! Both are computed exactly with unit-capacity max-flow (Edmonds–Karp;
//! flow values are bounded by the minimum degree, so each pair costs
//! `O(δ·m)`): edge connectivity as `min_{v≠u} maxflow(u, v)` for a fixed
//! `u`, and vertex connectivity with the standard min-degree-neighborhood
//! pair enumeration on the node-split digraph. Intended for the
//! validation-scale instances used in tests and experiments (≤ a few
//! thousand nodes).

use crate::graph::Csr;
use std::collections::VecDeque;

/// Max-flow (unit capacities on the given directed arcs) from `s` to `t`
/// with BFS augmentation. `arcs` lists directed arcs; each has capacity 1.
struct UnitFlow {
    n: usize,
    // adjacency: (to, arc index); arcs stored as (capacity_remaining)
    adj: Vec<Vec<(u32, u32)>>,
    cap: Vec<u8>,
}

impl UnitFlow {
    fn new(n: usize) -> Self {
        UnitFlow {
            n,
            adj: vec![Vec::new(); n],
            cap: Vec::new(),
        }
    }

    /// Add a directed arc with capacity `c` and its residual reverse arc.
    fn add(&mut self, u: u32, v: u32, c: u8) {
        let i = self.cap.len() as u32;
        self.adj[u as usize].push((v, i));
        self.cap.push(c);
        self.adj[v as usize].push((u, i + 1));
        self.cap.push(0);
    }

    /// BFS one augmenting path; returns true if found (and applies it).
    fn augment(&mut self, s: u32, t: u32) -> bool {
        let mut pred: Vec<Option<(u32, u32)>> = vec![None; self.n]; // (node, arc)
        let mut seen = vec![false; self.n];
        let mut queue = VecDeque::new();
        seen[s as usize] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            if u == t {
                break;
            }
            for &(v, ai) in &self.adj[u as usize] {
                if !seen[v as usize] && self.cap[ai as usize] > 0 {
                    seen[v as usize] = true;
                    pred[v as usize] = Some((u, ai));
                    queue.push_back(v);
                }
            }
        }
        if !seen[t as usize] {
            return false;
        }
        let mut cur = t;
        while cur != s {
            // ipg-analyze: allow(PANIC001) reason="BFS reached t, so every node on the path has a predecessor"
            let (p, ai) = pred[cur as usize].expect("path recorded");
            self.cap[ai as usize] -= 1;
            self.cap[ai as usize ^ 1] += 1;
            cur = p;
        }
        true
    }

    fn max_flow(&mut self, s: u32, t: u32, stop_at: u32) -> u32 {
        let mut flow = 0;
        while flow < stop_at && self.augment(s, t) {
            flow += 1;
        }
        flow
    }
}

/// Local edge connectivity λ(s, t): max number of edge-disjoint paths.
pub fn local_edge_connectivity(g: &Csr, s: u32, t: u32) -> u32 {
    debug_assert!(g.is_symmetric());
    let mut f = UnitFlow::new(g.node_count());
    for (u, v) in g.arcs() {
        // each undirected edge becomes two unit arcs (one per direction)
        f.add(u, v, 1);
    }
    f.max_flow(s, t, u32::MAX)
}

/// Edge connectivity λ(G) of a connected undirected graph.
pub fn edge_connectivity(g: &Csr) -> u32 {
    let n = g.node_count();
    if n < 2 {
        return 0;
    }
    let mut best = g.min_degree() as u32;
    for v in 1..n as u32 {
        if best == 0 {
            break;
        }
        let mut f = UnitFlow::new(n);
        for (a, b) in g.arcs() {
            f.add(a, b, 1);
        }
        best = best.min(f.max_flow(0, v, best));
    }
    best
}

/// Local vertex connectivity κ(s, t) for non-adjacent `s`, `t`: max number
/// of internally node-disjoint paths (node-splitting construction).
pub fn local_vertex_connectivity(g: &Csr, s: u32, t: u32) -> u32 {
    debug_assert!(!g.has_arc(s, t), "κ(s,t) undefined for adjacent nodes");
    let n = g.node_count() as u32;
    // split: v_in = 2v, v_out = 2v+1
    let mut f = UnitFlow::new(2 * n as usize);
    for v in 0..n {
        let c = if v == s || v == t { u8::MAX } else { 1 };
        f.add(2 * v, 2 * v + 1, c);
    }
    for (u, v) in g.arcs() {
        f.add(2 * u + 1, 2 * v, u8::MAX);
    }
    f.max_flow(2 * s, 2 * t + 1, n)
}

/// Vertex connectivity κ(G) of a connected undirected graph with at least
/// one non-adjacent pair (returns `n − 1` for complete graphs).
///
/// Uses the classic reduction: fix a minimum-degree node `u`; any minimum
/// cut either contains all of `N(u)` (then κ = δ) or avoids some
/// `s ∈ {u} ∪ N(u)`, in which case `κ = κ(s, t)` for some `t ∉ N[s]`.
pub fn vertex_connectivity(g: &Csr) -> u32 {
    let n = g.node_count();
    if n < 2 {
        return 0;
    }
    let u = (0..n as u32)
        .min_by_key(|&v| g.degree(v))
        // ipg-analyze: allow(PANIC001) reason="0..n is non-empty: the n == 0 case returned above"
        .expect("nonempty");
    let mut best = g.degree(u) as u32;
    let mut sources: Vec<u32> = vec![u];
    sources.extend_from_slice(g.neighbors(u));
    for &s in &sources {
        for t in 0..n as u32 {
            if t == s || g.has_arc(s, t) {
                continue;
            }
            best = best.min(local_vertex_connectivity(g, s, t));
            if best == 0 {
                return 0;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Csr {
        Csr::from_fn(n, |u, out| {
            out.push((u + 1) % n as u32);
            out.push((u + n as u32 - 1) % n as u32);
        })
    }

    fn hypercube(n: usize) -> Csr {
        Csr::from_fn(1 << n, |u, out| {
            for b in 0..n {
                out.push(u ^ (1 << b));
            }
        })
    }

    #[test]
    fn cycle_is_2_connected() {
        assert_eq!(vertex_connectivity(&cycle(7)), 2);
        assert_eq!(edge_connectivity(&cycle(7)), 2);
    }

    #[test]
    fn path_has_cut_vertex() {
        let p = Csr::from_edges(4, [(0, 1), (1, 2), (2, 3)], true);
        assert_eq!(vertex_connectivity(&p), 1);
        assert_eq!(edge_connectivity(&p), 1);
    }

    #[test]
    fn hypercube_connectivity_is_n() {
        for n in 2..=4 {
            assert_eq!(vertex_connectivity(&hypercube(n)), n as u32, "κ(Q{n})");
            assert_eq!(edge_connectivity(&hypercube(n)), n as u32, "λ(Q{n})");
        }
    }

    #[test]
    fn complete_graph_connectivity() {
        let k5 = Csr::from_fn(5, |u, out| {
            for v in 0..5u32 {
                if v != u {
                    out.push(v);
                }
            }
        });
        // no non-adjacent pair: κ defaults to δ = n − 1
        assert_eq!(vertex_connectivity(&k5), 4);
        assert_eq!(edge_connectivity(&k5), 4);
    }

    #[test]
    fn two_triangles_with_bridge() {
        let g = Csr::from_edges(
            6,
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
            true,
        );
        assert_eq!(edge_connectivity(&g), 1);
        assert_eq!(vertex_connectivity(&g), 1);
    }

    #[test]
    fn local_values_are_menger_consistent() {
        let g = hypercube(3);
        // opposite corners of Q3: 3 disjoint paths
        assert_eq!(local_vertex_connectivity(&g, 0, 7), 3);
        assert_eq!(local_edge_connectivity(&g, 0, 7), 3);
    }

    #[test]
    fn disconnected_graph_is_0_connected() {
        let g = Csr::from_edges(4, [(0, 1), (2, 3)], true);
        assert_eq!(vertex_connectivity(&g), 0);
        assert_eq!(edge_connectivity(&g), 0);
    }
}
