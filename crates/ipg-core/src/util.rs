//! Small utilities: a fast non-cryptographic hasher for label interning.
//!
//! Label interning is the hot loop of IP-graph generation (§2 of the paper:
//! every generator application must be checked against the set of already
//! generated labels). The default SipHash is safe but slow for short byte
//! strings; this FxHash-style multiply-xor hasher is the standard fast
//! alternative for trusted in-process keys.

use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style hasher (the algorithm used by rustc), specialized for the
/// short byte-string keys produced by label interning.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // ipg-analyze: allow(PANIC001) reason="chunks_exact(8) yields exactly 8 bytes"
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Integer `n!` for small `n` (panics on overflow past `20!`).
pub fn factorial(n: usize) -> u64 {
    (1..=n as u64).product()
}

/// `base^exp` in `u64` with overflow checks (panics on overflow).
pub fn checked_pow(base: u64, exp: u32) -> u64 {
    // ipg-analyze: allow(PANIC001) reason="documented contract: panic on overflow; callers pre-validate sizes"
    base.checked_pow(exp).expect("size overflow")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn hashes_differ_for_different_keys() {
        let b = FxBuildHasher::default();
        let h1 = b.hash_one([1u8, 2, 3, 4]);
        let h2 = b.hash_one([1u8, 2, 3, 5]);
        assert_ne!(h1, h2);
    }

    #[test]
    fn hash_is_deterministic() {
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one("abcdefghij"), b.hash_one("abcdefghij"));
    }

    #[test]
    fn factorial_small() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(1), 1);
        assert_eq!(factorial(5), 120);
        assert_eq!(factorial(6), 720);
    }
}
