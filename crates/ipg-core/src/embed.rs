//! Embedding support: dilation of a guest graph mapped into a host graph.
//!
//! The paper (§3.2) states that an HSN can embed the corresponding
//! homogeneous product network (hypercube, k-ary n-cube) with dilation 3;
//! [`dilation`] lets tests verify this on concrete instances with the
//! natural identity-on-bits mapping.

use crate::algo;
use crate::graph::Csr;
use rayon::prelude::*;

/// Dilation of the embedding `map : V(guest) -> V(host)`: the maximum host
/// distance between the images of adjacent guest nodes. Returns `None` if
/// some guest edge maps to disconnected host nodes or `map` is not
/// injective.
pub fn dilation(guest: &Csr, host: &Csr, map: &[u32]) -> Option<u32> {
    assert_eq!(map.len(), guest.node_count());
    let mut used = vec![false; host.node_count()];
    for &h in map {
        if used[h as usize] {
            return None;
        }
        used[h as usize] = true;
    }
    // Group guest edges by source image to reuse BFS runs.
    // Parallel-reduction audit: try_reduce over `u32 max` with `None`
    // short-circuit — associative/commutative, and `None` is absorbing, so
    // the chunked merge is exact for any worker count.
    let sources: Vec<u32> = (0..guest.node_count() as u32).collect();
    sources
        .par_iter()
        .map(|&u| {
            if guest.degree(u) == 0 {
                return Some(0);
            }
            let d = algo::bfs(host, map[u as usize]);
            let mut worst = 0u32;
            for &v in guest.neighbors(u) {
                let dv = d[map[v as usize] as usize];
                if dv == algo::UNREACHABLE {
                    return None;
                }
                worst = worst.max(dv);
            }
            Some(worst)
        })
        // Parallel-reduction audit: `u32 max` with `None` short-circuit —
        // associative/commutative and `None` absorbing, exact for any
        // worker count (see the comment above the source list).
        .try_reduce(|| 0, |a, b| Some(a.max(b)))
}

/// Expansion of the embedding: `|V(host)| / |V(guest)|`.
pub fn expansion(guest: &Csr, host: &Csr) -> f64 {
    host.node_count() as f64 / guest.node_count() as f64
}

/// Edge congestion of the embedding: route every guest edge along one
/// host shortest path (BFS parent tree per source image) and count the
/// maximum number of guest edges crossing any single host edge.
/// Undirected host edges are counted as unordered pairs.
pub fn congestion(guest: &Csr, host: &Csr, map: &[u32]) -> Option<u32> {
    assert_eq!(map.len(), guest.node_count());
    use std::collections::HashMap;
    let mut load: HashMap<(u32, u32), u32> = HashMap::new();
    for u in 0..guest.node_count() as u32 {
        if guest.degree(u) == 0 {
            continue;
        }
        let (dist, parent) = algo::bfs_parents(host, map[u as usize]);
        for &v in guest.neighbors(u) {
            if v < u {
                continue; // one direction per guest edge
            }
            let mut cur = map[v as usize];
            if dist[cur as usize] == algo::UNREACHABLE {
                return None;
            }
            while cur != map[u as usize] {
                let p = parent[cur as usize];
                let key = (cur.min(p), cur.max(p));
                *load.entry(key).or_insert(0) += 1;
                cur = p;
            }
        }
    }
    Some(load.values().copied().max().unwrap_or(0))
}

/// Emulation slowdown of one step of the guest network on the host under
/// the single-port, all-edges-active model: every guest node talks to all
/// its neighbors simultaneously; the host must deliver each such message
/// along an embedded path. A standard lower-bound-matching estimate is
/// `dilation × congestion`; this returns `(dilation, congestion,
/// dilation·congestion)`.
pub fn emulation_slowdown(guest: &Csr, host: &Csr, map: &[u32]) -> Option<(u32, u32, u32)> {
    let d = dilation(guest, host, map)?;
    let c = congestion(guest, host, map)?;
    Some((d, c, d * c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Csr {
        Csr::from_fn(n, |u, out| {
            out.push((u + 1) % n as u32);
            out.push((u + n as u32 - 1) % n as u32);
        })
    }

    #[test]
    fn identity_embedding_has_dilation_1() {
        let g = cycle(8);
        let map: Vec<u32> = (0..8).collect();
        assert_eq!(dilation(&g, &g, &map), Some(1));
    }

    #[test]
    fn cycle_into_path_has_dilation_n_minus_1() {
        let guest = cycle(5);
        let host = Csr::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)], true);
        let map: Vec<u32> = (0..5).collect();
        assert_eq!(dilation(&guest, &host, &map), Some(4));
    }

    #[test]
    fn non_injective_rejected() {
        let g = cycle(4);
        assert_eq!(dilation(&g, &g, &[0, 1, 1, 2]), None);
    }

    #[test]
    fn congestion_identity_is_one() {
        let g = cycle(8);
        let map: Vec<u32> = (0..8).collect();
        assert_eq!(congestion(&g, &g, &map), Some(1));
    }

    #[test]
    fn congestion_of_cycle_in_path() {
        // the long edge (0, n−1) of C5 routes across the whole path,
        // stacking onto every path edge once more.
        let guest = cycle(5);
        let host = Csr::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)], true);
        let map: Vec<u32> = (0..5).collect();
        assert_eq!(congestion(&guest, &host, &map), Some(2));
    }

    #[test]
    fn emulation_slowdown_composes() {
        let g = cycle(6);
        let map: Vec<u32> = (0..6).collect();
        assert_eq!(emulation_slowdown(&g, &g, &map), Some((1, 1, 1)));
    }

    #[test]
    fn expansion_ratio() {
        let guest = cycle(4);
        let host = cycle(8);
        assert!((expansion(&guest, &host) - 2.0).abs() < 1e-12);
    }
}
