//! Generation-time instrumentation hooks, kept clock-free.
//!
//! [`crate::builder::IpGraph::generate_instrumented`] reports progress
//! through this trait instead of talking to an observability layer
//! directly, so `ipg-core` stays pure (no clocks, no I/O, no dependency
//! on `ipg-obs` — the LAYER001 contract with nothing excused). The
//! shipped implementation lives in `ipg-obs` (`ObsBuildProbe`), which
//! owns the span timer: elapsed time is measured entirely inside the
//! impl, never observed by the builder.

/// Observer of one breadth-first generation run.
///
/// All methods take `&self` so a probe can be passed as `&dyn
/// BuildProbe` through call chains that are not otherwise mutable;
/// implementations use interior mutability (atomics, a mutex around a
/// span) where they need state.
pub trait BuildProbe {
    /// A BFS level completed with `size` newly discovered nodes. The
    /// first call reports the depth-0 frontier (the seed itself, `1`).
    fn on_frontier(&self, size: u64);

    /// Generation finished: final node/arc totals plus the number of
    /// candidate labels that deduplicated onto an existing node.
    fn on_finish(&self, nodes: u64, arcs: u64, dedup_hits: u64);
}

/// The do-nothing probe used by the uninstrumented build path.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProbe;

impl BuildProbe for NoProbe {
    fn on_frontier(&self, _size: u64) {}
    fn on_finish(&self, _nodes: u64, _arcs: u64, _dedup_hits: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct CountingProbe {
        frontiers: AtomicU64,
        finishes: AtomicU64,
    }

    impl BuildProbe for CountingProbe {
        fn on_frontier(&self, size: u64) {
            self.frontiers.fetch_add(size, Ordering::Relaxed);
        }
        fn on_finish(&self, nodes: u64, _arcs: u64, _dedup_hits: u64) {
            self.finishes.fetch_add(nodes, Ordering::Relaxed);
        }
    }

    #[test]
    fn frontier_sizes_sum_to_node_count() {
        let probe = CountingProbe::default();
        let ip = crate::spec::IpGraphSpec::star(5)
            .generate_instrumented(&probe)
            .unwrap();
        assert_eq!(probe.frontiers.load(Ordering::Relaxed), 120);
        assert_eq!(ip.node_count(), 120);
        assert_eq!(probe.finishes.load(Ordering::Relaxed), 120);
    }

    #[test]
    fn no_probe_is_a_no_op() {
        let ip = crate::spec::IpGraphSpec::star(4)
            .generate_instrumented(&NoProbe)
            .unwrap();
        assert_eq!(ip.node_count(), 24);
    }
}
