//! Manifest durability: a run that dies mid-flight (abort, not a clean
//! exit) must still leave a valid, parseable JSON-lines manifest,
//! because `JsonlRecorder` flushes after every record.
//!
//! The test re-executes its own test binary as a child: with
//! `IPG_OBS_DURABILITY_CHILD` set, the "test" writes a manifest and
//! then calls `std::process::abort()` before `Obs::finish`, simulating
//! a crash with buffered-but-unflushed state.

use ipg_obs::{MetaVal, Obs};
use std::process::Command;

const CHILD_ENV: &str = "IPG_OBS_DURABILITY_CHILD";
const WINDOWS: u64 = 20;

#[test]
fn killed_run_leaves_parseable_manifest() {
    if let Ok(path) = std::env::var(CHILD_ENV) {
        run_child(&path);
        // run_child aborts; this is unreachable.
    }

    let dir = std::env::temp_dir().join(format!("ipg_obs_durability_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = dir.join("killed.manifest.jsonl");

    let exe = std::env::current_exe().unwrap();
    let out = Command::new(exe)
        .args([
            "killed_run_leaves_parseable_manifest",
            "--exact",
            "--nocapture",
        ])
        .env(CHILD_ENV, &manifest)
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "child was supposed to abort, got {:?}\nstdout: {}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
    );

    let text = std::fs::read_to_string(&manifest).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // meta + every window emitted before the abort must be on disk:
    // record() flushes per line, so nothing is lost in a BufWriter.
    assert_eq!(
        lines.len(),
        1 + WINDOWS as usize,
        "expected meta + {WINDOWS} window records, got {} lines:\n{text}",
        lines.len(),
    );
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "truncated or malformed line: {line}"
        );
        serde_json::parse_value(line)
            .unwrap_or_else(|e| panic!("line does not parse as JSON ({e:?}): {line}"));
    }
    assert!(lines[0].contains("\"record\":\"meta\""));
    assert!(lines[1].contains("\"record\":\"window\""));
    assert!(
        lines
            .last()
            .unwrap()
            .contains(&format!("\"cycle\":{WINDOWS}00")),
        "last flushed window should be cycle {WINDOWS}00: {}",
        lines.last().unwrap(),
    );
    // The run never reached finish(): no final metrics record.
    assert!(!text.contains("\"record\":\"metrics\""));

    let _ = std::fs::remove_dir_all(&dir);
}

fn run_child(path: &str) -> ! {
    let obs = Obs::to_file(std::path::Path::new(path)).unwrap();
    obs.emit_meta("durability_child", &[("seed", MetaVal::from(7u64))]);
    let c = obs.counter("ticks");
    for w in 1..=WINDOWS {
        c.add(3);
        obs.emit_window(w * 100);
    }
    // Die without finish()/flush()/drop — abort skips destructors, so
    // only per-record flushing can have put the lines on disk.
    std::process::abort();
}
