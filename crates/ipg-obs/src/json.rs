//! Minimal JSON fragment helpers. This crate writes JSON lines directly
//! (no serde dependency) so the disabled path stays dependency-free and
//! the output byte layout is fully under our control for the
//! determinism contract.

/// Quote and escape `s` as a JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float as JSON: always contains `.` or `e` so it re-parses
/// as a float; non-finite values become `null`.
pub fn float(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_escapes() {
        assert_eq!(quote("ab"), "\"ab\"");
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(quote("x\ny"), "\"x\\ny\"");
        assert_eq!(quote("\u{01}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_reparse_as_floats() {
        assert_eq!(float(1.0), "1.0");
        assert_eq!(float(0.25), "0.25");
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float(f64::INFINITY), "null");
    }
}
