//! The observability-backed [`BuildProbe`]: maps the clock-free hooks
//! that `ipg-core`'s builder fires onto an [`Obs`] session.
//!
//! This is the impl half of the LAYER001 split: `ipg-core` defines the
//! trait and never sees a clock, while this type owns the `ip_generate`
//! span timer and derives the wall-clock `rate` records from it. The
//! mapping is byte-compatible with the old in-crate instrumentation —
//! the same counter names (`core.nodes`, `core.arcs`,
//! `core.dedup_hits`), the same `core.bfs_frontier` histogram fed the
//! same observation sequence, and rates emitted only at finish — so
//! manifests produced through it are unchanged.

use crate::{Histogram, Obs, Span};
use ipg_core::BuildProbe;
use std::sync::Mutex;

/// [`BuildProbe`] implementation recording into an [`Obs`] session.
///
/// Construct it immediately before calling
/// `IpGraph::generate_instrumented`: the `ip_generate` span opens at
/// construction and closes (emitting its `span` record plus the
/// nodes/arcs-per-second `rate` records) when the builder calls
/// `on_finish`.
pub struct ObsBuildProbe {
    obs: Obs,
    frontier: Histogram,
    span: Mutex<Option<Span>>,
}

impl ObsBuildProbe {
    /// Open the `ip_generate` span on `obs` and return the probe.
    pub fn new(obs: &Obs) -> ObsBuildProbe {
        ObsBuildProbe {
            obs: obs.clone(),
            frontier: obs.histogram("core.bfs_frontier"),
            span: Mutex::new(Some(obs.span("ip_generate"))),
        }
    }
}

impl BuildProbe for ObsBuildProbe {
    fn on_frontier(&self, size: u64) {
        self.frontier.observe(size);
    }

    fn on_finish(&self, nodes: u64, arcs: u64, dedup_hits: u64) {
        self.obs.counter("core.nodes").add(nodes);
        self.obs.counter("core.arcs").add(arcs);
        self.obs.counter("core.dedup_hits").add(dedup_hits);
        let span = self.span.lock().ok().and_then(|mut s| s.take());
        if let Some(span) = span {
            if let Some(secs) = span.elapsed_secs() {
                self.obs.emit_rate("core.nodes_per_sec", nodes, secs);
                self.obs.emit_rate("core.arcs_per_sec", arcs, secs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_probe_is_inert() {
        let obs = Obs::disabled();
        let probe = ObsBuildProbe::new(&obs);
        probe.on_frontier(3);
        probe.on_finish(10, 20, 5);
        assert_eq!(obs.metrics_json(), "");
    }

    #[test]
    fn finish_emits_counters_and_rates() {
        let (obs, mem) = Obs::in_memory();
        let probe = ObsBuildProbe::new(&obs);
        probe.on_frontier(1);
        probe.on_frontier(4);
        probe.on_finish(5, 20, 3);
        obs.finish();
        let text = mem.contents();
        assert!(text.contains("\"core.nodes\":5"), "{text}");
        assert!(text.contains("\"core.arcs\":20"));
        assert!(text.contains("\"core.dedup_hits\":3"));
        assert!(text.contains("\"core.bfs_frontier\""));
        assert!(text.contains("\"name\":\"core.nodes_per_sec\""));
        assert!(text.contains("\"name\":\"core.arcs_per_sec\""));
        assert!(text.contains("\"path\":\"ip_generate\""));
    }

    #[test]
    fn probe_drives_a_real_generation() {
        let (obs, mem) = Obs::in_memory();
        let probe = ObsBuildProbe::new(&obs);
        let ip = ipg_core::IpGraphSpec::star(5)
            .generate_instrumented(&probe)
            .unwrap();
        assert_eq!(ip.node_count(), 120);
        obs.finish();
        let text = mem.contents();
        assert!(text.contains("\"core.nodes\":120"), "{text}");
        // 120 nodes * 4 generators = 480 arcs
        assert!(text.contains("\"core.arcs\":480"));
        // frontier sizes sum to the node count
        assert!(text.contains("\"core.bfs_frontier\""));
    }
}
