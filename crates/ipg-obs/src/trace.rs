//! Flight-recorder tracing: per-shard, pre-allocated event rings.
//!
//! The sharded simulation engine records fixed-size binary
//! [`TraceEvent`]s into per-shard [`EventRing`]s at a configurable
//! sampling interval. The design constraints, in order:
//!
//! 1. **Zero effect on simulation state.** Events carry only data the
//!    deterministic computation already produced — cycle numbers,
//!    queue depths, busy counts. No wall-clock timestamps: virtual
//!    time (the cycle counter) is the trace clock, which makes trace
//!    files byte-identical across `IPG_THREADS` and lets them be
//!    byte-compared in CI. Wall-clock data stays in the manifest's
//!    `span`/`rate` records (see DESIGN.md §11).
//! 2. **Zero steady-state allocation.** Rings are sized up front; when
//!    full, the oldest event is evicted (counted in `dropped_events`)
//!    rather than growing or blocking the hot loop.
//! 3. **One writer per ring.** Each shard owns its [`ShardTracer`];
//!    the coordinator owns one extra tracer (shard id
//!    [`ENGINE_TRACK`]) for merge-phase events. No locks, no atomics.
//!
//! After a run the rings drain into a [`Trace`], which exports two
//! formats: a compact JSON-lines time-series (`to_jsonl` /
//! `from_jsonl`) the `ipg trace` subcommand summarizes, and Chrome
//! trace-event JSON (`to_chrome_json`) loadable in Perfetto, with one
//! thread track per shard and virtual-time spans for the A/merge/B
//! phases.
//!
//! Simulation code must emit through the [`ShardTracer`] API — never
//! by constructing [`TraceEvent`]s or touching [`EventRing`] directly.
//! The DET005 lint (`ipg-analyze`) enforces this for the engine's hot
//! modules.

use crate::json;
use crate::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Shard id used for coordinator-side (merge phase) events.
pub const ENGINE_TRACK: u16 = u16::MAX;

/// What a [`TraceEvent`] describes. Stored as a `u16` in the event.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u16)]
pub enum EventKind {
    /// Phase A done for one shard: `a` = packets injected this cycle,
    /// `b` = messages launched into the outbox.
    PhaseA = 0,
    /// Mailbox merge done (engine track): `a` = messages moved.
    Merge = 1,
    /// Phase B done for one shard: `a` = wheel entries drained,
    /// `b` = packets delivered this cycle.
    PhaseB = 2,
    /// Gauge: `value` = nodes with at least one queued message.
    ActiveNodes = 3,
    /// Gauge: `value` = live pool slots (packets or flits in flight).
    PoolOccupancy = 4,
    /// Gauge: `value` = messages waiting in the arrival wheel.
    WheelDepth = 5,
    /// Gauge: `value` = messages in the outbox after phase A.
    OutboxDepth = 6,
    /// Gauge: `a` = deepest single link queue, `value` = total queued.
    QueueDepth = 7,
    /// Sample: `a` = shard-local link index, `value` = busy cycles
    /// accumulated on that link since the previous sample.
    LinkUtil = 8,
    /// Sample: `a` = shard-local link index, `value` = wormhole credit
    /// stalls (buffer-full probe failures) since the previous sample.
    CreditStall = 9,
    /// Wormhole cycle sample: `a` = packets injected and `b` = packets
    /// delivered since the previous sample, `value` = flits buffered.
    Cycle = 10,
    /// Sparse-kernel occupancy gauge: `a` = active worklist entries
    /// (non-empty link FIFOs / live wormhole channels), `b` = busy
    /// nodes, `value` = total queued messages. Shows how sparse the
    /// cycle actually was.
    Worklist = 11,
}

const KIND_NAMES: &[(EventKind, &str)] = &[
    (EventKind::PhaseA, "phase_a"),
    (EventKind::Merge, "merge"),
    (EventKind::PhaseB, "phase_b"),
    (EventKind::ActiveNodes, "active_nodes"),
    (EventKind::PoolOccupancy, "pool"),
    (EventKind::WheelDepth, "wheel_depth"),
    (EventKind::OutboxDepth, "outbox_depth"),
    (EventKind::QueueDepth, "queue_depth"),
    (EventKind::LinkUtil, "link_util"),
    (EventKind::CreditStall, "credit_stall"),
    (EventKind::Cycle, "cycle"),
    (EventKind::Worklist, "worklist"),
];

impl EventKind {
    /// Stable string name used in the JSONL export.
    pub fn as_str(self) -> &'static str {
        KIND_NAMES
            .iter()
            .find(|(k, _)| *k == self)
            .map(|(_, s)| *s)
            .unwrap_or("unknown")
    }

    /// Parse a JSONL kind name back to the enum.
    pub fn from_name(s: &str) -> Option<EventKind> {
        KIND_NAMES.iter().find(|(_, n)| *n == s).map(|(k, _)| *k)
    }

    fn from_u16(v: u16) -> Option<EventKind> {
        KIND_NAMES
            .iter()
            .find(|(k, _)| *k as u16 == v)
            .map(|(k, _)| *k)
    }
}

/// One fixed-size (24-byte) flight-recorder event.
///
/// The payload fields `a`, `b`, `value` are interpreted per
/// [`EventKind`]. Everything is computation-derived: no wall clock.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TraceEvent {
    /// Simulation cycle the event describes.
    pub cycle: u32,
    /// [`EventKind`] as `u16`.
    pub kind: u16,
    /// Shard the event belongs to ([`ENGINE_TRACK`] for the merge
    /// track).
    pub shard: u16,
    /// First payload word (meaning depends on `kind`).
    pub a: u32,
    /// Second payload word (meaning depends on `kind`).
    pub b: u32,
    /// Wide payload word (meaning depends on `kind`).
    pub value: u64,
}

/// Pre-allocated single-writer ring of [`TraceEvent`]s.
///
/// `push` never allocates and never blocks: when the ring is full the
/// oldest event is evicted and `dropped` is incremented.
pub struct EventRing {
    buf: Vec<TraceEvent>,
    head: usize,
    len: usize,
    dropped: u64,
}

impl EventRing {
    /// Ring holding up to `capacity` events (minimum 1), fully
    /// allocated up front.
    pub fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(1);
        EventRing {
            buf: vec![TraceEvent::default(); capacity],
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest when full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        let cap = self.buf.len();
        if self.len < cap {
            self.buf[(self.head + self.len) % cap] = ev;
            self.len += 1;
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain events oldest-first into `out`.
    fn drain_into(&mut self, out: &mut Vec<TraceEvent>) {
        let cap = self.buf.len();
        for i in 0..self.len {
            out.push(self.buf[(self.head + i) % cap]);
        }
        self.head = 0;
        self.len = 0;
    }
}

/// Flight-recorder configuration.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Record events only on cycles divisible by this (minimum 1).
    pub interval: u32,
    /// Per-shard ring capacity in events.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            interval: 64,
            capacity: 16 * 1024,
        }
    }
}

impl TraceConfig {
    /// Config with the given sampling interval (clamped to ≥ 1) and the
    /// default ring capacity.
    pub fn with_interval(interval: u32) -> TraceConfig {
        TraceConfig {
            interval: interval.max(1),
            ..TraceConfig::default()
        }
    }
}

/// Per-shard event emitter. The only sanctioned way for simulation
/// code to produce trace events (enforced by DET005).
///
/// Each tracer is owned by exactly one shard (or the coordinator), so
/// emission is lock-free and allocation-free after construction.
pub struct ShardTracer {
    shard: u16,
    interval: u32,
    ring: EventRing,
    prev_busy: Vec<u64>,
    prev_stall: Vec<u64>,
    prev_a: u64,
    prev_b: u64,
}

/// How many top links a tracer reports per sample.
const TOP_LINKS_PER_SAMPLE: usize = 4;

impl ShardTracer {
    /// Tracer for `shard` (use [`ENGINE_TRACK`] for the coordinator).
    pub fn new(shard: u16, cfg: &TraceConfig) -> ShardTracer {
        ShardTracer {
            shard,
            interval: cfg.interval.max(1),
            ring: EventRing::new(cfg.capacity),
            prev_busy: Vec::new(),
            prev_stall: Vec::new(),
            prev_a: 0,
            prev_b: 0,
        }
    }

    /// Pre-size the per-link delta snapshots so the first sample does
    /// not allocate. Call once at setup with the shard's link count.
    pub fn init_links(&mut self, links: usize) {
        self.prev_busy.clear();
        self.prev_busy.resize(links, 0);
        self.prev_stall.clear();
        self.prev_stall.resize(links, 0);
    }

    /// Whether `cycle` is a sampling cycle under this tracer's interval.
    #[inline]
    pub fn sampled(&self, cycle: u64) -> bool {
        cycle % self.interval as u64 == 0
    }

    /// Events evicted so far from this tracer's ring.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    #[inline]
    fn emit(&mut self, cycle: u64, kind: EventKind, a: u32, b: u32, value: u64) {
        self.ring.push(TraceEvent {
            cycle: cycle as u32,
            kind: kind as u16,
            shard: self.shard,
            a,
            b,
            value,
        });
    }

    /// Phase A done: `injected` packets entered, `launched` messages
    /// went to the outbox this cycle.
    pub fn phase_a(&mut self, cycle: u64, injected: u32, launched: u32) {
        self.emit(cycle, EventKind::PhaseA, injected, launched, 0);
    }

    /// Merge done (engine track): `moved` messages crossed shards.
    pub fn merge(&mut self, cycle: u64, moved: u32) {
        self.emit(cycle, EventKind::Merge, moved, 0, 0);
    }

    /// Phase B done: `drained` wheel entries, `delivered` packets.
    pub fn phase_b(&mut self, cycle: u64, drained: u32, delivered: u32) {
        self.emit(cycle, EventKind::PhaseB, drained, delivered, 0);
    }

    /// Gauge: nodes with at least one queued message.
    pub fn active_nodes(&mut self, cycle: u64, count: u64) {
        self.emit(cycle, EventKind::ActiveNodes, 0, 0, count);
    }

    /// Gauge: live pool slots.
    pub fn pool_occupancy(&mut self, cycle: u64, live: u64) {
        self.emit(cycle, EventKind::PoolOccupancy, 0, 0, live);
    }

    /// Gauge: messages waiting in the arrival wheel.
    pub fn wheel_depth(&mut self, cycle: u64, depth: u64) {
        self.emit(cycle, EventKind::WheelDepth, 0, 0, depth);
    }

    /// Gauge: messages in the outbox after phase A.
    pub fn outbox_depth(&mut self, cycle: u64, depth: u64) {
        self.emit(cycle, EventKind::OutboxDepth, 0, 0, depth);
    }

    /// Gauge: deepest link queue and total queued messages.
    pub fn queue_depth(&mut self, cycle: u64, deepest: u32, total: u64) {
        self.emit(cycle, EventKind::QueueDepth, deepest, 0, total);
    }

    /// Sparse-kernel occupancy gauge: worklist entries, busy nodes, and
    /// total queued messages at this sample.
    pub fn worklist(&mut self, cycle: u64, active: u32, busy_nodes: u32, queued: u64) {
        self.emit(cycle, EventKind::Worklist, active, busy_nodes, queued);
    }

    /// Wormhole cycle sample: injection/delivery deltas since the last
    /// sample plus current buffered-flit count.
    pub fn wormhole_cycle(&mut self, cycle: u64, injected: u64, delivered: u64, buffered: u64) {
        let da = injected.saturating_sub(self.prev_a);
        let db = delivered.saturating_sub(self.prev_b);
        self.prev_a = injected;
        self.prev_b = delivered;
        self.emit(cycle, EventKind::Cycle, da as u32, db as u32, buffered);
    }

    /// Report the top links by busy-cycle delta since the previous
    /// sample (at most [`TOP_LINKS_PER_SAMPLE`] events, zero deltas
    /// skipped), then refresh the snapshot.
    pub fn link_util(&mut self, cycle: u64, busy: &[u64]) {
        if self.prev_busy.len() != busy.len() {
            self.prev_busy.resize(busy.len(), 0);
        }
        let mut top = [(0u64, 0usize); TOP_LINKS_PER_SAMPLE];
        top_deltas(busy, &mut self.prev_busy, &mut top);
        for &(delta, li) in top.iter().filter(|(d, _)| *d > 0) {
            self.emit(cycle, EventKind::LinkUtil, li as u32, 0, delta);
        }
    }

    /// Report the top links by credit-stall delta since the previous
    /// sample, then refresh the snapshot. Same shape as
    /// [`ShardTracer::link_util`].
    pub fn credit_stalls(&mut self, cycle: u64, stalls: &[u64]) {
        if self.prev_stall.len() != stalls.len() {
            self.prev_stall.resize(stalls.len(), 0);
        }
        let mut top = [(0u64, 0usize); TOP_LINKS_PER_SAMPLE];
        top_deltas(stalls, &mut self.prev_stall, &mut top);
        for &(delta, li) in top.iter().filter(|(d, _)| *d > 0) {
            self.emit(cycle, EventKind::CreditStall, li as u32, 0, delta);
        }
    }
}

/// Compute per-index deltas of `now` against `prev`, keep the largest
/// few in `top` (descending; ties broken toward the lower index), and
/// overwrite `prev` with `now`.
fn top_deltas(now: &[u64], prev: &mut [u64], top: &mut [(u64, usize)]) {
    for (li, (&n, p)) in now.iter().zip(prev.iter_mut()).enumerate() {
        let delta = n.saturating_sub(*p);
        *p = n;
        if delta == 0 {
            continue;
        }
        // Insertion into a tiny fixed array: find the first slot this
        // delta beats and shift the rest down.
        let mut pos = top.len();
        for (i, &(d, _)) in top.iter().enumerate() {
            if delta > d {
                pos = i;
                break;
            }
        }
        if pos < top.len() {
            for j in (pos + 1..top.len()).rev() {
                top[j] = top[j - 1];
            }
            top[pos] = (delta, li);
        }
    }
}

/// A drained flight-recorder run: all events merged cycle-ordered,
/// plus enough metadata to re-export or summarize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Number of simulation shards (excluding the engine track).
    pub shards: u16,
    /// Sampling interval in cycles.
    pub interval: u32,
    /// Total events evicted across all rings.
    pub dropped: u64,
    /// Events sorted by cycle; within a cycle, shard order then the
    /// engine track, preserving per-shard emission order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Drain per-shard tracers (in shard order) plus the engine tracer
    /// into a merged, deterministic event stream.
    pub fn collect(
        interval: u32,
        mut shard_tracers: Vec<ShardTracer>,
        mut engine: ShardTracer,
    ) -> Trace {
        let shards = shard_tracers.len() as u16;
        let mut events = Vec::with_capacity(
            shard_tracers.iter().map(|t| t.ring.len()).sum::<usize>() + engine.ring.len(),
        );
        let mut dropped = 0u64;
        for t in &mut shard_tracers {
            dropped += t.ring.dropped();
            t.ring.drain_into(&mut events);
        }
        dropped += engine.ring.dropped();
        engine.ring.drain_into(&mut events);
        // Stable sort: rings are cycle-ordered and concatenated in
        // shard order, so per-cycle this yields shard 0..n then the
        // engine track, each preserving emission order.
        events.sort_by_key(|e| e.cycle);
        Trace {
            shards,
            interval,
            dropped,
            events,
        }
    }

    /// Compact JSON-lines export: one `trace_meta` header line, then
    /// one `trace` line per event. Fully deterministic.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 80);
        let _ = writeln!(
            out,
            "{{\"record\":\"trace_meta\",\"version\":1,\"shards\":{},\"interval\":{},\"events\":{},\"dropped_events\":{}}}",
            self.shards,
            self.interval,
            self.events.len(),
            self.dropped,
        );
        for e in &self.events {
            let kind = EventKind::from_u16(e.kind).map_or("unknown", EventKind::as_str);
            let _ = writeln!(
                out,
                "{{\"record\":\"trace\",\"cycle\":{},\"shard\":{},\"kind\":{},\"a\":{},\"b\":{},\"value\":{}}}",
                e.cycle,
                e.shard,
                json::quote(kind),
                e.a,
                e.b,
                e.value,
            );
        }
        out
    }

    /// Parse a JSONL export produced by [`Trace::to_jsonl`].
    pub fn from_jsonl(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| "empty trace file".to_string())?;
        if field_str(header, "record") != Some("trace_meta") {
            return Err("first line is not a trace_meta record".to_string());
        }
        let shards = field_u64(header, "shards")
            .ok_or_else(|| "trace_meta missing shards".to_string())? as u16;
        let interval = field_u64(header, "interval")
            .ok_or_else(|| "trace_meta missing interval".to_string())?
            as u32;
        let dropped = field_u64(header, "dropped_events").unwrap_or(0);
        let mut events = Vec::new();
        for (no, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            if field_str(line, "record") != Some("trace") {
                return Err(format!("line {}: not a trace record", no + 1));
            }
            let kind_name =
                field_str(line, "kind").ok_or_else(|| format!("line {}: missing kind", no + 1))?;
            let kind = EventKind::from_name(kind_name)
                .ok_or_else(|| format!("line {}: unknown kind {kind_name:?}", no + 1))?;
            let num = |key: &str| {
                field_u64(line, key).ok_or_else(|| format!("line {}: missing {key}", no + 1))
            };
            events.push(TraceEvent {
                cycle: num("cycle")? as u32,
                kind: kind as u16,
                shard: num("shard")? as u16,
                a: num("a")? as u32,
                b: num("b")? as u32,
                value: num("value")?,
            });
        }
        Ok(Trace {
            shards,
            interval,
            dropped,
            events,
        })
    }

    /// Chrome trace-event JSON (Perfetto-loadable), spans keyed by
    /// shard. Virtual time: one simulation cycle = 100 µs of trace
    /// time, with the A/merge/B spans occupying fixed sub-slots so the
    /// pipeline structure is visible at any zoom. Deterministic: the
    /// output depends only on the trace contents and `name`.
    pub fn to_chrome_json(&self, name: &str) -> String {
        const CYCLE_US: u64 = 100;
        let mut out = String::with_capacity(256 + self.events.len() * 120);
        let _ = write!(
            out,
            "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"source\":{},\"shards\":{},\"interval\":{},\"dropped_events\":{}}},\"traceEvents\":[",
            json::quote(name),
            self.shards,
            self.interval,
            self.dropped,
        );
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, line: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push('\n');
            out.push_str(&line);
        };
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{{\"name\":{}}}}}",
                json::quote(name)
            ),
        );
        for s in 0..self.shards {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{s},\"args\":{{\"name\":{}}}}}",
                    json::quote(&format!("shard {s}"))
                ),
            );
        }
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"engine\"}}}}",
                self.shards
            ),
        );
        for e in &self.events {
            let Some(kind) = EventKind::from_u16(e.kind) else {
                continue;
            };
            let tid = if e.shard == ENGINE_TRACK {
                self.shards as u64
            } else {
                e.shard as u64
            };
            let ts = e.cycle as u64 * CYCLE_US;
            let line = match kind {
                EventKind::PhaseA => format!(
                    "{{\"name\":\"phase_a\",\"ph\":\"X\",\"ts\":{ts},\"dur\":30,\"pid\":0,\"tid\":{tid},\"args\":{{\"injected\":{},\"launched\":{}}}}}",
                    e.a, e.b
                ),
                EventKind::Merge => format!(
                    "{{\"name\":\"merge\",\"ph\":\"X\",\"ts\":{},\"dur\":30,\"pid\":0,\"tid\":{tid},\"args\":{{\"moved\":{}}}}}",
                    ts + 35,
                    e.a
                ),
                EventKind::PhaseB => format!(
                    "{{\"name\":\"phase_b\",\"ph\":\"X\",\"ts\":{},\"dur\":30,\"pid\":0,\"tid\":{tid},\"args\":{{\"drained\":{},\"delivered\":{}}}}}",
                    ts + 70,
                    e.a, e.b
                ),
                EventKind::Cycle => format!(
                    "{{\"name\":\"cycle\",\"ph\":\"X\",\"ts\":{ts},\"dur\":90,\"pid\":0,\"tid\":{tid},\"args\":{{\"injected\":{},\"delivered\":{},\"buffered\":{}}}}}",
                    e.a, e.b, e.value
                ),
                EventKind::QueueDepth => format!(
                    "{{\"name\":{},\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"args\":{{\"total\":{},\"max\":{}}}}}",
                    json::quote(&format!("queue[{}]", track_label(e.shard))),
                    e.value, e.a
                ),
                EventKind::ActiveNodes
                | EventKind::PoolOccupancy
                | EventKind::WheelDepth
                | EventKind::OutboxDepth => format!(
                    "{{\"name\":{},\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"args\":{{\"v\":{}}}}}",
                    json::quote(&format!("{}[{}]", kind.as_str(), track_label(e.shard))),
                    e.value
                ),
                EventKind::Worklist => format!(
                    "{{\"name\":{},\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"args\":{{\"active\":{},\"busy_nodes\":{},\"queued\":{}}}}}",
                    json::quote(&format!("worklist[{}]", track_label(e.shard))),
                    e.a, e.b, e.value
                ),
                EventKind::LinkUtil | EventKind::CreditStall => format!(
                    "{{\"name\":{},\"ph\":\"i\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"s\":\"t\",\"args\":{{\"link\":{},\"delta\":{}}}}}",
                    json::quote(kind.as_str()),
                    e.a, e.value
                ),
            };
            push(&mut out, &mut first, line);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Deterministic analysis of the trace: phase work breakdown,
    /// per-shard imbalance, hottest links, queue-depth quantiles.
    pub fn summarize(&self, top_n: usize) -> TraceSummary {
        let mut injected = 0u64;
        let mut launched = 0u64;
        let mut merged = 0u64;
        let mut drained = 0u64;
        let mut delivered = 0u64;
        let mut stalls = 0u64;
        let mut per_shard_work: BTreeMap<u16, u64> = BTreeMap::new();
        let mut links: BTreeMap<(u16, u32), u64> = BTreeMap::new();
        let queue_hist = Histogram::active();
        let mut queue_max = 0u64;
        let mut cycles = (u32::MAX, 0u32);
        for e in &self.events {
            cycles.0 = cycles.0.min(e.cycle);
            cycles.1 = cycles.1.max(e.cycle);
            match EventKind::from_u16(e.kind) {
                Some(EventKind::PhaseA) => {
                    injected += e.a as u64;
                    launched += e.b as u64;
                    *per_shard_work.entry(e.shard).or_insert(0) += e.b as u64;
                }
                Some(EventKind::Merge) => merged += e.a as u64,
                Some(EventKind::PhaseB) => {
                    drained += e.a as u64;
                    delivered += e.b as u64;
                }
                Some(EventKind::Cycle) => {
                    injected += e.a as u64;
                    delivered += e.b as u64;
                    *per_shard_work.entry(e.shard).or_insert(0) += e.a as u64;
                }
                Some(EventKind::LinkUtil) => {
                    *links.entry((e.shard, e.a)).or_insert(0) += e.value;
                }
                Some(EventKind::CreditStall) => stalls += e.value,
                Some(EventKind::QueueDepth) => {
                    queue_hist.observe(e.value);
                    queue_max = queue_max.max(e.a as u64);
                }
                _ => {}
            }
        }
        let shard_work: Vec<(u16, u64)> = per_shard_work
            .iter()
            .filter(|(s, _)| **s != ENGINE_TRACK)
            .map(|(s, w)| (*s, *w))
            .collect();
        let imbalance = if shard_work.is_empty() {
            1.0
        } else {
            let max = shard_work.iter().map(|(_, w)| *w).max().unwrap_or(0);
            let mean =
                shard_work.iter().map(|(_, w)| *w).sum::<u64>() as f64 / shard_work.len() as f64;
            if mean > 0.0 {
                max as f64 / mean
            } else {
                1.0
            }
        };
        let mut hot: Vec<((u16, u32), u64)> = links.into_iter().collect();
        // Descending by busy total; ties broken by (shard, link) so the
        // ordering is total.
        hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hot.truncate(top_n);
        TraceSummary {
            shards: self.shards,
            interval: self.interval,
            events: self.events.len() as u64,
            dropped: self.dropped,
            first_cycle: if self.events.is_empty() { 0 } else { cycles.0 },
            last_cycle: cycles.1,
            injected,
            launched,
            merged,
            drained,
            delivered,
            credit_stalls: stalls,
            shard_work,
            imbalance,
            hot_links: hot
                .into_iter()
                .map(|((s, l), v)| HotLink {
                    shard: s,
                    link: l,
                    busy: v,
                })
                .collect(),
            queue_p50: queue_hist.percentile(0.50),
            queue_p95: queue_hist.percentile(0.95),
            queue_p99: queue_hist.percentile(0.99),
            queue_samples: queue_hist.count(),
            queue_deepest: queue_max,
        }
    }
}

fn track_label(shard: u16) -> String {
    if shard == ENGINE_TRACK {
        "engine".to_string()
    } else {
        shard.to_string()
    }
}

/// One entry of [`TraceSummary::hot_links`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotLink {
    /// Shard that owns the link.
    pub shard: u16,
    /// Shard-local link index.
    pub link: u32,
    /// Busy cycles accumulated across all samples.
    pub busy: u64,
}

/// Deterministic rollup of a [`Trace`], rendered by `ipg trace
/// summary`.
#[derive(Clone, Debug)]
pub struct TraceSummary {
    pub shards: u16,
    pub interval: u32,
    pub events: u64,
    pub dropped: u64,
    pub first_cycle: u32,
    pub last_cycle: u32,
    pub injected: u64,
    pub launched: u64,
    pub merged: u64,
    pub drained: u64,
    pub delivered: u64,
    pub credit_stalls: u64,
    /// Phase-A work (launched messages) per shard, shard-ordered.
    pub shard_work: Vec<(u16, u64)>,
    /// Max-over-mean of per-shard phase-A work (1.0 = perfectly even).
    pub imbalance: f64,
    pub hot_links: Vec<HotLink>,
    pub queue_p50: u64,
    pub queue_p95: u64,
    pub queue_p99: u64,
    pub queue_samples: u64,
    pub queue_deepest: u64,
}

impl TraceSummary {
    /// Human-readable rendering (deterministic: derived from trace
    /// contents only).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events over cycles {}..={} ({} shards, sample interval {}, {} dropped)",
            self.events,
            self.first_cycle,
            self.last_cycle,
            self.shards,
            self.interval,
            self.dropped,
        );
        let _ = writeln!(
            out,
            "phase work: injected {} / launched {} / merged {} / drained {} / delivered {}",
            self.injected, self.launched, self.merged, self.drained, self.delivered,
        );
        let _ = writeln!(
            out,
            "shard imbalance: {:.3} (max/mean phase-A work across {} shards)",
            self.imbalance,
            self.shard_work.len(),
        );
        for (s, w) in &self.shard_work {
            let _ = writeln!(out, "  shard {s:>3}: {w} launched");
        }
        let _ = writeln!(
            out,
            "queue depth: p50 {} / p95 {} / p99 {} over {} samples (deepest single link {})",
            self.queue_p50, self.queue_p95, self.queue_p99, self.queue_samples, self.queue_deepest,
        );
        if self.credit_stalls > 0 {
            let _ = writeln!(out, "credit stalls: {}", self.credit_stalls);
        }
        if self.hot_links.is_empty() {
            let _ = writeln!(out, "hottest links: none sampled");
        } else {
            let _ = writeln!(out, "hottest links (busy cycles across samples):");
            for h in &self.hot_links {
                let _ = writeln!(out, "  shard {:>3} link {:>4}: {}", h.shard, h.link, h.busy);
            }
        }
        out
    }
}

/// Extract an unsigned integer field `"key":123` from a JSONL line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract a (non-escaped) string field `"key":"value"` from a JSONL
/// line. Only suitable for our own exports, where emitted kinds and
/// record names never contain escapes.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u32, kind: EventKind, shard: u16, a: u32, b: u32, value: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            kind: kind as u16,
            shard,
            a,
            b,
            value,
        }
    }

    #[test]
    fn ring_wraparound_evicts_oldest_and_counts_drops() {
        let mut r = EventRing::new(4);
        for i in 0..10u32 {
            r.push(ev(i, EventKind::PhaseA, 0, i, 0, 0));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let mut out = Vec::new();
        r.drain_into(&mut out);
        let cycles: Vec<u32> = out.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "oldest evicted, order kept");
        assert!(r.is_empty());
        // ring is reusable after a drain
        r.push(ev(42, EventKind::PhaseB, 0, 0, 0, 0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 6, "drain does not reset the drop count");
    }

    #[test]
    fn zero_capacity_ring_still_works() {
        let mut r = EventRing::new(0); // clamped to 1
        r.push(ev(1, EventKind::PhaseA, 0, 0, 0, 0));
        r.push(ev(2, EventKind::PhaseA, 0, 0, 0, 0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn tracer_sampling_interval() {
        let t = ShardTracer::new(0, &TraceConfig::with_interval(64));
        assert!(t.sampled(0));
        assert!(!t.sampled(1));
        assert!(!t.sampled(63));
        assert!(t.sampled(64));
        assert!(t.sampled(128));
        let every = ShardTracer::new(0, &TraceConfig::with_interval(0)); // clamped to 1
        assert!(every.sampled(7));
    }

    #[test]
    fn kind_names_roundtrip() {
        for (k, name) in KIND_NAMES {
            assert_eq!(k.as_str(), *name);
            assert_eq!(EventKind::from_name(name), Some(*k));
            assert_eq!(EventKind::from_u16(*k as u16), Some(*k));
        }
        assert_eq!(EventKind::from_name("nope"), None);
        assert_eq!(EventKind::from_u16(999), None);
    }

    #[test]
    fn link_util_reports_top_deltas_descending() {
        let mut t = ShardTracer::new(3, &TraceConfig::default());
        t.init_links(6);
        t.link_util(0, &[5, 0, 9, 1, 9, 2]);
        let trace = Trace::collect(64, Vec::new(), t);
        let utils: Vec<(u32, u64)> = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::LinkUtil as u16)
            .map(|e| (e.a, e.value))
            .collect();
        // top 4 of deltas [5,0,9,1,9,2]: 9@2, 9@4, 5@0, 2@5
        assert_eq!(utils, vec![(2, 9), (4, 9), (0, 5), (5, 2)]);
    }

    #[test]
    fn link_util_deltas_are_since_last_sample() {
        let mut t = ShardTracer::new(0, &TraceConfig::default());
        t.init_links(2);
        t.link_util(0, &[10, 3]);
        t.link_util(64, &[12, 3]); // deltas 2, 0 -> one event
        let trace = Trace::collect(64, Vec::new(), t);
        let second: Vec<_> = trace.events.iter().filter(|e| e.cycle == 64).collect();
        assert_eq!(second.len(), 1);
        assert_eq!((second[0].a, second[0].value), (0, 2));
    }

    #[test]
    fn collect_merges_cycle_ordered_with_engine_last() {
        let cfg = TraceConfig::default();
        let mut s0 = ShardTracer::new(0, &cfg);
        let mut s1 = ShardTracer::new(1, &cfg);
        let mut eng = ShardTracer::new(ENGINE_TRACK, &cfg);
        for c in [0u64, 64] {
            s0.phase_a(c, 1, 2);
            s1.phase_a(c, 3, 4);
            eng.merge(c, 5);
            s0.phase_b(c, 2, 1);
            s1.phase_b(c, 4, 3);
        }
        let trace = Trace::collect(64, vec![s0, s1], eng);
        assert_eq!(trace.shards, 2);
        let order: Vec<(u32, u16, u16)> = trace
            .events
            .iter()
            .map(|e| (e.cycle, e.shard, e.kind))
            .collect();
        let a = EventKind::PhaseA as u16;
        let b = EventKind::PhaseB as u16;
        let m = EventKind::Merge as u16;
        assert_eq!(
            order,
            vec![
                (0, 0, a),
                (0, 0, b),
                (0, 1, a),
                (0, 1, b),
                (0, ENGINE_TRACK, m),
                (64, 0, a),
                (64, 0, b),
                (64, 1, a),
                (64, 1, b),
                (64, ENGINE_TRACK, m),
            ]
        );
    }

    #[test]
    fn jsonl_roundtrip_is_lossless() {
        let cfg = TraceConfig::with_interval(32);
        let mut s0 = ShardTracer::new(0, &cfg);
        let mut eng = ShardTracer::new(ENGINE_TRACK, &cfg);
        s0.phase_a(0, 7, 9);
        s0.queue_depth(0, 3, 17);
        s0.pool_occupancy(0, 41);
        eng.merge(0, 11);
        let trace = Trace::collect(32, vec![s0], eng);
        let text = trace.to_jsonl();
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back, trace);
        // and the export is stable
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn from_jsonl_rejects_garbage() {
        assert!(Trace::from_jsonl("").is_err());
        assert!(Trace::from_jsonl("{\"record\":\"meta\"}").is_err());
        let missing_kind = "{\"record\":\"trace_meta\",\"version\":1,\"shards\":1,\"interval\":1,\"events\":1,\"dropped_events\":0}\n{\"record\":\"trace\",\"cycle\":0,\"shard\":0,\"a\":0,\"b\":0,\"value\":0}\n";
        assert!(Trace::from_jsonl(missing_kind).is_err());
    }

    #[test]
    fn chrome_export_escapes_strings_and_has_structure() {
        let cfg = TraceConfig::default();
        let mut s0 = ShardTracer::new(0, &cfg);
        s0.phase_a(0, 1, 2);
        s0.wheel_depth(0, 5);
        let trace = Trace::collect(64, vec![s0], ShardTracer::new(ENGINE_TRACK, &cfg));
        let name = "run \"q\\6\"\nnewline";
        let js = trace.to_chrome_json(name);
        assert!(js.contains("\\\"q\\\\6\\\"\\nnewline"), "{js}");
        assert!(js.starts_with('{') && js.trim_end().ends_with('}'));
        assert!(js.contains("\"traceEvents\":["));
        assert!(js.contains("\"ph\":\"X\""));
        assert!(js.contains("\"ph\":\"C\""));
        assert!(js.contains("\"thread_name\""));
        // no raw control characters anywhere in the output
        assert!(js.chars().all(|c| c == '\n' || (c as u32) >= 0x20));
    }

    #[test]
    fn summary_computes_imbalance_and_hot_links() {
        let cfg = TraceConfig::with_interval(1);
        let mut s0 = ShardTracer::new(0, &cfg);
        let mut s1 = ShardTracer::new(1, &cfg);
        s0.init_links(3);
        s1.init_links(3);
        s0.phase_a(0, 2, 30);
        s1.phase_a(0, 2, 10);
        s0.link_util(0, &[100, 0, 7]);
        s1.link_util(0, &[0, 250, 0]);
        s0.queue_depth(0, 9, 20);
        s1.queue_depth(0, 4, 10);
        let trace = Trace::collect(1, vec![s0, s1], ShardTracer::new(ENGINE_TRACK, &cfg));
        let sum = trace.summarize(2);
        assert_eq!(sum.launched, 40);
        assert!((sum.imbalance - 1.5).abs() < 1e-9, "{}", sum.imbalance);
        assert_eq!(sum.hot_links.len(), 2);
        assert_eq!((sum.hot_links[0].shard, sum.hot_links[0].link), (1, 1));
        assert_eq!(sum.hot_links[0].busy, 250);
        assert_eq!((sum.hot_links[1].shard, sum.hot_links[1].link), (0, 0));
        assert_eq!(sum.queue_deepest, 9);
        assert_eq!(sum.queue_samples, 2);
        let rendered = sum.render();
        assert!(rendered.contains("shard imbalance: 1.500"), "{rendered}");
        assert!(rendered.contains("hottest links"), "{rendered}");
    }

    #[test]
    fn summary_of_empty_trace_is_benign() {
        let trace = Trace {
            shards: 0,
            interval: 64,
            dropped: 0,
            events: Vec::new(),
        };
        let sum = trace.summarize(5);
        assert_eq!(sum.events, 0);
        assert_eq!(sum.imbalance, 1.0);
        assert_eq!(sum.queue_p99, 0);
        assert!(sum.hot_links.is_empty());
        let _ = sum.render(); // must not panic
    }

    #[test]
    fn wormhole_cycle_emits_deltas() {
        let mut t = ShardTracer::new(0, &TraceConfig::with_interval(1));
        t.wormhole_cycle(0, 10, 4, 6);
        t.wormhole_cycle(1, 25, 9, 16);
        let trace = Trace::collect(1, Vec::new(), t);
        assert_eq!(trace.events.len(), 2);
        assert_eq!((trace.events[0].a, trace.events[0].b), (10, 4));
        assert_eq!((trace.events[1].a, trace.events[1].b), (15, 5));
        assert_eq!(trace.events[1].value, 16);
    }
}
