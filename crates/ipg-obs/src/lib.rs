//! Lightweight observability for the IP-graph reproduction.
//!
//! Everything in this crate is built around one rule: **the disabled
//! path is a no-op**. An [`Obs`] handle constructed with
//! [`Obs::disabled`] carries no allocation and every operation on it —
//! counter increments, histogram observations, span timers — reduces to
//! a single branch on a `None`. Paper-number-producing code can
//! therefore be instrumented unconditionally without perturbing results
//! or timings when observability is off.
//!
//! When enabled, an [`Obs`] owns:
//!
//! * a registry of named [`Counter`]s, high-water [`Gauge`]s, and
//!   fixed-bucket [`Histogram`]s (HDR-style octave buckets, ≤12.5 %
//!   relative error, exact below 64) with p50/p95/p99 readout;
//! * a hierarchical [`Span`] timer stack (`engine/run/warmup`), each
//!   span emitting a wall-clock record when dropped;
//! * a [`Recorder`] sink that serializes everything as JSON lines — a
//!   *run manifest*: one `meta` record (tool name, config, `git
//!   describe`, timestamp), interleaved `span` and `window` records,
//!   and a final `metrics` record.
//!
//! Determinism contract: [`Obs::metrics_json`] (and the `metrics` /
//! `window` records) contain only data derived from the instrumented
//! computation — never wall-clock time — and iterate metrics in sorted
//! name order. Two runs with the same seed produce byte-identical
//! metric dumps; only `meta` and `span` records may differ.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

mod hist;
mod json;
pub mod probe;
mod recorder;
pub mod trace;

pub use hist::{HistSnapshot, Histogram};
pub use probe::ObsBuildProbe;
pub use recorder::{JsonlRecorder, MemRecorder, NullRecorder, Recorder};
pub use trace::{ShardTracer, Trace, TraceConfig, TraceSummary, ENGINE_TRACK};

/// A named monotone counter. No-op when obtained from a disabled [`Obs`].
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Add `v` to the counter.
    #[inline]
    pub fn add(&self, v: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A named gauge tracking the **high-water mark** of recorded values.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Raise the gauge to `v` if `v` exceeds the current high-water mark.
    #[inline]
    pub fn record_max(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current high-water mark (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// Scalar values accepted in a `meta` record's config map.
#[derive(Clone, Debug)]
pub enum MetaVal {
    Str(String),
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
}

impl From<&str> for MetaVal {
    fn from(s: &str) -> Self {
        MetaVal::Str(s.to_string())
    }
}
impl From<String> for MetaVal {
    fn from(s: String) -> Self {
        MetaVal::Str(s)
    }
}
impl From<u64> for MetaVal {
    fn from(v: u64) -> Self {
        MetaVal::U64(v)
    }
}
impl From<usize> for MetaVal {
    fn from(v: usize) -> Self {
        MetaVal::U64(v as u64)
    }
}
impl From<i64> for MetaVal {
    fn from(v: i64) -> Self {
        MetaVal::I64(v)
    }
}
impl From<f64> for MetaVal {
    fn from(v: f64) -> Self {
        MetaVal::F64(v)
    }
}
impl From<bool> for MetaVal {
    fn from(v: bool) -> Self {
        MetaVal::Bool(v)
    }
}

impl MetaVal {
    fn to_json(&self) -> String {
        match self {
            MetaVal::Str(s) => json::quote(s),
            MetaVal::U64(v) => v.to_string(),
            MetaVal::I64(v) => v.to_string(),
            MetaVal::F64(v) => json::float(*v),
            MetaVal::Bool(v) => v.to_string(),
        }
    }
}

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Histogram),
}

/// One metric's cumulative value as captured by [`Obs::snapshot_metrics`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricSnapshot {
    /// Monotone counter value.
    Counter(u64),
    /// High-water gauge value.
    Gauge(u64),
    /// Full histogram state.
    Hist(HistSnapshot),
}

struct Inner {
    metrics: Mutex<BTreeMap<String, Metric>>,
    span_stack: Mutex<Vec<String>>,
    sink: Mutex<Box<dyn Recorder>>,
    t0: Instant,
}

/// Handle to an observability session (cheaply cloneable).
///
/// Construct with [`Obs::disabled`] (free no-op), [`Obs::to_file`]
/// (JSON-lines manifest on disk), [`Obs::in_memory`] (testing), or
/// [`Obs::with_recorder`] (custom sink such as [`NullRecorder`]).
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl Obs {
    /// The no-op handle: every operation is a branch-and-return.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// Record to a JSON-lines manifest file at `path` (created or
    /// truncated).
    pub fn to_file(path: &std::path::Path) -> std::io::Result<Obs> {
        Ok(Obs::with_recorder(Box::new(JsonlRecorder::create(path)?)))
    }

    /// Record into an in-memory buffer; returns the handle and the
    /// buffer to inspect after [`Obs::finish`].
    pub fn in_memory() -> (Obs, MemRecorder) {
        let mem = MemRecorder::new();
        (Obs::with_recorder(Box::new(mem.clone())), mem)
    }

    /// Record through an arbitrary [`Recorder`].
    pub fn with_recorder(sink: Box<dyn Recorder>) -> Obs {
        Obs {
            inner: Some(Arc::new(Inner {
                metrics: Mutex::new(BTreeMap::new()),
                span_stack: Mutex::new(Vec::new()),
                sink: Mutex::new(sink),
                t0: Instant::now(),
            })),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Get or create the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter(None);
        };
        let mut m = inner.metrics.lock().unwrap();
        let cell = match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        };
        Counter(Some(cell))
    }

    /// Get or create the named high-water gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge(None);
        };
        let mut m = inner.metrics.lock().unwrap();
        let cell = match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        };
        Gauge(Some(cell))
    }

    /// Get or create the named histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::noop();
        };
        let mut m = inner.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::active()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// Open a wall-clock span; the returned guard emits a `span` record
    /// (with the `/`-joined hierarchical path) when dropped.
    pub fn span(&self, name: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                obs: Obs::disabled(),
                start: None,
            };
        };
        inner.span_stack.lock().unwrap().push(name.to_string());
        Span {
            obs: self.clone(),
            start: Some(Instant::now()),
        }
    }

    /// Emit the `meta` record: tool name, config key/value pairs, `git
    /// describe` of the working tree, and a unix timestamp.
    pub fn emit_meta(&self, tool: &str, config: &[(&str, MetaVal)]) {
        let Some(inner) = &self.inner else { return };
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"record\":\"meta\",\"tool\":{},\"git\":{},\"unix_ts\":{},\"config\":{{",
            json::quote(tool),
            match git_describe() {
                Some(d) => json::quote(&d),
                None => "null".to_string(),
            },
            unix_ts(),
        );
        for (i, (k, v)) in config.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "{}:{}", json::quote(k), v.to_json());
        }
        line.push_str("}}");
        inner.sink.lock().unwrap().record(&line);
    }

    /// Emit a `rate` record: a wall-clock-derived throughput figure
    /// (e.g. nodes generated per second). Rates live beside `span`
    /// records in the nondeterministic family — they never appear in
    /// the metrics dump.
    pub fn emit_rate(&self, name: &str, count: u64, secs: f64) {
        let Some(inner) = &self.inner else { return };
        let per_sec = if secs > 0.0 { count as f64 / secs } else { 0.0 };
        let line = format!(
            "{{\"record\":\"rate\",\"name\":{},\"count\":{count},\"secs\":{},\"per_sec\":{}}}",
            json::quote(name),
            json::float(secs),
            json::float(per_sec),
        );
        inner.sink.lock().unwrap().record(&line);
    }

    /// Emit a `scaling` record: the worker count and achieved busy/wall
    /// parallelism of one named execution phase. Like `rate`, scaling
    /// records are wall-clock-derived and live in the nondeterministic
    /// family — they never appear in the metrics dump, so metric dumps
    /// stay byte-identical across `IPG_THREADS` settings.
    pub fn emit_scaling(&self, phase: &str, workers: usize, busy_secs: f64, wall_secs: f64) {
        let Some(inner) = &self.inner else { return };
        let speedup = if wall_secs > 0.0 {
            busy_secs / wall_secs
        } else {
            1.0
        };
        let line = format!(
            "{{\"record\":\"scaling\",\"phase\":{},\"workers\":{workers},\"busy_secs\":{},\"wall_secs\":{},\"speedup\":{}}}",
            json::quote(phase),
            json::float(busy_secs),
            json::float(wall_secs),
            json::float(speedup),
        );
        inner.sink.lock().unwrap().record(&line);
    }

    /// Emit a `dist` record: per-worker resource figures from a
    /// multi-process simulation run (peak RSS, frame traffic). Like
    /// `span`/`rate`/`scaling`, dist records are host-dependent and
    /// live in the nondeterministic family — they never appear in
    /// `window`/`metrics` records or trace files, so those stay
    /// byte-identical across worker counts.
    pub fn emit_dist(&self, worker: u32, rss_kb: u64, frames: u64, frame_bytes: u64) {
        let Some(inner) = &self.inner else { return };
        let line = format!(
            "{{\"record\":\"dist\",\"worker\":{worker},\"rss_kb\":{rss_kb},\"frames\":{frames},\"frame_bytes\":{frame_bytes}}}",
        );
        inner.sink.lock().unwrap().record(&line);
    }

    /// Cumulative capture of every registered metric, for cross-process
    /// aggregation: the distributed worker ships these at window
    /// boundaries and the coordinator folds per-worker deltas into its
    /// own registry (counters delta-added, gauges max-folded,
    /// histograms via [`Histogram::merge_delta`]). Names come back in
    /// sorted (registry) order.
    pub fn snapshot_metrics(&self) -> Vec<(String, MetricSnapshot)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let m = inner.metrics.lock().unwrap();
        m.iter()
            .map(|(name, metric)| {
                let snap = match metric {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.load(Ordering::Relaxed)),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.load(Ordering::Relaxed)),
                    Metric::Histogram(h) => MetricSnapshot::Hist(h.snapshot()),
                };
                (name.clone(), snap)
            })
            .collect()
    }

    /// Emit a `window` record: a deterministic snapshot of all metrics
    /// at a given progress point (e.g. a simulator cycle).
    pub fn emit_window(&self, cycle: u64) {
        let Some(inner) = &self.inner else { return };
        let mut line = String::new();
        let _ = write!(line, "{{\"record\":\"window\",\"cycle\":{cycle},");
        Self::write_metrics_body(&inner.metrics.lock().unwrap(), &mut line);
        line.push('}');
        inner.sink.lock().unwrap().record(&line);
    }

    /// The deterministic metric dump: sorted names, no wall-clock data.
    /// This is the exact body of the final `metrics` record.
    pub fn metrics_json(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let mut body = String::new();
        Self::write_metrics_body(&inner.metrics.lock().unwrap(), &mut body);
        body
    }

    fn write_metrics_body(metrics: &BTreeMap<String, Metric>, out: &mut String) {
        let section = |out: &mut String, name: &str, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            let _ = write!(out, "{}:{{", json::quote(name));
        };
        let mut first = true;

        section(out, "counters", &mut first);
        let mut inner_first = true;
        for (name, m) in metrics {
            if let Metric::Counter(c) = m {
                if !inner_first {
                    out.push(',');
                }
                inner_first = false;
                let _ = write!(out, "{}:{}", json::quote(name), c.load(Ordering::Relaxed));
            }
        }
        out.push('}');

        section(out, "gauges", &mut first);
        let mut inner_first = true;
        for (name, m) in metrics {
            if let Metric::Gauge(g) = m {
                if !inner_first {
                    out.push(',');
                }
                inner_first = false;
                let _ = write!(out, "{}:{}", json::quote(name), g.load(Ordering::Relaxed));
            }
        }
        out.push('}');

        section(out, "histograms", &mut first);
        let mut inner_first = true;
        for (name, m) in metrics {
            if let Metric::Histogram(h) = m {
                if !inner_first {
                    out.push(',');
                }
                inner_first = false;
                let _ = write!(out, "{}:{}", json::quote(name), h.summary_json());
            }
        }
        out.push('}');
    }

    /// Emit the final `metrics` record and flush the sink. Idempotent in
    /// effect but intended to be called once, at the end of a run.
    pub fn finish(&self) {
        let Some(inner) = &self.inner else { return };
        let mut line = String::from("{\"record\":\"metrics\",");
        Self::write_metrics_body(&inner.metrics.lock().unwrap(), &mut line);
        line.push('}');
        let mut sink = inner.sink.lock().unwrap();
        sink.record(&line);
        sink.flush();
    }
}

/// RAII wall-clock timer returned by [`Obs::span`]. Dropping it emits a
/// `span` record with the hierarchical path and elapsed seconds.
pub struct Span {
    obs: Obs,
    start: Option<Instant>,
}

impl Span {
    /// Seconds elapsed since the span opened (`None` when disabled).
    ///
    /// This is the sanctioned way for instrumented code to derive
    /// wall-clock rates (`Obs::emit_rate`) without reading the clock
    /// itself: all `Instant` access stays inside `ipg-obs`, which the
    /// DET003 lint (`ipg-analyze`) enforces workspace-wide.
    pub fn elapsed_secs(&self) -> Option<f64> {
        self.start.map(|s| s.elapsed().as_secs_f64())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let (Some(inner), Some(start)) = (&self.obs.inner, self.start) else {
            return;
        };
        let path = {
            let mut stack = inner.span_stack.lock().unwrap();
            let path = stack.join("/");
            stack.pop();
            path
        };
        let line = format!(
            "{{\"record\":\"span\",\"path\":{},\"secs\":{},\"at_secs\":{}}}",
            json::quote(&path),
            json::float(start.elapsed().as_secs_f64()),
            json::float(inner.t0.elapsed().as_secs_f64()),
        );
        inner.sink.lock().unwrap().record(&line);
    }
}

/// `git describe --always --dirty` of the current working tree, if git
/// and a repository are available.
pub fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8_lossy(&out.stdout).trim().to_string();
    (!s.is_empty()).then_some(s)
}

fn unix_ts() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_noop() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        let c = obs.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = obs.gauge("y");
        g.record_max(9);
        assert_eq!(g.get(), 0);
        obs.histogram("z").observe(3);
        let _span = obs.span("nothing");
        obs.emit_meta("tool", &[("k", MetaVal::from(1u64))]);
        obs.emit_window(10);
        obs.finish();
        assert_eq!(obs.metrics_json(), "");
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let (obs, _mem) = Obs::in_memory();
        let c = obs.counter("packets");
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);
        // same name returns the same cell
        assert_eq!(obs.counter("packets").get(), 4);
        let g = obs.gauge("depth");
        g.record_max(7);
        g.record_max(2);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn metrics_dump_is_sorted_and_deterministic() {
        let run = || {
            let (obs, _mem) = Obs::in_memory();
            obs.counter("b_ctr").add(2);
            obs.counter("a_ctr").add(1);
            obs.gauge("depth").record_max(5);
            let h = obs.histogram("lat");
            for v in [1, 2, 3, 100] {
                h.observe(v);
            }
            obs.metrics_json()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        let ia = a.find("a_ctr").unwrap();
        let ib = a.find("b_ctr").unwrap();
        assert!(ia < ib, "sorted name order");
        assert!(a.contains("\"counters\""));
        assert!(a.contains("\"gauges\""));
        assert!(a.contains("\"histograms\""));
    }

    #[test]
    fn span_records_hierarchical_paths() {
        let (obs, mem) = Obs::in_memory();
        {
            let _outer = obs.span("run");
            {
                let _inner = obs.span("warmup");
            }
        }
        obs.finish();
        let text = mem.contents();
        assert!(text.contains("\"path\":\"run/warmup\""), "{text}");
        assert!(text.contains("\"path\":\"run\""));
        // inner span line appears before outer (dropped first)
        let i_inner = text.find("run/warmup").unwrap();
        let i_outer = text.rfind("\"path\":\"run\"").unwrap();
        assert!(i_inner < i_outer);
    }

    #[test]
    fn manifest_lines_are_json_shaped() {
        let (obs, mem) = Obs::in_memory();
        obs.emit_meta(
            "test_tool",
            &[
                ("seed", MetaVal::from(42u64)),
                ("rate", MetaVal::from(0.25)),
                ("name", MetaVal::from("q\"6\"")),
            ],
        );
        obs.counter("n").add(1);
        obs.emit_window(500);
        obs.finish();
        let text = mem.contents();
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"record\":\"meta\""));
        assert!(text.contains("\"record\":\"window\""));
        assert!(text.contains("\"record\":\"metrics\""));
        assert!(text.contains("\"cycle\":500"));
        assert!(text.contains("\\\"6\\\"")); // escaped quote in config
    }

    #[test]
    fn scaling_records_are_nondeterministic_family_only() {
        let (obs, mem) = Obs::in_memory();
        obs.counter("n").add(1);
        obs.emit_scaling("diameter", 4, 2.0, 0.5);
        obs.emit_scaling("zero_wall", 2, 0.0, 0.0);
        obs.finish();
        let text = mem.contents();
        assert!(text.contains("\"record\":\"scaling\""));
        assert!(text.contains("\"phase\":\"diameter\""));
        assert!(text.contains("\"workers\":4"));
        assert!(text.contains("\"speedup\":4"));
        // zero wall time degrades to speedup 1, not NaN/inf
        assert!(text.contains("\"speedup\":1"));
        // the deterministic dump is untouched by scaling records
        assert!(!obs.metrics_json().contains("scaling"));
        let disabled = Obs::disabled();
        disabled.emit_scaling("noop", 8, 1.0, 1.0); // must not panic
    }

    #[test]
    fn null_recorder_swallows_everything() {
        let obs = Obs::with_recorder(Box::new(NullRecorder));
        obs.counter("n").add(1);
        obs.finish();
        // still functional as a metrics registry
        assert!(obs.metrics_json().contains("\"n\":1"));
    }
}
