//! Fixed-bucket histogram with HDR-style octave sub-bucketing.
//!
//! Values 0..=63 land in exact buckets; larger values use 8 sub-buckets
//! per power-of-two octave, giving ≤12.5 % relative error up to
//! `u64::MAX`. Percentiles are read back as the midpoint of the bucket
//! containing the target rank, clamped to the observed min/max so small
//! samples report exact order statistics more often than not.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Exact buckets below this value.
const LINEAR: u64 = 64;
/// Sub-buckets per octave above the linear range (8 = 3 mantissa bits).
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// 64 linear buckets + (64 - 6 octaves) * 8 sub-buckets.
const BUCKETS: usize = LINEAR as usize + ((64 - 6) << SUB_BITS);

struct Cells {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket histogram handle. No-op when obtained from a disabled
/// [`Obs`](crate::Obs).
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<Cells>>);

/// Cumulative state of one histogram at a point in time, in sparse
/// bucket form — see [`Histogram::snapshot`] / [`Histogram::merge_delta`].
///
/// `min` is `u64::MAX` while `count == 0` (the untouched sentinel);
/// consumers must gate min-folding on `count > 0`, as `merge_delta`
/// does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// `(bucket_index, count)` pairs for every nonzero bucket, ascending.
    pub buckets: Vec<(u32, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    if v < LINEAR {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros() as u64; // >= 6
        let sub = (v >> (octave - SUB_BITS as u64)) & (SUB - 1);
        (LINEAR + ((octave - 6) << SUB_BITS) + sub) as usize
    }
}

/// Midpoint of the value range covered by bucket `i`.
fn bucket_mid(i: usize) -> u64 {
    let i = i as u64;
    if i < LINEAR {
        return i;
    }
    let octave = 6 + ((i - LINEAR) >> SUB_BITS);
    let sub = (i - LINEAR) & (SUB - 1);
    let lo = (1u64 << octave) + (sub << (octave - SUB_BITS as u64));
    let width = 1u64 << (octave - SUB_BITS as u64);
    lo + width / 2
}

impl Histogram {
    pub(crate) fn noop() -> Histogram {
        Histogram(None)
    }

    pub(crate) fn active() -> Histogram {
        // Box the bucket array directly; [AtomicU64; N] has no Default
        // for N this large, so build it from a zeroed Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = v.into_boxed_slice().try_into().ok().unwrap();
        Histogram(Some(Arc::new(Cells {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        })))
    }

    /// Record one value.
    #[inline]
    pub fn observe(&self, v: u64) {
        let Some(c) = &self.0 else { return };
        c.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    /// Mean of recorded values (0.0 when empty or disabled).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Smallest recorded value (0 when empty or disabled).
    pub fn min(&self) -> u64 {
        match &self.0 {
            Some(c) if c.count.load(Ordering::Relaxed) > 0 => c.min.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    /// Largest recorded value (0 when empty or disabled).
    pub fn max(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.max.load(Ordering::Relaxed))
    }

    /// Value at quantile `q` in `[0, 1]`: the midpoint of the bucket
    /// containing the `ceil(q * count)`-th smallest observation, clamped
    /// to the observed min/max. Returns 0 when empty or disabled; a
    /// non-finite `q` reads as 1.0 (the max) rather than poisoning the
    /// rank arithmetic.
    pub fn percentile(&self, q: f64) -> u64 {
        let Some(c) = &self.0 else { return 0 };
        let n = c.count.load(Ordering::Relaxed);
        if n == 0 {
            return 0;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            1.0
        };
        let rank = ((q * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in c.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_mid(i)
                    .clamp(c.min.load(Ordering::Relaxed), c.max.load(Ordering::Relaxed));
            }
        }
        c.max.load(Ordering::Relaxed)
    }

    /// Cumulative state capture for cross-process aggregation: the
    /// sparse nonzero buckets plus count/sum/min/max.
    ///
    /// Used by the distributed simulation path: each worker ships
    /// cumulative snapshots of its histograms at window boundaries and
    /// the coordinator folds per-worker deltas into its own registry
    /// with [`Histogram::merge_delta`], so the merged histogram sees
    /// exactly the union of all workers' observations.
    pub fn snapshot(&self) -> HistSnapshot {
        let Some(c) = &self.0 else {
            return HistSnapshot::default();
        };
        let mut buckets = Vec::new();
        for (i, b) in c.buckets.iter().enumerate() {
            let v = b.load(Ordering::Relaxed);
            if v != 0 {
                buckets.push((i as u32, v));
            }
        }
        HistSnapshot {
            buckets,
            count: c.count.load(Ordering::Relaxed),
            sum: c.sum.load(Ordering::Relaxed),
            min: c.min.load(Ordering::Relaxed),
            max: c.max.load(Ordering::Relaxed),
        }
    }

    /// Fold the delta between two cumulative snapshots of one remote
    /// histogram into this one. `prev` must be an earlier snapshot of
    /// the same histogram as `cur` (or `HistSnapshot::default()` for
    /// the first window). Bucket counts, count, and sum are
    /// delta-added; min/max fold the remote cumulative extremes
    /// directly (an empty `cur` — count 0 — leaves min untouched, since
    /// its `u64::MAX` sentinel must not be folded in).
    pub fn merge_delta(&self, prev: &HistSnapshot, cur: &HistSnapshot) {
        let Some(c) = &self.0 else { return };
        let mut p = prev.buckets.iter().peekable();
        for &(i, v) in &cur.buckets {
            let mut before = 0;
            while let Some(&&(pi, pv)) = p.peek() {
                if pi < i {
                    p.next();
                } else {
                    if pi == i {
                        before = pv;
                    }
                    break;
                }
            }
            let delta = v.saturating_sub(before);
            if delta > 0 && (i as usize) < BUCKETS {
                c.buckets[i as usize].fetch_add(delta, Ordering::Relaxed);
            }
        }
        c.count
            .fetch_add(cur.count.saturating_sub(prev.count), Ordering::Relaxed);
        c.sum
            .fetch_add(cur.sum.saturating_sub(prev.sum), Ordering::Relaxed);
        if cur.count > 0 {
            c.min.fetch_min(cur.min, Ordering::Relaxed);
            c.max.fetch_max(cur.max, Ordering::Relaxed);
        }
    }

    /// Deterministic JSON summary: count, sum, min, max, mean, p50, p95,
    /// p99.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            self.count(),
            self.sum(),
            self.min(),
            self.max(),
            crate::json::float(self.mean()),
            self.percentile(0.50),
            self.percentile(0.95),
            self.percentile(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_range_is_exact() {
        let h = Histogram::active();
        for v in 0..64u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        // p50 over 0..=63: rank 32 -> value 31 exactly (linear buckets)
        assert_eq!(h.percentile(0.5), 31);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), 63);
    }

    #[test]
    fn octave_range_bounded_relative_error() {
        let h = Histogram::active();
        for v in [100u64, 1_000, 10_000, 1_000_000, 123_456_789] {
            let solo = Histogram::active();
            solo.observe(v);
            let p = solo.percentile(0.5);
            let err = (p as f64 - v as f64).abs() / v as f64;
            assert!(err <= 0.125, "v={v} p={p} err={err}");
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn percentiles_are_monotone() {
        let h = Histogram::active();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let mut last = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let p = h.percentile(q);
            assert!(p >= last, "q={q} p={p} last={last}");
            last = p;
        }
        // p50 of 1..=1000 should be near 500 (within bucket error)
        let p50 = h.percentile(0.5);
        assert!((437..=563).contains(&p50), "p50={p50}");
    }

    #[test]
    fn bucket_roundtrip_covers_extremes() {
        for v in [0, 1, 63, 64, 65, 127, 128, u64::MAX / 2, u64::MAX] {
            let i = bucket_of(v);
            assert!(i < BUCKETS, "v={v} i={i}");
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn summary_shape() {
        let h = Histogram::active();
        h.observe(5);
        h.observe(7);
        let s = h.summary_json();
        assert!(s.contains("\"count\":2"));
        assert!(s.contains("\"sum\":12"));
        assert!(s.contains("\"mean\":6.0"));
        assert!(s.contains("\"p50\":"));
    }

    #[test]
    fn empty_and_disabled_read_zero() {
        for h in [Histogram::active(), Histogram::noop()] {
            assert_eq!(h.count(), 0);
            assert_eq!(h.min(), 0);
            assert_eq!(h.max(), 0);
            assert_eq!(h.percentile(0.5), 0);
            assert_eq!(h.mean(), 0.0);
        }
    }

    #[test]
    fn empty_histogram_quantiles_are_zero_and_summary_is_valid() {
        let h = Histogram::active();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 0, "q={q}");
        }
        let s = h.summary_json();
        assert_eq!(
            s,
            "{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"mean\":0.0,\"p50\":0,\"p95\":0,\"p99\":0}"
        );
    }

    #[test]
    fn single_bucket_histogram_reports_consistent_quantiles() {
        // One observation: every quantile must equal that observation,
        // in both the exact linear range and the octave range (where
        // the min/max clamp pins the bucket midpoint to the value).
        for v in [0u64, 5, 63, 64, 1000, 123_456_789] {
            let h = Histogram::active();
            h.observe(v);
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                assert_eq!(h.percentile(q), v, "v={v} q={q}");
            }
        }
        // Many observations of one value behave the same way.
        let h = Histogram::active();
        for _ in 0..1000 {
            h.observe(77);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 77, "q={q}");
        }
        assert_eq!(h.min(), 77);
        assert_eq!(h.max(), 77);
    }

    #[test]
    fn snapshot_delta_merge_equals_direct_observation() {
        // Simulate two workers observing disjoint streams across two
        // "windows", with the coordinator folding cumulative-snapshot
        // deltas. The merged histogram must match one that saw every
        // observation directly.
        let w1 = Histogram::active();
        let w2 = Histogram::active();
        let direct = Histogram::active();
        let merged = Histogram::active();
        let mut prev1 = HistSnapshot::default();
        let mut prev2 = HistSnapshot::default();

        // window 1
        for v in [1u64, 5, 100] {
            w1.observe(v);
            direct.observe(v);
        }
        for v in [63u64, 64, 9999] {
            w2.observe(v);
            direct.observe(v);
        }
        let (s1, s2) = (w1.snapshot(), w2.snapshot());
        merged.merge_delta(&prev1, &s1);
        merged.merge_delta(&prev2, &s2);
        (prev1, prev2) = (s1, s2);

        // window 2
        for v in [2u64, 1_000_000] {
            w1.observe(v);
            direct.observe(v);
        }
        w2.observe(0);
        direct.observe(0);
        merged.merge_delta(&prev1, &w1.snapshot());
        merged.merge_delta(&prev2, &w2.snapshot());

        assert_eq!(merged.summary_json(), direct.summary_json());
        assert_eq!(merged.count(), 9);
        assert_eq!(merged.min(), 0);
        assert_eq!(merged.max(), 1_000_000);
    }

    #[test]
    fn empty_snapshot_merge_keeps_min_sentinel_out() {
        let merged = Histogram::active();
        let empty = HistSnapshot::default();
        merged.merge_delta(&HistSnapshot::default(), &empty);
        assert_eq!(merged.count(), 0);
        assert_eq!(merged.min(), 0); // not poisoned by the u64::MAX sentinel
        merged.observe(7);
        assert_eq!(merged.min(), 7);
    }

    #[test]
    fn snapshot_of_disabled_histogram_is_default() {
        assert_eq!(Histogram::noop().snapshot(), HistSnapshot::default());
        // and merging into a noop handle is a no-op, not a panic
        Histogram::noop().merge_delta(&HistSnapshot::default(), &HistSnapshot::default());
    }

    #[test]
    fn non_finite_quantile_reads_as_max() {
        let h = Histogram::active();
        for v in [1u64, 2, 3] {
            h.observe(v);
        }
        assert_eq!(h.percentile(f64::NAN), 3);
        assert_eq!(h.percentile(f64::INFINITY), 3);
        assert_eq!(h.percentile(f64::NEG_INFINITY), 3);
        // and on an empty histogram it is still 0
        assert_eq!(Histogram::active().percentile(f64::NAN), 0);
    }
}
