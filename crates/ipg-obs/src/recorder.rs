//! Sinks for manifest lines.

use std::io::Write;
use std::sync::{Arc, Mutex};

/// Destination for JSON-lines manifest records.
pub trait Recorder: Send {
    /// Write one record (`line` is a complete JSON object, no newline).
    fn record(&mut self, line: &str);

    /// Flush any buffered output.
    fn flush(&mut self);
}

/// Discards every record. The explicit form of the disabled path, for
/// code that wants a functioning metrics registry without output.
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&mut self, _line: &str) {}
    fn flush(&mut self) {}
}

/// Appends records to a file, one JSON object per line.
pub struct JsonlRecorder {
    out: std::io::BufWriter<std::fs::File>,
}

impl JsonlRecorder {
    /// Create (or truncate) the manifest file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlRecorder> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        Ok(JsonlRecorder {
            out: std::io::BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl Recorder for JsonlRecorder {
    fn record(&mut self, line: &str) {
        // Manifest writes must never perturb the run: swallow I/O errors.
        let _ = writeln!(self.out, "{line}");
        // Durability: flush after every record so a run that panics or
        // is killed mid-flight still leaves a valid (possibly
        // truncated) JSON-lines manifest — every line on disk is a
        // complete record. Manifest volume is low (one line per window
        // / span), so the extra syscall is noise.
        let _ = self.out.flush();
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Collects records in memory; cloneable so tests can keep a reading
/// handle while the [`Obs`](crate::Obs) owns the writing one.
#[derive(Clone, Default)]
pub struct MemRecorder {
    buf: Arc<Mutex<String>>,
}

impl MemRecorder {
    /// Fresh empty buffer.
    pub fn new() -> MemRecorder {
        MemRecorder::default()
    }

    /// Everything recorded so far (newline-terminated lines).
    pub fn contents(&self) -> String {
        self.buf.lock().unwrap().clone()
    }
}

impl Recorder for MemRecorder {
    fn record(&mut self, line: &str) {
        let mut buf = self.buf.lock().unwrap();
        buf.push_str(line);
        buf.push('\n');
    }

    fn flush(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_recorder_accumulates() {
        let mem = MemRecorder::new();
        let mut writer = mem.clone();
        writer.record("{\"a\":1}");
        writer.record("{\"b\":2}");
        assert_eq!(mem.contents(), "{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn jsonl_recorder_writes_lines() {
        let dir = std::env::temp_dir().join("ipg_obs_test");
        let path = dir.join("m.jsonl");
        {
            let mut r = JsonlRecorder::create(&path).unwrap();
            r.record("{\"x\":1}");
            r.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"x\":1}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
