//! Shortest-path next-hop routing tables.
//!
//! For each (node, destination) pair we store one next hop lying on a
//! shortest path. Ties are broken by a deterministic hash of (node,
//! destination), spreading traffic across equivalent paths without
//! per-packet randomness.

use ipg_core::algo;
use ipg_core::graph::Csr;
use ipg_core::superip::SuperIpSpec;
use ipg_obs::Obs;

/// Dense next-hop table: `next[u·n + d]` is the neighbor of `u` on a
/// shortest path to `d` (or `u` itself when `u == d` / unreachable).
pub struct RoutingTable {
    n: usize,
    next: Vec<u32>,
}

impl RoutingTable {
    /// Build from all-destinations BFS on the reversed graph. `O(n·m)`
    /// time, `O(n²)` space — sized for simulation-scale networks
    /// (≤ ~20k nodes).
    pub fn new(g: &Csr) -> Self {
        Self::new_instrumented(g, &Obs::disabled())
    }

    /// [`RoutingTable::new`] with observability: a `table_build` span,
    /// node/entry counters, and a per-destination BFS counter.
    pub fn new_instrumented(g: &Csr, obs: &Obs) -> Self {
        let _span = obs.span("table_build");
        let n = g.node_count();
        assert!(n <= 65_536, "routing table is O(n^2); graph too large");
        obs.counter("table.nodes").add(n as u64);
        obs.counter("table.arcs").add(g.arc_count() as u64);
        obs.counter("table.entries").add((n * n) as u64);
        let bfs_runs = obs.counter("table.bfs_runs");
        // borrow the input directly when symmetric — no O(n+m) clone
        let rev_storage;
        let rev = if g.is_symmetric() {
            g
        } else {
            rev_storage = g.reversed();
            &rev_storage
        };
        let mut next = vec![0u32; n * n];
        for d in 0..n as u32 {
            bfs_runs.incr();
            // dist[u] = distance from u to d (BFS from d over reversed arcs)
            let dist = algo::bfs(rev, d);
            for u in 0..n as u32 {
                if u == d || dist[u as usize] == algo::UNREACHABLE {
                    next[u as usize * n + d as usize] = u;
                    continue;
                }
                let du = dist[u as usize];
                // collect min-distance successors; pick by hash
                let mut count = 0u32;
                for &v in g.neighbors(u) {
                    if dist[v as usize] + 1 == du {
                        count += 1;
                    }
                }
                debug_assert!(count > 0);
                let pick = mix(u as u64, d as u64) % count as u64;
                let mut seen = 0u64;
                for &v in g.neighbors(u) {
                    if dist[v as usize] + 1 == du {
                        if seen == pick {
                            next[u as usize * n + d as usize] = v;
                            break;
                        }
                        seen += 1;
                    }
                }
            }
        }
        RoutingTable { n, next }
    }

    /// Build the table for a super-IP spec via the rank-indexed fast path
    /// ([`SuperIpSpec::fast_undirected_csr`]): the graph is emitted
    /// straight to CSR in codec-id numbering, so table row/column indices
    /// are codec ids — stable across thread counts and sessions, unlike
    /// BFS discovery order.
    pub fn for_super_ip(spec: &SuperIpSpec) -> ipg_core::Result<Self> {
        Ok(Self::new(&spec.fast_undirected_csr()?))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The next hop from `u` toward `d`.
    #[inline]
    pub fn next_hop(&self, u: u32, d: u32) -> u32 {
        self.next[u as usize * self.n + d as usize]
    }

    /// Full path `u -> d` following the table. The sentinel encoding
    /// (`next[u][d] == u`) means "unreachable" for `u != d` — e.g. after
    /// fault-masking disconnects the graph — and is reported as
    /// [`ipg_core::IpgError::Unreachable`] instead of silently returning a
    /// truncated path.
    pub fn path(&self, u: u32, d: u32) -> ipg_core::Result<Vec<u32>> {
        let mut path = vec![u];
        let mut cur = u;
        while cur != d {
            let nxt = self.next_hop(cur, d);
            if nxt == cur {
                return Err(ipg_core::IpgError::Unreachable { from: u, to: d });
            }
            cur = nxt;
            path.push(cur);
        }
        Ok(path)
    }
}

#[inline]
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    x ^= x >> 30;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Csr {
        Csr::from_fn(n, |u, out| {
            out.push((u + 1) % n as u32);
            out.push((u + n as u32 - 1) % n as u32);
        })
    }

    #[test]
    fn paths_are_shortest() {
        let g = cycle(8);
        let t = RoutingTable::new(&g);
        for u in 0..8u32 {
            let d = algo::bfs(&g, u);
            for v in 0..8u32 {
                let p = t.path(u, v).unwrap();
                assert_eq!(p.len() - 1, d[v as usize] as usize, "{u}->{v}");
                for w in p.windows(2) {
                    assert!(g.has_arc(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn self_route_is_empty() {
        let g = cycle(5);
        let t = RoutingTable::new(&g);
        assert_eq!(t.path(3, 3).unwrap(), vec![3]);
    }

    #[test]
    fn for_super_ip_matches_codec_graph() {
        use ipg_core::superip::NucleusSpec;
        let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2));
        let t = RoutingTable::for_super_ip(&spec).unwrap();
        assert_eq!(t.node_count(), 16);
        let g = spec.fast_undirected_csr().unwrap();
        // every next hop is a real link on a shortest path
        for u in 0..16u32 {
            let d = algo::bfs(&g, u);
            for v in 0..16u32 {
                let p = t.path(v, u).unwrap();
                assert_eq!(p.len() - 1, d[v as usize] as usize);
            }
        }
    }

    #[test]
    fn tie_breaking_spreads() {
        // On C4, opposite nodes have two equal paths; different (u,d)
        // pairs should not all pick the same direction.
        let g = cycle(4);
        let t = RoutingTable::new(&g);
        let picks: Vec<u32> = (0..4u32).map(|u| t.next_hop(u, (u + 2) % 4)).collect();
        let clockwise = picks
            .iter()
            .zip(0..4u32)
            .filter(|&(&p, u)| p == (u + 1) % 4)
            .count();
        assert!(clockwise > 0 && clockwise < 4, "picks {picks:?}");
    }

    #[test]
    fn unreachable_destination_is_an_error_not_a_loop() {
        // Fault-masked graph: two C4 components with no links between them
        // (nodes 0..4 and 4..8), as produced by masking every cross-cluster
        // link out of a C8. Before the fix, `path` returned a silently
        // truncated path; now it must report Unreachable — and terminate.
        let g = Csr::from_fn(8, |u, out| {
            let base = u & !3;
            out.push(base + ((u + 1) & 3));
            out.push(base + ((u + 3) & 3));
        });
        let t = RoutingTable::new(&g);
        // in-component routing still works
        assert_eq!(t.path(0, 2).unwrap().len(), 3);
        assert_eq!(t.path(5, 6).unwrap(), vec![5, 6]);
        // cross-component routing errors out
        match t.path(1, 6) {
            Err(ipg_core::IpgError::Unreachable { from: 1, to: 6 }) => {}
            other => panic!("expected Unreachable, got {other:?}"),
        }
        match t.path(7, 0) {
            Err(ipg_core::IpgError::Unreachable { from: 7, to: 0 }) => {}
            other => panic!("expected Unreachable, got {other:?}"),
        }
    }
}
