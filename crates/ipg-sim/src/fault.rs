//! Deterministic fault plans for the simulation engines.
//!
//! A fault campaign is described twice, at two levels of abstraction:
//!
//! - [`FaultSpec`] is the *declarative* form — what the user writes on the
//!   command line (`--faults <spec>`): scripted link/node kills pinned to
//!   cycles, and/or a rate-based random mode.
//! - [`FaultPlan`] is the *compiled* form — every kill resolved to a
//!   concrete `(cycle, element)` pair, validated against the simulated
//!   graph, canonicalized and sorted. The engines consume only this.
//!
//! The split is what keeps the cycle loops deterministic and lintable:
//! `engine.rs` / `wormhole.rs` never inspect spec-level types or compare
//! cycle numbers against fault constants (ipg-analyze rule DET006 rejects
//! the spec-level type names there outright). They ask the plan "what dies
//! now?" through [`FaultPlan::apply_due`] / [`ShardFaults::next_due`] and
//! apply the answer.
//!
//! # Determinism contract
//!
//! Random mode is expanded at **compile time**, before the first cycle
//! runs, drawing one Bernoulli per node from [`crate::rng::node_stream`]
//! and one per undirected link from [`crate::rng::edge_stream`] under a
//! dedicated fault seed. No draw happens inside the cycle loop, no
//! injection stream is perturbed, and the resulting kill list is a pure
//! function of `(graph, spec, seed)` — so simulation output is
//! byte-identical across `IPG_THREADS` in every fault mode.
//!
//! # Spec syntax
//!
//! ```text
//! script:link@600:0-1+node@700:5      # kill link {0,1} at cycle 600,
//!                                     # node 5 at cycle 700
//! rate:links=0.05,nodes=0.01,at=1000  # each link dies w.p. 0.05 and each
//!                                     # node w.p. 0.01, all at cycle 1000
//! rate:links=0.1,at=0,seed=7          # optional dedicated fault seed
//! script:...+...;rate:...             # both modes, ';'-separated
//! ```
//!
//! `+` separates scripted items and `;` separates sections so a whole spec
//! stays one shell word.

use crate::rng::{edge_stream, node_stream};
use ipg_core::fault::FaultView;
use ipg_core::graph::Csr;
use rand::Rng;

/// What dies: an undirected link (both arcs) or a node.
///
/// Links are stored canonically as `Link(min, max)`. The derive order
/// matters: at equal cycles links die before nodes, so a node kill never
/// shadows a link kill scheduled for the same cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Kill the undirected link `{u, v}` (canonical `u < v`).
    Link(u32, u32),
    /// Kill a node: it stops injecting, delivering, and forwarding.
    Node(u32),
}

/// One scripted kill: `kind` takes effect at the start of `cycle`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    /// Cycle at whose start the element dies (before injection).
    pub cycle: u32,
    /// What dies.
    pub kind: FaultKind,
}

/// Rate-based random fault mode: every link/node independently dies with
/// the given probability, all at `at_cycle`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RandomFaults {
    /// Per-link kill probability in `[0, 1]`.
    pub link_rate: f64,
    /// Per-node kill probability in `[0, 1]`.
    pub node_rate: f64,
    /// Cycle at whose start the drawn faults take effect.
    pub at_cycle: u32,
    /// Dedicated fault seed, XORed with the run seed at compile time so
    /// the same campaign can be replayed under different traffic seeds.
    pub seed: u64,
}

impl Default for RandomFaults {
    fn default() -> Self {
        RandomFaults {
            link_rate: 0.0,
            node_rate: 0.0,
            at_cycle: 0,
            seed: 0,
        }
    }
}

/// The declarative form of a fault campaign (see module docs for the
/// `--faults` string syntax).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Scripted kills (any order; compilation sorts them).
    pub events: Vec<FaultEvent>,
    /// Optional rate-based random mode, expanded at compile time.
    pub random: Option<RandomFaults>,
}

impl FaultSpec {
    /// Parse the `--faults` mini-language. Returns a human-readable error
    /// string on malformed input.
    pub fn parse(s: &str) -> std::result::Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for section in s.split(';').filter(|t| !t.trim().is_empty()) {
            let section = section.trim();
            if let Some(body) = section.strip_prefix("script:") {
                for item in body.split('+').filter(|t| !t.is_empty()) {
                    spec.events.push(parse_script_item(item)?);
                }
            } else if let Some(body) = section.strip_prefix("rate:") {
                if spec.random.is_some() {
                    return Err("duplicate rate: section".into());
                }
                spec.random = Some(parse_rate(body)?);
            } else {
                return Err(format!(
                    "fault section must start with script: or rate:, got {section:?}"
                ));
            }
        }
        if spec.events.is_empty() && spec.random.is_none() {
            return Err("empty fault spec".into());
        }
        Ok(spec)
    }
}

/// `link@600:0-1` or `node@700:5`.
fn parse_script_item(item: &str) -> std::result::Result<FaultEvent, String> {
    let (head, ids) = item
        .split_once(':')
        .ok_or_else(|| format!("scripted kill {item:?} needs kind@cycle:ids"))?;
    let (kind, cycle) = head
        .split_once('@')
        .ok_or_else(|| format!("scripted kill {item:?} needs kind@cycle:ids"))?;
    let cycle: u32 = cycle
        .parse()
        .map_err(|_| format!("bad cycle in {item:?}"))?;
    let kind = match kind {
        "link" => {
            let (u, v) = ids
                .split_once('-')
                .ok_or_else(|| format!("link kill {item:?} needs u-v"))?;
            let u: u32 = u.parse().map_err(|_| format!("bad node id in {item:?}"))?;
            let v: u32 = v.parse().map_err(|_| format!("bad node id in {item:?}"))?;
            if u == v {
                return Err(format!("link kill {item:?} is a self-loop"));
            }
            FaultKind::Link(u.min(v), u.max(v))
        }
        "node" => FaultKind::Node(
            ids.parse()
                .map_err(|_| format!("bad node id in {item:?}"))?,
        ),
        other => return Err(format!("unknown fault kind {other:?} in {item:?}")),
    };
    Ok(FaultEvent { cycle, kind })
}

/// `links=0.05,nodes=0.01,at=1000,seed=7` — every key optional.
fn parse_rate(body: &str) -> std::result::Result<RandomFaults, String> {
    let mut rf = RandomFaults::default();
    for kv in body.split(',').filter(|t| !t.is_empty()) {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| format!("rate entry {kv:?} needs key=value"))?;
        match k {
            "links" => rf.link_rate = parse_rate_value(kv, v)?,
            "nodes" => rf.node_rate = parse_rate_value(kv, v)?,
            "at" => rf.at_cycle = v.parse().map_err(|_| format!("bad cycle in {kv:?}"))?,
            "seed" => rf.seed = v.parse().map_err(|_| format!("bad seed in {kv:?}"))?,
            other => return Err(format!("unknown rate key {other:?}")),
        }
    }
    if rf.link_rate == 0.0 && rf.node_rate == 0.0 {
        return Err("rate: section kills nothing (set links= and/or nodes=)".into());
    }
    Ok(rf)
}

fn parse_rate_value(kv: &str, v: &str) -> std::result::Result<f64, String> {
    let rate: f64 = v.parse().map_err(|_| format!("bad rate in {kv:?}"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("rate in {kv:?} must be within [0, 1]"));
    }
    Ok(rate)
}

/// A compiled, graph-validated fault campaign: the only form the engines
/// accept. Events are canonical (`Link(min, max)`), deduplicated, and
/// sorted by `(cycle, kind)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    n: u32,
    events: Vec<FaultEvent>,
}

/// Salt separating compile-time fault draws from every in-cycle stream of
/// the same run seed.
const FAULT_SEED_SALT: u64 = 0xfa17_5eed_0000_0001;

impl FaultPlan {
    /// Compile `spec` against graph `g` under the run seed.
    ///
    /// Validates every scripted id (node in range, link present in `g`),
    /// expands the random mode with one compile-time Bernoulli per
    /// node/undirected link, canonicalizes, dedups, and sorts. The result
    /// is a pure function of `(g, spec, sim_seed)`.
    pub fn compile(
        spec: &FaultSpec,
        g: &Csr,
        sim_seed: u64,
    ) -> std::result::Result<FaultPlan, String> {
        let n = g.node_count() as u32;
        let mut events = Vec::with_capacity(spec.events.len());
        for ev in &spec.events {
            match ev.kind {
                FaultKind::Node(v) => {
                    if v >= n {
                        return Err(format!("node kill {v} out of range (n = {n})"));
                    }
                    events.push(*ev);
                }
                FaultKind::Link(u, v) => {
                    if u >= n || v >= n {
                        return Err(format!("link kill {u}-{v} out of range (n = {n})"));
                    }
                    if !g.has_arc(u, v) || !g.has_arc(v, u) {
                        return Err(format!("link kill {u}-{v} names a non-existent link"));
                    }
                    events.push(FaultEvent {
                        cycle: ev.cycle,
                        kind: FaultKind::Link(u.min(v), u.max(v)),
                    });
                }
            }
        }
        if let Some(rf) = spec.random {
            let seed = sim_seed ^ rf.seed ^ FAULT_SEED_SALT;
            if rf.node_rate > 0.0 {
                for v in 0..n {
                    if node_stream(seed, v).gen::<f64>() < rf.node_rate {
                        events.push(FaultEvent {
                            cycle: rf.at_cycle,
                            kind: FaultKind::Node(v),
                        });
                    }
                }
            }
            if rf.link_rate > 0.0 {
                for (u, v) in g.arcs() {
                    // one draw per undirected link, not per arc
                    if u < v && edge_stream(seed, u, v).gen::<f64>() < rf.link_rate {
                        events.push(FaultEvent {
                            cycle: rf.at_cycle,
                            kind: FaultKind::Link(u, v),
                        });
                    }
                }
            }
        }
        events.sort_unstable();
        events.dedup();
        Ok(FaultPlan { n, events })
    }

    /// A plan that kills nothing (`n` nodes, for API symmetry).
    pub fn empty(n: u32) -> FaultPlan {
        FaultPlan {
            n,
            events: Vec::new(),
        }
    }

    /// Reassemble a plan from an already-compiled kill list, e.g. one
    /// shipped over the distributed frame protocol. The events must come
    /// from [`FaultPlan::events`] of a plan compiled against the same
    /// graph (canonical, deduplicated, `(cycle, kind)`-sorted); this
    /// constructor re-sorts defensively but performs no graph
    /// validation.
    pub fn from_parts(n: u32, mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_unstable();
        events.dedup();
        FaultPlan { n, events }
    }

    /// Node count the plan was compiled against.
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// True when the plan schedules no kills.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The compiled kill list, sorted by `(cycle, kind)`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Apply every kill due at or before the start of `cycle` to `view`,
    /// advancing `cursor`. Called sequentially by the run coordinator
    /// before Phase A, so worker threads only ever read a settled view.
    pub fn apply_due(&self, cursor: &mut usize, cycle: u32, view: &mut FaultView) {
        while let Some(ev) = self.events.get(*cursor) {
            if ev.cycle > cycle {
                break;
            }
            match ev.kind {
                FaultKind::Link(u, v) => view.kill_link(u, v),
                FaultKind::Node(v) => view.kill_node(v),
            }
            *cursor += 1;
        }
    }

    /// Project the plan onto one shard's contiguous node range
    /// `[base, base + node_count)`. Node kills become local node indices;
    /// each endpoint of a killed link that the shard owns becomes the
    /// local index of its outgoing link, resolved through `link_index`
    /// (the shard's `u -> v` link lookup). Events stay in plan order, so
    /// the projection is deterministic and already due-sorted.
    pub fn shard_events(
        &self,
        base: u32,
        node_count: u32,
        mut link_index: impl FnMut(u32, u32) -> u32,
    ) -> ShardFaults {
        let hi = base + node_count;
        let mut events = Vec::new();
        for ev in &self.events {
            match ev.kind {
                FaultKind::Node(v) => {
                    if (base..hi).contains(&v) {
                        events.push((ev.cycle, LocalFault::Node(v - base)));
                    }
                }
                FaultKind::Link(u, v) => {
                    if (base..hi).contains(&u) {
                        events.push((ev.cycle, LocalFault::Link(link_index(u, v))));
                    }
                    if (base..hi).contains(&v) {
                        events.push((ev.cycle, LocalFault::Link(link_index(v, u))));
                    }
                }
            }
        }
        ShardFaults { events, cursor: 0 }
    }
}

/// A kill projected into one shard's local index space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalFault {
    /// Shard-local outgoing-link index (into the shard's link arrays).
    Link(u32),
    /// Shard-local node index (`global - base`).
    Node(u32),
}

/// One shard's slice of a [`FaultPlan`]: a pre-sorted local kill list
/// with a cursor, drained by the shard at the start of each Phase A.
#[derive(Clone, Debug, Default)]
pub struct ShardFaults {
    events: Vec<(u32, LocalFault)>,
    cursor: usize,
}

impl ShardFaults {
    /// Next kill due at or before the start of `cycle`, if any. Advances
    /// the cursor; call in a loop to drain a cycle's kills.
    #[inline]
    pub fn next_due(&mut self, cycle: u32) -> Option<LocalFault> {
        match self.events.get(self.cursor) {
            Some(&(c, f)) if c <= cycle => {
                self.cursor += 1;
                Some(f)
            }
            _ => None,
        }
    }

    /// Rewind for a fresh run.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    /// True when the shard has no kills at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_networks::classic;

    #[test]
    fn parse_scripted_and_rate_sections() {
        let spec = FaultSpec::parse("script:link@600:9-0+node@700:5;rate:links=0.05,at=1000")
            .expect("valid spec");
        assert_eq!(
            spec.events,
            vec![
                FaultEvent {
                    cycle: 600,
                    kind: FaultKind::Link(0, 9)
                },
                FaultEvent {
                    cycle: 700,
                    kind: FaultKind::Node(5)
                },
            ]
        );
        let rf = spec.random.expect("rate section");
        assert_eq!(rf.link_rate, 0.05);
        assert_eq!(rf.node_rate, 0.0);
        assert_eq!(rf.at_cycle, 1000);

        for bad in [
            "",
            "script:",
            "script:link@600:3",
            "script:node@x:3",
            "script:gnome@5:3",
            "script:link@5:3-3",
            "rate:",
            "rate:links=1.5",
            "rate:bogus=1",
            "faults:everywhere",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn compile_validates_sorts_and_dedups() {
        let g = classic::ring(8);
        let spec = FaultSpec::parse("script:node@700:5+link@600:1-0+link@600:0-1").unwrap();
        let plan = FaultPlan::compile(&spec, &g, 42).unwrap();
        assert_eq!(
            plan.events(),
            &[
                FaultEvent {
                    cycle: 600,
                    kind: FaultKind::Link(0, 1)
                },
                FaultEvent {
                    cycle: 700,
                    kind: FaultKind::Node(5)
                },
            ]
        );

        let bad_node = FaultSpec::parse("script:node@0:99").unwrap();
        assert!(FaultPlan::compile(&bad_node, &g, 42).is_err());
        let bad_link = FaultSpec::parse("script:link@0:0-4").unwrap();
        assert!(
            FaultPlan::compile(&bad_link, &g, 42).is_err(),
            "0-4 is not a ring link"
        );
    }

    #[test]
    fn random_mode_is_deterministic_and_rate_shaped() {
        let g = classic::hypercube(8); // 256 nodes, 1024 links
        let spec = FaultSpec::parse("rate:links=0.25,nodes=0.1,at=50").unwrap();
        let a = FaultPlan::compile(&spec, &g, 7).unwrap();
        let b = FaultPlan::compile(&spec, &g, 7).unwrap();
        assert_eq!(a, b, "same (graph, spec, seed) must compile identically");
        let c = FaultPlan::compile(&spec, &g, 8).unwrap();
        assert_ne!(a, c, "the run seed participates in fault draws");

        let links = a
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Link(..)))
            .count();
        let nodes = a
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Node(..)))
            .count();
        assert!((150..=350).contains(&links), "links killed: {links}");
        assert!((10..=45).contains(&nodes), "nodes killed: {nodes}");
        assert!(a.events().iter().all(|e| e.cycle == 50));

        // a dedicated fault seed changes the draw under the same run seed
        let reseeded = FaultSpec::parse("rate:links=0.25,nodes=0.1,at=50,seed=9").unwrap();
        let d = FaultPlan::compile(&reseeded, &g, 7).unwrap();
        assert_ne!(a, d);
    }

    #[test]
    fn apply_due_and_shard_projection() {
        let g = classic::ring(8);
        let spec = FaultSpec::parse("script:link@2:1-2+node@5:6+node@2:1").unwrap();
        let plan = FaultPlan::compile(&spec, &g, 0).unwrap();

        let mut view = FaultView::new(8);
        let mut cursor = 0;
        plan.apply_due(&mut cursor, 0, &mut view);
        assert!(view.is_empty());
        plan.apply_due(&mut cursor, 2, &mut view);
        assert!(view.arc_dead(1, 2) && view.node_dead(1) && !view.node_dead(6));
        plan.apply_due(&mut cursor, 5, &mut view);
        assert!(view.node_dead(6));

        // shard [4, 8): sees node 6 and neither endpoint of link {1, 2}
        let upper = plan.shard_events(4, 4, |_, _| unreachable!("no local links die"));
        assert_eq!(upper.events, vec![(5, LocalFault::Node(2))]);
        // shard [0, 4): link {1, 2} owns both endpoints → two local links
        let mut lower = plan.shard_events(0, 4, |u, v| u * 10 + v);
        assert_eq!(
            lower.events,
            vec![
                (2, LocalFault::Link(12)),
                (2, LocalFault::Link(21)),
                (2, LocalFault::Node(1)),
            ]
        );
        assert_eq!(lower.next_due(1), None);
        assert_eq!(lower.next_due(2), Some(LocalFault::Link(12)));
        assert_eq!(lower.next_due(2), Some(LocalFault::Link(21)));
        assert_eq!(lower.next_due(2), Some(LocalFault::Node(1)));
        assert_eq!(lower.next_due(2), None);
        lower.reset();
        assert_eq!(lower.next_due(2), Some(LocalFault::Link(12)));
    }
}
