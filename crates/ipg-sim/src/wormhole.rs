//! Flit-level wormhole simulation with virtual channels and deadlock
//! detection.
//!
//! The paper's §5 latency arguments repeatedly distinguish wormhole /
//! cut-through switching from packet switching. The store-and-forward
//! engine in [`crate::engine`] has unbounded buffers and cannot deadlock;
//! this module models the real constraints: per-VC input buffers of
//! finite depth, one flit per physical link per cycle, and wormhole
//! channel allocation (a packet holds its output VC from head to tail).
//!
//! Deadlock is real here: deterministic shortest-path routing on a single
//! VC forms cyclic channel dependencies (e.g. around a ring), and the
//! simulator detects the resulting stall. The *hop-indexed* VC policy —
//! the `h`-th hop uses VC `h` — makes the channel dependency graph
//! acyclic, so it is deadlock-free whenever `vcs ≥ longest route`.
//! Low-diameter networks (the paper's super-IP graphs) therefore need
//! fewer VCs for guaranteed deadlock freedom: a concrete hardware payoff
//! of small (inter-cluster) diameters.
//!
//! # Data layout and determinism
//!
//! VC buffers are fixed-depth rings over **one flat flit arena**
//! (`links × vcs × buffer_flits` slots) instead of a `VecDeque` per VC,
//! so a run allocates its buffer space once. Next-hop queries go through
//! the [`Router`] trait — the all-pairs [`RoutingTable`] or the
//! arithmetic [`ipg_core::tuple_routing::ShortestTupleRouter`].
//! Injection randomness comes from per-node streams
//! ([`crate::rng::node_stream`]), the same scheme as the packet engine.
//!
//! Unlike the packet engine the wormhole simulator is **not sharded**:
//! wormhole channel allocation couples nodes through per-cycle VC
//! ownership and credit (buffer-slot) state across links, so a cycle
//! cannot be split into independent node-range phases without changing
//! allocation outcomes. The loop is sequential — and therefore trivially
//! thread-count invariant.
//!
//! # Sparse flit hot path
//!
//! The simulator is sparse by default (DESIGN.md §13): injection is
//! precomputed in node-major chunks ([`crate::rng::InjectionSchedule`]),
//! and the per-cycle link-service loop iterates a node [`Worklist`]
//! instead of every link. The activation invariant is **exact**, not
//! lazy: node `u` is on the worklist iff `demand[u] > 0`, where
//! `demand[u]` counts `u`'s pending source-queue packets plus the flits
//! buffered on `u`'s input VCs — precisely the state `step_link` can
//! act on. Every queue mutation routes through `demand_add`/`demand_sub`
//! (and the `buf_push`/`buf_pop` buffer helpers), so the bit and the
//! queue state change together and the worklist is identical in dense
//! and sparse mode. The sweep is a **live cursor** over ascending node
//! ids — the dense link-major order, since links are CSR-grouped by
//! source node — so a flit forwarded to a higher-numbered node this
//! cycle is swept again this cycle, exactly as the dense loop revisits
//! it. `step_link` short-circuits on `demand == 0` in *both* modes, so
//! even credit-stall counts (probe failures) match byte for byte; the
//! dense loop (`IPG_DENSE_ENGINE=1`) is kept as the oracle.

use crate::engine::dense_from_env;
use crate::fault::{FaultPlan, LocalFault, ShardFaults};
use crate::rng::{
    bernoulli, bernoulli_threshold, node_stream, InjectionSchedule, NodeRng, SCHEDULE_CHUNK,
};
use crate::router::Router;
use crate::table::RoutingTable;
use crate::worklist::Worklist;
use ipg_core::fault::FaultView;
use ipg_core::graph::Csr;
use ipg_obs::{Counter, Histogram, Obs, ShardTracer, Trace, TraceConfig, ENGINE_TRACK};
use rand::Rng;
use std::collections::VecDeque;

/// Virtual-channel selection policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VcPolicy {
    /// All packets use VC 0. Cheap, but cyclic channel dependencies can
    /// deadlock.
    Single,
    /// A packet on its `h`-th hop uses VC `min(h, vcs−1)`; strictly
    /// increasing VC indices break dependency cycles (deadlock-free when
    /// `vcs ≥ longest route`).
    HopIndexed,
}

/// Traffic for the wormhole simulator.
#[derive(Clone, Debug)]
pub enum WormTraffic {
    /// Uniform random destinations.
    Uniform,
    /// Fixed destination per source (a permutation, or many-to-one).
    Fixed(Vec<u32>),
}

/// Configuration.
#[derive(Clone, Debug)]
pub struct WormholeConfig {
    /// Virtual channels per physical link (≥ 1).
    pub vcs: usize,
    /// Input buffer depth per VC, in flits (≥ 1).
    pub buffer_flits: usize,
    /// Packet length in flits (≥ 1; the last flit is the tail).
    pub packet_flits: u32,
    /// Injection probability per node per cycle.
    pub injection_rate: f64,
    /// Cycle budget.
    pub cycles: u32,
    /// Declare deadlock after this many cycles without any flit movement
    /// while flits remain buffered.
    pub deadlock_threshold: u32,
    /// RNG seed (each node derives its own stream via
    /// [`crate::rng::node_stream`]).
    pub seed: u64,
    /// VC selection policy.
    pub policy: VcPolicy,
    /// Traffic pattern.
    pub traffic: WormTraffic,
}

impl Default for WormholeConfig {
    fn default() -> Self {
        WormholeConfig {
            vcs: 2,
            buffer_flits: 2,
            packet_flits: 4,
            injection_rate: 0.02,
            cycles: 5_000,
            deadlock_threshold: 500,
            seed: 0x0f11_77ee,
            policy: VcPolicy::HopIndexed,
            traffic: WormTraffic::Uniform,
        }
    }
}

/// Result of a wormhole run.
#[derive(Clone, Debug)]
pub enum WormholeOutcome {
    /// Ran to the cycle budget (or drained).
    Completed(WormholeStats),
    /// No flit moved for `deadlock_threshold` cycles while flits remained.
    Deadlocked {
        /// Cycle at which deadlock was declared.
        at_cycle: u32,
        /// Distinct packets stuck in network buffers.
        stuck_packets: usize,
    },
}

impl WormholeOutcome {
    /// Convenience: the stats of a completed run (panics on deadlock).
    pub fn stats(&self) -> &WormholeStats {
        match self {
            WormholeOutcome::Completed(s) => s,
            WormholeOutcome::Deadlocked { at_cycle, .. } => {
                // ipg-analyze: allow(PANIC001) reason="documented contract: this accessor panics on deadlock"
                panic!("simulation deadlocked at cycle {at_cycle}")
            }
        }
    }

    /// Did the run deadlock?
    pub fn is_deadlocked(&self) -> bool {
        matches!(self, WormholeOutcome::Deadlocked { .. })
    }
}

/// Statistics of a completed run.
#[derive(Clone, Copy, Debug)]
pub struct WormholeStats {
    /// Packets injected.
    pub injected: u64,
    /// Packets fully delivered (tail consumed).
    pub delivered: u64,
    /// Packets destroyed by the fault campaign: refused at launch for
    /// lack of a usable route, purged when a link/node died under their
    /// flits, or stranded with no faulted-graph path mid-flight. Always 0
    /// without a fault plan.
    pub dropped: u64,
    /// Mean packet latency (injection cycle to tail consumption).
    pub avg_latency: f64,
}

#[derive(Clone, Copy, Default)]
struct Flit {
    pkt: u32,
    is_head: bool,
    is_tail: bool,
}

struct PacketInfo {
    dst: u32,
    born: u32,
    /// links the HEAD flit has crossed (drives hop-indexed VC choice).
    head_hops: u32,
}

/// "No owner" sentinel in the per-VC owner array.
const NO_OWNER: u32 = u32::MAX;

/// All per-VC buffer state, flat: one arena of `vc_count × depth` flit
/// slots used as fixed-capacity rings, plus per-VC head/len/owner arrays.
struct VcBufs {
    depth: usize,
    flits: Vec<Flit>,
    head: Vec<u32>,
    len: Vec<u32>,
    owner: Vec<u32>,
}

impl VcBufs {
    fn new(vc_count: usize, depth: usize) -> Self {
        VcBufs {
            depth,
            flits: vec![Flit::default(); vc_count * depth],
            head: vec![0; vc_count],
            len: vec![0; vc_count],
            owner: vec![NO_OWNER; vc_count],
        }
    }

    #[inline]
    fn len(&self, vc: usize) -> usize {
        self.len[vc] as usize
    }

    #[inline]
    fn front(&self, vc: usize) -> Option<Flit> {
        if self.len[vc] == 0 {
            None
        } else {
            Some(self.flits[vc * self.depth + self.head[vc] as usize])
        }
    }

    #[inline]
    fn pop_front(&mut self, vc: usize) -> Flit {
        debug_assert!(self.len[vc] > 0);
        let f = self.flits[vc * self.depth + self.head[vc] as usize];
        self.head[vc] = (self.head[vc] + 1) % self.depth as u32;
        self.len[vc] -= 1;
        f
    }

    #[inline]
    fn push_back(&mut self, vc: usize, flit: Flit) {
        debug_assert!((self.len[vc] as usize) < self.depth);
        let slot = (self.head[vc] as usize + self.len[vc] as usize) % self.depth;
        self.flits[vc * self.depth + slot] = flit;
        self.len[vc] += 1;
    }

    fn total_buffered(&self) -> usize {
        self.len.iter().map(|&l| l as usize).sum()
    }
}

/// Static network description for wormhole runs, generic over the
/// next-hop [`Router`].
pub struct WormholeSim<R: Router = RoutingTable> {
    n: usize,
    router: R,
    link_from: Vec<u32>,
    link_to: Vec<u32>,
    /// incoming link ids per node.
    in_links: Vec<Vec<u32>>,
    /// outgoing link range per node (CSR order).
    link_of: Vec<u32>,
    /// compiled fault campaign applied by every run (None = fault-free).
    plan: Option<FaultPlan>,
    /// iterate every link per cycle instead of the node worklist (the
    /// dense oracle; see the module docs).
    dense: bool,
}

impl WormholeSim<RoutingTable> {
    /// Build for a graph.
    pub fn new(g: &Csr) -> Self {
        Self::new_instrumented(g, &Obs::disabled())
    }

    /// [`WormholeSim::new`] with observability for the routing-table
    /// build.
    pub fn new_instrumented(g: &Csr, obs: &Obs) -> Self {
        let table = RoutingTable::new_instrumented(g, obs);
        Self::with_router(table, g)
    }
}

impl<R: Router> WormholeSim<R> {
    /// Build around an arbitrary [`Router`] answering queries over `g`'s
    /// node-id space.
    pub fn with_router(router: R, g: &Csr) -> Self {
        let n = g.node_count();
        let mut link_from = Vec::with_capacity(g.arc_count());
        let mut link_to = Vec::with_capacity(g.arc_count());
        let mut link_of = Vec::with_capacity(n + 1);
        let mut in_links: Vec<Vec<u32>> = vec![Vec::new(); n];
        link_of.push(0);
        for u in 0..n as u32 {
            for &v in g.neighbors(u) {
                in_links[v as usize].push(link_from.len() as u32);
                link_from.push(u);
                link_to.push(v);
            }
            link_of.push(link_from.len() as u32);
        }
        WormholeSim {
            n,
            router,
            link_from,
            link_to,
            in_links,
            link_of,
            plan: None,
            dense: dense_from_env(),
        }
    }

    /// Select the dense (every link, every cycle) oracle iteration
    /// instead of the worklist-driven sparse hot path. Both produce
    /// byte-identical outcomes and traces; dense exists as the
    /// equivalence oracle for tests and `IPG_DENSE_ENGINE=1` runs.
    pub fn set_dense(&mut self, dense: bool) {
        self.dense = dense;
    }

    /// Install (or clear) a compiled fault plan for subsequent runs. Dead
    /// links are never serviced and a link or node death destroys the
    /// wormholes caught on it (a severed worm cannot complete, and its
    /// stranded flits would wedge every channel its body spans); dead
    /// nodes neither inject nor deliver; next-hop queries go through
    /// [`Router::next_hop_faulted`] so fault-aware routers detour while
    /// oblivious ones stall or drop.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        if let Some(p) = &plan {
            assert!(
                p.node_count() as usize == self.n,
                "fault plan node count {} != network node count {}",
                p.node_count(),
                self.n
            );
        }
        self.plan = plan;
    }

    fn link_toward(&self, u: u32, v: u32) -> u32 {
        let lo = self.link_of[u as usize];
        let hi = self.link_of[u as usize + 1];
        (lo..hi)
            .find(|&i| self.link_to[i as usize] == v)
            // ipg-analyze: allow(PANIC001) reason="routers only emit neighbors; reaching here is a router bug"
            .expect("next hop must be a neighbor")
    }

    fn next_hop(&self, u: u32, d: u32) -> u32 {
        match self.router.next_hop(u, d) {
            Some(h) => h,
            // ipg-analyze: allow(PANIC001) reason="simulated graphs are connected; an unroutable destination is a construction bug"
            None => panic!("no route from {u} to {d}"),
        }
    }

    /// Run the simulation.
    pub fn run(&self, cfg: &WormholeConfig) -> WormholeOutcome {
        self.run_instrumented(cfg, &Obs::disabled(), 0)
    }

    /// [`WormholeSim::run`] with observability: a `wormhole_run` span,
    /// packet counters, a latency histogram, per-link utilization and
    /// per-VC buffer high-water histograms, and — when `window > 0` — a
    /// `window` metrics snapshot every `window` cycles. A disabled `obs`
    /// makes this identical to [`WormholeSim::run`].
    pub fn run_instrumented(
        &self,
        cfg: &WormholeConfig,
        obs: &Obs,
        window: u32,
    ) -> WormholeOutcome {
        self.run_traced(cfg, obs, window, None).0
    }

    /// [`WormholeSim::run_instrumented`] plus flight-recorder tracing:
    /// per-sample `cycle` events (injection/delivery deltas, buffered
    /// flits), hottest-link utilization, VC queue depths, and credit
    /// stalls (buffer-full probe failures). The wormhole loop is
    /// sequential, so the whole run records on one shard track; as in
    /// the packet engine, tracing reads state but never writes it.
    pub fn run_traced(
        &self,
        cfg: &WormholeConfig,
        obs: &Obs,
        window: u32,
        trace: Option<&TraceConfig>,
    ) -> (WormholeOutcome, Option<Trace>) {
        let span = obs.span("wormhole_run");
        let track = obs.enabled();
        // Link-busy accounting feeds the end-of-run utilization
        // histograms (obs) and sampled link-utilization events (trace).
        let track_links = track || trace.is_some();
        let vc_count = self.link_from.len() * cfg.vcs;
        let mut run = Run {
            sim: self,
            cfg,
            rngs: (0..self.n as u32)
                .map(|v| node_stream(cfg.seed, v))
                .collect(),
            packets: Vec::new(),
            source: vec![VecDeque::new(); self.n],
            bufs: VcBufs::new(vc_count, cfg.buffer_flits),
            rr: vec![0; self.link_from.len()],
            injected: 0,
            delivered: 0,
            latency_sum: 0,
            c_injected: obs.counter("wormhole.injected"),
            c_delivered: obs.counter("wormhole.delivered"),
            h_latency: obs.histogram("wormhole.latency_cycles"),
            link_busy: vec![0u64; if track_links { self.link_from.len() } else { 0 }],
            vc_buffer_hw: vec![0u32; if track { vc_count } else { 0 }],
            stalls: vec![
                0u64;
                if trace.is_some() {
                    self.link_from.len()
                } else {
                    0
                }
            ],
            tracer: trace.map(|tc| {
                let mut t = ShardTracer::new(0, tc);
                t.init_links(self.link_from.len());
                t
            }),
            faulted: self.plan.is_some(),
            view: FaultView::new(self.n),
            plan_cursor: 0,
            faults: self
                .plan
                .as_ref()
                .map(|p| p.shard_events(0, self.n as u32, |u, v| self.link_toward(u, v)))
                .unwrap_or_default(),
            link_dead: vec![
                false;
                if self.plan.is_some() {
                    self.link_from.len()
                } else {
                    0
                }
            ],
            dropped: 0,
            c_dropped: obs.counter("wormhole.dropped_unreachable"),
            sched: InjectionSchedule::default(),
            active: Worklist::new(self.n),
            scratch: Vec::new(),
            demand: vec![0; self.n],
            in_flits: vec![0; self.n],
            in_nodes: 0,
            buffered_total: 0,
            dense: self.dense,
            inj_threshold: bernoulli_threshold(cfg.injection_rate),
        };
        let outcome = run.execute(obs, window);
        if track {
            obs.counter("wormhole.links")
                .add(self.link_from.len() as u64);
            if outcome.is_deadlocked() {
                obs.counter("wormhole.deadlocked").incr();
            }
            let cycles = match &outcome {
                WormholeOutcome::Completed(_) => cfg.cycles,
                WormholeOutcome::Deadlocked { at_cycle, .. } => at_cycle + 1,
            };
            let h_util = obs.histogram("wormhole.link_utilization_pct");
            let g_util = obs.gauge("wormhole.link_utilization_max_pct");
            for &busy in &run.link_busy {
                let pct = (busy * 100 / cycles.max(1) as u64).min(100);
                h_util.observe(pct);
                g_util.record_max(pct);
            }
            let h_hw = obs.histogram("wormhole.vc_buffer_high_water");
            let g_hw = obs.gauge("wormhole.vc_buffer_max");
            for &hw in &run.vc_buffer_hw {
                h_hw.observe(hw as u64);
                g_hw.record_max(hw as u64);
            }
        }
        drop(span);
        let trace_out = match (trace, run.tracer.take()) {
            (Some(tc), Some(tracer)) => Some(Trace::collect(
                tc.interval.max(1),
                vec![tracer],
                ShardTracer::new(ENGINE_TRACK, tc),
            )),
            _ => None,
        };
        (outcome, trace_out)
    }
}

struct Run<'a, R: Router> {
    sim: &'a WormholeSim<R>,
    cfg: &'a WormholeConfig,
    rngs: Vec<NodeRng>,
    packets: Vec<PacketInfo>,
    /// per-source queue of (packet, flits left to inject).
    source: Vec<VecDeque<(u32, u32)>>,
    bufs: VcBufs,
    rr: Vec<usize>,
    injected: u64,
    delivered: u64,
    latency_sum: u64,
    c_injected: Counter,
    c_delivered: Counter,
    h_latency: Histogram,
    /// cycles each physical link carried a flit (observability only).
    link_busy: Vec<u64>,
    /// per-(link, vc) buffer occupancy high-water marks.
    vc_buffer_hw: Vec<u32>,
    /// per-link credit stalls: cycles an output probe found the
    /// downstream VC buffer full (tracing only).
    stalls: Vec<u64>,
    /// flight recorder (single track: the wormhole loop is sequential).
    tracer: Option<ShardTracer>,
    /// is a fault plan active? (hoisted so the hot loop branches on a bool)
    faulted: bool,
    /// dead-node/dead-link view, grown as scripted kills fall due.
    view: FaultView,
    /// how much of the plan's event list has been applied to `view`.
    plan_cursor: usize,
    /// the plan projected onto link ids (the whole network is one shard).
    faults: ShardFaults,
    /// per-link dead flags (empty when no plan is active).
    link_dead: Vec<bool>,
    /// packets destroyed by the fault campaign.
    dropped: u64,
    c_dropped: Counter,
    /// chunked node-major injection precompute (sparse mode only).
    sched: InjectionSchedule,
    /// nodes with demand (pending source packets or buffered input
    /// flits); bit set iff `demand > 0`, in dense and sparse mode alike.
    active: Worklist,
    /// snapshot buffer for the ejection pass over `active`.
    scratch: Vec<u32>,
    /// per-node: pending source-queue entries + buffered input flits.
    demand: Vec<u32>,
    /// per-node: flits buffered on the node's input VCs.
    in_flits: Vec<u32>,
    /// nodes with `in_flits > 0` (worklist gauge).
    in_nodes: u32,
    /// flits buffered network-wide (replaces the per-cycle arena scan).
    buffered_total: u64,
    /// dense-oracle iteration? (copied from the parent simulator)
    dense: bool,
    /// `rng::bernoulli_threshold(cfg.injection_rate)`, precomputed once.
    inj_threshold: u64,
}

impl<R: Router> Run<'_, R> {
    #[inline]
    fn sidx(&self, link: u32, vc: usize) -> usize {
        link as usize * self.cfg.vcs + vc
    }

    fn want_vc(&self, hops: u32) -> usize {
        match self.cfg.policy {
            VcPolicy::Single => 0,
            VcPolicy::HopIndexed => (hops as usize).min(self.cfg.vcs - 1),
        }
    }

    /// One unit of work appeared at node `v` (a source packet or an
    /// input flit). Activates `v` on the 0→1 transition.
    #[inline]
    fn demand_add(&mut self, v: usize) {
        self.demand[v] += 1;
        if self.demand[v] == 1 {
            self.active.insert(v as u32);
        }
    }

    /// One unit of work left node `v`. Deactivates on the 1→0 transition.
    #[inline]
    fn demand_sub(&mut self, v: usize) {
        debug_assert!(self.demand[v] > 0);
        self.demand[v] -= 1;
        if self.demand[v] == 0 {
            self.active.remove(v as u32);
        }
    }

    /// Buffer `flit` on VC slot `sidx`, maintaining the flit counters and
    /// the downstream node's demand. The **only** way flits enter buffers.
    #[inline]
    fn buf_push(&mut self, sidx: usize, flit: Flit) {
        self.bufs.push_back(sidx, flit);
        self.buffered_total += 1;
        let v = self.sim.link_to[sidx / self.cfg.vcs] as usize;
        if self.in_flits[v] == 0 {
            self.in_nodes += 1;
        }
        self.in_flits[v] += 1;
        self.demand_add(v);
    }

    /// Pop the front flit of VC slot `sidx`, maintaining the counters.
    /// The **only** way flits leave buffers.
    #[inline]
    fn buf_pop(&mut self, sidx: usize) -> Flit {
        let f = self.bufs.pop_front(sidx);
        self.buffered_total -= 1;
        let v = self.sim.link_to[sidx / self.cfg.vcs] as usize;
        self.in_flits[v] -= 1;
        if self.in_flits[v] == 0 {
            self.in_nodes -= 1;
        }
        self.demand_sub(v);
        f
    }

    /// Inject one packet `src → dst` (`dst != src`), replicating the
    /// dense bookkeeping order: count the injection, then refuse the
    /// launch if the faulted graph has no usable route.
    fn enqueue_packet(&mut self, src: u32, dst: u32, cycle: u32) {
        self.injected += 1;
        self.c_injected.incr();
        if self.faulted && self.route(src, dst).is_none() {
            // refused launch: no usable route on the faulted graph
            self.drop_one();
            return;
        }
        let pkt = self.packets.len() as u32;
        self.packets.push(PacketInfo {
            dst,
            born: cycle,
            head_hops: 0,
        });
        self.source[src as usize].push_back((pkt, self.cfg.packet_flits));
        self.demand_add(src as usize);
    }

    fn inject(&mut self, cycle: u32) {
        if self.dense {
            for src in 0..self.sim.n as u32 {
                if self.faulted && self.view.node_dead(src) {
                    continue; // dead nodes neither draw their stream nor inject
                }
                let rng = &mut self.rngs[src as usize];
                if !bernoulli(rng, self.inj_threshold) {
                    continue;
                }
                let dst = match &self.cfg.traffic {
                    WormTraffic::Uniform => {
                        let mut d = rng.gen_range(0..self.sim.n as u32 - 1);
                        if d >= src {
                            d += 1;
                        }
                        d
                    }
                    WormTraffic::Fixed(map) => map[src as usize],
                };
                if dst == src {
                    continue;
                }
                self.enqueue_packet(src, dst, cycle);
            }
            return;
        }
        if self.sched.needs_refill(cycle) {
            let n = self.sim.n as u32;
            let cfg = self.cfg;
            let faulted = self.faulted;
            let view = &self.view;
            self.sched.refill(
                cycle..cycle + SCHEDULE_CHUNK.min(cfg.cycles - cycle),
                n,
                cfg.injection_rate,
                &mut self.rngs,
                |src| faulted && view.node_dead(src),
                |src, rng| match &cfg.traffic {
                    WormTraffic::Uniform => {
                        let mut d = rng.gen_range(0..n - 1);
                        if d >= src {
                            d += 1;
                        }
                        Some(d)
                    }
                    // fixed patterns consume no destination draw; a
                    // self-mapped source injects nothing (as dense)
                    WormTraffic::Fixed(map) => {
                        let d = map[src as usize];
                        (d != src).then_some(d)
                    }
                },
            );
        }
        for i in 0..self.sched.due(cycle).len() {
            let (src, dst) = self.sched.due(cycle)[i];
            if self.faulted && self.view.node_dead(src) {
                continue; // died mid-chunk: events past the death are void
            }
            self.enqueue_packet(src, dst, cycle);
        }
    }

    /// Next hop for `u → d`, consulting the fault view when a plan is
    /// active. `None` means no usable route exists on the faulted graph.
    #[inline]
    fn route(&self, u: u32, d: u32) -> Option<u32> {
        if self.faulted {
            self.sim.router.next_hop_faulted(u, d, &self.view)
        } else {
            Some(self.sim.next_hop(u, d))
        }
    }

    #[inline]
    fn drop_one(&mut self) {
        self.dropped += 1;
        self.c_dropped.incr();
    }

    /// Destroy `doomed` packets outright: remove every buffered flit of
    /// theirs network-wide, release any VC ownership they hold, cancel
    /// their pending source flits, and count each packet dropped once.
    fn purge(&mut self, mut doomed: Vec<u32>) {
        doomed.sort_unstable();
        doomed.dedup();
        self.purge_sorted(&doomed);
    }

    /// [`purge`](Self::purge) over an already sorted, deduplicated slice —
    /// the cycle-loop caller passes a single packet without allocating.
    fn purge_sorted(&mut self, doomed: &[u32]) {
        if doomed.is_empty() {
            return;
        }
        for sidx in 0..self.bufs.len.len() {
            if self.bufs.owner[sidx] != NO_OWNER
                && doomed.binary_search(&self.bufs.owner[sidx]).is_ok()
            {
                self.bufs.owner[sidx] = NO_OWNER;
            }
            let l = self.bufs.len(sidx);
            for _ in 0..l {
                let f = self.buf_pop(sidx);
                if doomed.binary_search(&f.pkt).is_err() {
                    self.buf_push(sidx, f);
                }
            }
        }
        for v in 0..self.source.len() {
            let before = self.source[v].len();
            self.source[v].retain(|&(p, _)| doomed.binary_search(&p).is_err());
            for _ in self.source[v].len()..before {
                self.demand_sub(v);
            }
        }
        self.dropped += doomed.len() as u64;
        self.c_dropped.add(doomed.len() as u64);
    }

    /// Kill physical link `li`: stop servicing it and destroy the packets
    /// whose flits sit in (or which own) its VC buffers — a severed
    /// wormhole cannot complete, and its stranded body flits would wedge
    /// every channel they span.
    fn kill_link(&mut self, li: u32) {
        if self.link_dead[li as usize] {
            return;
        }
        self.link_dead[li as usize] = true;
        let mut doomed = Vec::new();
        for vc in 0..self.cfg.vcs {
            let sidx = self.sidx(li, vc);
            if self.bufs.owner[sidx] != NO_OWNER {
                doomed.push(self.bufs.owner[sidx]);
            }
            let head = self.bufs.head[sidx] as usize;
            let depth = self.bufs.depth;
            for i in 0..self.bufs.len(sidx) {
                doomed.push(self.bufs.flits[sidx * depth + (head + i) % depth].pkt);
            }
        }
        self.purge(doomed);
    }

    /// Apply one projected kill. A node kill takes out every attached
    /// link (in and out) and the node's pending injections.
    fn apply_fault(&mut self, f: LocalFault) {
        match f {
            LocalFault::Link(li) => self.kill_link(li),
            LocalFault::Node(v) => {
                let (lo, hi) = (
                    self.sim.link_of[v as usize],
                    self.sim.link_of[v as usize + 1],
                );
                for li in lo..hi {
                    self.kill_link(li);
                }
                for i in 0..self.sim.in_links[v as usize].len() {
                    let li = self.sim.in_links[v as usize][i];
                    self.kill_link(li);
                }
                let pending: Vec<u32> = self.source[v as usize].iter().map(|&(p, _)| p).collect();
                self.purge(pending);
            }
        }
    }

    /// Pop the front flit of the source queue at `u` if it belongs to
    /// `want` (None = any head-eligible packet, i.e. an un-started one).
    fn pop_source(&mut self, u: u32, want: Option<u32>) -> Option<Flit> {
        let &(pkt, left) = self.source[u as usize].front()?;
        if let Some(w) = want {
            if pkt != w {
                return None;
            }
        } else if left != self.cfg.packet_flits {
            return None; // already streaming; only body continuation may pop
        }
        let is_head = left == self.cfg.packet_flits;
        let is_tail = left == 1;
        if is_tail {
            self.source[u as usize].pop_front();
            self.demand_sub(u as usize);
        } else {
            // ipg-analyze: allow(PANIC001) reason="caller peeked front() before calling pop_source"
            self.source[u as usize].front_mut().expect("checked").1 -= 1;
        }
        Some(Flit {
            pkt,
            is_head,
            is_tail,
        })
    }

    /// One step of output link `link`: move at most one flit onto it.
    fn step_link(&mut self, link: u32) -> bool {
        if !self.link_dead.is_empty() && self.link_dead[link as usize] {
            return false; // dead links refuse every launch
        }
        let u = self.sim.link_from[link as usize];
        if self.demand[u as usize] == 0 {
            // Nothing at u to send — skip the VC probes. Shared by both
            // modes so even credit-stall counts match: a probe failure is
            // only a stall when there was demand behind it.
            return false;
        }
        for probe in 0..self.cfg.vcs {
            let out_vc = (self.rr[link as usize] + probe) % self.cfg.vcs;
            let sidx = self.sidx(link, out_vc);
            if self.bufs.len(sidx) >= self.cfg.buffer_flits {
                // Credit stall: the downstream buffer has no free slot.
                if !self.stalls.is_empty() {
                    self.stalls[link as usize] += 1;
                }
                continue;
            }
            let moved = match self.bufs.owner[sidx] {
                NO_OWNER => self.allocate_head(link, out_vc, u),
                pkt => self.advance_body(link, out_vc, u, pkt),
            };
            if moved {
                self.rr[link as usize] = (out_vc + 1) % self.cfg.vcs;
                return true;
            }
        }
        false
    }

    /// Move the next flit of `pkt` (which owns `(link, out_vc)`) from node
    /// `u` onto the link.
    fn advance_body(&mut self, link: u32, out_vc: usize, u: u32, pkt: u32) -> bool {
        // source continuation?
        if let Some(flit) = self.pop_source(u, Some(pkt)) {
            return self.deliver_onto(link, out_vc, flit);
        }
        // front of an input buffer at u
        for ili in 0..self.sim.in_links[u as usize].len() {
            let in_link = self.sim.in_links[u as usize][ili];
            for vc in 0..self.cfg.vcs {
                let iidx = self.sidx(in_link, vc);
                if let Some(flit) = self.bufs.front(iidx) {
                    if flit.pkt == pkt {
                        let flit = self.buf_pop(iidx);
                        return self.deliver_onto(link, out_vc, flit);
                    }
                }
            }
        }
        false
    }

    /// Try to allocate the free `(link, out_vc)` to a waiting head flit.
    fn allocate_head(&mut self, link: u32, out_vc: usize, u: u32) -> bool {
        // a new packet at the source?
        if let Some(&(pkt, left)) = self.source[u as usize].front() {
            if left == self.cfg.packet_flits {
                let dst = self.packets[pkt as usize].dst;
                match self.route(u, dst) {
                    None => {
                        // the network around u decayed since injection:
                        // refuse the launch and drop the un-started packet
                        self.source[u as usize].pop_front();
                        self.demand_sub(u as usize);
                        self.drop_one();
                        return false;
                    }
                    Some(hop) => {
                        if self.sim.link_toward(u, hop) == link && self.want_vc(0) == out_vc {
                            // ipg-analyze: allow(PANIC001) reason="front() matched in the guard just above"
                            let flit = self.pop_source(u, None).expect("front checked");
                            return self.deliver_onto(link, out_vc, flit);
                        }
                    }
                }
            }
        }
        // head flits waiting at input buffers of u
        for ili in 0..self.sim.in_links[u as usize].len() {
            let in_link = self.sim.in_links[u as usize][ili];
            for vc in 0..self.cfg.vcs {
                let iidx = self.sidx(in_link, vc);
                let Some(flit) = self.bufs.front(iidx) else {
                    continue;
                };
                if !flit.is_head {
                    continue;
                }
                let info = &self.packets[flit.pkt as usize];
                if info.dst == u {
                    continue; // consumed by the ejection stage
                }
                let (pkt, dst, hops) = (flit.pkt, info.dst, info.head_hops);
                let Some(hop) = self.route(u, dst) else {
                    // mid-flight packet with no usable route left: destroy
                    // it rather than let its flits wedge the channel
                    self.purge_sorted(&[pkt]);
                    continue;
                };
                if self.sim.link_toward(u, hop) != link || self.want_vc(hops) != out_vc {
                    continue;
                }
                let flit = self.buf_pop(iidx);
                return self.deliver_onto(link, out_vc, flit);
            }
        }
        false
    }

    /// Put `flit` into the output's downstream buffer, maintaining
    /// ownership and hop counts.
    fn deliver_onto(&mut self, link: u32, out_vc: usize, flit: Flit) -> bool {
        let sidx = self.sidx(link, out_vc);
        if flit.is_head {
            self.packets[flit.pkt as usize].head_hops += 1;
            if !flit.is_tail {
                self.bufs.owner[sidx] = flit.pkt;
            }
        }
        if flit.is_tail {
            self.bufs.owner[sidx] = NO_OWNER;
        }
        self.buf_push(sidx, flit);
        if !self.link_busy.is_empty() {
            self.link_busy[link as usize] += 1;
        }
        if !self.vc_buffer_hw.is_empty() {
            self.vc_buffer_hw[sidx] = self.vc_buffer_hw[sidx].max(self.bufs.len(sidx) as u32);
        }
        true
    }

    /// Eject flits that reached their destination.
    ///
    /// Each `(link, vc)` buffer is drained independently and the
    /// delivered/latency updates commute, so dense (link-major) and
    /// sparse (active nodes → their in-links) orders produce identical
    /// state and stats.
    fn eject(&mut self, cycle: u32) -> bool {
        let mut moved = false;
        if self.dense {
            for link in 0..self.sim.link_to.len() as u32 {
                moved |= self.eject_link(link, cycle);
            }
            return moved;
        }
        // Snapshot: every node with buffered input flits has demand > 0
        // and is therefore on the worklist; ejection only shrinks it.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.active.collect_into(&mut scratch);
        for &v in &scratch {
            if self.in_flits[v as usize] == 0 {
                continue; // source demand only: nothing buffered to eject
            }
            for i in 0..self.sim.in_links[v as usize].len() {
                let link = self.sim.in_links[v as usize][i];
                moved |= self.eject_link(link, cycle);
            }
        }
        self.scratch = scratch;
        moved
    }

    /// Drain destination-reached flits from the front of `link`'s VCs.
    fn eject_link(&mut self, link: u32, cycle: u32) -> bool {
        let to = self.sim.link_to[link as usize];
        let mut moved = false;
        for vc in 0..self.cfg.vcs {
            let sidx = self.sidx(link, vc);
            while let Some(flit) = self.bufs.front(sidx) {
                if self.packets[flit.pkt as usize].dst != to {
                    break;
                }
                self.buf_pop(sidx);
                moved = true;
                if flit.is_tail {
                    self.delivered += 1;
                    let lat = (cycle + 1 - self.packets[flit.pkt as usize].born) as u64;
                    self.latency_sum += lat;
                    self.c_delivered.incr();
                    self.h_latency.observe(lat);
                }
            }
        }
        moved
    }

    fn execute(&mut self, obs: &Obs, window: u32) -> WormholeOutcome {
        let mut idle = 0u32;
        for cycle in 0..self.cfg.cycles {
            if self.faulted {
                let sim = self.sim;
                if let Some(p) = sim.plan.as_ref() {
                    p.apply_due(&mut self.plan_cursor, cycle, &mut self.view);
                }
                while let Some(f) = self.faults.next_due(cycle) {
                    self.apply_fault(f);
                }
            }
            self.inject(cycle);
            let mut moved = false;
            if self.dense {
                for link in 0..self.sim.link_from.len() as u32 {
                    moved |= self.step_link(link);
                }
            } else {
                // Live cursor sweep over demand nodes in ascending order —
                // the dense link-major order (links are CSR-grouped by
                // source). A node activated *ahead* of the cursor by a
                // flit delivered this cycle is swept this cycle, exactly
                // as the dense loop reaches its links later; one activated
                // behind the cursor waits for the next cycle, exactly as
                // the dense loop has already passed it.
                let mut cursor = 0u32;
                while let Some(u) = self.active.next_active(cursor) {
                    cursor = u + 1;
                    let lo = self.sim.link_of[u as usize];
                    let hi = self.sim.link_of[u as usize + 1];
                    for link in lo..hi {
                        moved |= self.step_link(link);
                    }
                }
            }
            moved |= self.eject(cycle);
            if window > 0 && (cycle + 1) % window == 0 {
                obs.emit_window(cycle as u64 + 1);
            }

            let buffered = self.buffered_total as usize;
            debug_assert_eq!(buffered, self.bufs.total_buffered());
            if let Some(t) = self.tracer.as_mut() {
                if t.sampled(u64::from(cycle)) {
                    let c = u64::from(cycle);
                    t.wormhole_cycle(c, self.injected, self.delivered, buffered as u64);
                    let deepest = self.bufs.len.iter().copied().max().unwrap_or(0);
                    t.queue_depth(c, deepest, buffered as u64);
                    t.link_util(c, &self.link_busy);
                    t.credit_stalls(c, &self.stalls);
                    t.worklist(c, self.active.len(), self.in_nodes, self.buffered_total);
                }
            }
            if moved {
                idle = 0;
            } else if buffered > 0 {
                idle += 1;
                if idle >= self.cfg.deadlock_threshold {
                    // Terminal path: count distinct wedged packets with a
                    // sort+dedup rather than a hash set — the count (and
                    // any future listing of it) stays seed-deterministic.
                    let mut stuck: Vec<u32> = (0..self.bufs.len.len())
                        .flat_map(|vc| {
                            let head = self.bufs.head[vc] as usize;
                            let len = self.bufs.len(vc);
                            let depth = self.bufs.depth;
                            let flits = &self.bufs.flits;
                            (0..len).map(move |i| flits[vc * depth + (head + i) % depth].pkt)
                        })
                        .collect();
                    stuck.sort_unstable();
                    stuck.dedup();
                    return WormholeOutcome::Deadlocked {
                        at_cycle: cycle,
                        stuck_packets: stuck.len(),
                    };
                }
            }
        }
        WormholeOutcome::Completed(WormholeStats {
            injected: self.injected,
            delivered: self.delivered,
            dropped: self.dropped,
            avg_latency: if self.delivered == 0 {
                0.0
            } else {
                self.latency_sum as f64 / self.delivered as f64
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_networks::{classic, hier};

    #[test]
    fn light_load_delivers_everything() {
        let g = classic::hypercube(5);
        let sim = WormholeSim::new(&g);
        let cfg = WormholeConfig {
            vcs: 6,
            injection_rate: 0.005,
            cycles: 4_000,
            ..WormholeConfig::default()
        };
        let out = sim.run(&cfg);
        let s = out.stats();
        assert!(s.injected > 0);
        assert!(
            s.delivered as f64 >= 0.95 * s.injected as f64,
            "delivered {} of {}",
            s.delivered,
            s.injected
        );
        // wormhole latency ≈ distance + packet length
        assert!(
            s.avg_latency > 4.0 && s.avg_latency < 30.0,
            "{}",
            s.avg_latency
        );
    }

    #[test]
    fn single_vc_ring_deadlocks_under_cyclic_traffic() {
        // every node sends 3 hops clockwise on an 8-ring: the channel
        // dependency cycle fills and wedges with long packets and tiny
        // buffers on a single VC.
        let g = classic::ring(8);
        let sim = WormholeSim::new(&g);
        let fixed: Vec<u32> = (0..8u32).map(|i| (i + 3) % 8).collect();
        let cfg = WormholeConfig {
            vcs: 1,
            buffer_flits: 1,
            packet_flits: 8,
            injection_rate: 0.5,
            cycles: 20_000,
            deadlock_threshold: 300,
            policy: VcPolicy::Single,
            traffic: WormTraffic::Fixed(fixed),
            ..WormholeConfig::default()
        };
        assert!(sim.run(&cfg).is_deadlocked(), "expected a wedged ring");
    }

    #[test]
    fn hop_indexed_vcs_break_the_cycle() {
        let g = classic::ring(8);
        let sim = WormholeSim::new(&g);
        let fixed: Vec<u32> = (0..8u32).map(|i| (i + 3) % 8).collect();
        let cfg = WormholeConfig {
            vcs: 3, // routes are ≤ 3 hops
            buffer_flits: 1,
            packet_flits: 8,
            injection_rate: 0.5,
            cycles: 20_000,
            deadlock_threshold: 300,
            policy: VcPolicy::HopIndexed,
            traffic: WormTraffic::Fixed(fixed),
            ..WormholeConfig::default()
        };
        let out = sim.run(&cfg);
        assert!(!out.is_deadlocked(), "hop-indexed VCs must not deadlock");
        assert!(out.stats().delivered > 100);
    }

    #[test]
    fn low_diameter_needs_fewer_vcs() {
        // the §5 payoff: guaranteed-deadlock-free hop-indexed wormhole
        // needs vcs ≥ route length; HSN(2,Q2) (diameter 5) runs clean with
        // 5 VCs at 16 nodes while the ring of the same size needs 8.
        let hsn = hier::hcn(2, false);
        let sim = WormholeSim::new(&hsn);
        let cfg = WormholeConfig {
            vcs: 5,
            injection_rate: 0.05,
            cycles: 6_000,
            policy: VcPolicy::HopIndexed,
            ..WormholeConfig::default()
        };
        let out = sim.run(&cfg);
        assert!(!out.is_deadlocked());
        let s = out.stats();
        assert!(s.delivered as f64 > 0.9 * s.injected as f64);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = classic::torus2d(4);
        let sim = WormholeSim::new(&g);
        let cfg = WormholeConfig {
            injection_rate: 0.05,
            cycles: 2_000,
            vcs: 8,
            ..WormholeConfig::default()
        };
        let a = sim.run(&cfg);
        let b = sim.run(&cfg);
        assert_eq!(a.stats().delivered, b.stats().delivered);
        assert_eq!(a.stats().avg_latency, b.stats().avg_latency);
    }

    #[test]
    fn wormhole_latency_scales_with_packet_length() {
        let g = classic::hypercube(4);
        let sim = WormholeSim::new(&g);
        let base = WormholeConfig {
            vcs: 5,
            injection_rate: 0.01,
            cycles: 4_000,
            ..WormholeConfig::default()
        };
        let short = sim.run(&WormholeConfig {
            packet_flits: 2,
            ..base.clone()
        });
        let long = sim.run(&WormholeConfig {
            packet_flits: 12,
            ..base
        });
        assert!(
            long.stats().avg_latency > short.stats().avg_latency + 5.0,
            "long {} vs short {}",
            long.stats().avg_latency,
            short.stats().avg_latency
        );
    }

    #[test]
    fn tracing_does_not_perturb_wormhole_and_records_credit_stalls() {
        // Congested hop-indexed run: small buffers + long packets force
        // buffer-full probe failures, i.e. credit stalls.
        let g = classic::torus2d(4);
        let sim = WormholeSim::new(&g);
        let cfg = WormholeConfig {
            vcs: 8,
            buffer_flits: 1,
            packet_flits: 8,
            injection_rate: 0.05,
            cycles: 2_000,
            ..WormholeConfig::default()
        };
        let plain = sim.run(&cfg);
        let tc = TraceConfig::with_interval(50);
        let (traced, trace) = sim.run_traced(&cfg, &Obs::disabled(), 0, Some(&tc));
        assert_eq!(plain.stats().injected, traced.stats().injected);
        assert_eq!(plain.stats().delivered, traced.stats().delivered);
        assert_eq!(plain.stats().avg_latency, traced.stats().avg_latency);
        let trace = trace.unwrap();
        assert_eq!(trace.shards, 1);
        let sum = trace.summarize(3);
        assert!(sum.injected > 0, "cycle events carry injection deltas");
        assert!(sum.credit_stalls > 0, "tiny buffers must stall credits");
        assert!(!sum.hot_links.is_empty());
        // deterministic across repeat runs
        let (_, trace2) = sim.run_traced(&cfg, &Obs::disabled(), 0, Some(&tc));
        assert_eq!(trace2.unwrap().to_jsonl(), trace.to_jsonl());
    }

    #[test]
    fn fault_kills_destroy_worms_but_adaptive_routing_keeps_delivering() {
        use crate::fault::FaultSpec;
        use crate::router::DetourRouter;
        let g = classic::hypercube(5);
        let router = DetourRouter::new(RoutingTable::new(&g), g.clone()).unwrap();
        let mut sim = WormholeSim::with_router(router, &g);
        let spec = FaultSpec::parse("script:node@500:3+link@800:0-1+link@800:4-5").unwrap();
        let plan = FaultPlan::compile(&spec, &g, 0xabcd).unwrap();
        sim.set_fault_plan(Some(plan));
        let cfg = WormholeConfig {
            vcs: 6,
            injection_rate: 0.02,
            cycles: 6_000,
            ..WormholeConfig::default()
        };
        let out = sim.run(&cfg);
        assert!(!out.is_deadlocked(), "adaptive routing must not wedge");
        let s = out.stats();
        assert!(s.dropped > 0, "traffic touching node 3 must be destroyed");
        assert!(s.delivered > 0);
        assert!(
            s.injected >= s.delivered + s.dropped,
            "injected {} < delivered {} + dropped {}",
            s.injected,
            s.delivered,
            s.dropped
        );
        // the dead node stops injecting: repeat runs stay deterministic
        let again = sim.run(&cfg);
        assert_eq!(s.injected, again.stats().injected);
        assert_eq!(s.delivered, again.stats().delivered);
        assert_eq!(s.dropped, again.stats().dropped);
    }

    #[test]
    fn empty_fault_plan_matches_no_plan() {
        let g = classic::torus2d(4);
        let plain = WormholeSim::new(&g);
        let mut faulted = WormholeSim::new(&g);
        faulted.set_fault_plan(Some(FaultPlan::empty(g.node_count() as u32)));
        let cfg = WormholeConfig {
            vcs: 8,
            injection_rate: 0.05,
            cycles: 2_000,
            ..WormholeConfig::default()
        };
        let a = plain.run(&cfg);
        let b = faulted.run(&cfg);
        assert_eq!(a.stats().injected, b.stats().injected);
        assert_eq!(a.stats().delivered, b.stats().delivered);
        assert_eq!(a.stats().avg_latency, b.stats().avg_latency);
        assert_eq!(b.stats().dropped, 0);
    }

    #[test]
    fn dense_oracle_matches_sparse_wormhole_byte_for_byte() {
        // Congested multi-hop config: small buffers + long packets force
        // credit stalls and same-cycle multi-hop forwarding, the cases
        // where sparse sweep order could plausibly diverge. Stats AND
        // trace bytes must agree between the worklist sweep and the
        // dense-oracle iteration.
        let g = classic::torus2d(4);
        let mut sim = WormholeSim::new(&g);
        let cfg = WormholeConfig {
            vcs: 8,
            buffer_flits: 1,
            packet_flits: 8,
            injection_rate: 0.05,
            cycles: 2_000,
            ..WormholeConfig::default()
        };
        let tc = TraceConfig::with_interval(50);
        sim.set_dense(false);
        let (sparse, strace) = sim.run_traced(&cfg, &Obs::disabled(), 0, Some(&tc));
        sim.set_dense(true);
        let (dense, dtrace) = sim.run_traced(&cfg, &Obs::disabled(), 0, Some(&tc));
        let (s, d) = (sparse.stats(), dense.stats());
        assert!(s.injected > 0 && s.delivered > 0);
        assert_eq!(s.injected, d.injected);
        assert_eq!(s.delivered, d.delivered);
        assert_eq!(s.dropped, d.dropped);
        assert_eq!(s.avg_latency, d.avg_latency);
        assert_eq!(
            strace.unwrap().to_jsonl(),
            dtrace.unwrap().to_jsonl(),
            "sparse trace must be byte-identical to the dense oracle's"
        );
    }

    #[test]
    fn dense_oracle_matches_sparse_wormhole_under_faults() {
        // Fault campaigns exercise the remaining activation paths: purge
        // (network-wide flit removal), refused launches, and mid-chunk
        // node deaths filtered out of the precomputed schedule.
        use crate::fault::FaultSpec;
        use crate::router::DetourRouter;
        let g = classic::hypercube(5);
        let router = DetourRouter::new(RoutingTable::new(&g), g.clone()).unwrap();
        let mut sim = WormholeSim::with_router(router, &g);
        let spec = FaultSpec::parse("script:node@500:3+link@800:0-1+link@800:4-5").unwrap();
        let plan = FaultPlan::compile(&spec, &g, 0xabcd).unwrap();
        sim.set_fault_plan(Some(plan));
        let cfg = WormholeConfig {
            vcs: 6,
            injection_rate: 0.02,
            cycles: 6_000,
            ..WormholeConfig::default()
        };
        let tc = TraceConfig::with_interval(100);
        sim.set_dense(false);
        let (sparse, strace) = sim.run_traced(&cfg, &Obs::disabled(), 0, Some(&tc));
        sim.set_dense(true);
        let (dense, dtrace) = sim.run_traced(&cfg, &Obs::disabled(), 0, Some(&tc));
        let (s, d) = (sparse.stats(), dense.stats());
        assert!(s.dropped > 0, "the fault campaign must bite");
        assert_eq!(s.injected, d.injected);
        assert_eq!(s.delivered, d.delivered);
        assert_eq!(s.dropped, d.dropped);
        assert_eq!(s.avg_latency, d.avg_latency);
        assert_eq!(strace.unwrap().to_jsonl(), dtrace.unwrap().to_jsonl());
    }

    #[test]
    fn dense_oracle_matches_sparse_on_deadlock() {
        // The deadlock detector runs off the shared `moved`/buffered
        // state, so both modes must wedge at the same cycle with the
        // same stuck-packet census.
        let g = classic::ring(8);
        let mut sim = WormholeSim::new(&g);
        let fixed: Vec<u32> = (0..8u32).map(|i| (i + 3) % 8).collect();
        let cfg = WormholeConfig {
            vcs: 1,
            buffer_flits: 1,
            packet_flits: 8,
            injection_rate: 0.5,
            cycles: 20_000,
            deadlock_threshold: 300,
            policy: VcPolicy::Single,
            traffic: WormTraffic::Fixed(fixed),
            ..WormholeConfig::default()
        };
        sim.set_dense(false);
        let a = sim.run(&cfg);
        sim.set_dense(true);
        let b = sim.run(&cfg);
        match (a, b) {
            (
                WormholeOutcome::Deadlocked {
                    at_cycle: ca,
                    stuck_packets: pa,
                },
                WormholeOutcome::Deadlocked {
                    at_cycle: cb,
                    stuck_packets: pb,
                },
            ) => assert_eq!((ca, pa), (cb, pb)),
            _ => panic!("both modes must deadlock"),
        }
    }

    #[test]
    fn codec_router_backend_behaves_like_the_table() {
        use ipg_core::superip::{NucleusSpec, SuperIpSpec, TupleNetwork};
        use ipg_core::tuple_routing::ShortestTupleRouter;
        let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2));
        let g = spec.fast_undirected_csr().unwrap();
        let tn = TupleNetwork::from_spec(&spec).unwrap();
        let router = ShortestTupleRouter::new(tn).unwrap();
        let sim = WormholeSim::with_router(router, &g);
        let cfg = WormholeConfig {
            vcs: 6,
            injection_rate: 0.01,
            cycles: 4_000,
            ..WormholeConfig::default()
        };
        let out = sim.run(&cfg);
        assert!(!out.is_deadlocked());
        let s = out.stats();
        assert!(s.injected > 0);
        assert!(
            s.delivered as f64 >= 0.95 * s.injected as f64,
            "delivered {} of {}",
            s.delivered,
            s.injected
        );
    }
}
