//! Sparse active-set worklists for the cycle engines.
//!
//! At low injection rates almost every per-cycle iteration of a dense
//! `for li in 0..links` / `for node in 0..n` loop visits something with
//! no work. The engines instead maintain a [`Worklist`] per event
//! source: a fixed-capacity bitset plus a membership count, iterated in
//! **ascending index order** — the same relative order the dense loops
//! used, so switching to sparse iteration cannot reorder any observable
//! effect (outbox contents, RNG draws, stat updates).
//!
//! The backing [`FixedBitSet`] is vendored here (dependency-free, ~60
//! lines) rather than pulled from crates.io; the build is hermetic.
//!
//! # Invariant discipline
//!
//! Engine code must mutate membership only through [`Worklist::insert`]
//! / [`Worklist::remove`] (wrapped by the engines' own enqueue/dequeue
//! helpers). `ipg-analyze` rule DET007 rejects the raw bitset mutators
//! (`FixedBitSet`, `set_bit`, `clear_bit`) inside `engine.rs` and
//! `wormhole.rs`, so a cycle loop cannot flip bits without going through
//! the counted API — the activation invariant (DESIGN.md §13) depends on
//! the bit and the underlying queue state changing together.

/// A fixed-capacity bitset over `u64` words. Internal to this module:
/// simulation code holds a [`Worklist`], never the bitset.
#[derive(Clone, Debug, Default)]
pub struct FixedBitSet {
    words: Vec<u64>,
    bits: u32,
}

impl FixedBitSet {
    /// An all-zero set over `bits` indices.
    pub fn with_capacity(bits: usize) -> FixedBitSet {
        FixedBitSet {
            words: vec![0u64; bits.div_ceil(64)],
            bits: bits as u32,
        }
    }

    /// Set bit `i`; returns `true` if it was previously clear.
    #[inline]
    pub fn set_bit(&mut self, i: u32) -> bool {
        debug_assert!(i < self.bits);
        let w = &mut self.words[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        let was_clear = *w & mask == 0;
        *w |= mask;
        was_clear
    }

    /// Clear bit `i`; returns `true` if it was previously set.
    #[inline]
    pub fn clear_bit(&mut self, i: u32) -> bool {
        debug_assert!(i < self.bits);
        let w = &mut self.words[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        let was_set = *w & mask != 0;
        *w &= !mask;
        was_set
    }

    /// Is bit `i` set?
    #[inline]
    pub fn test(&self, i: u32) -> bool {
        debug_assert!(i < self.bits);
        self.words[(i / 64) as usize] & (1u64 << (i % 64)) != 0
    }

    /// Clear every bit (keeps the allocation).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Index of the first set bit at position ≥ `from`, if any.
    /// Word-skipping: empty regions cost one load per 64 indices.
    #[inline]
    pub fn next_set_bit(&self, from: u32) -> Option<u32> {
        if from >= self.bits {
            return None;
        }
        let mut wi = (from / 64) as usize;
        // mask off bits below `from` in the first word
        let mut word = self.words[wi] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(wi as u32 * 64 + word.trailing_zeros());
            }
            wi += 1;
            if wi >= self.words.len() {
                return None;
            }
            word = self.words[wi];
        }
    }
}

/// A counted set of active indices (links, nodes) with deterministic
/// ascending iteration. See the module docs for the discipline.
#[derive(Clone, Debug, Default)]
pub struct Worklist {
    set: FixedBitSet,
    len: u32,
}

impl Worklist {
    /// An empty worklist over indices `0..capacity`.
    pub fn new(capacity: usize) -> Worklist {
        Worklist {
            set: FixedBitSet::with_capacity(capacity),
            len: 0,
        }
    }

    /// Number of active indices.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Is the worklist empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    // The counter updates below use an explicit branch rather than the
    // branchless `self.len += u32::from(fresh)`: at opt-level >= 2 the
    // current toolchain drops the branchless increment when `set_bit` is
    // inlined across the `&mut self.words[..]` borrow (the bit write and
    // the returned bool stay correct, only the `len` update vanishes).
    // The branch form compiles correctly; do not "simplify" it back.

    /// Mark `i` active. Idempotent; returns `true` on a 0→1 transition.
    #[inline]
    pub fn insert(&mut self, i: u32) -> bool {
        let fresh = self.set.set_bit(i);
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// Mark `i` inactive. Idempotent; returns `true` on a 1→0 transition.
    #[inline]
    pub fn remove(&mut self, i: u32) -> bool {
        let removed = self.set.clear_bit(i);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Is `i` active?
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        self.set.test(i)
    }

    /// Deactivate everything (keeps the allocation).
    pub fn clear(&mut self) {
        self.set.clear_all();
        self.len = 0;
    }

    /// First active index ≥ `from`, if any. The primitive behind both
    /// iteration styles; exposed so a caller can run a **live cursor
    /// sweep** — ascending traversal that *does* observe insertions made
    /// at indices ahead of the cursor while it runs (the wormhole step
    /// loop needs exactly this to match dense link order, where a flit
    /// forwarded to a higher-numbered node can move again in the same
    /// cycle).
    #[inline]
    pub fn next_active(&self, from: u32) -> Option<u32> {
        self.set.next_set_bit(from)
    }

    /// Append the active indices in ascending order to `out` (a
    /// **snapshot**: mutations after the call are not reflected).
    pub fn collect_into(&self, out: &mut Vec<u32>) {
        out.reserve(self.len as usize);
        let mut from = 0u32;
        while let Some(i) = self.set.next_set_bit(from) {
            out.push(i);
            from = i + 1;
        }
    }

    /// Visit the active indices in ascending order (snapshot semantics
    /// are the caller's concern: do not mutate the worklist inside `f`).
    pub fn for_each(&self, mut f: impl FnMut(u32)) {
        let mut from = 0u32;
        while let Some(i) = self.set.next_set_bit(from) {
            f(i);
            from = i + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_count_and_order() {
        let mut w = Worklist::new(200);
        assert!(w.is_empty());
        for &i in &[7u32, 64, 65, 199, 0, 63] {
            assert!(w.insert(i), "first insert of {i} is a 0->1 transition");
        }
        assert!(!w.insert(7), "re-insert is idempotent");
        assert_eq!(w.len(), 6);
        let mut seen = Vec::new();
        w.collect_into(&mut seen);
        assert_eq!(seen, vec![0, 7, 63, 64, 65, 199], "ascending iteration");
        assert!(w.remove(64));
        assert!(!w.remove(64), "re-remove is idempotent");
        assert_eq!(w.len(), 5);
        assert!(w.contains(65) && !w.contains(64));
    }

    #[test]
    fn cursor_sweep_sees_insertions_ahead_but_not_behind() {
        let mut w = Worklist::new(128);
        w.insert(10);
        let mut visited = Vec::new();
        let mut cursor = 0u32;
        while let Some(i) = w.next_active(cursor) {
            visited.push(i);
            if i == 10 {
                w.insert(100); // ahead of the cursor: must be visited
                w.insert(3); // behind: must not be revisited this sweep
            }
            cursor = i + 1;
        }
        assert_eq!(visited, vec![10, 100]);
        assert!(w.contains(3), "the behind-cursor insert is kept for later");
    }

    #[test]
    fn clear_resets_without_shrinking() {
        let mut w = Worklist::new(64);
        for i in 0..64 {
            w.insert(i);
        }
        assert_eq!(w.len(), 64);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.next_active(0), None);
        assert!(w.insert(63));
    }

    #[test]
    fn word_boundaries_are_exact() {
        let mut w = Worklist::new(129);
        for &i in &[63u32, 64, 127, 128] {
            w.insert(i);
        }
        assert_eq!(w.next_active(0), Some(63));
        assert_eq!(w.next_active(64), Some(64));
        assert_eq!(w.next_active(65), Some(127));
        assert_eq!(w.next_active(128), Some(128));
        assert_eq!(w.next_active(129), None);
    }
}
