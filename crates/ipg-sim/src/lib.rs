//! # ipg-sim — packet-level network simulation
//!
//! A synchronous, cycle-based, store-and-forward network simulator used to
//! substantiate the paper's §5 delay claims empirically:
//!
//! - with uniform link speeds and light traffic, latency tracks the
//!   **DD-cost** family ordering;
//! - when off-module links are slower than on-module links (the §5.4
//!   "on-chip links can be driven at a considerably higher clock rate"
//!   regime), latency tracks **II-cost**;
//! - saturation throughput is inversely related to the average
//!   (inter-cluster) distance (§5.2).
//!
//! Three simulation layers:
//!
//! - [`engine`] — cycle-based store-and-forward / virtual-cut-through
//!   engine: output-queued routers, per-link service intervals,
//!   shortest-path next-hop tables with deterministic tie-breaking,
//!   Bernoulli injection with uniform / permutation / hotspot traffic;
//! - [`wormhole`] — flit-level wormhole switching with finite per-VC
//!   buffers, hop-indexed virtual-channel allocation, and deadlock
//!   detection;
//! - [`emulate`] — hypercube algorithms (bitonic sort, parallel prefix)
//!   executed through embeddings with per-dimension dilation/congestion
//!   step costs.
//!
//! Both cycle-level engines accept a compiled [`fault`] plan — scripted
//! or rate-drawn link/node kills applied deterministically mid-run — and
//! route around it (or into it, for the non-adaptive baseline) through
//! [`router::DetourRouter`] / [`Router::next_hop_faulted`].

pub mod dist;
pub mod emulate;
pub mod engine;
pub mod fault;
pub mod rng;
pub mod router;
pub mod table;
pub mod worklist;
pub mod wormhole;

pub use emulate::HostEmulator;
pub use engine::{SimConfig, SimResult, Simulator, Switching, Traffic};
pub use fault::{FaultPlan, FaultSpec};
pub use router::{DetourRouter, DetourTupleRouter, Router};
pub use table::RoutingTable;
pub use wormhole::{WormholeConfig, WormholeOutcome, WormholeSim};
