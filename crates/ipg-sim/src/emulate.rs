//! Emulating hypercube (ASCEND/DESCEND-style) algorithms on arbitrary
//! host networks.
//!
//! The paper (§1) claims super-IP graphs "can emulate a corresponding
//! higher-degree network, such as a hypercube, with asymptotically
//! optimal slowdown". This module runs real dimension-exchange algorithms
//! — bitonic sort and parallel prefix — on a *logical* hypercube, costs
//! every dimension-exchange step on the host through an embedding
//! (dilation + congestion of the step's pairing), and verifies the
//! computed results.
//!
//! Step cost model: with unit-capacity links and shortest-path routing, a
//! step in which every node exchanges with its dimension-`d` partner
//! completes in at least `max(dilation_d, congestion_d)` and at most
//! `dilation_d + congestion_d` cycles; reports carry both bounds.

use ipg_core::algo;
use ipg_core::graph::Csr;

/// Cost of one dimension-exchange step on the host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DimCost {
    /// Max host distance between any exchange pair.
    pub dilation: u32,
    /// Max number of exchange paths through a single host edge.
    pub congestion: u32,
}

impl DimCost {
    /// Lower-bound step time.
    pub fn lower(&self) -> u32 {
        self.dilation.max(self.congestion)
    }

    /// Upper-bound step time.
    pub fn upper(&self) -> u32 {
        self.dilation + self.congestion
    }
}

/// Cost of the dimension-`dim` exchange (`v ↔ v ⊕ 2^dim` for every `v`)
/// on `host` under the node map `map`.
pub fn dimension_cost(host: &Csr, map: &[u32], dim: u32) -> DimCost {
    use std::collections::HashMap;
    let n = map.len();
    assert!(n.is_power_of_two());
    let mut load: HashMap<(u32, u32), u32> = HashMap::new();
    let mut dilation = 0u32;
    for v in 0..n as u32 {
        let w = v ^ (1 << dim);
        if w < v {
            continue;
        }
        let (dist, parent) = algo::bfs_parents(host, map[v as usize]);
        let d = dist[map[w as usize] as usize];
        assert_ne!(d, algo::UNREACHABLE, "host disconnected");
        dilation = dilation.max(d);
        // both directions of the exchange traverse the same undirected
        // path; count 2 per edge
        let mut cur = map[w as usize];
        while cur != map[v as usize] {
            let p = parent[cur as usize];
            *load.entry((cur.min(p), cur.max(p))).or_insert(0) += 2;
            cur = p;
        }
    }
    DimCost {
        dilation,
        congestion: load.values().copied().max().unwrap_or(0),
    }
}

/// Aggregate emulation cost report.
#[derive(Clone, Debug)]
pub struct EmulationReport {
    /// Number of dimension-exchange steps executed.
    pub steps: u32,
    /// Total time on a unit hypercube (= steps).
    pub hypercube_time: u32,
    /// Lower-bound total host time (Σ max(dilation, congestion)).
    pub host_time_lower: u64,
    /// Upper-bound total host time (Σ dilation + congestion).
    pub host_time_upper: u64,
}

impl EmulationReport {
    /// Slowdown (lower-bound flavor).
    pub fn slowdown(&self) -> f64 {
        self.host_time_lower as f64 / self.hypercube_time.max(1) as f64
    }
}

/// Precomputed per-dimension costs for a host embedding.
pub struct HostEmulator {
    dims: u32,
    costs: Vec<DimCost>,
}

impl HostEmulator {
    /// Precompute all dimension costs. `map[v]` = host node of logical
    /// hypercube node `v`; `map.len()` must be a power of two not
    /// exceeding the host size.
    pub fn new(host: &Csr, map: &[u32]) -> Self {
        let dims = map.len().trailing_zeros();
        let costs = (0..dims).map(|d| dimension_cost(host, map, d)).collect();
        HostEmulator { dims, costs }
    }

    /// Dimensions of the logical hypercube.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Per-dimension cost.
    pub fn cost(&self, dim: u32) -> DimCost {
        self.costs[dim as usize]
    }

    /// Bitonic sort of one key per logical node (ascending by node id).
    /// Mutates `keys` into sorted order and returns the cost report.
    pub fn bitonic_sort(&self, keys: &mut [u64]) -> EmulationReport {
        let n = keys.len();
        assert_eq!(n, 1usize << self.dims);
        let mut steps = 0u32;
        let mut lower = 0u64;
        let mut upper = 0u64;
        for k in 1..=self.dims {
            for j in (0..k).rev() {
                // every node exchanges along dimension j
                for i in 0..n {
                    let partner = i ^ (1 << j);
                    if partner < i {
                        continue;
                    }
                    let ascending = if k == self.dims {
                        true
                    } else {
                        (i >> k) & 1 == 0
                    };
                    let (a, b) = (keys[i], keys[partner]);
                    let (lo, hi) = (a.min(b), a.max(b));
                    if ascending {
                        keys[i] = lo;
                        keys[partner] = hi;
                    } else {
                        keys[i] = hi;
                        keys[partner] = lo;
                    }
                }
                steps += 1;
                let c = self.cost(j);
                lower += c.lower() as u64;
                upper += c.upper() as u64;
            }
        }
        EmulationReport {
            steps,
            hypercube_time: steps,
            host_time_lower: lower,
            host_time_upper: upper,
        }
    }

    /// Inclusive parallel prefix sum (`out[i] = Σ values[0..=i]`) by
    /// hypercube dimension sweeps; returns the prefix array and the cost.
    pub fn parallel_prefix(&self, values: &[u64]) -> (Vec<u64>, EmulationReport) {
        let n = values.len();
        assert_eq!(n, 1usize << self.dims);
        let mut prefix: Vec<u64> = values.to_vec();
        let mut sum: Vec<u64> = values.to_vec();
        let mut lower = 0u64;
        let mut upper = 0u64;
        for d in 0..self.dims {
            let bit = 1usize << d;
            let old_sum = sum.clone();
            for i in 0..n {
                let partner = i ^ bit;
                sum[i] = old_sum[i] + old_sum[partner];
                if partner < i {
                    prefix[i] += old_sum[partner];
                }
            }
            let c = self.cost(d);
            lower += c.lower() as u64;
            upper += c.upper() as u64;
        }
        (
            prefix,
            EmulationReport {
                steps: self.dims,
                hypercube_time: self.dims,
                host_time_lower: lower,
                host_time_upper: upper,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_networks::{classic, hier};

    fn identity_map(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn identity_hypercube_costs_are_unit() {
        let host = classic::hypercube(5);
        let emu = HostEmulator::new(&host, &identity_map(32));
        for d in 0..5 {
            assert_eq!(
                emu.cost(d),
                DimCost {
                    dilation: 1,
                    congestion: 2 // both directions share the edge
                }
            );
        }
    }

    #[test]
    fn bitonic_sorts_random_keys() {
        let host = classic::hypercube(6);
        let emu = HostEmulator::new(&host, &identity_map(64));
        // deterministic pseudo-random keys
        let mut keys: Vec<u64> = (0..64u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) >> 17)
            .collect();
        let report = emu.bitonic_sort(&mut keys);
        assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "not sorted: {keys:?}"
        );
        assert_eq!(report.steps, 6 * 7 / 2);
    }

    #[test]
    fn prefix_sums_are_correct() {
        let host = classic::hypercube(4);
        let emu = HostEmulator::new(&host, &identity_map(16));
        let values: Vec<u64> = (0..16u64).map(|i| i * i + 1).collect();
        let (prefix, report) = emu.parallel_prefix(&values);
        let mut expect = 0u64;
        for (i, &v) in values.iter().enumerate() {
            expect += v;
            assert_eq!(prefix[i], expect, "prefix[{i}]");
        }
        assert_eq!(report.steps, 4);
    }

    #[test]
    fn hsn_emulation_slowdown_is_bounded() {
        // HSN(2, Q3) hosting Q6 through the identity embedding: paper
        // claims asymptotically optimal slowdown; measured per-step cost
        // stays within a small constant of the hypercube's.
        let host = hier::hsn(2, classic::hypercube(3), "Q3").build();
        let emu = HostEmulator::new(&host, &identity_map(64));
        let mut keys: Vec<u64> = (0..64u64).rev().collect();
        let report = emu.bitonic_sort(&mut keys);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        // identity hypercube lower bound is 2 per step (bidirectional
        // congestion); allow ~4x that for the swap bottleneck
        let slowdown = report.slowdown();
        assert!(slowdown <= 8.0, "slowdown {slowdown}");
        assert!(slowdown >= 1.0);
    }

    #[test]
    fn ring_host_pays_linear_dilation() {
        let host = classic::ring(16);
        let emu = HostEmulator::new(&host, &identity_map(16));
        // highest dimension spans half the ring
        assert!(emu.cost(3).dilation >= 8);
    }
}
