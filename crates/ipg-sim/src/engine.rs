//! The synchronous simulation engine.
//!
//! Time advances in cycles. Each node owns one FIFO output queue per
//! outgoing link; a link forwards one packet every `service interval`
//! cycles (off-module links may be slower, modeling the §5.4 regime where
//! on-chip links run at a higher clock rate). Arriving packets are either
//! consumed (destination reached) or appended to the next output queue.
//! Injection is Bernoulli per node per cycle with uniform random
//! destinations.

use crate::table::RoutingTable;
use ipg_core::graph::Csr;
use ipg_obs::Obs;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Destination selection for injected packets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Traffic {
    /// Uniformly random destination ≠ source.
    Uniform,
    /// Bit-complement permutation: `dst = !src` (requires a power-of-two
    /// node count). The classic worst case for dimension-ordered meshes.
    BitComplement,
    /// Transpose permutation: swap the low and high halves of the node-id
    /// bits (requires a power-of-two node count with an even bit width).
    Transpose,
    /// Hotspot: with probability `fraction`, send to `target`; otherwise
    /// uniform.
    Hotspot {
        /// Probability of addressing the hotspot.
        fraction: f64,
        /// The hotspot node.
        target: u32,
    },
}

/// Switching technique (paper §5 distinguishes packet switching from
/// wormhole/cut-through for its latency arguments).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Switching {
    /// Store-and-forward: a message is fully serialized at every hop
    /// (per-hop latency = interval × message_length).
    StoreForward,
    /// Virtual cut-through: the header advances after one service
    /// interval; the tail catches up once at the destination. Each link
    /// is still occupied for interval × message_length cycles.
    CutThrough,
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Packets injected per node per cycle (Bernoulli probability).
    pub injection_rate: f64,
    /// Cycles before measurement starts.
    pub warmup_cycles: u32,
    /// Cycles during which injected packets are tagged for measurement.
    pub measure_cycles: u32,
    /// Extra cycles to let tagged packets drain.
    pub drain_cycles: u32,
    /// A link forwards one packet every this many cycles (≥ 1) when both
    /// endpoints share a module.
    pub on_module_interval: u32,
    /// Service interval of off-module links (≥ on_module_interval models
    /// slower off-chip signaling or narrower channels).
    pub off_module_interval: u32,
    /// RNG seed (simulations are deterministic given the seed).
    pub seed: u64,
    /// Message length in flits (scales per-link occupancy; with
    /// store-and-forward it also scales per-hop latency).
    pub message_length: u32,
    /// Store-and-forward or virtual cut-through.
    pub switching: Switching,
    /// Destination pattern.
    pub traffic: Traffic,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            injection_rate: 0.01,
            warmup_cycles: 1_000,
            measure_cycles: 4_000,
            drain_cycles: 20_000,
            on_module_interval: 1,
            off_module_interval: 1,
            seed: 0x5eed_1b9a_44c0_ffee,
            message_length: 1,
            switching: Switching::StoreForward,
            traffic: Traffic::Uniform,
        }
    }
}

/// Aggregated results of one run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimResult {
    /// Tagged packets injected during the measurement window.
    pub injected: u64,
    /// Tagged packets delivered before the run ended.
    pub delivered: u64,
    /// Packets delivered that were injected *outside* the measurement
    /// window (warmup or drain traffic): drained, but not measured.
    pub unmeasured_delivered: u64,
    /// Tagged packets still buffered when the run ended. Together with
    /// `delivered` this accounts for every tagged injection:
    /// `injected == delivered + in_flight_at_end`, so a shortfall in
    /// `delivered` is attributable to saturation backlog, not to packets
    /// silently vanishing with the measurement window.
    pub in_flight_at_end: u64,
    /// Mean latency (cycles) of delivered tagged packets.
    pub avg_latency: f64,
    /// Max latency of delivered tagged packets.
    pub max_latency: u32,
    /// Delivered tagged packets per node per cycle of the measurement
    /// window (the accepted throughput).
    pub throughput: f64,
    /// Total cycles simulated.
    pub cycles: u32,
}

struct Packet {
    dst: u32,
    born: u32,
    tagged: bool,
}

struct Link {
    to: u32,
    interval: u32,
    next_free: u64,
    queue: VecDeque<Packet>,
}

/// The simulator: a network, a routing table, and a module map.
pub struct Simulator {
    n: usize,
    table: RoutingTable,
    /// links grouped by source node: `links[link_of[u] .. link_of[u+1]]`.
    links: Vec<Link>,
    link_of: Vec<u32>,
}

impl Simulator {
    /// Build a simulator for graph `g`. `module(u)` gives each node's
    /// module id (used to classify links as on-/off-module).
    pub fn new(g: &Csr, module: impl Fn(u32) -> u32, cfg: &SimConfig) -> Self {
        Self::new_instrumented(g, module, cfg, &Obs::disabled())
    }

    /// [`Simulator::new`] with observability for the routing-table build.
    pub fn new_instrumented(
        g: &Csr,
        module: impl Fn(u32) -> u32,
        cfg: &SimConfig,
        obs: &Obs,
    ) -> Self {
        let n = g.node_count();
        let table = RoutingTable::new_instrumented(g, obs);
        let mut links = Vec::with_capacity(g.arc_count());
        let mut link_of = Vec::with_capacity(n + 1);
        link_of.push(0u32);
        for u in 0..n as u32 {
            for &v in g.neighbors(u) {
                let interval = if module(u) == module(v) {
                    cfg.on_module_interval
                } else {
                    cfg.off_module_interval
                };
                links.push(Link {
                    to: v,
                    interval: interval.max(1),
                    next_free: 0,
                    queue: VecDeque::new(),
                });
            }
            link_of.push(links.len() as u32);
        }
        Simulator {
            n,
            table,
            links,
            link_of,
        }
    }

    fn link_toward(&self, u: u32, v: u32) -> usize {
        let lo = self.link_of[u as usize] as usize;
        let hi = self.link_of[u as usize + 1] as usize;
        for i in lo..hi {
            if self.links[i].to == v {
                return i;
            }
        }
        // ipg-analyze: allow(PANIC001) reason="routing tables only emit neighbors; reaching here is a table bug"
        panic!("next hop {v} is not a neighbor of {u}");
    }

    /// Pick a destination for a packet injected at `src` (None when the
    /// pattern maps `src` to itself).
    fn pick_destination(&self, src: u32, traffic: Traffic, rng: &mut SmallRng) -> Option<u32> {
        let n = self.n as u32;
        let uniform = |rng: &mut SmallRng| {
            let mut dst = rng.gen_range(0..n - 1);
            if dst >= src {
                dst += 1;
            }
            dst
        };
        match traffic {
            Traffic::Uniform => Some(uniform(rng)),
            Traffic::BitComplement => {
                assert!(n.is_power_of_two(), "bit-complement needs 2^k nodes");
                let dst = !src & (n - 1);
                (dst != src).then_some(dst)
            }
            Traffic::Transpose => {
                assert!(n.is_power_of_two(), "transpose needs 2^k nodes");
                let bits = n.trailing_zeros();
                assert!(bits % 2 == 0, "transpose needs an even bit width");
                let half = bits / 2;
                let lo = src & ((1 << half) - 1);
                let hi = src >> half;
                let dst = (lo << half) | hi;
                (dst != src).then_some(dst)
            }
            Traffic::Hotspot { fraction, target } => {
                if rng.gen::<f64>() < fraction && target != src {
                    Some(target)
                } else {
                    Some(uniform(rng))
                }
            }
        }
    }

    /// Run the simulation and collect statistics.
    pub fn run(&mut self, cfg: &SimConfig) -> SimResult {
        self.run_instrumented(cfg, &Obs::disabled(), 0)
    }

    /// [`Simulator::run`] with observability. When `obs` is enabled the
    /// run emits phase spans (`run/warmup`, `run/measure`, `run/drain`),
    /// packet counters, a tagged-latency histogram, per-link utilization
    /// and queue-depth high-water histograms, and — when `window > 0` —
    /// a `window` metrics snapshot every `window` cycles. A disabled
    /// `obs` makes this identical to [`Simulator::run`].
    pub fn run_instrumented(&mut self, cfg: &SimConfig, obs: &Obs, window: u32) -> SimResult {
        let run_span = obs.span("run");
        let c_injected = obs.counter("engine.injected_tagged");
        let c_injected_all = obs.counter("engine.injected_total");
        let c_delivered = obs.counter("engine.delivered_tagged");
        let c_unmeasured = obs.counter("engine.delivered_unmeasured");
        let h_latency = obs.histogram("engine.latency_cycles");
        let track = obs.enabled();
        // per-link occupancy cycles and queue-depth high-water marks,
        // folded into histograms at the end of the run
        let mut link_busy = vec![0u64; if track { self.links.len() } else { 0 }];
        let mut queue_hw = vec![0u32; if track { self.links.len() } else { 0 }];

        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let total_cycles = cfg.warmup_cycles + cfg.measure_cycles + cfg.drain_cycles;
        let mut injected = 0u64;
        let mut delivered = 0u64;
        let mut unmeasured_delivered = 0u64;
        let mut latency_sum = 0u64;
        let mut max_latency = 0u32;
        let n = self.n;
        let msg_len = cfg.message_length.max(1);

        for link in &mut self.links {
            link.next_free = 0;
            link.queue.clear();
        }

        // In-flight packets: ring buffer of arrival buckets. A link with
        // service interval k serves one message per k·L cycles; the head
        // advances after k (cut-through) or k·L (store-and-forward)
        // cycles — slow off-module signaling, §5.4.
        let max_interval =
            self.links.iter().map(|l| l.interval).max().unwrap_or(1) as usize * msg_len as usize;
        let mut in_flight: Vec<Vec<(u32, Packet)>> =
            (0..=max_interval).map(|_| Vec::new()).collect();
        // Cut-through: the tail catches up with the header once, at the
        // destination.
        let tail_penalty = match cfg.switching {
            Switching::StoreForward => 0,
            Switching::CutThrough => (msg_len - 1) * cfg.on_module_interval,
        };

        let mut phase_span = Some(obs.span("warmup"));
        for cycle in 0..total_cycles {
            if cycle == cfg.warmup_cycles {
                phase_span.take();
                phase_span = Some(obs.span("measure"));
            }
            if cycle == cfg.warmup_cycles + cfg.measure_cycles {
                phase_span.take();
                phase_span = Some(obs.span("drain"));
            }
            // 1. injection
            for src in 0..n as u32 {
                if rng.gen::<f64>() < cfg.injection_rate {
                    let Some(dst) = self.pick_destination(src, cfg.traffic, &mut rng) else {
                        continue;
                    };
                    let tagged = cycle >= cfg.warmup_cycles
                        && cycle < cfg.warmup_cycles + cfg.measure_cycles;
                    if tagged {
                        injected += 1;
                        c_injected.incr();
                    }
                    c_injected_all.incr();
                    let hop = self.table.next_hop(src, dst);
                    let li = self.link_toward(src, hop);
                    self.links[li].queue.push_back(Packet {
                        dst,
                        born: cycle,
                        tagged,
                    });
                    if track {
                        queue_hw[li] = queue_hw[li].max(self.links[li].queue.len() as u32);
                    }
                }
            }
            // 2. each ready link launches its head message
            for (li, link) in self.links.iter_mut().enumerate() {
                if link.next_free <= cycle as u64 && !link.queue.is_empty() {
                    // ipg-analyze: allow(PANIC001) reason="is_empty checked in the guard just above"
                    let pkt = link.queue.pop_front().expect("checked non-empty");
                    // occupancy: the whole message crosses the link
                    link.next_free = cycle as u64 + link.interval as u64 * msg_len as u64;
                    if track {
                        link_busy[li] += link.interval as u64 * msg_len as u64;
                    }
                    // forward progress of the head
                    let advance = match cfg.switching {
                        Switching::StoreForward => link.interval * msg_len,
                        Switching::CutThrough => link.interval,
                    } as usize;
                    let slot = (cycle as usize + advance) % in_flight.len();
                    in_flight[slot].push((link.to, pkt));
                }
            }
            // 3. arrivals scheduled for the *next* cycle boundary
            let slot = (cycle as usize + 1) % in_flight.len();
            let arrivals = std::mem::take(&mut in_flight[slot]);
            for (arrived_at, pkt) in arrivals {
                if arrived_at == pkt.dst {
                    if pkt.tagged {
                        delivered += 1;
                        let lat = cycle + 1 - pkt.born + tail_penalty;
                        latency_sum += lat as u64;
                        max_latency = max_latency.max(lat);
                        c_delivered.incr();
                        h_latency.observe(lat as u64);
                    } else {
                        unmeasured_delivered += 1;
                        c_unmeasured.incr();
                    }
                } else {
                    let hop = self.table.next_hop(arrived_at, pkt.dst);
                    let nli = self.link_toward(arrived_at, hop);
                    self.links[nli].queue.push_back(pkt);
                    if track {
                        queue_hw[nli] = queue_hw[nli].max(self.links[nli].queue.len() as u32);
                    }
                }
            }
            if window > 0 && (cycle + 1) % window == 0 {
                obs.emit_window(cycle as u64 + 1);
            }
        }
        phase_span.take();

        // tagged packets still buffered (link queues or the in-flight
        // ring) when the run ended
        let in_flight_at_end = self
            .links
            .iter()
            .flat_map(|l| l.queue.iter())
            .chain(in_flight.iter().flatten().map(|(_, p)| p))
            .filter(|p| p.tagged)
            .count() as u64;
        debug_assert_eq!(injected, delivered + in_flight_at_end);

        if track {
            obs.counter("engine.in_flight_at_end").add(in_flight_at_end);
            obs.counter("engine.links").add(self.links.len() as u64);
            let h_util = obs.histogram("engine.link_utilization_pct");
            let g_util = obs.gauge("engine.link_utilization_max_pct");
            let h_qhw = obs.histogram("engine.queue_depth_high_water");
            let g_qhw = obs.gauge("engine.queue_depth_max");
            for (busy, hw) in link_busy.iter().zip(&queue_hw) {
                let pct = (busy * 100 / total_cycles.max(1) as u64).min(100);
                h_util.observe(pct);
                g_util.record_max(pct);
                h_qhw.observe(*hw as u64);
                g_qhw.record_max(*hw as u64);
            }
        }
        drop(run_span);

        SimResult {
            injected,
            delivered,
            unmeasured_delivered,
            in_flight_at_end,
            avg_latency: if delivered == 0 {
                0.0
            } else {
                latency_sum as f64 / delivered as f64
            },
            max_latency,
            throughput: delivered as f64 / (n as f64 * cfg.measure_cycles as f64),
            cycles: total_cycles,
        }
    }
}

/// Convenience: build and run in one call with everything in one module
/// (uniform link speed).
pub fn run_uniform(g: &Csr, cfg: &SimConfig) -> SimResult {
    Simulator::new(g, |_| 0, cfg).run(cfg)
}

/// [`run_uniform`] with observability (see
/// [`Simulator::run_instrumented`]).
pub fn run_uniform_instrumented(g: &Csr, cfg: &SimConfig, obs: &Obs, window: u32) -> SimResult {
    Simulator::new_instrumented(g, |_| 0, cfg, obs).run_instrumented(cfg, obs, window)
}

/// Convenience: build and run with a module map (off-module links use
/// `cfg.off_module_interval`).
pub fn run_clustered(g: &Csr, module: &[u32], cfg: &SimConfig) -> SimResult {
    Simulator::new(g, |u| module[u as usize], cfg).run(cfg)
}

/// [`run_clustered`] with observability (see
/// [`Simulator::run_instrumented`]).
pub fn run_clustered_instrumented(
    g: &Csr,
    module: &[u32],
    cfg: &SimConfig,
    obs: &Obs,
    window: u32,
) -> SimResult {
    Simulator::new_instrumented(g, |u| module[u as usize], cfg, obs)
        .run_instrumented(cfg, obs, window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_networks::classic;

    fn light_cfg() -> SimConfig {
        SimConfig {
            injection_rate: 0.005,
            warmup_cycles: 500,
            measure_cycles: 2_000,
            drain_cycles: 5_000,
            on_module_interval: 1,
            off_module_interval: 1,
            seed: 42,
            ..SimConfig::default()
        }
    }

    #[test]
    fn light_load_latency_tracks_average_distance() {
        // store-and-forward light-load latency ≈ average distance (one
        // cycle per hop) + small queueing noise.
        let g = classic::hypercube(6);
        let avg = ipg_core::algo::average_distance(&g);
        let r = run_uniform(&g, &light_cfg());
        assert!(r.delivered > 0);
        assert!(
            (r.avg_latency - avg).abs() < 1.0,
            "latency {} vs avg distance {avg}",
            r.avg_latency
        );
    }

    #[test]
    fn all_tagged_packets_delivered_at_light_load() {
        let g = classic::torus2d(6);
        let r = run_uniform(&g, &light_cfg());
        assert_eq!(r.injected, r.delivered);
    }

    #[test]
    fn saturation_throughput_orders_ring_vs_hypercube() {
        // At the same high injection rate the hypercube (avg distance
        // n/2 = 3, high bisection) delivers far more than the 64-ring
        // (avg distance ~16).
        let heavy = SimConfig {
            injection_rate: 0.4,
            warmup_cycles: 500,
            measure_cycles: 2_000,
            drain_cycles: 4_000,
            ..light_cfg()
        };
        let cube = run_uniform(&classic::hypercube(6), &heavy);
        let ring = run_uniform(&classic::ring(64), &heavy);
        assert!(
            cube.throughput > 1.5 * ring.throughput,
            "cube {} vs ring {}",
            cube.throughput,
            ring.throughput
        );
        // the ring is past saturation: it cannot deliver what was injected
        assert!(ring.delivered < ring.injected);
        // the hypercube is not: everything tagged arrives
        assert_eq!(cube.delivered, cube.injected);
    }

    #[test]
    fn slow_off_module_links_raise_latency() {
        let g = classic::hypercube(6);
        let module: Vec<u32> = (0..64u32).map(|u| u >> 2).collect();
        let fast = run_clustered(&g, &module, &light_cfg());
        let slow_cfg = SimConfig {
            off_module_interval: 4,
            ..light_cfg()
        };
        let slow = run_clustered(&g, &module, &slow_cfg);
        assert!(slow.avg_latency > fast.avg_latency);
    }

    #[test]
    fn bit_complement_latency_is_graph_diameter() {
        // complement pairs are at distance n in Q_n: light-load latency ≈ n
        let g = classic::hypercube(6);
        let cfg = SimConfig {
            traffic: Traffic::BitComplement,
            ..light_cfg()
        };
        let r = run_uniform(&g, &cfg);
        assert!(r.delivered > 0);
        assert!(
            (r.avg_latency - 6.0).abs() < 0.5,
            "latency {}",
            r.avg_latency
        );
    }

    #[test]
    fn transpose_pattern_valid_and_delivers() {
        let g = classic::hypercube(6); // 64 nodes, 6 bits: even width
        let cfg = SimConfig {
            traffic: Traffic::Transpose,
            ..light_cfg()
        };
        let r = run_uniform(&g, &cfg);
        assert_eq!(r.injected, r.delivered);
    }

    #[test]
    fn hotspot_saturates_before_uniform() {
        let g = classic::hypercube(6);
        let heavy = SimConfig {
            injection_rate: 0.2,
            drain_cycles: 3_000,
            ..light_cfg()
        };
        let uni = run_uniform(&g, &heavy);
        // The hotspot must be saturated by a margin the drain phase cannot
        // clear: node 0 has 6 ingress links in Q6, so offered hotspot load
        // is 64 nodes x 0.2 rate x fraction. At fraction 0.5 that is 6.4
        // pkts/cycle — within noise of the 6/cycle capacity, and the
        // backlog drains fully. At 0.8 it is ~10.2 pkts/cycle, well past
        // saturation (cf. paper Sec. 5's saturation-throughput setup).
        let hot = run_uniform(
            &g,
            &SimConfig {
                traffic: Traffic::Hotspot {
                    fraction: 0.8,
                    target: 0,
                },
                ..heavy
            },
        );
        // the hotspot's links bound delivery: hotspot run delivers less
        assert!(hot.delivered < uni.delivered);
    }

    #[test]
    fn cut_through_beats_store_and_forward_for_long_messages() {
        let g = classic::hypercube(6);
        let base = SimConfig {
            message_length: 8,
            injection_rate: 0.002,
            ..light_cfg()
        };
        let sf = run_uniform(&g, &base);
        let ct = run_uniform(
            &g,
            &SimConfig {
                switching: Switching::CutThrough,
                ..base
            },
        );
        // SF ≈ hops·L, CT ≈ hops + L: for avg 3 hops, L=8 → ~24 vs ~11
        assert!(
            ct.avg_latency + 4.0 < sf.avg_latency,
            "CT {} vs SF {}",
            ct.avg_latency,
            sf.avg_latency
        );
        // at L = 1 the two modes coincide
        let one = SimConfig {
            message_length: 1,
            ..base
        };
        let sf1 = run_uniform(&g, &one);
        let ct1 = run_uniform(
            &g,
            &SimConfig {
                switching: Switching::CutThrough,
                ..one
            },
        );
        assert_eq!(sf1.avg_latency, ct1.avg_latency);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = classic::torus2d(5);
        let a = run_uniform(&g, &light_cfg());
        let b = run_uniform(&g, &light_cfg());
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.avg_latency, b.avg_latency);
        assert_eq!(a.max_latency, b.max_latency);
    }
}
