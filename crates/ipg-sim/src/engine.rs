//! The synchronous simulation engine.
//!
//! Time advances in cycles. Each node owns one FIFO output queue per
//! outgoing link; a link forwards one packet every `service interval`
//! cycles (off-module links may be slower, modeling the §5.4 regime where
//! on-chip links run at a higher clock rate). Arriving packets are either
//! consumed (destination reached) or appended to the next output queue.
//! Injection is Bernoulli per node per cycle with uniform random
//! destinations.
//!
//! # Execution model: shards, mailboxes, and a two-phase cycle
//!
//! Nodes are partitioned into contiguous **shards** (a pure function of the
//! node count — never of the worker count). Each cycle runs as:
//!
//! 1. **Phase A** (parallel over shards): every node draws its injection
//!    Bernoulli from its private RNG stream and enqueues into its local
//!    link FIFO; every ready link launches its head packet into the
//!    shard's **outbox** as a plain-value message stamped with its arrival
//!    wheel slot.
//! 2. **Merge** (sequential): outboxes are drained in shard order and each
//!    message is appended to the *destination* shard's arrival wheel.
//!    Because outbox contents are in (node, link) order and shards are
//!    merged in index order, wheel-slot contents are identical for every
//!    worker count.
//! 3. **Phase B** (parallel over shards): each shard drains its own wheel
//!    slot for this cycle boundary — delivering packets (per-shard stat
//!    accumulators, atomic obs counters) or re-enqueueing them on the next
//!    local link FIFO.
//!
//! Randomness comes from [`crate::rng::node_stream`]: one counter-based
//! stream per node, so a node's draws depend only on `(seed, node id,
//! draw index)` — the engine is bit-identical for every `IPG_THREADS`,
//! including 1.
//!
//! # Flat data layout
//!
//! Queued packets live in a per-shard slab pool (struct-of-arrays: `dst`,
//! `born`, `tagged`, `next`); link FIFOs are intrusive lists threaded
//! through the pool's `next` array, and the arrival wheel and outboxes
//! recycle their buffers — so steady-state cycles perform no heap
//! allocation at all.
//!
//! # Sparse cycle kernel
//!
//! At low injection rates almost every dense per-cycle iteration visits
//! an idle node or an empty FIFO. The engine therefore runs **sparse by
//! default** (DESIGN.md §13):
//!
//! - injection decisions are drawn ahead of time in node-major chunks
//!   from the same per-node streams ([`crate::rng::InjectionSchedule`]),
//!   so each cycle touches only the nodes that actually inject — the
//!   draw sequence per node is unchanged, so results stay byte-identical
//!   to the dense loop;
//! - link service iterates a [`crate::worklist::Worklist`] of non-empty
//!   FIFOs in ascending link order (the relative order the dense loop
//!   visited them in), maintained by the `fifo_push`/`fifo_pop` helpers
//!   that every queue mutation — including fault drains — goes through;
//! - phase B's arrival wheel is indexed by slot already; occupancy
//!   counters make empty slots and the end-of-run `tagged_in_flight`
//!   accounting O(1).
//!
//! The dense iteration survives behind [`Simulator::set_dense`] (or
//! `IPG_DENSE_ENGINE=1`) as the byte-equality oracle for tests.
//!
//! # Routing
//!
//! The engine is generic over [`Router`]: the all-pairs [`RoutingTable`]
//! for arbitrary graphs (O(N²) memory, ≤ 65,536 nodes) or the arithmetic
//! [`ipg_core::tuple_routing::ShortestTupleRouter`] for super-IP networks
//! (O(1) memory per query), which lifts the node-count ceiling entirely.

use crate::fault::{FaultPlan, LocalFault, ShardFaults};
use crate::rng::{
    bernoulli, bernoulli_threshold, node_stream, InjectionSchedule, NodeRng, SCHEDULE_CHUNK,
};
use crate::router::Router;
use crate::table::RoutingTable;
use crate::worklist::Worklist;
use ipg_core::fault::FaultView;
use ipg_core::graph::Csr;
use ipg_obs::{Obs, ShardTracer, Trace, TraceConfig, ENGINE_TRACK};
use rand::Rng;

/// Destination selection for injected packets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Traffic {
    /// Uniformly random destination ≠ source.
    Uniform,
    /// Bit-complement permutation: `dst = !src` (requires a power-of-two
    /// node count). The classic worst case for dimension-ordered meshes.
    BitComplement,
    /// Transpose permutation: swap the low and high halves of the node-id
    /// bits (requires a power-of-two node count with an even bit width).
    Transpose,
    /// Hotspot: with probability `fraction`, send to `target`; otherwise
    /// uniform.
    Hotspot {
        /// Probability of addressing the hotspot.
        fraction: f64,
        /// The hotspot node.
        target: u32,
    },
}

/// Switching technique (paper §5 distinguishes packet switching from
/// wormhole/cut-through for its latency arguments).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Switching {
    /// Store-and-forward: a message is fully serialized at every hop
    /// (per-hop latency = interval × message_length).
    StoreForward,
    /// Virtual cut-through: the header advances after one service
    /// interval; the tail catches up once at the destination. Each link
    /// is still occupied for interval × message_length cycles.
    CutThrough,
}

/// Simulation parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Packets injected per node per cycle (Bernoulli probability).
    pub injection_rate: f64,
    /// Cycles before measurement starts.
    pub warmup_cycles: u32,
    /// Cycles during which injected packets are tagged for measurement.
    pub measure_cycles: u32,
    /// Extra cycles to let tagged packets drain.
    pub drain_cycles: u32,
    /// A link forwards one packet every this many cycles (≥ 1) when both
    /// endpoints share a module.
    pub on_module_interval: u32,
    /// Service interval of off-module links (≥ on_module_interval models
    /// slower off-chip signaling or narrower channels).
    pub off_module_interval: u32,
    /// RNG seed (simulations are deterministic given the seed; each node
    /// derives its own stream via [`crate::rng::node_stream`]).
    pub seed: u64,
    /// Message length in flits (scales per-link occupancy; with
    /// store-and-forward it also scales per-hop latency).
    pub message_length: u32,
    /// Store-and-forward or virtual cut-through.
    pub switching: Switching,
    /// Destination pattern.
    pub traffic: Traffic,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            injection_rate: 0.01,
            warmup_cycles: 1_000,
            measure_cycles: 4_000,
            drain_cycles: 20_000,
            on_module_interval: 1,
            off_module_interval: 1,
            seed: 0x5eed_1b9a_44c0_ffee,
            message_length: 1,
            switching: Switching::StoreForward,
            traffic: Traffic::Uniform,
        }
    }
}

/// Aggregated results of one run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimResult {
    /// Tagged packets injected during the measurement window.
    pub injected: u64,
    /// Tagged packets delivered before the run ended.
    pub delivered: u64,
    /// Packets delivered that were injected *outside* the measurement
    /// window (warmup or drain traffic): drained, but not measured.
    pub unmeasured_delivered: u64,
    /// Tagged packets still buffered when the run ended. Together with
    /// `delivered` and `dropped_unreachable` this accounts for every
    /// tagged injection:
    /// `injected == delivered + in_flight_at_end + dropped_unreachable`,
    /// so a shortfall in `delivered` is attributable to saturation
    /// backlog or to faults, not to packets silently vanishing with the
    /// measurement window.
    pub in_flight_at_end: u64,
    /// Tagged packets dropped because a fault campaign left them without
    /// a usable route: no next hop on the faulted graph, arrival at a
    /// dead node, or buffered at a node when it died. Always 0 without a
    /// fault plan.
    pub dropped_unreachable: u64,
    /// Mean latency (cycles) of delivered tagged packets.
    pub avg_latency: f64,
    /// Max latency of delivered tagged packets.
    pub max_latency: u32,
    /// Delivered tagged packets per node per cycle of the measurement
    /// window (the accepted throughput).
    pub throughput: f64,
    /// Total cycles simulated.
    pub cycles: u32,
}

/// Target nodes per shard; the shard count is `clamp(n / 128, 1, 64)` —
/// a pure function of the node count, so shard boundaries (and therefore
/// results) never depend on the worker count.
const SHARD_TARGET_NODES: usize = 128;
/// Upper bound on the shard count (matches the pool's chunk granularity).
const MAX_SHARDS: usize = 64;

/// Freelist / FIFO terminator in the packet pool and link queues.
const NIL: u32 = u32::MAX;

/// A packet in motion between shards: launched in Phase A, merged into the
/// destination shard's arrival wheel, consumed in Phase B. Crate-visible
/// because the distributed worker ships these between processes (encoded
/// by `dist::frame`) with exactly the in-process merge semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Msg {
    /// Node the packet is arriving at.
    pub(crate) to: u32,
    /// Final destination.
    pub(crate) dst: u32,
    /// Injection cycle.
    pub(crate) born: u32,
    /// Injected during the measurement window?
    pub(crate) tagged: bool,
    /// Arrival wheel slot (precomputed from launch cycle + head advance).
    pub(crate) slot: u32,
}

/// Slab pool of queued packets, struct-of-arrays. Link FIFOs are intrusive
/// lists threaded through `next`; freed slots form a freelist through the
/// same array, so steady-state alloc/free touches no allocator.
#[derive(Default)]
struct Pool {
    dst: Vec<u32>,
    born: Vec<u32>,
    tagged: Vec<bool>,
    next: Vec<u32>,
    free: u32,
    /// Slots currently allocated (the pool-occupancy telemetry gauge).
    live: u32,
}

impl Pool {
    fn reset(&mut self) {
        self.dst.clear();
        self.born.clear();
        self.tagged.clear();
        self.next.clear();
        self.free = NIL;
        self.live = 0;
    }

    #[inline]
    fn alloc(&mut self, dst: u32, born: u32, tagged: bool) -> u32 {
        self.live += 1;
        if self.free != NIL {
            let i = self.free;
            self.free = self.next[i as usize];
            self.dst[i as usize] = dst;
            self.born[i as usize] = born;
            self.tagged[i as usize] = tagged;
            self.next[i as usize] = NIL;
            i
        } else {
            let i = self.dst.len() as u32;
            self.dst.push(dst);
            self.born.push(born);
            self.tagged.push(tagged);
            self.next.push(NIL);
            i
        }
    }

    #[inline]
    fn release(&mut self, i: u32) {
        self.next[i as usize] = self.free;
        self.free = i;
        self.live -= 1;
    }
}

/// Per-link state, struct-of-arrays over the links owned by one shard.
#[derive(Default)]
pub(crate) struct Links {
    to: Vec<u32>,
    interval: Vec<u32>,
    next_free: Vec<u64>,
    qhead: Vec<u32>,
    qtail: Vec<u32>,
    qlen: Vec<u32>,
}

impl Links {
    fn len(&self) -> usize {
        self.to.len()
    }

    /// Rebuild link state from bare `to`/`interval` arrays, e.g. ones a
    /// distributed worker received over the frame protocol. Queues start
    /// empty, exactly as after a sequence of [`Links::push`] calls.
    pub(crate) fn from_arrays(to: Vec<u32>, interval: Vec<u32>) -> Links {
        debug_assert_eq!(to.len(), interval.len());
        let nl = to.len();
        Links {
            to,
            interval,
            next_free: vec![0; nl],
            qhead: vec![NIL; nl],
            qtail: vec![NIL; nl],
            qlen: vec![0; nl],
        }
    }

    #[inline]
    fn enqueue(&mut self, li: usize, p: u32, pool: &mut Pool) {
        if self.qtail[li] == NIL {
            self.qhead[li] = p;
        } else {
            pool.next[self.qtail[li] as usize] = p;
        }
        self.qtail[li] = p;
        self.qlen[li] += 1;
    }

    #[inline]
    fn dequeue(&mut self, li: usize, pool: &Pool) -> u32 {
        let p = self.qhead[li];
        self.qhead[li] = pool.next[p as usize];
        if self.qhead[li] == NIL {
            self.qtail[li] = NIL;
        }
        self.qlen[li] -= 1;
        p
    }
}

#[derive(Clone, Copy, Default)]
struct ShardStats {
    injected: u64,
    delivered: u64,
    unmeasured: u64,
    dropped: u64,
    latency_sum: u64,
    max_latency: u32,
}

/// One contiguous node range with everything its cycle work touches:
/// link FIFOs, packet pool, per-node RNG streams, outbox, arrival wheel.
/// Crate-visible so the distributed worker (`dist::worker`) can drive
/// the same phase-A/merge/phase-B machinery over its local shard range.
pub(crate) struct Shard {
    /// First global node id.
    pub(crate) base: u32,
    /// Nodes in this shard.
    pub(crate) node_count: u32,
    /// Per-node offsets into `links` (length `node_count + 1`).
    link_of: Vec<u32>,
    /// Local node index owning each link (the inverse of `link_of`).
    link_owner: Vec<u32>,
    links: Links,
    pool: Pool,
    rngs: Vec<NodeRng>,
    /// Chunked injection events precomputed from the node streams.
    sched: InjectionSchedule,
    /// Links with a non-empty FIFO. Iterated ascending by the phase-A
    /// service loop — the same relative order the dense `0..links` scan
    /// serviced them in, so launch sequences are byte-identical.
    active_links: Worklist,
    /// Scratch for snapshotting `active_links` while the loop mutates it.
    active_scratch: Vec<u32>,
    /// Per-node count of non-empty out-FIFOs; `busy_nodes` counts the
    /// entries > 0 (the O(1) `active_nodes` trace gauge).
    node_busy: Vec<u32>,
    busy_nodes: u32,
    /// O(1) occupancy counters: packets queued in FIFOs / waiting in the
    /// arrival wheel, total and tagged-only (the in-flight accounting).
    queued_total: u64,
    tagged_queued: u64,
    wheel_live: u64,
    tagged_wheel: u64,
    pub(crate) outbox: Vec<Msg>,
    wheel: Vec<Vec<Msg>>,
    stats: ShardStats,
    link_busy: Vec<u64>,
    queue_hw: Vec<u32>,
    /// This shard's slice of the run's fault plan (empty when no plan).
    faults: ShardFaults,
    /// Dead flags for the shard's outgoing links; empty when no plan is
    /// installed, so the healthy hot path pays one `is_empty` branch.
    link_dead: Vec<bool>,
    /// Flight-recorder emitter for this shard (`None` when tracing is
    /// off). Owned by the shard, so tracing in the parallel phases is
    /// lock-free; events carry only computation-derived payloads, so
    /// simulation state and results are untouched (DESIGN.md §11).
    pub(crate) tracer: Option<ShardTracer>,
}

/// Delivery-side observability handles shared by every shard in phase B.
/// Counters and histograms are atomic, so concurrent updates from worker
/// threads commute and barrier-time values stay deterministic.
pub(crate) struct DeliveryObs {
    delivered: ipg_obs::Counter,
    unmeasured: ipg_obs::Counter,
    latency: ipg_obs::Histogram,
}

impl DeliveryObs {
    /// Register (or re-attach to) the delivery metrics on `obs`. Name
    /// set must stay in lockstep between the in-process engine and the
    /// distributed worker so merged registries line up.
    pub(crate) fn attach(obs: &Obs) -> DeliveryObs {
        DeliveryObs {
            delivered: obs.counter("engine.delivered_tagged"),
            unmeasured: obs.counter("engine.delivered_unmeasured"),
            latency: obs.histogram("engine.latency_cycles"),
        }
    }
}

/// Parameters of one run, copied into every shard closure.
#[derive(Clone, Copy)]
pub(crate) struct RunParams {
    n: u32,
    injection_rate: f64,
    /// `rng::bernoulli_threshold(injection_rate)`, precomputed once: the
    /// injection draw is the single hottest RNG site in the engine.
    inj_threshold: u64,
    traffic: Traffic,
    msg_len: u32,
    store_forward: bool,
    tag_lo: u32,
    tag_hi: u32,
    pub(crate) wheel_len: u32,
    tail_penalty: u32,
    pub(crate) total_cycles: u32,
    /// Dense-oracle mode: iterate every node and link as the pre-sparse
    /// engine did. Byte-identical to the sparse path by construction;
    /// kept as the equality oracle (`IPG_DENSE_ENGINE=1` / `set_dense`).
    dense: bool,
}

/// Derive one run's [`RunParams`] from the config. `max_interval` must
/// be the **global** maximum link service interval of the whole network
/// — a distributed worker receives it from the coordinator rather than
/// computing it from its local shard range, or wheel geometry (and
/// therefore arrival timing) would diverge between processes.
pub(crate) fn cycle_params(n: u32, cfg: &SimConfig, max_interval: u32, dense: bool) -> RunParams {
    let msg_len = cfg.message_length.max(1);
    // Arrival wheel: one slot per possible head-advance value. A link
    // with service interval k serves one message per k·L cycles; the
    // head advances after k (cut-through) or k·L (store-and-forward)
    // cycles — slow off-module signaling, §5.4.
    let wheel_len = max_interval * msg_len + 1;
    RunParams {
        n,
        injection_rate: cfg.injection_rate,
        inj_threshold: bernoulli_threshold(cfg.injection_rate),
        traffic: cfg.traffic,
        msg_len,
        store_forward: cfg.switching == Switching::StoreForward,
        tag_lo: cfg.warmup_cycles,
        tag_hi: cfg.warmup_cycles + cfg.measure_cycles,
        wheel_len,
        // Cut-through: the tail catches up with the header once, at
        // the destination.
        tail_penalty: match cfg.switching {
            Switching::StoreForward => 0,
            Switching::CutThrough => (msg_len - 1) * cfg.on_module_interval,
        },
        total_cycles: cfg.warmup_cycles + cfg.measure_cycles + cfg.drain_cycles,
        dense,
    }
}

/// Per-run totals folded from shard stat accumulators. The distributed
/// worker ships these in its final frame; the coordinator absorbs every
/// worker's totals and converts the sum to a [`SimResult`] with exactly
/// the in-process arithmetic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct RunTotals {
    pub(crate) injected: u64,
    pub(crate) delivered: u64,
    pub(crate) unmeasured: u64,
    pub(crate) dropped: u64,
    pub(crate) latency_sum: u64,
    pub(crate) max_latency: u32,
    pub(crate) in_flight: u64,
}

impl RunTotals {
    /// Sum the per-shard accumulators (and O(1) in-flight counters).
    pub(crate) fn fold_shards(shards: &[Shard]) -> RunTotals {
        let mut t = RunTotals::default();
        for sh in shards {
            t.injected += sh.stats.injected;
            t.delivered += sh.stats.delivered;
            t.unmeasured += sh.stats.unmeasured;
            t.dropped += sh.stats.dropped;
            t.latency_sum += sh.stats.latency_sum;
            t.max_latency = t.max_latency.max(sh.stats.max_latency);
            t.in_flight += sh.tagged_in_flight();
        }
        t
    }

    /// Fold another total in (coordinator-side aggregation).
    pub(crate) fn absorb(&mut self, o: &RunTotals) {
        self.injected += o.injected;
        self.delivered += o.delivered;
        self.unmeasured += o.unmeasured;
        self.dropped += o.dropped;
        self.latency_sum += o.latency_sum;
        self.max_latency = self.max_latency.max(o.max_latency);
        self.in_flight += o.in_flight;
    }

    /// The [`SimResult`] these totals describe.
    pub(crate) fn into_sim_result(
        self,
        n: u64,
        measure_cycles: u32,
        total_cycles: u32,
    ) -> SimResult {
        SimResult {
            injected: self.injected,
            delivered: self.delivered,
            unmeasured_delivered: self.unmeasured,
            in_flight_at_end: self.in_flight,
            dropped_unreachable: self.dropped,
            avg_latency: if self.delivered == 0 {
                0.0
            } else {
                self.latency_sum as f64 / self.delivered as f64
            },
            max_latency: self.max_latency,
            throughput: self.delivered as f64 / (n as f64 * f64::from(measure_cycles)),
            cycles: total_cycles,
        }
    }
}

/// End-of-run link telemetry: fold per-link busy/high-water figures into
/// the utilization histograms and gauges, plus the in-flight and link
/// totals. Shared by the in-process track block and the distributed
/// worker (whose local registry ships to the coordinator), so metric
/// names and observation sequences match exactly.
pub(crate) fn fold_link_telemetry(
    shards: &[Shard],
    obs: &Obs,
    totals: &RunTotals,
    total_cycles: u32,
) {
    obs.counter("engine.in_flight_at_end").add(totals.in_flight);
    let links_total: usize = shards.iter().map(|s| s.links.len()).sum();
    obs.counter("engine.links").add(links_total as u64);
    let h_util = obs.histogram("engine.link_utilization_pct");
    let g_util = obs.gauge("engine.link_utilization_max_pct");
    let h_qhw = obs.histogram("engine.queue_depth_high_water");
    let g_qhw = obs.gauge("engine.queue_depth_max");
    for sh in shards {
        for (busy, hw) in sh.link_busy.iter().zip(&sh.queue_hw) {
            let pct = (busy * 100 / u64::from(total_cycles.max(1))).min(100);
            h_util.observe(pct);
            g_util.record_max(pct);
            h_qhw.observe(u64::from(*hw));
            g_qhw.record_max(u64::from(*hw));
        }
    }
}

impl Shard {
    /// Construct a quiescent shard over `[base, base + node_count)` from
    /// its per-node link offsets and link arrays. `link_owner` is derived
    /// from `link_of`; all run state starts empty until
    /// [`Shard::prepare_run`]. Used by both the in-process constructor
    /// and the distributed worker (which receives `link_of`/links over
    /// the frame protocol instead of walking a CSR).
    pub(crate) fn assemble(base: u32, node_count: u32, link_of: Vec<u32>, links: Links) -> Shard {
        debug_assert_eq!(link_of.len(), node_count as usize + 1);
        let nl = links.len();
        let mut link_owner = Vec::with_capacity(nl);
        for local in 0..node_count as usize {
            for _ in link_of[local]..link_of[local + 1] {
                link_owner.push(local as u32);
            }
        }
        debug_assert_eq!(link_owner.len(), nl);
        Shard {
            base,
            node_count,
            link_of,
            link_owner,
            links,
            pool: Pool {
                free: NIL,
                ..Pool::default()
            },
            rngs: Vec::new(),
            sched: InjectionSchedule::default(),
            active_links: Worklist::new(nl),
            active_scratch: Vec::new(),
            node_busy: vec![0u32; node_count as usize],
            busy_nodes: 0,
            queued_total: 0,
            tagged_queued: 0,
            wheel_live: 0,
            tagged_wheel: 0,
            outbox: Vec::new(),
            wheel: Vec::new(),
            stats: ShardStats::default(),
            link_busy: Vec::new(),
            queue_hw: Vec::new(),
            faults: ShardFaults::default(),
            link_dead: Vec::new(),
            tracer: None,
        }
    }

    /// Reset every piece of run state for a fresh run: FIFOs, pool,
    /// per-node RNG streams, worklists, occupancy counters, wheel
    /// geometry, telemetry arrays, the shard's fault slice, and the
    /// tracer. `track_id` is the tracer's track number — the shard's
    /// **global** shard index, which equals the local index in-process
    /// but not in a distributed worker that owns shards `[lo, hi)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn prepare_run(
        &mut self,
        seed: u64,
        wheel_len: u32,
        track: bool,
        track_links: bool,
        plan: Option<&FaultPlan>,
        trace: Option<&TraceConfig>,
        track_id: u16,
    ) {
        let nl = self.links.len();
        for li in 0..nl {
            self.links.next_free[li] = 0;
            self.links.qhead[li] = NIL;
            self.links.qtail[li] = NIL;
            self.links.qlen[li] = 0;
        }
        self.pool.reset();
        self.rngs = (self.base..self.base + self.node_count)
            .map(|v| node_stream(seed, v))
            .collect();
        self.sched.reset();
        self.active_links.clear();
        self.active_scratch.clear();
        self.node_busy.fill(0);
        self.busy_nodes = 0;
        self.queued_total = 0;
        self.tagged_queued = 0;
        self.wheel_live = 0;
        self.tagged_wheel = 0;
        self.outbox.clear();
        self.wheel.clear();
        self.wheel.resize_with(wheel_len as usize, Vec::new);
        self.stats = ShardStats::default();
        self.link_busy = vec![0u64; if track_links { nl } else { 0 }];
        self.queue_hw = vec![0u32; if track { nl } else { 0 }];
        self.link_dead = vec![false; if plan.is_some() { nl } else { 0 }];
        self.faults = match plan {
            Some(p) => p.shard_events(self.base, self.node_count, |u, v| {
                self.link_toward(u, v) as u32
            }),
            None => ShardFaults::default(),
        };
        self.tracer = trace.map(|tc| {
            let mut t = ShardTracer::new(track_id, tc);
            t.init_links(nl);
            t
        });
    }

    /// Append one merged arrival to the wheel, maintaining the occupancy
    /// counters. The only sanctioned wheel insertion — both the
    /// in-process merge and the distributed worker's arrival absorption
    /// go through it, so in-flight accounting can never desync.
    #[inline]
    pub(crate) fn wheel_push(&mut self, msg: Msg) {
        self.wheel[msg.slot as usize].push(msg);
        self.wheel_live += 1;
        if msg.tagged {
            self.tagged_wheel += 1;
        }
    }

    fn link_toward(&self, u: u32, v: u32) -> usize {
        let local = (u - self.base) as usize;
        let lo = self.link_of[local] as usize;
        let hi = self.link_of[local + 1] as usize;
        for i in lo..hi {
            if self.links.to[i] == v {
                return i;
            }
        }
        // ipg-analyze: allow(PANIC001) reason="routers only emit neighbors; reaching here is a router bug"
        panic!("next hop {v} is not a neighbor of {u}");
    }

    /// Enqueue pool slot `p` on link `li`. The only sanctioned FIFO push:
    /// it keeps the active-link worklist, the per-node busy counts, and
    /// the queued-occupancy counters in lockstep with the queue state
    /// (the DESIGN.md §13 activation invariant).
    #[inline]
    fn fifo_push(&mut self, li: usize, p: u32) {
        self.links.enqueue(li, p, &mut self.pool);
        self.queued_total += 1;
        if self.pool.tagged[p as usize] {
            self.tagged_queued += 1;
        }
        if self.links.qlen[li] == 1 {
            self.active_links.insert(li as u32);
            let owner = self.link_owner[li] as usize;
            self.node_busy[owner] += 1;
            if self.node_busy[owner] == 1 {
                self.busy_nodes += 1;
            }
        }
    }

    /// Dequeue the head of link `li` (must be non-empty). The only
    /// sanctioned FIFO pop — see [`Shard::fifo_push`].
    #[inline]
    fn fifo_pop(&mut self, li: usize) -> u32 {
        let p = self.links.dequeue(li, &self.pool);
        self.queued_total -= 1;
        if self.pool.tagged[p as usize] {
            self.tagged_queued -= 1;
        }
        if self.links.qlen[li] == 0 {
            self.active_links.remove(li as u32);
            let owner = self.link_owner[li] as usize;
            self.node_busy[owner] -= 1;
            if self.node_busy[owner] == 0 {
                self.busy_nodes -= 1;
            }
        }
        p
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn accept<R: Router + ?Sized>(
        &mut self,
        at: u32,
        dst: u32,
        born: u32,
        tagged: bool,
        router: &R,
        fv: Option<&FaultView>,
        c_dropped: &ipg_obs::Counter,
    ) {
        let hop = match fv {
            Some(view) => router.next_hop_faulted(at, dst, view),
            None => router.next_hop(at, dst),
        };
        let hop = match hop {
            Some(h) => h,
            // Under a fault campaign, "no usable hop" is an accounted
            // outcome, not a bug: the packet is dropped as unreachable.
            None if fv.is_some() => {
                self.drop_packet(tagged, c_dropped);
                return;
            }
            // ipg-analyze: allow(PANIC001) reason="simulated graphs are connected; an unroutable destination is a construction bug"
            None => panic!("no route from {at} to {dst}"),
        };
        let li = self.link_toward(at, hop);
        let p = self.pool.alloc(dst, born, tagged);
        self.fifo_push(li, p);
        if !self.queue_hw.is_empty() {
            self.queue_hw[li] = self.queue_hw[li].max(self.links.qlen[li]);
        }
    }

    /// Account one packet lost to the fault campaign. Tagged drops feed
    /// the `SimResult` conservation invariant; the counter sees every
    /// drop.
    #[inline]
    fn drop_packet(&mut self, tagged: bool, c_dropped: &ipg_obs::Counter) {
        if tagged {
            self.stats.dropped += 1;
        }
        c_dropped.incr();
    }

    /// Apply one local kill. Dead links re-route their queued packets at
    /// the owning node through the already-updated fault view (adaptive
    /// routers sidestep; oblivious routers re-strand them); a dying node
    /// takes its buffered packets down with it.
    fn apply_fault<R: Router + ?Sized>(
        &mut self,
        f: LocalFault,
        router: &R,
        view: &FaultView,
        c_dropped: &ipg_obs::Counter,
    ) {
        match f {
            LocalFault::Link(li) => {
                let li = li as usize;
                if self.link_dead[li] {
                    return;
                }
                self.link_dead[li] = true;
                let owner =
                    self.base + (self.link_of.partition_point(|&o| o as usize <= li) - 1) as u32;
                // ipg-analyze: allow(ALLOC001) reason="fault application runs once per injected fault event, not per cycle; orphan list is bounded by the dead link's queue"
                let mut orphans = Vec::new();
                while self.links.qhead[li] != NIL {
                    let p = self.fifo_pop(li);
                    let i = p as usize;
                    orphans.push((self.pool.dst[i], self.pool.born[i], self.pool.tagged[i]));
                    self.pool.release(p);
                }
                for (dst, born, tagged) in orphans {
                    self.accept(owner, dst, born, tagged, router, Some(view), c_dropped);
                }
            }
            LocalFault::Node(local) => {
                let lo = self.link_of[local as usize] as usize;
                let hi = self.link_of[local as usize + 1] as usize;
                for li in lo..hi {
                    self.link_dead[li] = true;
                    while self.links.qhead[li] != NIL {
                        let p = self.fifo_pop(li);
                        let tagged = self.pool.tagged[p as usize];
                        self.pool.release(p);
                        self.drop_packet(tagged, c_dropped);
                    }
                }
            }
        }
    }

    /// Shared injection tail for the dense and scheduled paths: stat and
    /// counter updates plus routing the new packet into a FIFO.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn inject_one<R: Router + ?Sized>(
        &mut self,
        src: u32,
        dst: u32,
        cycle: u32,
        pr: &RunParams,
        router: &R,
        fv: Option<&FaultView>,
        c_injected: &ipg_obs::Counter,
        c_injected_all: &ipg_obs::Counter,
        c_dropped: &ipg_obs::Counter,
    ) {
        let tagged = cycle >= pr.tag_lo && cycle < pr.tag_hi;
        if tagged {
            self.stats.injected += 1;
            c_injected.incr();
        }
        c_injected_all.incr();
        self.accept(src, dst, cycle, tagged, router, fv, c_dropped);
    }

    /// Serve link `li`: if it is alive, free, and non-empty, launch its
    /// head packet into the outbox stamped with its arrival wheel slot.
    #[inline]
    fn launch(&mut self, li: usize, cycle: u32, pr: &RunParams) {
        if !self.link_dead.is_empty() && self.link_dead[li] {
            return; // dead links refuse launches
        }
        if self.links.next_free[li] <= u64::from(cycle) && self.links.qhead[li] != NIL {
            let p = self.fifo_pop(li);
            let occupancy = u64::from(self.links.interval[li]) * u64::from(pr.msg_len);
            // occupancy: the whole message crosses the link
            self.links.next_free[li] = u64::from(cycle) + occupancy;
            if !self.link_busy.is_empty() {
                self.link_busy[li] += occupancy;
            }
            // forward progress of the head
            let advance = if pr.store_forward {
                self.links.interval[li] * pr.msg_len
            } else {
                self.links.interval[li]
            };
            let slot = (cycle + advance) % pr.wheel_len;
            self.outbox.push(Msg {
                to: self.links.to[li],
                dst: self.pool.dst[p as usize],
                born: self.pool.born[p as usize],
                tagged: self.pool.tagged[p as usize],
                slot,
            });
            self.pool.release(p);
        }
    }

    /// Phase A: apply kills due this cycle (plan order), then injection
    /// (node order), then link service (link order), launching departures
    /// into the local outbox. Counter updates are atomic adds,
    /// order-independent across shards. Sparse by default: injection
    /// comes off the chunked schedule, service off the active-link
    /// worklist; `pr.dense` re-enables the full scans as the oracle.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn phase_a<R: Router + ?Sized>(
        &mut self,
        cycle: u32,
        pr: &RunParams,
        router: &R,
        fv: Option<&FaultView>,
        c_injected: &ipg_obs::Counter,
        c_injected_all: &ipg_obs::Counter,
        c_dropped: &ipg_obs::Counter,
    ) {
        if let Some(view) = fv {
            while let Some(f) = self.faults.next_due(cycle) {
                self.apply_fault(f, router, view, c_dropped);
            }
        }
        let mut injected_now = 0u32;
        if pr.dense {
            for local in 0..self.node_count {
                let src = self.base + local;
                if fv.is_some_and(|view| view.node_dead(src)) {
                    continue; // dead nodes neither draw nor inject
                }
                let inject = bernoulli(&mut self.rngs[local as usize], pr.inj_threshold);
                if !inject {
                    continue;
                }
                let Some(dst) =
                    pick_destination(pr.n, src, pr.traffic, &mut self.rngs[local as usize])
                else {
                    continue;
                };
                injected_now += 1;
                self.inject_one(
                    src,
                    dst,
                    cycle,
                    pr,
                    router,
                    fv,
                    c_injected,
                    c_injected_all,
                    c_dropped,
                );
            }
        } else {
            if self.sched.needs_refill(cycle) {
                // Node-major chunk refill: replays the dense per-node draw
                // sequence exactly (see [`InjectionSchedule`]).
                let base = self.base;
                let (n, traffic) = (pr.n, pr.traffic);
                self.sched.refill(
                    cycle..cycle + SCHEDULE_CHUNK.min(pr.total_cycles - cycle),
                    self.node_count,
                    pr.injection_rate,
                    &mut self.rngs,
                    |local| fv.is_some_and(|view| view.node_dead(base + local)),
                    |local, rng| pick_destination(n, base + local, traffic, rng),
                );
            }
            // Index iteration: `inject_one` needs `&mut self` while the
            // due bucket borrows `self.sched`.
            for i in 0..self.sched.due(cycle).len() {
                let (local, dst) = self.sched.due(cycle)[i];
                let src = self.base + local;
                if fv.is_some_and(|view| view.node_dead(src)) {
                    continue; // died mid-chunk: the dense loop skips too
                }
                injected_now += 1;
                self.inject_one(
                    src,
                    dst,
                    cycle,
                    pr,
                    router,
                    fv,
                    c_injected,
                    c_injected_all,
                    c_dropped,
                );
            }
        }
        if pr.dense {
            for li in 0..self.links.len() {
                self.launch(li, cycle, pr);
            }
        } else {
            // Snapshot the non-empty links in ascending order — the same
            // relative order the dense scan serviced them in. A launch can
            // only *empty* a local FIFO (arrivals land via the wheel next
            // phase), so the snapshot covers every link with work.
            let mut scratch = std::mem::take(&mut self.active_scratch);
            scratch.clear();
            self.active_links.collect_into(&mut scratch);
            for &li in &scratch {
                self.launch(li as usize, cycle, pr);
            }
            self.active_scratch = scratch;
        }
        let launched = self.outbox.len() as u64;
        if let Some(t) = self.tracer.as_mut() {
            if t.sampled(u64::from(cycle)) {
                t.phase_a(u64::from(cycle), injected_now, launched as u32);
                t.outbox_depth(u64::from(cycle), launched);
                t.link_util(u64::from(cycle), &self.link_busy);
                t.worklist(
                    u64::from(cycle),
                    self.active_links.len(),
                    self.busy_nodes,
                    self.queued_total,
                );
            }
        }
    }

    /// Phase B: drain this cycle boundary's arrival wheel slot — deliver
    /// or re-enqueue. Counter/histogram updates are atomic adds, so their
    /// end-of-phase values are independent of shard interleaving.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn phase_b<R: Router + ?Sized>(
        &mut self,
        cycle: u32,
        slot: usize,
        pr: &RunParams,
        router: &R,
        fv: Option<&FaultView>,
        dobs: &DeliveryObs,
        c_dropped: &ipg_obs::Counter,
    ) {
        let sampling = self
            .tracer
            .as_ref()
            .is_some_and(|t| t.sampled(u64::from(cycle)));
        if !sampling && self.wheel[slot].is_empty() {
            return; // O(1) skip: nothing arrives at this boundary
        }
        let msgs = std::mem::take(&mut self.wheel[slot]);
        self.wheel_live -= msgs.len() as u64;
        let mut delivered_now = 0u32;
        for msg in &msgs {
            if msg.tagged {
                self.tagged_wheel -= 1;
            }
            if fv.is_some_and(|view| view.node_dead(msg.to)) {
                // dead nodes neither deliver nor forward
                self.drop_packet(msg.tagged, c_dropped);
                continue;
            }
            if msg.to == msg.dst {
                delivered_now += 1;
                if msg.tagged {
                    self.stats.delivered += 1;
                    let lat = cycle + 1 - msg.born + pr.tail_penalty;
                    self.stats.latency_sum += u64::from(lat);
                    self.stats.max_latency = self.stats.max_latency.max(lat);
                    dobs.delivered.incr();
                    dobs.latency.observe(u64::from(lat));
                } else {
                    self.stats.unmeasured += 1;
                    dobs.unmeasured.incr();
                }
            } else {
                self.accept(msg.to, msg.dst, msg.born, msg.tagged, router, fv, c_dropped);
            }
        }
        let drained = msgs.len() as u32;
        // return the drained buffer so steady-state cycles don't allocate
        let mut buf = msgs;
        buf.clear();
        self.wheel[slot] = buf;
        if sampling {
            if let Some(t) = self.tracer.as_mut() {
                let c = u64::from(cycle);
                t.phase_b(c, drained, delivered_now);
                // Gauges read the O(1) occupancy counters the fifo
                // helpers and the wheel merge maintain; only the
                // deepest-queue probe walks anything, and only the
                // links that actually hold packets.
                t.active_nodes(c, u64::from(self.busy_nodes));
                t.pool_occupancy(c, u64::from(self.pool.live));
                t.wheel_depth(c, self.wheel_live);
                let mut deepest = 0u32;
                self.active_links
                    .for_each(|li| deepest = deepest.max(self.links.qlen[li as usize]));
                t.queue_depth(c, deepest, self.queued_total);
            }
        }
    }

    /// Tagged packets still buffered (link FIFOs or the arrival wheel).
    /// O(1): reads the occupancy counters maintained by the fifo helpers
    /// and the wheel merge instead of re-walking every FIFO and slot.
    pub(crate) fn tagged_in_flight(&self) -> u64 {
        self.tagged_queued + self.tagged_wheel
    }
}

/// Pick a destination for a packet injected at `src` (None when the
/// pattern maps `src` to itself). Draws only from `src`'s own stream.
fn pick_destination(n: u32, src: u32, traffic: Traffic, rng: &mut NodeRng) -> Option<u32> {
    let uniform = |rng: &mut NodeRng| {
        let mut dst = rng.gen_range(0..n - 1);
        if dst >= src {
            dst += 1;
        }
        dst
    };
    match traffic {
        Traffic::Uniform => Some(uniform(rng)),
        Traffic::BitComplement => {
            assert!(n.is_power_of_two(), "bit-complement needs 2^k nodes");
            let dst = !src & (n - 1);
            (dst != src).then_some(dst)
        }
        Traffic::Transpose => {
            assert!(n.is_power_of_two(), "transpose needs 2^k nodes");
            let bits = n.trailing_zeros();
            assert!(bits % 2 == 0, "transpose needs an even bit width");
            let half = bits / 2;
            let lo = src & ((1 << half) - 1);
            let hi = src >> half;
            let dst = (lo << half) | hi;
            (dst != src).then_some(dst)
        }
        Traffic::Hotspot { fraction, target } => {
            if rng.gen::<f64>() < fraction && target != src {
                Some(target)
            } else {
                Some(uniform(rng))
            }
        }
    }
}

/// The simulator: a network sharded into contiguous node ranges plus a
/// [`Router`] answering next-hop queries.
pub struct Simulator<R: Router = RoutingTable> {
    n: usize,
    router: R,
    shard_size: u32,
    shards: Vec<Shard>,
    max_interval: u32,
    plan: Option<FaultPlan>,
    /// Dense-oracle mode (see [`Simulator::set_dense`]).
    dense: bool,
}

/// Honor the `IPG_DENSE_ENGINE` escape hatch: any non-empty value other
/// than `0` selects the dense oracle iteration for new simulators (both
/// the packet engine and [`crate::wormhole::WormholeSim`]).
pub(crate) fn dense_from_env() -> bool {
    std::env::var_os("IPG_DENSE_ENGINE").is_some_and(|v| !v.is_empty() && v != "0")
}

/// The deterministic shard layout: `(shard_count, shard_size)` as a pure
/// function of the node count — never of worker count or host state, so
/// shard boundaries (and therefore results) are identical in-process and
/// across any distributed worker split.
pub(crate) fn shard_layout(n: usize) -> (usize, u32) {
    let shard_count = (n / SHARD_TARGET_NODES).clamp(1, MAX_SHARDS);
    let shard_size = n.div_ceil(shard_count).max(1) as u32;
    (shard_count, shard_size)
}

/// Flatten one shard's outgoing links from the graph: per-node offsets
/// plus `(to, interval)` arrays in (node, neighbor) order, exactly the
/// order the cycle loops service them in. The distributed coordinator
/// uses this to ship link data to workers so they never materialize the
/// full CSR.
pub(crate) fn shard_link_arrays(
    g: &Csr,
    module: impl Fn(u32) -> u32,
    cfg: &SimConfig,
    base: u32,
    node_count: u32,
) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut link_of = Vec::with_capacity(node_count as usize + 1);
    link_of.push(0u32);
    let mut to = Vec::new();
    let mut interval = Vec::new();
    for u in base..base + node_count {
        for &v in g.neighbors(u) {
            let iv = if module(u) == module(v) {
                cfg.on_module_interval
            } else {
                cfg.off_module_interval
            }
            .max(1);
            to.push(v);
            interval.push(iv);
        }
        link_of.push(to.len() as u32);
    }
    (link_of, to, interval)
}

impl Simulator<RoutingTable> {
    /// Build a simulator for graph `g`. `module(u)` gives each node's
    /// module id (used to classify links as on-/off-module).
    pub fn new(g: &Csr, module: impl Fn(u32) -> u32, cfg: &SimConfig) -> Self {
        Self::new_instrumented(g, module, cfg, &Obs::disabled())
    }

    /// [`Simulator::new`] with observability for the routing-table build.
    pub fn new_instrumented(
        g: &Csr,
        module: impl Fn(u32) -> u32,
        cfg: &SimConfig,
        obs: &Obs,
    ) -> Self {
        let table = RoutingTable::new_instrumented(g, obs);
        Self::with_router(table, g, module, cfg)
    }
}

impl<R: Router> Simulator<R> {
    /// Build a simulator around an arbitrary [`Router`] — e.g. a
    /// [`ipg_core::tuple_routing::ShortestTupleRouter`] for super-IP
    /// networks too large for the all-pairs table. `router` must answer
    /// queries over exactly `g`'s node-id space.
    pub fn with_router(router: R, g: &Csr, module: impl Fn(u32) -> u32, cfg: &SimConfig) -> Self {
        let n = g.node_count();
        let (shard_count, shard_size) = shard_layout(n);
        let mut shards = Vec::with_capacity(shard_count);
        let mut max_interval = 1u32;
        let mut base = 0u32;
        while (base as usize) < n {
            let node_count = shard_size.min(n as u32 - base);
            let (link_of, to, interval) = shard_link_arrays(g, &module, cfg, base, node_count);
            for &iv in &interval {
                max_interval = max_interval.max(iv);
            }
            shards.push(Shard::assemble(
                base,
                node_count,
                link_of,
                Links::from_arrays(to, interval),
            ));
            base += node_count;
        }
        Simulator {
            n,
            router,
            shard_size,
            shards,
            max_interval,
            plan: None,
            dense: dense_from_env(),
        }
    }

    /// Select the dense oracle iteration (`true`) or the default sparse
    /// kernel (`false`) for subsequent runs. The two are byte-identical
    /// in every observable — results, obs records, traces — by the
    /// DESIGN.md §13 activation invariant; the dense path survives as the
    /// equality oracle for tests and benchmarks. `IPG_DENSE_ENGINE=1`
    /// sets the same flag at construction time.
    pub fn set_dense(&mut self, dense: bool) {
        self.dense = dense;
    }

    /// Recompute every sparse-kernel counter and worklist bit from the
    /// underlying queue state and assert they agree — the DESIGN.md §13
    /// activation invariant, checked the expensive way. Test-only
    /// plumbing (proptests call it after each run); hidden from docs.
    #[doc(hidden)]
    pub fn validate_sparse_state(&self) {
        for (si, sh) in self.shards.iter().enumerate() {
            let mut queued = 0u64;
            let mut tagged_q = 0u64;
            let mut busy = vec![0u32; sh.node_count as usize];
            let mut active = 0u32;
            for li in 0..sh.links.len() {
                let ql = sh.links.qlen[li];
                assert_eq!(
                    sh.active_links.contains(li as u32),
                    ql > 0,
                    "shard {si}: worklist bit desynced from link {li} (qlen {ql})"
                );
                if ql > 0 {
                    busy[sh.link_owner[li] as usize] += 1;
                    active += 1;
                }
                let mut p = sh.links.qhead[li];
                let mut walked = 0u32;
                while p != NIL {
                    queued += 1;
                    if sh.pool.tagged[p as usize] {
                        tagged_q += 1;
                    }
                    walked += 1;
                    p = sh.pool.next[p as usize];
                }
                assert_eq!(walked, ql, "shard {si}: qlen desynced on link {li}");
            }
            assert_eq!(queued, sh.queued_total, "shard {si}: queued_total");
            assert_eq!(tagged_q, sh.tagged_queued, "shard {si}: tagged_queued");
            assert_eq!(busy, sh.node_busy, "shard {si}: node_busy");
            assert_eq!(
                busy.iter().filter(|&&b| b > 0).count() as u32,
                sh.busy_nodes,
                "shard {si}: busy_nodes"
            );
            assert_eq!(active, sh.active_links.len(), "shard {si}: worklist len");
            let wl: u64 = sh.wheel.iter().map(|s| s.len() as u64).sum();
            assert_eq!(wl, sh.wheel_live, "shard {si}: wheel_live");
            let tw = sh.wheel.iter().flatten().filter(|m| m.tagged).count() as u64;
            assert_eq!(tw, sh.tagged_wheel, "shard {si}: tagged_wheel");
        }
    }

    /// The router driving next-hop decisions.
    pub fn router(&self) -> &R {
        &self.router
    }

    /// Install (or clear) a compiled [`FaultPlan`] for subsequent runs.
    /// With a plan installed, routing goes through
    /// [`Router::next_hop_faulted`] and unroutable packets are accounted
    /// in [`SimResult::dropped_unreachable`] instead of panicking.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        if let Some(p) = &plan {
            assert!(
                p.node_count() as usize == self.n,
                "fault plan compiled for {} nodes but the network has {}",
                p.node_count(),
                self.n
            );
        }
        self.plan = plan;
    }

    /// Run the simulation and collect statistics.
    pub fn run(&mut self, cfg: &SimConfig) -> SimResult {
        self.run_instrumented(cfg, &Obs::disabled(), 0)
    }

    /// [`Simulator::run`] with observability. When `obs` is enabled the
    /// run emits phase spans (`run/warmup`, `run/measure`, `run/drain`),
    /// packet counters, a tagged-latency histogram, per-link utilization
    /// and queue-depth high-water histograms, and — when `window > 0` —
    /// a `window` metrics snapshot every `window` cycles. A disabled
    /// `obs` makes this identical to [`Simulator::run`].
    pub fn run_instrumented(&mut self, cfg: &SimConfig, obs: &Obs, window: u32) -> SimResult {
        self.run_traced(cfg, obs, window, None).0
    }

    /// [`Simulator::run_instrumented`] plus flight-recorder tracing.
    /// When `trace` is set, every shard records sampled phase/gauge
    /// events into a pre-allocated ring (see [`ipg_obs::trace`]) and the
    /// drained [`Trace`] is returned alongside the result. Tracing
    /// reads simulation state but never writes it: the [`SimResult`]
    /// and all deterministic obs records are byte-identical with
    /// tracing on, off, and across `IPG_THREADS`.
    pub fn run_traced(
        &mut self,
        cfg: &SimConfig,
        obs: &Obs,
        window: u32,
        trace: Option<&TraceConfig>,
    ) -> (SimResult, Option<Trace>) {
        let run_span = obs.span("run");
        let c_injected = obs.counter("engine.injected_tagged");
        let c_injected_all = obs.counter("engine.injected_total");
        let c_dropped = obs.counter("engine.dropped_unreachable");
        let dobs = DeliveryObs::attach(obs);
        let track = obs.enabled();

        let total_cycles = cfg.warmup_cycles + cfg.measure_cycles + cfg.drain_cycles;
        let pr = cycle_params(self.n as u32, cfg, self.max_interval, self.dense);
        let wheel_len = pr.wheel_len;

        // Link-busy accounting feeds both the end-of-run utilization
        // histograms (obs) and the sampled link-utilization trace
        // events, so it is kept when either consumer is active.
        let track_links = track || trace.is_some();
        let plan = self.plan.as_ref();
        for (si, sh) in self.shards.iter_mut().enumerate() {
            sh.prepare_run(
                cfg.seed,
                wheel_len,
                track,
                track_links,
                plan,
                trace,
                si as u16,
            );
        }
        let mut engine_tracer = trace.map(|tc| ShardTracer::new(ENGINE_TRACK, tc));

        let shard_size = self.shard_size;
        let router = &self.router;
        // The fault view is mutated only here, sequentially, between
        // parallel phases: workers always read a settled view, so fault
        // application order can never depend on the worker count.
        let mut view = FaultView::new(self.n);
        let mut fault_cursor = 0usize;
        let mut phase_span = Some(obs.span("warmup"));
        for cycle in 0..total_cycles {
            if cycle == cfg.warmup_cycles {
                phase_span.take();
                phase_span = Some(obs.span("measure"));
            }
            if cycle == cfg.warmup_cycles + cfg.measure_cycles {
                phase_span.take();
                phase_span = Some(obs.span("drain"));
            }
            if let Some(p) = plan {
                p.apply_due(&mut fault_cursor, cycle, &mut view);
            }
            let fv: Option<&FaultView> = plan.map(|_| &view);
            // Phase A: injection + link service, per shard in parallel.
            rayon::slice::par_for_each_mut(&mut self.shards, |_, sh| {
                sh.phase_a(
                    cycle,
                    &pr,
                    router,
                    fv,
                    &c_injected,
                    &c_injected_all,
                    &c_dropped,
                );
            });
            // Merge: route each departure to its destination shard's
            // arrival wheel. Shard order + in-shard (node, link) order
            // make slot contents worker-count invariant.
            let mut moved = 0u32;
            for si in 0..self.shards.len() {
                let outbox = std::mem::take(&mut self.shards[si].outbox);
                moved += outbox.len() as u32;
                for msg in &outbox {
                    self.shards[(msg.to / shard_size) as usize].wheel_push(*msg);
                }
                let mut buf = outbox;
                buf.clear();
                self.shards[si].outbox = buf;
            }
            if let Some(t) = engine_tracer.as_mut() {
                if t.sampled(u64::from(cycle)) {
                    t.merge(u64::from(cycle), moved);
                }
            }
            // Phase B: arrivals scheduled for the *next* cycle boundary.
            let slot = ((cycle + 1) % wheel_len) as usize;
            rayon::slice::par_for_each_mut(&mut self.shards, |_, sh| {
                sh.phase_b(cycle, slot, &pr, router, fv, &dobs, &c_dropped);
            });
            if window > 0 && (cycle + 1) % window == 0 {
                obs.emit_window(u64::from(cycle) + 1);
            }
        }
        phase_span.take();

        let totals = RunTotals::fold_shards(&self.shards);
        debug_assert_eq!(
            totals.injected,
            totals.delivered + totals.in_flight + totals.dropped
        );

        if track {
            fold_link_telemetry(&self.shards, obs, &totals, total_cycles);
        }
        drop(run_span);

        let trace_out = match (trace, engine_tracer) {
            (Some(tc), Some(eng)) => {
                let tracers: Vec<ShardTracer> = self
                    .shards
                    .iter_mut()
                    .filter_map(|sh| sh.tracer.take())
                    .collect();
                Some(Trace::collect(tc.interval.max(1), tracers, eng))
            }
            _ => None,
        };

        let result = totals.into_sim_result(self.n as u64, cfg.measure_cycles, total_cycles);
        (result, trace_out)
    }
}

/// Convenience: build and run in one call with everything in one module
/// (uniform link speed).
pub fn run_uniform(g: &Csr, cfg: &SimConfig) -> SimResult {
    Simulator::new(g, |_| 0, cfg).run(cfg)
}

/// [`run_uniform`] with observability (see
/// [`Simulator::run_instrumented`]).
pub fn run_uniform_instrumented(g: &Csr, cfg: &SimConfig, obs: &Obs, window: u32) -> SimResult {
    Simulator::new_instrumented(g, |_| 0, cfg, obs).run_instrumented(cfg, obs, window)
}

/// Convenience: build and run with a module map (off-module links use
/// `cfg.off_module_interval`).
pub fn run_clustered(g: &Csr, module: &[u32], cfg: &SimConfig) -> SimResult {
    Simulator::new(g, |u| module[u as usize], cfg).run(cfg)
}

/// [`run_clustered`] with observability (see
/// [`Simulator::run_instrumented`]).
pub fn run_clustered_instrumented(
    g: &Csr,
    module: &[u32],
    cfg: &SimConfig,
    obs: &Obs,
    window: u32,
) -> SimResult {
    Simulator::new_instrumented(g, |u| module[u as usize], cfg, obs)
        .run_instrumented(cfg, obs, window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_networks::classic;

    fn light_cfg() -> SimConfig {
        SimConfig {
            injection_rate: 0.005,
            warmup_cycles: 500,
            measure_cycles: 2_000,
            drain_cycles: 5_000,
            on_module_interval: 1,
            off_module_interval: 1,
            seed: 42,
            ..SimConfig::default()
        }
    }

    #[test]
    fn light_load_latency_tracks_average_distance() {
        // store-and-forward light-load latency ≈ average distance (one
        // cycle per hop) + small queueing noise.
        let g = classic::hypercube(6);
        let avg = ipg_core::algo::average_distance(&g);
        let r = run_uniform(&g, &light_cfg());
        assert!(r.delivered > 0);
        assert!(
            (r.avg_latency - avg).abs() < 1.0,
            "latency {} vs avg distance {avg}",
            r.avg_latency
        );
    }

    #[test]
    fn all_tagged_packets_delivered_at_light_load() {
        let g = classic::torus2d(6);
        let r = run_uniform(&g, &light_cfg());
        assert_eq!(r.injected, r.delivered);
    }

    #[test]
    fn saturation_throughput_orders_ring_vs_hypercube() {
        // At the same high injection rate the hypercube (avg distance
        // n/2 = 3, high bisection) delivers far more than the 64-ring
        // (avg distance ~16).
        let heavy = SimConfig {
            injection_rate: 0.4,
            warmup_cycles: 500,
            measure_cycles: 2_000,
            drain_cycles: 4_000,
            ..light_cfg()
        };
        let cube = run_uniform(&classic::hypercube(6), &heavy);
        let ring = run_uniform(&classic::ring(64), &heavy);
        assert!(
            cube.throughput > 1.5 * ring.throughput,
            "cube {} vs ring {}",
            cube.throughput,
            ring.throughput
        );
        // the ring is past saturation: it cannot deliver what was injected
        assert!(ring.delivered < ring.injected);
        // the hypercube is not: everything tagged arrives
        assert_eq!(cube.delivered, cube.injected);
    }

    #[test]
    fn slow_off_module_links_raise_latency() {
        let g = classic::hypercube(6);
        let module: Vec<u32> = (0..64u32).map(|u| u >> 2).collect();
        let fast = run_clustered(&g, &module, &light_cfg());
        let slow_cfg = SimConfig {
            off_module_interval: 4,
            ..light_cfg()
        };
        let slow = run_clustered(&g, &module, &slow_cfg);
        assert!(slow.avg_latency > fast.avg_latency);
    }

    #[test]
    fn bit_complement_latency_is_graph_diameter() {
        // complement pairs are at distance n in Q_n: light-load latency ≈ n
        let g = classic::hypercube(6);
        let cfg = SimConfig {
            traffic: Traffic::BitComplement,
            ..light_cfg()
        };
        let r = run_uniform(&g, &cfg);
        assert!(r.delivered > 0);
        assert!(
            (r.avg_latency - 6.0).abs() < 0.5,
            "latency {}",
            r.avg_latency
        );
    }

    #[test]
    fn transpose_pattern_valid_and_delivers() {
        let g = classic::hypercube(6); // 64 nodes, 6 bits: even width
        let cfg = SimConfig {
            traffic: Traffic::Transpose,
            ..light_cfg()
        };
        let r = run_uniform(&g, &cfg);
        assert_eq!(r.injected, r.delivered);
    }

    #[test]
    fn hotspot_saturates_before_uniform() {
        let g = classic::hypercube(6);
        let heavy = SimConfig {
            injection_rate: 0.2,
            drain_cycles: 3_000,
            ..light_cfg()
        };
        let uni = run_uniform(&g, &heavy);
        // The hotspot must be saturated by a margin the drain phase cannot
        // clear: node 0 has 6 ingress links in Q6, so offered hotspot load
        // is 64 nodes x 0.2 rate x fraction. At fraction 0.5 that is 6.4
        // pkts/cycle — within noise of the 6/cycle capacity, and the
        // backlog drains fully. At 0.8 it is ~10.2 pkts/cycle, well past
        // saturation (cf. paper Sec. 5's saturation-throughput setup).
        let hot = run_uniform(
            &g,
            &SimConfig {
                traffic: Traffic::Hotspot {
                    fraction: 0.8,
                    target: 0,
                },
                ..heavy
            },
        );
        // the hotspot's links bound delivery: hotspot run delivers less
        assert!(hot.delivered < uni.delivered);
    }

    #[test]
    fn cut_through_beats_store_and_forward_for_long_messages() {
        let g = classic::hypercube(6);
        let base = SimConfig {
            message_length: 8,
            injection_rate: 0.002,
            ..light_cfg()
        };
        let sf = run_uniform(&g, &base);
        let ct = run_uniform(
            &g,
            &SimConfig {
                switching: Switching::CutThrough,
                ..base
            },
        );
        // SF ≈ hops·L, CT ≈ hops + L: for avg 3 hops, L=8 → ~24 vs ~11
        assert!(
            ct.avg_latency + 4.0 < sf.avg_latency,
            "CT {} vs SF {}",
            ct.avg_latency,
            sf.avg_latency
        );
        // at L = 1 the two modes coincide
        let one = SimConfig {
            message_length: 1,
            ..base
        };
        let sf1 = run_uniform(&g, &one);
        let ct1 = run_uniform(
            &g,
            &SimConfig {
                switching: Switching::CutThrough,
                ..one
            },
        );
        assert_eq!(sf1.avg_latency, ct1.avg_latency);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = classic::torus2d(5);
        let a = run_uniform(&g, &light_cfg());
        let b = run_uniform(&g, &light_cfg());
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.avg_latency, b.avg_latency);
        assert_eq!(a.max_latency, b.max_latency);
    }

    #[test]
    fn multi_shard_run_preserves_accounting_and_delivery() {
        // 576 nodes → 4 shards of 144: packets routinely cross shard
        // boundaries through the mailbox merge. Light load must still
        // deliver every tagged packet, and the conservation invariant
        // must hold exactly.
        let g = classic::torus2d(24);
        let sim = Simulator::new(&g, |_| 0, &light_cfg());
        assert!(sim.shards.len() >= 4, "expected a multi-shard partition");
        let r = run_uniform(&g, &light_cfg());
        assert_eq!(r.injected, r.delivered + r.in_flight_at_end);
        assert_eq!(r.injected, r.delivered);
        let avg = ipg_core::algo::average_distance(&g);
        assert!(
            (r.avg_latency - avg).abs() < 1.5,
            "latency {} vs avg distance {avg}",
            r.avg_latency
        );
    }

    #[test]
    fn codec_router_engine_matches_table_engine_behavior() {
        use ipg_core::superip::{NucleusSpec, SuperIpSpec, TupleNetwork};
        use ipg_core::tuple_routing::ShortestTupleRouter;
        // Same spec, same seed, two routers: path lengths are identical
        // (both exact-shortest), so delivery sets agree and latencies
        // differ only by tie-break-induced queueing noise.
        let spec = SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(2));
        let g = spec.fast_undirected_csr().unwrap();
        let module: Vec<u32> = {
            let tn = TupleNetwork::from_spec(&spec).unwrap();
            (0..g.node_count() as u32)
                .map(|v| {
                    let mut t = vec![0u32; 3];
                    tn.decode_into(v, &mut t);
                    v / tn.m_nodes() as u32
                })
                .collect()
        };
        let cfg = light_cfg();
        let mut table_sim = Simulator::new(&g, |u| module[u as usize], &cfg);
        let tn = TupleNetwork::from_spec(&spec).unwrap();
        let router = ShortestTupleRouter::new(tn).unwrap();
        let mut codec_sim = Simulator::with_router(router, &g, |u| module[u as usize], &cfg);
        let rt = table_sim.run(&cfg);
        let rc = codec_sim.run(&cfg);
        assert_eq!(rt.injected, rc.injected, "injection is router-independent");
        assert_eq!(rt.delivered, rc.delivered);
        assert!(
            (rt.avg_latency - rc.avg_latency).abs() < 0.5,
            "table {} vs codec {}",
            rt.avg_latency,
            rc.avg_latency
        );
    }

    #[test]
    fn tracing_does_not_perturb_results_and_is_deterministic() {
        let g = classic::torus2d(24); // multi-shard
        let cfg = light_cfg();
        let run = |trace: Option<&TraceConfig>| {
            let mut sim = Simulator::new(&g, |_| 0, &cfg);
            sim.run_traced(&cfg, &Obs::disabled(), 0, trace)
        };
        let (plain, none) = run(None);
        assert!(none.is_none());
        let tc = TraceConfig::with_interval(100);
        let (traced, trace) = run(Some(&tc));
        assert_eq!(plain, traced, "tracing must not change the simulation");
        let trace = trace.unwrap();
        assert!(trace.shards >= 4);
        assert!(!trace.events.is_empty());
        // same run again: the trace itself is deterministic
        let (_, trace2) = run(Some(&tc));
        assert_eq!(trace2.unwrap().to_jsonl(), trace.to_jsonl());
        // sampled phase events appear only on interval cycles
        for e in &trace.events {
            assert_eq!(e.cycle % 100, 0, "cycle {} off the interval", e.cycle);
        }
        // a multi-shard light-load run shows work on every shard track
        let sum = trace.summarize(5);
        assert_eq!(sum.shard_work.len(), trace.shards as usize);
        assert!(sum.launched > 0);
        assert!(sum.merged > 0);
        assert!(sum.queue_samples > 0);
    }

    #[test]
    fn trace_pool_occupancy_tracks_live_slots() {
        let g = classic::torus2d(6);
        let cfg = light_cfg();
        let mut sim = Simulator::new(&g, |_| 0, &cfg);
        let tc = TraceConfig::with_interval(50);
        let (r, trace) = sim.run_traced(&cfg, &Obs::disabled(), 0, Some(&tc));
        let trace = trace.unwrap();
        // After the drain phase all tagged packets were delivered, so the
        // final pool-occupancy samples go back to (near) zero.
        let pool_events: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.kind == ipg_obs::trace::EventKind::PoolOccupancy as u16)
            .collect();
        assert!(!pool_events.is_empty());
        assert_eq!(r.injected, r.delivered);
        let last = pool_events.last().unwrap();
        assert_eq!(last.value, 0, "drained run should end with an empty pool");
        // and at least one mid-run sample saw live packets
        assert!(pool_events.iter().any(|e| e.value > 0));
    }

    #[test]
    fn adaptive_router_detours_around_a_scripted_link_kill() {
        use crate::fault::{FaultPlan, FaultSpec};
        use crate::router::DetourRouter;
        let g = classic::hypercube(6);
        let cfg = light_cfg();
        let spec = FaultSpec::parse("script:link@1000:0-1+link@1200:0-2").unwrap();
        let plan = FaultPlan::compile(&spec, &g, cfg.seed).unwrap();
        let router = DetourRouter::new(RoutingTable::new(&g), g.clone()).unwrap();
        let mut sim = Simulator::with_router(router, &g, |_| 0, &cfg);
        sim.set_fault_plan(Some(plan));
        let r = sim.run(&cfg);
        // Q6 stays connected after losing two links; the adaptive router
        // must deliver everything without drops.
        assert!(r.injected > 0);
        assert_eq!(r.dropped_unreachable, 0);
        assert_eq!(r.injected, r.delivered, "detours must rescue every packet");
        assert_eq!(
            r.injected,
            r.delivered + r.in_flight_at_end + r.dropped_unreachable
        );
    }

    #[test]
    fn oblivious_router_strands_packets_the_adaptive_router_rescues() {
        use crate::fault::{FaultPlan, FaultSpec};
        use crate::router::DetourRouter;
        let g = classic::hypercube(6);
        let cfg = light_cfg();
        let spec = FaultSpec::parse("rate:links=0.1,at=0").unwrap();
        let plan = FaultPlan::compile(&spec, &g, cfg.seed).unwrap();
        assert!(!plan.is_empty());

        let mut oblivious = Simulator::new(&g, |_| 0, &cfg);
        oblivious.set_fault_plan(Some(plan.clone()));
        let ro = oblivious.run(&cfg);

        let adaptive = DetourRouter::new(RoutingTable::new(&g), g.clone()).unwrap();
        let mut sim = Simulator::with_router(adaptive, &g, |_| 0, &cfg);
        sim.set_fault_plan(Some(plan));
        let ra = sim.run(&cfg);

        // Injection is router-independent; both conserve packets.
        assert_eq!(ro.injected, ra.injected);
        assert_eq!(
            ro.injected,
            ro.delivered + ro.in_flight_at_end + ro.dropped_unreachable
        );
        assert_eq!(
            ra.injected,
            ra.delivered + ra.in_flight_at_end + ra.dropped_unreachable
        );
        // The oblivious router keeps queueing onto dead links: packets
        // strand. Q6 survives 10% link loss connected (w.h.p. under this
        // fixed seed), so the adaptive router delivers strictly more.
        assert!(
            ro.in_flight_at_end > 0,
            "expected stranded packets on dead links"
        );
        assert!(
            ra.delivered > ro.delivered,
            "adaptive {} must beat oblivious {}",
            ra.delivered,
            ro.delivered
        );
    }

    #[test]
    fn severed_nucleus_accounts_unreachable_instead_of_livelocking() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan, FaultSpec};
        use crate::router::DetourRouter;
        use ipg_core::superip::{NucleusSpec, SuperIpSpec, TupleNetwork};
        use ipg_core::tuple_routing::ShortestTupleRouter;
        // Sever cluster 0 of ring-CN(3, Q2) completely: every link with
        // exactly one endpoint in the first nucleus copy dies at cycle 0.
        let spec = SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(2));
        let g = spec.fast_undirected_csr().unwrap();
        let tn = TupleNetwork::from_spec(&spec).unwrap();
        let m = tn.m_nodes() as u32;
        let events: Vec<FaultEvent> = g
            .arcs()
            .filter(|&(u, v)| u < v && (u < m) != (v < m))
            .map(|(u, v)| FaultEvent {
                cycle: 0,
                kind: FaultKind::Link(u, v),
            })
            .collect();
        assert!(!events.is_empty());
        let fspec = FaultSpec {
            events,
            random: None,
        };
        let cfg = light_cfg();
        let plan = FaultPlan::compile(&fspec, &g, cfg.seed).unwrap();
        let router = DetourRouter::new(ShortestTupleRouter::new(tn).unwrap(), g.clone()).unwrap();
        let mut sim = Simulator::with_router(router, &g, |_| 0, &cfg);
        sim.set_fault_plan(Some(plan));
        // Must terminate (no livelock) with exact conservation: packets
        // addressed across the cut are counted as dropped-unreachable.
        let r = sim.run(&cfg);
        assert!(r.dropped_unreachable > 0, "cross-cut packets must drop");
        assert!(r.delivered > 0, "intra-component traffic still flows");
        assert_eq!(
            r.injected,
            r.delivered + r.in_flight_at_end + r.dropped_unreachable
        );
    }

    #[test]
    fn empty_fault_plan_matches_no_plan_byte_for_byte() {
        use crate::fault::FaultPlan;
        use crate::router::DetourRouter;
        let g = classic::torus2d(24); // multi-shard
        let cfg = light_cfg();
        let mut bare = Simulator::new(&g, |_| 0, &cfg);
        let rb = bare.run(&cfg);
        let adaptive = DetourRouter::new(RoutingTable::new(&g), g.clone()).unwrap();
        let mut sim = Simulator::with_router(adaptive, &g, |_| 0, &cfg);
        sim.set_fault_plan(Some(FaultPlan::empty(g.node_count() as u32)));
        let re = sim.run(&cfg);
        assert_eq!(rb, re, "zero faults must degenerate exactly");
    }

    #[test]
    fn fault_runs_are_deterministic_given_seed() {
        use crate::fault::{FaultPlan, FaultSpec};
        use crate::router::DetourRouter;
        let g = classic::torus2d(24); // multi-shard
        let cfg = light_cfg();
        let spec = FaultSpec::parse("script:node@600:7;rate:links=0.05,at=1500").unwrap();
        let run = || {
            let plan = FaultPlan::compile(&spec, &g, cfg.seed).unwrap();
            let router = DetourRouter::new(RoutingTable::new(&g), g.clone()).unwrap();
            let mut sim = Simulator::with_router(router, &g, |_| 0, &cfg);
            sim.set_fault_plan(Some(plan));
            sim.run(&cfg)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.dropped_unreachable > 0, "node 7 dies with traffic around");
    }

    #[test]
    fn dense_oracle_matches_sparse_byte_for_byte() {
        let g = classic::torus2d(24); // multi-shard
        let cfg = light_cfg();
        let run = |dense: bool| {
            let mut sim = Simulator::new(&g, |_| 0, &cfg);
            sim.set_dense(dense);
            let tc = TraceConfig::with_interval(100);
            let (r, trace) = sim.run_traced(&cfg, &Obs::disabled(), 0, Some(&tc));
            sim.validate_sparse_state();
            (r, trace.unwrap().to_jsonl())
        };
        let (rs, ts) = run(false);
        let (rd, td) = run(true);
        assert_eq!(rs, rd, "sparse result must equal the dense oracle");
        assert_eq!(ts, td, "trace streams must be byte-identical");
    }

    #[test]
    fn dense_oracle_matches_sparse_under_faults() {
        use crate::fault::{FaultPlan, FaultSpec};
        use crate::router::DetourRouter;
        let g = classic::torus2d(24); // multi-shard
        let cfg = light_cfg();
        let spec = FaultSpec::parse("script:node@600:7;rate:links=0.05,at=1500").unwrap();
        let run = |dense: bool| {
            let plan = FaultPlan::compile(&spec, &g, cfg.seed).unwrap();
            let router = DetourRouter::new(RoutingTable::new(&g), g.clone()).unwrap();
            let mut sim = Simulator::with_router(router, &g, |_| 0, &cfg);
            sim.set_fault_plan(Some(plan));
            sim.set_dense(dense);
            let r = sim.run(&cfg);
            sim.validate_sparse_state();
            r
        };
        assert_eq!(
            run(false),
            run(true),
            "fault campaigns must not split the kernels"
        );
    }

    #[test]
    fn steady_state_cycles_do_not_allocate_pool_slots_unboundedly() {
        // The slab pool reuses freed slots: at a stable light load the
        // pool's backing arrays stop growing once the pipeline fills.
        let g = classic::torus2d(6);
        let cfg = light_cfg();
        let mut sim = Simulator::new(&g, |_| 0, &cfg);
        sim.run(&cfg);
        let cap: usize = sim.shards.iter().map(|s| s.pool.dst.len()).sum();
        // far below one-slot-per-injection (~36 nodes × 7500 cycles × 0.005)
        assert!(cap < 400, "pool grew to {cap} slots");
    }
}
