//! Worker process half of the multi-process simulation.
//!
//! A worker owns a contiguous range of the deterministic shard layout
//! and runs the exact in-process cycle — parallel phase A, merge,
//! parallel phase B — on its local shards. Departures bound for other
//! workers' shards leave as an [`OutboxFrame`]; the coordinator's
//! [`ArrivalsFrame`] comes back split into `pre` (from lower-id
//! workers) and `post` (from higher-id workers) so local departures
//! can be interleaved at exactly the position the in-process global
//! shard-order merge gives them. Every byte crossing the process
//! boundary goes through [`super::frame`] — this file performs no raw
//! I/O (lint DET008).

use ipg_core::error::{IpgError, Result};
use ipg_core::fault::FaultView;
use ipg_obs::{NullRecorder, Obs, ShardTracer, Trace, TraceConfig, ENGINE_TRACK};

use crate::engine::{cycle_params, fold_link_telemetry, DeliveryObs, Links, Msg, RunTotals, Shard};
use crate::fault::FaultPlan;
use crate::router::Router;

use super::frame::{
    ArrivalsFrame, FinalFrame, FrameIo, OutboxFrame, ReadyFrame, SetupFrame, ShardLinksFrame,
    SnapshotFrame,
};

/// What the host binary needs to know to rebuild the router inside a
/// worker process. Codec-eligible, fault-free networks can skip
/// materializing the full graph — that is the distributed memory win.
#[derive(Clone, Debug)]
pub struct WorkerSetup {
    /// Network spec string, verbatim from the coordinator.
    pub netspec: String,
    /// Global node count (for validating the rebuilt router).
    pub nodes: u32,
    /// A fault plan is installed; the router must be detour-capable.
    pub faulted: bool,
}

/// Test hook: `IPG_DIST_TEST_EXIT=worker:cycle` makes that worker exit
/// with an error at that cycle, for coordinator-robustness tests.
fn planned_test_exit() -> Option<(u32, u32)> {
    let s = std::env::var("IPG_DIST_TEST_EXIT").ok()?;
    let (w, c) = s.split_once(':')?;
    Some((w.parse().ok()?, c.parse().ok()?))
}

/// Entry point for the hidden `worker` mode of a host binary: adopt
/// the coordinator channel from stdin, rebuild the router via
/// `build_router`, run the sharded cycle loop, and ship a final frame.
/// `rss_probe` reports this process's peak RSS in KiB (the host binary
/// reads `/proc/self/status`; ipg-sim itself does no file I/O).
pub fn worker_main(
    build_router: impl FnOnce(&WorkerSetup) -> std::result::Result<Box<dyn Router>, String>,
    rss_probe: impl Fn() -> u64,
) -> Result<()> {
    let mut io = FrameIo::worker_channel()?;
    let setup: SetupFrame = io.frame_recv()?;
    io.tag_worker(setup.worker);

    let ws = WorkerSetup {
        netspec: setup.netspec.clone(),
        nodes: setup.n,
        faulted: setup.faulted,
    };
    let router = build_router(&ws).map_err(|e| io.fault(format!("router build failed: {e}")))?;
    if router.node_count() != setup.n as usize {
        return Err(io.fault(format!(
            "rebuilt router covers {} nodes, run has {}",
            router.node_count(),
            setup.n
        )));
    }

    // Local shards, assembled from shipped link arrays (never a CSR).
    let local_shards = (setup.shard_hi - setup.shard_lo) as usize;
    let mut shards = Vec::with_capacity(local_shards);
    for si in setup.shard_lo..setup.shard_hi {
        let sl: ShardLinksFrame = io.frame_recv()?;
        if sl.shard != si {
            return Err(io.fault(format!(
                "expected links for shard {si}, coordinator sent shard {}",
                sl.shard
            )));
        }
        shards.push(Shard::assemble(
            sl.base,
            sl.node_count,
            sl.link_of,
            Links::from_arrays(sl.to, sl.interval),
        ));
    }

    let plan = setup
        .faulted
        .then(|| FaultPlan::from_parts(setup.n, setup.faults.clone()));

    // Local observability: a real registry (snapshots ship to the
    // coordinator) but a null sink — the coordinator owns the manifest.
    let obs = if setup.track {
        Obs::with_recorder(Box::new(NullRecorder))
    } else {
        Obs::disabled()
    };
    let c_injected = obs.counter("engine.injected_tagged");
    let c_injected_all = obs.counter("engine.injected_total");
    let c_dropped = obs.counter("engine.dropped_unreachable");
    let dobs = DeliveryObs::attach(&obs);

    let pr = cycle_params(setup.n, &setup.cfg, setup.max_interval, setup.dense);
    let trace_cfg = setup.trace.map(|(interval, capacity)| TraceConfig {
        interval,
        capacity: capacity as usize,
    });
    for (idx, sh) in shards.iter_mut().enumerate() {
        sh.prepare_run(
            setup.cfg.seed,
            pr.wheel_len,
            setup.track,
            setup.track_links,
            plan.as_ref(),
            trace_cfg.as_ref(),
            (setup.shard_lo + idx as u32) as u16,
        );
    }

    io.frame_send(&ReadyFrame {
        worker: setup.worker,
    })?;

    // The full-network fault view: faults anywhere can matter locally
    // (a router detour target, a dead destination node).
    let mut view = FaultView::new(setup.n as usize);
    let mut fault_cursor = 0usize;
    let kill_at = planned_test_exit();

    let mut out_frame = OutboxFrame {
        cycle: 0,
        launched_total: 0,
        msgs: Vec::new(),
    };
    let mut local_pending: Vec<Msg> = Vec::new();
    let router_ref: &dyn Router = router.as_ref();

    for cycle in 0..pr.total_cycles {
        io.note_cycle(u64::from(cycle));
        if kill_at == Some((setup.worker, cycle)) {
            return Err(IpgError::Dist {
                worker: setup.worker,
                cycle: u64::from(cycle),
                detail: "test-injected worker exit (IPG_DIST_TEST_EXIT)".to_string(),
            });
        }
        if let Some(p) = plan.as_ref() {
            p.apply_due(&mut fault_cursor, cycle, &mut view);
        }
        let fv: Option<&FaultView> = plan.as_ref().map(|_| &view);

        // Phase A on local shards, exactly the in-process parallel call.
        rayon::slice::par_for_each_mut(&mut shards, |_, sh| {
            sh.phase_a(
                cycle,
                &pr,
                router_ref,
                fv,
                &c_injected,
                &c_injected_all,
                &c_dropped,
            );
        });

        // Split departures: remote ones ship, local ones are held in
        // shard order so absorption can reproduce the global merge.
        out_frame.cycle = cycle;
        out_frame.msgs.clear();
        local_pending.clear();
        let mut launched = 0u32;
        for sh in &mut shards {
            launched += sh.outbox.len() as u32;
            for &msg in sh.outbox.iter() {
                let dest_shard = msg.to / setup.shard_size;
                if (setup.shard_lo..setup.shard_hi).contains(&dest_shard) {
                    local_pending.push(msg);
                } else {
                    out_frame.msgs.push(msg);
                }
            }
            sh.outbox.clear();
        }
        out_frame.launched_total = launched;
        io.frame_send(&out_frame)?;

        // Absorb arrivals in global shard order: messages from workers
        // below us, then our own, then workers above us — each stream
        // already ordered by origin shard.
        let arrivals: ArrivalsFrame = io.frame_recv()?;
        if arrivals.cycle != cycle {
            return Err(io.fault(format!(
                "arrivals for cycle {} while executing cycle {cycle}",
                arrivals.cycle
            )));
        }
        for msg in arrivals
            .pre
            .iter()
            .chain(&local_pending)
            .chain(&arrivals.post)
        {
            let dest_shard = msg.to / setup.shard_size;
            let Some(sh) = shards.get_mut(dest_shard.wrapping_sub(setup.shard_lo) as usize) else {
                return Err(io.fault(format!(
                    "arrival for node {} lands in shard {dest_shard}, outside [{}, {})",
                    msg.to, setup.shard_lo, setup.shard_hi
                )));
            };
            sh.wheel_push(*msg);
        }

        // Phase B at the next cycle boundary's wheel slot.
        let slot = ((cycle + 1) % pr.wheel_len) as usize;
        rayon::slice::par_for_each_mut(&mut shards, |_, sh| {
            sh.phase_b(cycle, slot, &pr, router_ref, fv, &dobs, &c_dropped);
        });

        if setup.track && setup.window > 0 && (cycle + 1) % setup.window == 0 {
            io.frame_send(&SnapshotFrame {
                cycle: u64::from(cycle) + 1,
                metrics: obs.snapshot_metrics(),
            })?;
        }
    }

    // Totals are partial here — packets cross worker boundaries, so
    // conservation only holds after the coordinator absorbs everyone.
    let totals = RunTotals::fold_shards(&shards);
    if setup.track {
        fold_link_telemetry(&shards, &obs, &totals, pr.total_cycles);
    }

    let (trace_events, trace_dropped) = match trace_cfg.as_ref() {
        Some(tc) => {
            let tracers: Vec<ShardTracer> =
                shards.iter_mut().filter_map(|s| s.tracer.take()).collect();
            // A blank engine-track tracer: the coordinator owns the real
            // merge track. Collect sorts local events exactly as the
            // in-process drain would within this worker's shard range.
            let t = Trace::collect(
                tc.interval.max(1),
                tracers,
                ShardTracer::new(ENGINE_TRACK, tc),
            );
            (t.events, t.dropped)
        }
        None => (Vec::new(), 0),
    };

    io.note_cycle(u64::from(pr.total_cycles));
    let fin = FinalFrame {
        totals,
        metrics: obs.snapshot_metrics(),
        trace_events,
        trace_dropped,
        rss_kb: rss_probe(),
        frames: io.sent_frames + io.recv_frames,
        frame_bytes: io.sent_bytes + io.recv_bytes,
    };
    io.frame_send(&fin)?;
    Ok(())
}
