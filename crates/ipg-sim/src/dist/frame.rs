//! Wire codec for the multi-process simulation: length-prefixed,
//! versioned, checksummed frames over a Unix socket pair.
//!
//! This is the **only** module in the distributed engine that touches
//! bytes or sockets (enforced by the DET008 lint on `coordinator.rs`
//! and `worker.rs`): the coordinator and worker speak exclusively in
//! typed frames via [`FrameIo::frame_send`] / [`FrameIo::frame_recv`].
//! The codec is dependency-free — hand-rolled little-endian encoding,
//! no serde — so the wire format is a closed artifact documented in
//! DESIGN.md §15 and cannot drift with a library upgrade.
//!
//! Frame layout:
//!
//! ```text
//! +---------+---------+------+-------+----------+---------+----------+
//! | "IPG"   | version | kind | flags | len (LE) | payload | checksum |
//! | 3 bytes | 1 byte  | 1 B  | 1 B   | u32      | len B   | u64 LE   |
//! +---------+---------+------+-------+----------+---------+----------+
//! ```
//!
//! The checksum is FNV-1a 64 over `kind .. payload` (header bytes 4..10
//! plus the payload). Decoding is total: truncated input, oversized
//! length prefixes, checksum mismatches, version skew, and malformed
//! payloads all surface as [`IpgError::Dist`] — never a panic.

use std::os::fd::OwnedFd;
use std::os::unix::net::UnixStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use ipg_core::error::{IpgError, Result};
use ipg_obs::trace::TraceEvent;
use ipg_obs::{HistSnapshot, MetricSnapshot};

use crate::engine::{Msg, RunTotals, SimConfig, Switching, Traffic};
use crate::fault::{FaultEvent, FaultKind};

/// Wire magic: the first three header bytes.
const WIRE_MAGIC: [u8; 3] = *b"IPG";
/// Wire format version; bumped on any layout change.
pub(crate) const WIRE_VERSION: u8 = 1;
/// Header size: magic(3) + version(1) + kind(1) + flags(1) + len(4).
const HEADER_LEN: usize = 10;
/// Refuse frames claiming more than 1 GiB of payload.
pub(crate) const MAX_FRAME_LEN: u32 = 1 << 30;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1_0000_0000_01b3;

/// FNV-1a 64, chained so the header slice and payload can be folded
/// without concatenation.
fn fnv1a_chain(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

// ---------------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------------

/// Append-only little-endian encode buffer for one frame payload.
pub(crate) struct WireBuf {
    bytes: Vec<u8>,
}

impl WireBuf {
    fn with_header(kind: u8) -> WireBuf {
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(&WIRE_MAGIC);
        bytes.push(WIRE_VERSION);
        bytes.push(kind);
        bytes.push(0); // flags, reserved
        bytes.extend_from_slice(&0u32.to_le_bytes()); // len, patched later
        WireBuf { bytes }
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    pub(crate) fn put_u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub(crate) fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    pub(crate) fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.bytes.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Patch the length field and append the checksum; returns the
    /// finished frame bytes.
    fn seal(mut self) -> Vec<u8> {
        let len = (self.bytes.len() - HEADER_LEN) as u32;
        self.bytes[6..10].copy_from_slice(&len.to_le_bytes());
        let sum = fnv1a_chain(FNV_OFFSET, &self.bytes[4..]);
        self.bytes.extend_from_slice(&sum.to_le_bytes());
        self.bytes
    }
}

/// Bounds-checked little-endian decode cursor over one frame payload.
/// Every accessor returns `Err` on underrun; nothing panics.
pub(crate) struct WireCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireCursor<'a> {
    fn over(bytes: &'a [u8]) -> WireCursor<'a> {
        WireCursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn advance(&mut self, n: usize, what: &str) -> std::result::Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "payload underrun reading {what}: need {n} bytes, {} left",
                self.remaining()
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn take_u8(&mut self, what: &str) -> std::result::Result<u8, String> {
        Ok(self.advance(1, what)?[0])
    }

    pub(crate) fn take_u16(&mut self, what: &str) -> std::result::Result<u16, String> {
        let s = self.advance(2, what)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    pub(crate) fn take_u32(&mut self, what: &str) -> std::result::Result<u32, String> {
        let s = self.advance(4, what)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub(crate) fn take_u64(&mut self, what: &str) -> std::result::Result<u64, String> {
        let s = self.advance(8, what)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    pub(crate) fn take_f64(&mut self, what: &str) -> std::result::Result<f64, String> {
        Ok(f64::from_bits(self.take_u64(what)?))
    }

    pub(crate) fn take_bool(&mut self, what: &str) -> std::result::Result<bool, String> {
        Ok(self.take_u8(what)? != 0)
    }

    /// Element count prefix, validated against the bytes actually left:
    /// a frame cannot hold more than `remaining / elem_size` elements,
    /// so a forged count can never drive allocation past the payload.
    pub(crate) fn take_count(
        &mut self,
        elem_size: usize,
        what: &str,
    ) -> std::result::Result<usize, String> {
        let count = self.take_u32(what)? as usize;
        if count.saturating_mul(elem_size) > self.remaining() {
            return Err(format!(
                "count overrun reading {what}: {count} elements of {elem_size}+ bytes, {} left",
                self.remaining()
            ));
        }
        Ok(count)
    }

    pub(crate) fn take_str(&mut self, what: &str) -> std::result::Result<String, String> {
        let len = self.take_count(1, what)?;
        let raw = self.advance(len, what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| format!("{what} is not valid UTF-8"))
    }

    pub(crate) fn take_u32_vec(&mut self, what: &str) -> std::result::Result<Vec<u32>, String> {
        let count = self.take_count(4, what)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.take_u32(what)?);
        }
        Ok(out)
    }

    fn finish(&self, kind_name: &str) -> std::result::Result<(), String> {
        if self.remaining() != 0 {
            return Err(format!(
                "{} trailing bytes after {kind_name} payload",
                self.remaining()
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Frame trait + shared sub-codecs
// ---------------------------------------------------------------------------

/// A typed frame: a kind byte plus a total (panic-free) body codec.
pub(crate) trait DistFrame: Sized {
    const KIND: u8;
    const NAME: &'static str;
    fn put_body(&self, b: &mut WireBuf);
    fn take_body(c: &mut WireCursor<'_>) -> std::result::Result<Self, String>;
}

/// Serialize a frame to its complete wire bytes (header + payload +
/// checksum).
pub(crate) fn frame_to_bytes<F: DistFrame>(f: &F) -> Vec<u8> {
    let mut b = WireBuf::with_header(F::KIND);
    f.put_body(&mut b);
    b.seal()
}

/// Validate a complete header; returns `(kind, payload_len)`.
fn header_fields(h: &[u8; HEADER_LEN]) -> std::result::Result<(u8, u32), String> {
    if h[0..3] != WIRE_MAGIC {
        return Err(format!(
            "bad frame magic {:02x}{:02x}{:02x} (expected \"IPG\")",
            h[0], h[1], h[2]
        ));
    }
    if h[3] != WIRE_VERSION {
        return Err(format!(
            "wire version mismatch: peer speaks v{}, this binary v{WIRE_VERSION}",
            h[3]
        ));
    }
    let len = u32::from_le_bytes([h[6], h[7], h[8], h[9]]);
    if len > MAX_FRAME_LEN {
        return Err(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        ));
    }
    Ok((h[4], len))
}

/// Verify the checksum trailing `body` and decode the payload as `F`.
/// `body` is payload + 8 checksum bytes; `hdr_tail` is header bytes
/// 4..10 (kind, flags, len), which the checksum covers.
fn body_to_frame<F: DistFrame>(
    kind: u8,
    hdr_tail: &[u8],
    body: &[u8],
) -> std::result::Result<F, String> {
    if body.len() < 8 {
        return Err("frame truncated before checksum".to_string());
    }
    let (payload, sum_bytes) = body.split_at(body.len() - 8);
    let want = u64::from_le_bytes([
        sum_bytes[0],
        sum_bytes[1],
        sum_bytes[2],
        sum_bytes[3],
        sum_bytes[4],
        sum_bytes[5],
        sum_bytes[6],
        sum_bytes[7],
    ]);
    let got = fnv1a_chain(fnv1a_chain(FNV_OFFSET, hdr_tail), payload);
    if got != want {
        return Err(format!(
            "checksum mismatch on {} frame: computed {got:#018x}, frame says {want:#018x}",
            F::NAME
        ));
    }
    if kind != F::KIND {
        return Err(format!(
            "expected {} frame (kind {}), peer sent kind {kind}",
            F::NAME,
            F::KIND
        ));
    }
    let mut c = WireCursor::over(payload);
    let f = F::take_body(&mut c)?;
    c.finish(F::NAME)?;
    Ok(f)
}

/// Decode a frame from complete wire bytes. The streaming recv path
/// reads header and body separately; this whole-buffer entry exists
/// for the adversarial codec tests.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn frame_from_bytes<F: DistFrame>(bytes: &[u8]) -> std::result::Result<F, String> {
    if bytes.len() < HEADER_LEN {
        return Err(format!(
            "frame truncated inside header: {} of {HEADER_LEN} bytes",
            bytes.len()
        ));
    }
    let mut h = [0u8; HEADER_LEN];
    h.copy_from_slice(&bytes[..HEADER_LEN]);
    let (kind, len) = header_fields(&h)?;
    let body = &bytes[HEADER_LEN..];
    if body.len() != len as usize + 8 {
        return Err(format!(
            "frame body is {} bytes, header promised {} payload + 8 checksum",
            body.len(),
            len
        ));
    }
    body_to_frame::<F>(kind, &h[4..], body)
}

fn put_msg(b: &mut WireBuf, m: &Msg) {
    b.put_u32(m.to);
    b.put_u32(m.dst);
    b.put_u32(m.born);
    b.put_bool(m.tagged);
    b.put_u32(m.slot);
}

const MSG_WIRE_LEN: usize = 17;

fn take_msg(c: &mut WireCursor<'_>) -> std::result::Result<Msg, String> {
    Ok(Msg {
        to: c.take_u32("msg.to")?,
        dst: c.take_u32("msg.dst")?,
        born: c.take_u32("msg.born")?,
        tagged: c.take_bool("msg.tagged")?,
        slot: c.take_u32("msg.slot")?,
    })
}

fn put_msgs(b: &mut WireBuf, msgs: &[Msg]) {
    b.put_u32(msgs.len() as u32);
    for m in msgs {
        put_msg(b, m);
    }
}

fn take_msgs(c: &mut WireCursor<'_>) -> std::result::Result<Vec<Msg>, String> {
    let count = c.take_count(MSG_WIRE_LEN, "msgs")?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(take_msg(c)?);
    }
    Ok(out)
}

fn put_sim_config(b: &mut WireBuf, cfg: &SimConfig) {
    b.put_f64(cfg.injection_rate);
    b.put_u32(cfg.warmup_cycles);
    b.put_u32(cfg.measure_cycles);
    b.put_u32(cfg.drain_cycles);
    b.put_u32(cfg.on_module_interval);
    b.put_u32(cfg.off_module_interval);
    b.put_u64(cfg.seed);
    b.put_u32(cfg.message_length);
    b.put_u8(match cfg.switching {
        Switching::StoreForward => 0,
        Switching::CutThrough => 1,
    });
    let (traffic, fraction, target) = match cfg.traffic {
        Traffic::Uniform => (0u8, 0.0, 0),
        Traffic::BitComplement => (1, 0.0, 0),
        Traffic::Transpose => (2, 0.0, 0),
        Traffic::Hotspot { fraction, target } => (3, fraction, target),
    };
    b.put_u8(traffic);
    b.put_f64(fraction);
    b.put_u32(target);
}

fn take_sim_config(c: &mut WireCursor<'_>) -> std::result::Result<SimConfig, String> {
    let injection_rate = c.take_f64("cfg.injection_rate")?;
    let warmup_cycles = c.take_u32("cfg.warmup_cycles")?;
    let measure_cycles = c.take_u32("cfg.measure_cycles")?;
    let drain_cycles = c.take_u32("cfg.drain_cycles")?;
    let on_module_interval = c.take_u32("cfg.on_module_interval")?;
    let off_module_interval = c.take_u32("cfg.off_module_interval")?;
    let seed = c.take_u64("cfg.seed")?;
    let message_length = c.take_u32("cfg.message_length")?;
    let switching = match c.take_u8("cfg.switching")? {
        0 => Switching::StoreForward,
        1 => Switching::CutThrough,
        t => return Err(format!("unknown switching tag {t}")),
    };
    let tag = c.take_u8("cfg.traffic")?;
    let fraction = c.take_f64("cfg.traffic.fraction")?;
    let target = c.take_u32("cfg.traffic.target")?;
    let traffic = match tag {
        0 => Traffic::Uniform,
        1 => Traffic::BitComplement,
        2 => Traffic::Transpose,
        3 => Traffic::Hotspot { fraction, target },
        t => return Err(format!("unknown traffic tag {t}")),
    };
    Ok(SimConfig {
        injection_rate,
        warmup_cycles,
        measure_cycles,
        drain_cycles,
        on_module_interval,
        off_module_interval,
        seed,
        message_length,
        switching,
        traffic,
    })
}

fn put_fault_events(b: &mut WireBuf, events: &[FaultEvent]) {
    b.put_u32(events.len() as u32);
    for ev in events {
        b.put_u32(ev.cycle);
        match ev.kind {
            FaultKind::Link(u, v) => {
                b.put_u8(0);
                b.put_u32(u);
                b.put_u32(v);
            }
            FaultKind::Node(v) => {
                b.put_u8(1);
                b.put_u32(v);
                b.put_u32(0);
            }
        }
    }
}

fn take_fault_events(c: &mut WireCursor<'_>) -> std::result::Result<Vec<FaultEvent>, String> {
    let count = c.take_count(13, "faults")?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let cycle = c.take_u32("fault.cycle")?;
        let tag = c.take_u8("fault.kind")?;
        let a = c.take_u32("fault.a")?;
        let b = c.take_u32("fault.b")?;
        let kind = match tag {
            0 => FaultKind::Link(a, b),
            1 => FaultKind::Node(a),
            t => return Err(format!("unknown fault kind tag {t}")),
        };
        out.push(FaultEvent { cycle, kind });
    }
    Ok(out)
}

fn put_metric_snapshots(b: &mut WireBuf, metrics: &[(String, MetricSnapshot)]) {
    b.put_u32(metrics.len() as u32);
    for (name, snap) in metrics {
        b.put_str(name);
        match snap {
            MetricSnapshot::Counter(v) => {
                b.put_u8(0);
                b.put_u64(*v);
            }
            MetricSnapshot::Gauge(v) => {
                b.put_u8(1);
                b.put_u64(*v);
            }
            MetricSnapshot::Hist(h) => {
                b.put_u8(2);
                b.put_u32(h.buckets.len() as u32);
                for &(i, v) in &h.buckets {
                    b.put_u32(i);
                    b.put_u64(v);
                }
                b.put_u64(h.count);
                b.put_u64(h.sum);
                b.put_u64(h.min);
                b.put_u64(h.max);
            }
        }
    }
}

fn take_metric_snapshots(
    c: &mut WireCursor<'_>,
) -> std::result::Result<Vec<(String, MetricSnapshot)>, String> {
    let count = c.take_count(10, "metrics")?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name = c.take_str("metric name")?;
        let snap = match c.take_u8("metric tag")? {
            0 => MetricSnapshot::Counter(c.take_u64("counter")?),
            1 => MetricSnapshot::Gauge(c.take_u64("gauge")?),
            2 => {
                let nb = c.take_count(12, "hist buckets")?;
                let mut buckets = Vec::with_capacity(nb);
                for _ in 0..nb {
                    let i = c.take_u32("bucket index")?;
                    let v = c.take_u64("bucket value")?;
                    buckets.push((i, v));
                }
                MetricSnapshot::Hist(HistSnapshot {
                    buckets,
                    count: c.take_u64("hist.count")?,
                    sum: c.take_u64("hist.sum")?,
                    min: c.take_u64("hist.min")?,
                    max: c.take_u64("hist.max")?,
                })
            }
            t => return Err(format!("unknown metric tag {t}")),
        };
        out.push((name, snap));
    }
    Ok(out)
}

fn put_trace_events(b: &mut WireBuf, events: &[TraceEvent]) {
    b.put_u32(events.len() as u32);
    for ev in events {
        b.put_u32(ev.cycle);
        b.put_u16(ev.kind);
        b.put_u16(ev.shard);
        b.put_u32(ev.a);
        b.put_u32(ev.b);
        b.put_u64(ev.value);
    }
}

fn take_trace_events(c: &mut WireCursor<'_>) -> std::result::Result<Vec<TraceEvent>, String> {
    let count = c.take_count(24, "trace events")?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(TraceEvent {
            cycle: c.take_u32("event.cycle")?,
            kind: c.take_u16("event.kind")?,
            shard: c.take_u16("event.shard")?,
            a: c.take_u32("event.a")?,
            b: c.take_u32("event.b")?,
            value: c.take_u64("event.value")?,
        });
    }
    Ok(out)
}

fn put_run_totals(b: &mut WireBuf, t: &RunTotals) {
    b.put_u64(t.injected);
    b.put_u64(t.delivered);
    b.put_u64(t.unmeasured);
    b.put_u64(t.dropped);
    b.put_u64(t.latency_sum);
    b.put_u32(t.max_latency);
    b.put_u64(t.in_flight);
}

fn take_run_totals(c: &mut WireCursor<'_>) -> std::result::Result<RunTotals, String> {
    Ok(RunTotals {
        injected: c.take_u64("totals.injected")?,
        delivered: c.take_u64("totals.delivered")?,
        unmeasured: c.take_u64("totals.unmeasured")?,
        dropped: c.take_u64("totals.dropped")?,
        latency_sum: c.take_u64("totals.latency_sum")?,
        max_latency: c.take_u32("totals.max_latency")?,
        in_flight: c.take_u64("totals.in_flight")?,
    })
}

// ---------------------------------------------------------------------------
// The seven frame types
// ---------------------------------------------------------------------------

/// Coordinator → worker, once: the complete run description.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct SetupFrame {
    pub(crate) worker: u32,
    pub(crate) workers: u32,
    pub(crate) n: u32,
    pub(crate) shard_size: u32,
    /// Global index of the first shard this worker owns.
    pub(crate) shard_lo: u32,
    /// One past the last owned shard.
    pub(crate) shard_hi: u32,
    /// Global maximum link service interval (wheel geometry must be
    /// computed from the whole network, not the local shard range).
    pub(crate) max_interval: u32,
    /// Window size for metric snapshots (0 = none).
    pub(crate) window: u32,
    pub(crate) track: bool,
    pub(crate) track_links: bool,
    pub(crate) dense: bool,
    /// A fault plan is installed (possibly with zero events) — this
    /// changes engine behavior independent of the event list.
    pub(crate) faulted: bool,
    /// Trace sampling `(interval, ring_capacity)` when tracing.
    pub(crate) trace: Option<(u32, u64)>,
    /// Network spec the worker rebuilds its router from.
    pub(crate) netspec: String,
    pub(crate) cfg: SimConfig,
    pub(crate) faults: Vec<FaultEvent>,
}

impl DistFrame for SetupFrame {
    const KIND: u8 = 1;
    const NAME: &'static str = "Setup";

    fn put_body(&self, b: &mut WireBuf) {
        b.put_u32(self.worker);
        b.put_u32(self.workers);
        b.put_u32(self.n);
        b.put_u32(self.shard_size);
        b.put_u32(self.shard_lo);
        b.put_u32(self.shard_hi);
        b.put_u32(self.max_interval);
        b.put_u32(self.window);
        b.put_bool(self.track);
        b.put_bool(self.track_links);
        b.put_bool(self.dense);
        b.put_bool(self.faulted);
        match self.trace {
            Some((interval, capacity)) => {
                b.put_bool(true);
                b.put_u32(interval);
                b.put_u64(capacity);
            }
            None => {
                b.put_bool(false);
                b.put_u32(0);
                b.put_u64(0);
            }
        }
        b.put_str(&self.netspec);
        put_sim_config(b, &self.cfg);
        put_fault_events(b, &self.faults);
    }

    fn take_body(c: &mut WireCursor<'_>) -> std::result::Result<Self, String> {
        let worker = c.take_u32("setup.worker")?;
        let workers = c.take_u32("setup.workers")?;
        let n = c.take_u32("setup.n")?;
        let shard_size = c.take_u32("setup.shard_size")?;
        let shard_lo = c.take_u32("setup.shard_lo")?;
        let shard_hi = c.take_u32("setup.shard_hi")?;
        let max_interval = c.take_u32("setup.max_interval")?;
        let window = c.take_u32("setup.window")?;
        let track = c.take_bool("setup.track")?;
        let track_links = c.take_bool("setup.track_links")?;
        let dense = c.take_bool("setup.dense")?;
        let faulted = c.take_bool("setup.faulted")?;
        let has_trace = c.take_bool("setup.trace")?;
        let interval = c.take_u32("setup.trace.interval")?;
        let capacity = c.take_u64("setup.trace.capacity")?;
        let trace = has_trace.then_some((interval, capacity));
        let netspec = c.take_str("setup.netspec")?;
        let cfg = take_sim_config(c)?;
        let faults = take_fault_events(c)?;
        Ok(SetupFrame {
            worker,
            workers,
            n,
            shard_size,
            shard_lo,
            shard_hi,
            max_interval,
            window,
            track,
            track_links,
            dense,
            faulted,
            trace,
            netspec,
            cfg,
            faults,
        })
    }
}

/// Coordinator → worker, once per owned shard: the flattened link
/// arrays, so the worker never materializes the full graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct ShardLinksFrame {
    pub(crate) shard: u32,
    pub(crate) base: u32,
    pub(crate) node_count: u32,
    pub(crate) link_of: Vec<u32>,
    pub(crate) to: Vec<u32>,
    pub(crate) interval: Vec<u32>,
}

impl DistFrame for ShardLinksFrame {
    const KIND: u8 = 2;
    const NAME: &'static str = "ShardLinks";

    fn put_body(&self, b: &mut WireBuf) {
        b.put_u32(self.shard);
        b.put_u32(self.base);
        b.put_u32(self.node_count);
        b.put_u32_slice(&self.link_of);
        b.put_u32_slice(&self.to);
        b.put_u32_slice(&self.interval);
    }

    fn take_body(c: &mut WireCursor<'_>) -> std::result::Result<Self, String> {
        Ok(ShardLinksFrame {
            shard: c.take_u32("links.shard")?,
            base: c.take_u32("links.base")?,
            node_count: c.take_u32("links.node_count")?,
            link_of: c.take_u32_vec("links.link_of")?,
            to: c.take_u32_vec("links.to")?,
            interval: c.take_u32_vec("links.interval")?,
        })
    }
}

/// Worker → coordinator, once: router and shards are built.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct ReadyFrame {
    pub(crate) worker: u32,
}

impl DistFrame for ReadyFrame {
    const KIND: u8 = 3;
    const NAME: &'static str = "Ready";

    fn put_body(&self, b: &mut WireBuf) {
        b.put_u32(self.worker);
    }

    fn take_body(c: &mut WireCursor<'_>) -> std::result::Result<Self, String> {
        Ok(ReadyFrame {
            worker: c.take_u32("ready.worker")?,
        })
    }
}

/// Worker → coordinator, every cycle: departures bound for other
/// workers' shards, plus the total outbox volume (including messages
/// that stayed local) for the merge-track trace gauge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct OutboxFrame {
    pub(crate) cycle: u32,
    pub(crate) launched_total: u32,
    pub(crate) msgs: Vec<Msg>,
}

impl DistFrame for OutboxFrame {
    const KIND: u8 = 4;
    const NAME: &'static str = "Outbox";

    fn put_body(&self, b: &mut WireBuf) {
        b.put_u32(self.cycle);
        b.put_u32(self.launched_total);
        put_msgs(b, &self.msgs);
    }

    fn take_body(c: &mut WireCursor<'_>) -> std::result::Result<Self, String> {
        Ok(OutboxFrame {
            cycle: c.take_u32("outbox.cycle")?,
            launched_total: c.take_u32("outbox.launched_total")?,
            msgs: take_msgs(c)?,
        })
    }
}

/// Coordinator → worker, every cycle: cross-worker arrivals split by
/// origin — `pre` from workers with smaller ids, `post` from larger —
/// so the worker can interleave its local departures at exactly the
/// position the in-process global shard-order merge would have.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct ArrivalsFrame {
    pub(crate) cycle: u32,
    pub(crate) pre: Vec<Msg>,
    pub(crate) post: Vec<Msg>,
}

impl DistFrame for ArrivalsFrame {
    const KIND: u8 = 5;
    const NAME: &'static str = "Arrivals";

    fn put_body(&self, b: &mut WireBuf) {
        b.put_u32(self.cycle);
        put_msgs(b, &self.pre);
        put_msgs(b, &self.post);
    }

    fn take_body(c: &mut WireCursor<'_>) -> std::result::Result<Self, String> {
        Ok(ArrivalsFrame {
            cycle: c.take_u32("arrivals.cycle")?,
            pre: take_msgs(c)?,
            post: take_msgs(c)?,
        })
    }
}

/// Worker → coordinator at window boundaries: cumulative metric values
/// the coordinator folds as deltas into its own registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct SnapshotFrame {
    pub(crate) cycle: u64,
    pub(crate) metrics: Vec<(String, MetricSnapshot)>,
}

impl DistFrame for SnapshotFrame {
    const KIND: u8 = 6;
    const NAME: &'static str = "Snapshot";

    fn put_body(&self, b: &mut WireBuf) {
        b.put_u64(self.cycle);
        put_metric_snapshots(b, &self.metrics);
    }

    fn take_body(c: &mut WireCursor<'_>) -> std::result::Result<Self, String> {
        Ok(SnapshotFrame {
            cycle: c.take_u64("snapshot.cycle")?,
            metrics: take_metric_snapshots(c)?,
        })
    }
}

/// Worker → coordinator, once after the cycle loop: run totals, final
/// metric snapshot, drained trace events, and per-worker gauges.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct FinalFrame {
    pub(crate) totals: RunTotals,
    pub(crate) metrics: Vec<(String, MetricSnapshot)>,
    pub(crate) trace_events: Vec<TraceEvent>,
    pub(crate) trace_dropped: u64,
    /// Worker peak RSS in KiB (`VmHWM`), probed by the host binary.
    pub(crate) rss_kb: u64,
    /// Frames sent + received by the worker before this one.
    pub(crate) frames: u64,
    /// Bytes sent + received by the worker before this frame.
    pub(crate) frame_bytes: u64,
}

impl DistFrame for FinalFrame {
    const KIND: u8 = 7;
    const NAME: &'static str = "Final";

    fn put_body(&self, b: &mut WireBuf) {
        put_run_totals(b, &self.totals);
        put_metric_snapshots(b, &self.metrics);
        put_trace_events(b, &self.trace_events);
        b.put_u64(self.trace_dropped);
        b.put_u64(self.rss_kb);
        b.put_u64(self.frames);
        b.put_u64(self.frame_bytes);
    }

    fn take_body(c: &mut WireCursor<'_>) -> std::result::Result<Self, String> {
        Ok(FinalFrame {
            totals: take_run_totals(c)?,
            metrics: take_metric_snapshots(c)?,
            trace_events: take_trace_events(c)?,
            trace_dropped: c.take_u64("final.trace_dropped")?,
            rss_kb: c.take_u64("final.rss_kb")?,
            frames: c.take_u64("final.frames")?,
            frame_bytes: c.take_u64("final.frame_bytes")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Framed transport
// ---------------------------------------------------------------------------

/// One end of a coordinator↔worker channel: a Unix stream plus frame
/// accounting and error context (worker id, cycle, last good frame).
pub(crate) struct FrameIo {
    stream: UnixStream,
    worker: u32,
    cycle: u64,
    last: &'static str,
    pub(crate) sent_frames: u64,
    pub(crate) sent_bytes: u64,
    pub(crate) recv_frames: u64,
    pub(crate) recv_bytes: u64,
}

impl FrameIo {
    fn over(stream: UnixStream, worker: u32) -> FrameIo {
        FrameIo {
            stream,
            worker,
            cycle: u64::MAX,
            last: "none",
            sent_frames: 0,
            sent_bytes: 0,
            recv_frames: 0,
            recv_bytes: 0,
        }
    }

    /// Coordinator side: a connected socket pair, one end wrapped for
    /// talking to `worker`, the other to become the worker's stdin.
    pub(crate) fn coordinator_channel(worker: u32) -> Result<(FrameIo, OwnedFd)> {
        let (ours, theirs) = UnixStream::pair().map_err(|e| IpgError::Dist {
            worker,
            cycle: u64::MAX,
            detail: format!("socketpair failed: {e}"),
        })?;
        Ok((FrameIo::over(ours, worker), OwnedFd::from(theirs)))
    }

    /// Worker side: adopt the socket the coordinator installed as our
    /// stdin. The worker id is stamped in after the Setup frame names it.
    pub(crate) fn worker_channel() -> Result<FrameIo> {
        use std::os::fd::AsFd;
        let fd = std::io::stdin()
            .as_fd()
            .try_clone_to_owned()
            .map_err(|e| IpgError::Dist {
                worker: u32::MAX,
                cycle: u64::MAX,
                detail: format!("cannot adopt stdin as the frame channel: {e}"),
            })?;
        Ok(FrameIo::over(UnixStream::from(fd), u32::MAX))
    }

    /// Spawn one worker process with its end of a fresh socket pair
    /// installed as stdin (the coordinator never touches file
    /// descriptors directly — lint DET008). stdout is discarded so a
    /// worker can never corrupt the coordinator's stdout; stderr is
    /// inherited for crash visibility.
    pub(crate) fn spawn_worker_process(argv: &[String], worker: u32) -> Result<(FrameIo, Child)> {
        let (io, child_fd) = FrameIo::coordinator_channel(worker)?;
        let child = Command::new(&argv[0])
            .args(&argv[1..])
            .stdin(Stdio::from(child_fd))
            .stdout(Stdio::null())
            .spawn()
            .map_err(|e| IpgError::Dist {
                worker,
                cycle: u64::MAX,
                detail: format!("failed to spawn worker `{}`: {e}", argv[0]),
            })?;
        Ok((io, child))
    }

    /// Attribute subsequent errors to `worker` (worker side, post-Setup).
    pub(crate) fn tag_worker(&mut self, worker: u32) {
        self.worker = worker;
    }

    /// Stamp the simulation cycle onto subsequent error context.
    pub(crate) fn note_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    /// Heartbeat deadline for blocking transfers: a peer that neither
    /// sends nor drains anything for this long is treated as dead
    /// instead of hanging the run.
    pub(crate) fn set_exchange_deadline(&self, deadline: Option<Duration>) -> Result<()> {
        self.stream
            .set_read_timeout(deadline)
            .and_then(|()| self.stream.set_write_timeout(deadline))
            .map_err(|e| self.fault(format!("cannot set exchange deadline: {e}")))
    }

    /// An [`IpgError::Dist`] stamped with this channel's context.
    pub(crate) fn fault(&self, detail: String) -> IpgError {
        IpgError::Dist {
            worker: self.worker,
            cycle: self.cycle,
            detail: format!("{detail} (last good frame: {})", self.last),
        }
    }

    fn io_fault(&self, doing: &str, frame: &str, e: &std::io::Error) -> IpgError {
        use std::io::ErrorKind;
        let what = match e.kind() {
            ErrorKind::UnexpectedEof => "peer closed the channel (worker exited?)".to_string(),
            ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                "exchange deadline exceeded (peer hung?)".to_string()
            }
            ErrorKind::BrokenPipe => "broken pipe (worker exited?)".to_string(),
            _ => format!("I/O error: {e}"),
        };
        self.fault(format!("{what} while {doing} {frame} frame"))
    }

    /// Send one typed frame (blocking until the peer's socket buffer
    /// accepts it — safe under the lock-step protocol, which never has
    /// both sides writing at once).
    pub(crate) fn frame_send<F: DistFrame>(&mut self, f: &F) -> Result<()> {
        use std::io::Write;
        let bytes = frame_to_bytes(f);
        self.stream
            .write_all(&bytes)
            .map_err(|e| self.io_fault("sending", F::NAME, &e))?;
        self.sent_frames += 1;
        self.sent_bytes += bytes.len() as u64;
        self.last = F::NAME;
        Ok(())
    }

    /// Receive the next frame, which the lock-step protocol says must
    /// be an `F`. Header, length, checksum, version, and kind are all
    /// validated before the body decoder runs.
    pub(crate) fn frame_recv<F: DistFrame>(&mut self) -> Result<F> {
        use std::io::Read;
        let mut h = [0u8; HEADER_LEN];
        self.stream
            .read_exact(&mut h)
            .map_err(|e| self.io_fault("awaiting", F::NAME, &e))?;
        let (kind, len) = header_fields(&h).map_err(|d| self.fault(d))?;
        let mut body = vec![0u8; len as usize + 8];
        self.stream
            .read_exact(&mut body)
            .map_err(|e| self.io_fault("reading body of", F::NAME, &e))?;
        let f = body_to_frame::<F>(kind, &h[4..], &body).map_err(|d| self.fault(d))?;
        self.recv_frames += 1;
        self.recv_bytes += (HEADER_LEN + body.len()) as u64;
        self.last = F::NAME;
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_setup() -> SetupFrame {
        SetupFrame {
            worker: 2,
            workers: 4,
            n: 4096,
            shard_size: 128,
            shard_lo: 16,
            shard_hi: 24,
            max_interval: 3,
            window: 500,
            track: true,
            track_links: true,
            dense: false,
            faulted: true,
            trace: Some((64, 16384)),
            netspec: "ring-cn:l=3,nucleus=Q3".to_string(),
            cfg: SimConfig {
                injection_rate: 0.031_25,
                switching: Switching::CutThrough,
                traffic: Traffic::Hotspot {
                    fraction: 0.1,
                    target: 7,
                },
                ..SimConfig::default()
            },
            faults: vec![
                FaultEvent {
                    cycle: 600,
                    kind: FaultKind::Link(0, 1),
                },
                FaultEvent {
                    cycle: 1200,
                    kind: FaultKind::Node(5),
                },
            ],
        }
    }

    fn sample_final() -> FinalFrame {
        FinalFrame {
            totals: RunTotals {
                injected: 1000,
                delivered: 900,
                unmeasured: 40,
                dropped: 10,
                latency_sum: 12345,
                max_latency: 99,
                in_flight: 90,
            },
            metrics: vec![
                ("a.counter".to_string(), MetricSnapshot::Counter(42)),
                ("b.gauge".to_string(), MetricSnapshot::Gauge(7)),
                (
                    "c.hist".to_string(),
                    MetricSnapshot::Hist(HistSnapshot {
                        buckets: vec![(0, 3), (5, 9)],
                        count: 12,
                        sum: 47,
                        min: 0,
                        max: 31,
                    }),
                ),
            ],
            trace_events: vec![TraceEvent {
                cycle: 64,
                kind: 1,
                shard: 3,
                a: 10,
                b: 20,
                value: 30,
            }],
            trace_dropped: 2,
            rss_kb: 10240,
            frames: 123,
            frame_bytes: 45678,
        }
    }

    #[test]
    fn roundtrip_every_frame_kind() {
        let setup = sample_setup();
        assert_eq!(
            frame_from_bytes::<SetupFrame>(&frame_to_bytes(&setup)).unwrap(),
            setup
        );
        let links = ShardLinksFrame {
            shard: 5,
            base: 640,
            node_count: 128,
            link_of: vec![0, 2, 4],
            to: vec![1, 2, 3, 4],
            interval: vec![1, 1, 3, 3],
        };
        assert_eq!(
            frame_from_bytes::<ShardLinksFrame>(&frame_to_bytes(&links)).unwrap(),
            links
        );
        let ready = ReadyFrame { worker: 3 };
        assert_eq!(
            frame_from_bytes::<ReadyFrame>(&frame_to_bytes(&ready)).unwrap(),
            ready
        );
        let outbox = OutboxFrame {
            cycle: 17,
            launched_total: 9,
            msgs: vec![Msg {
                to: 1,
                dst: 2,
                born: 3,
                tagged: true,
                slot: 4,
            }],
        };
        assert_eq!(
            frame_from_bytes::<OutboxFrame>(&frame_to_bytes(&outbox)).unwrap(),
            outbox
        );
        let arrivals = ArrivalsFrame {
            cycle: 17,
            pre: outbox.msgs.clone(),
            post: vec![],
        };
        assert_eq!(
            frame_from_bytes::<ArrivalsFrame>(&frame_to_bytes(&arrivals)).unwrap(),
            arrivals
        );
        let snap = SnapshotFrame {
            cycle: 500,
            metrics: sample_final().metrics,
        };
        assert_eq!(
            frame_from_bytes::<SnapshotFrame>(&frame_to_bytes(&snap)).unwrap(),
            snap
        );
        let fin = sample_final();
        assert_eq!(
            frame_from_bytes::<FinalFrame>(&frame_to_bytes(&fin)).unwrap(),
            fin
        );
    }

    #[test]
    fn truncated_frames_error_out() {
        let bytes = frame_to_bytes(&sample_setup());
        for cut in [
            0,
            1,
            HEADER_LEN - 1,
            HEADER_LEN,
            bytes.len() - 9,
            bytes.len() - 1,
        ] {
            assert!(
                frame_from_bytes::<SetupFrame>(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut bytes = frame_to_bytes(&ReadyFrame { worker: 0 });
        bytes[6..10].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let err = frame_from_bytes::<ReadyFrame>(&bytes).unwrap_err();
        assert!(err.contains("cap"), "unexpected error: {err}");
    }

    #[test]
    fn forged_element_count_is_rejected_before_allocation() {
        // A ShardLinks frame whose vec count claims ~4 billion entries
        // inside a tiny payload must fail on the count check.
        let links = ShardLinksFrame {
            shard: 0,
            base: 0,
            node_count: 1,
            link_of: vec![0, 1],
            to: vec![1],
            interval: vec![1],
        };
        let mut bytes = frame_to_bytes(&links);
        // link_of count lives right after the three leading u32s.
        let off = HEADER_LEN + 12;
        bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = frame_from_bytes::<ShardLinksFrame>(&bytes).unwrap_err();
        assert!(err.contains("checksum") || err.contains("overrun"));
    }

    #[test]
    fn checksum_flip_is_detected() {
        let mut bytes = frame_to_bytes(&ReadyFrame { worker: 1 });
        let mid = HEADER_LEN; // first payload byte
        bytes[mid] ^= 0x40;
        let err = frame_from_bytes::<ReadyFrame>(&bytes).unwrap_err();
        assert!(err.contains("checksum"), "unexpected error: {err}");
    }

    #[test]
    fn version_and_magic_skew_are_rejected() {
        let good = frame_to_bytes(&ReadyFrame { worker: 1 });
        let mut wrong_version = good.clone();
        wrong_version[3] = WIRE_VERSION + 1;
        let err = frame_from_bytes::<ReadyFrame>(&wrong_version).unwrap_err();
        assert!(err.contains("version"), "unexpected error: {err}");
        let mut wrong_magic = good;
        wrong_magic[0] = b'X';
        let err = frame_from_bytes::<ReadyFrame>(&wrong_magic).unwrap_err();
        assert!(err.contains("magic"), "unexpected error: {err}");
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let bytes = frame_to_bytes(&ReadyFrame { worker: 1 });
        let err = frame_from_bytes::<OutboxFrame>(&bytes).unwrap_err();
        assert!(err.contains("kind"), "unexpected error: {err}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        // Re-seal a Ready frame with one extra payload byte: checksum
        // valid, body decoder must flag the leftover.
        let mut b = WireBuf::with_header(ReadyFrame::KIND);
        ReadyFrame { worker: 1 }.put_body(&mut b);
        b.put_u8(0xEE);
        let bytes = b.seal();
        let err = frame_from_bytes::<ReadyFrame>(&bytes).unwrap_err();
        assert!(err.contains("trailing"), "unexpected error: {err}");
    }

    #[test]
    fn invalid_utf8_netspec_is_rejected() {
        let mut b = WireBuf::with_header(SetupFrame::KIND);
        sample_setup().put_body(&mut b);
        // Corrupt a byte inside the netspec string ("ring-cn..." starts
        // after the 12 fixed header fields; find it by searching).
        let pos = b
            .bytes
            .windows(4)
            .position(|w| w == b"ring")
            .expect("netspec bytes present");
        b.bytes[pos] = 0xFF;
        let bytes = b.seal();
        let err = frame_from_bytes::<SetupFrame>(&bytes).unwrap_err();
        assert!(err.contains("UTF-8"), "unexpected error: {err}");
    }

    #[test]
    fn unknown_enum_tags_are_rejected() {
        // Fault kind tag 9 is not a thing.
        let mut b = WireBuf::with_header(SetupFrame::KIND);
        let mut s = sample_setup();
        s.faults.truncate(1);
        s.put_body(&mut b);
        let last13 = b.bytes.len() - 13;
        b.bytes[last13 + 4] = 9; // the kind tag of the single fault event
        let bytes = b.seal();
        let err = frame_from_bytes::<SetupFrame>(&bytes).unwrap_err();
        assert!(err.contains("fault kind"), "unexpected error: {err}");
    }

    #[test]
    fn frame_io_roundtrip_over_socketpair() {
        let (mut a, fd) = FrameIo::coordinator_channel(0).unwrap();
        let mut b = FrameIo::over(UnixStream::from(fd), 0);
        let out = OutboxFrame {
            cycle: 3,
            launched_total: 2,
            msgs: vec![Msg {
                to: 9,
                dst: 10,
                born: 1,
                tagged: false,
                slot: 2,
            }],
        };
        a.frame_send(&out).unwrap();
        let got: OutboxFrame = b.frame_recv().unwrap();
        assert_eq!(got, out);
        assert_eq!(a.sent_frames, 1);
        assert_eq!(b.recv_frames, 1);
        assert_eq!(a.sent_bytes, b.recv_bytes);
    }

    #[test]
    fn closed_channel_yields_contextual_error() {
        let (mut a, fd) = FrameIo::coordinator_channel(3).unwrap();
        a.note_cycle(41);
        drop(UnixStream::from(fd));
        let err = a.frame_recv::<OutboxFrame>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("worker 3"), "missing worker id: {msg}");
        assert!(msg.contains("cycle 41"), "missing cycle: {msg}");
        assert!(msg.contains("closed"), "missing close context: {msg}");
    }

    #[test]
    fn deadline_turns_silence_into_an_error() {
        let (mut a, fd) = FrameIo::coordinator_channel(1).unwrap();
        // Keep the peer end open but silent.
        let _peer = UnixStream::from(fd);
        a.set_exchange_deadline(Some(Duration::from_millis(30)))
            .unwrap();
        let err = a.frame_recv::<ReadyFrame>().unwrap_err();
        assert!(
            err.to_string().contains("deadline"),
            "unexpected error: {err}"
        );
    }

    fn arb_msg() -> impl Strategy<Value = Msg> {
        (
            (0u32..u32::MAX, 0u32..u32::MAX),
            (0u32..u32::MAX, 0u32..2),
            0u32..u32::MAX,
        )
            .prop_map(|((to, dst), (born, tagged), slot)| Msg {
                to,
                dst,
                born,
                tagged: tagged == 1,
                slot,
            })
    }

    proptest! {
        #[test]
        fn prop_outbox_roundtrip(cycle in 0u32..u32::MAX, launched in 0u32..u32::MAX,
                                 msgs in proptest::collection::vec(arb_msg(), 0..64)) {
            let f = OutboxFrame { cycle, launched_total: launched, msgs };
            prop_assert_eq!(frame_from_bytes::<OutboxFrame>(&frame_to_bytes(&f)).unwrap(), f);
        }

        #[test]
        fn prop_shard_links_roundtrip(shard in 0u32..u32::MAX, base in 0u32..u32::MAX,
                                      to in proptest::collection::vec(0u32..u32::MAX, 0..128)) {
            let interval: Vec<u32> = to.iter().map(|v| v % 7 + 1).collect();
            let f = ShardLinksFrame {
                shard, base,
                node_count: 1,
                link_of: vec![0, to.len() as u32],
                to, interval,
            };
            prop_assert_eq!(frame_from_bytes::<ShardLinksFrame>(&frame_to_bytes(&f)).unwrap(), f);
        }

        #[test]
        fn prop_decode_arbitrary_bytes_never_panics(
            words in proptest::collection::vec(0u32..256, 0..256),
        ) {
            // Any byte soup must be rejected or decoded, never panic.
            let bytes: Vec<u8> = words.iter().map(|&w| w as u8).collect();
            let _ = frame_from_bytes::<SetupFrame>(&bytes);
            let _ = frame_from_bytes::<OutboxFrame>(&bytes);
            let _ = frame_from_bytes::<FinalFrame>(&bytes);
        }

        #[test]
        fn prop_corrupted_valid_frame_never_decodes_silently(
            flip in 0usize..64, bit in 0u8..8,
        ) {
            let f = OutboxFrame {
                cycle: 5, launched_total: 1,
                msgs: vec![Msg { to: 1, dst: 2, born: 3, tagged: true, slot: 4 }],
            };
            let mut bytes = frame_to_bytes(&f);
            let i = flip % bytes.len();
            bytes[i] ^= 1 << bit;
            // Every byte is covered: magic/version by the header check,
            // kind/flags/len/payload by the checksum, the checksum
            // trailer by itself. A single-bit flip can never decode.
            prop_assert!(frame_from_bytes::<OutboxFrame>(&bytes).is_err());
        }
    }
}
