//! Multi-process sharded simulation: a coordinator that forks worker
//! processes and merges their cycle frames into results byte-identical
//! to the in-process engine (DESIGN.md §15).
//!
//! Layering inside this module is strict:
//!
//! * [`frame`] — the wire codec and the only code allowed to touch
//!   sockets, file descriptors, or raw bytes;
//! * [`coordinator`] / [`worker`] — protocol logic in terms of typed
//!   frames only (lint DET008 rejects raw I/O here).
//!
//! Determinism rests on the same invariant as the threaded engine:
//! shard layout and merge order are pure functions of the node count.
//! Worker count only changes *which process* executes a shard, never
//! the order its messages merge in — see DESIGN.md §15 for the
//! argument.

mod coordinator;
mod frame;
mod worker;

pub use coordinator::{run_dist, DistConfig, DistRun, DistWorkerStats};
pub use worker::{worker_main, WorkerSetup};
