//! Coordinator half of the multi-process simulation.
//!
//! [`run_dist`] forks `workers` OS processes (re-executing the host
//! binary in its hidden worker mode), hands each a contiguous range of
//! the deterministic shard layout over a private socket pair, and
//! drives the lock-step cycle protocol: read every worker's
//! [`OutboxFrame`] in worker order, split cross-worker messages into
//! origin-ordered `pre`/`post` streams per destination, send every
//! [`ArrivalsFrame`], repeat. Because shard boundaries, merge order,
//! and wheel geometry are all pure functions of the node count — never
//! of the worker count — delivered counts, manifests, and traces are
//! byte-identical to the in-process engine for every worker count.
//!
//! All socket traffic goes through [`super::frame`]; this file does no
//! raw I/O (lint DET008). Timeouts use [`Duration`] only — wall-clock
//! reads live behind `Obs` spans like everywhere else in the engine.

use std::collections::BTreeMap;
use std::process::Child;
use std::time::Duration;

use ipg_core::error::{IpgError, Result};
use ipg_core::graph::Csr;
use ipg_obs::{HistSnapshot, MetricSnapshot, Obs, ShardTracer, Trace, TraceConfig, ENGINE_TRACK};

use crate::engine::{
    dense_from_env, shard_layout, shard_link_arrays, DeliveryObs, RunTotals, SimConfig, SimResult,
};
use crate::fault::FaultPlan;

use super::frame::{
    ArrivalsFrame, FinalFrame, FrameIo, OutboxFrame, ReadyFrame, SetupFrame, ShardLinksFrame,
    SnapshotFrame,
};

/// How to run a distributed simulation.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Requested worker processes (clamped to the shard count).
    pub workers: u32,
    /// Argv of the worker subcommand, e.g. `[current_exe, "worker"]`.
    /// The worker process must call [`super::worker_main`].
    pub worker_argv: Vec<String>,
    /// Network spec shipped to workers so they can rebuild the router.
    pub netspec: String,
    /// Metric window size in cycles (0 = no windows), matching the
    /// `window` argument of the in-process `run_traced`.
    pub window: u32,
    /// Flight-recorder config, or `None` for no tracing.
    pub trace: Option<TraceConfig>,
    /// Heartbeat: a worker that sends nothing for this long is treated
    /// as dead and the run fails with a contextual error, never a hang.
    pub read_timeout: Duration,
}

impl Default for DistConfig {
    fn default() -> DistConfig {
        DistConfig {
            workers: 1,
            worker_argv: Vec::new(),
            netspec: String::new(),
            window: 0,
            trace: None,
            read_timeout: Duration::from_secs(120),
        }
    }
}

/// Per-worker accounting from a finished distributed run.
#[derive(Clone, Debug)]
pub struct DistWorkerStats {
    /// Worker index.
    pub worker: u32,
    /// Number of shards the worker owned.
    pub shards: u32,
    /// Worker process peak RSS in KiB (`VmHWM`).
    pub rss_kb: u64,
    /// Frames the worker sent + received.
    pub frames: u64,
    /// Bytes the worker sent + received.
    pub frame_bytes: u64,
}

/// Everything a distributed run produces.
#[derive(Debug)]
pub struct DistRun {
    /// The merged simulation result — byte-identical to in-process.
    pub result: SimResult,
    /// The merged flight-recorder trace, when tracing was requested.
    pub trace: Option<Trace>,
    /// Per-worker transport and memory stats, in worker order.
    pub workers: Vec<DistWorkerStats>,
}

/// Child-process fleet with kill-on-drop semantics: any early return
/// (frame error, timeout, protocol violation) reaps every worker
/// instead of leaking orphans that hold the sockets open.
struct Fleet {
    children: Vec<Child>,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Scan for the global maximum link service interval without building
/// any shard state; early-exits once the configured maximum is seen.
fn global_max_interval(g: &Csr, module: &impl Fn(u32) -> u32, cfg: &SimConfig) -> u32 {
    let on = cfg.on_module_interval.max(1);
    let off = cfg.off_module_interval.max(1);
    let ceiling = on.max(off);
    let mut max_interval = 1u32;
    'scan: for u in 0..g.node_count() as u32 {
        for &v in g.neighbors(u) {
            let iv = if module(u) == module(v) { on } else { off };
            max_interval = max_interval.max(iv);
            if max_interval == ceiling {
                break 'scan;
            }
        }
    }
    max_interval
}

/// Fold one worker's cumulative metric snapshot into the coordinator
/// registry as a delta against that worker's previous snapshot:
/// counters delta-add, gauges max-fold, histograms bucket-delta-merge.
fn absorb_worker_metrics(
    obs: &Obs,
    prev: &mut BTreeMap<String, MetricSnapshot>,
    metrics: Vec<(String, MetricSnapshot)>,
) {
    let empty_hist = HistSnapshot::default();
    for (name, snap) in metrics {
        match &snap {
            MetricSnapshot::Counter(cur) => {
                let before = match prev.get(&name) {
                    Some(MetricSnapshot::Counter(p)) => *p,
                    _ => 0,
                };
                obs.counter(&name).add(cur.saturating_sub(before));
            }
            MetricSnapshot::Gauge(cur) => {
                obs.gauge(&name).record_max(*cur);
            }
            MetricSnapshot::Hist(cur) => {
                let before = match prev.get(&name) {
                    Some(MetricSnapshot::Hist(p)) => p,
                    _ => &empty_hist,
                };
                obs.histogram(&name).merge_delta(before, cur);
            }
        }
        prev.insert(name, snap);
    }
}

/// Run one simulation across `dc.workers` OS processes. Semantically
/// identical to `Simulator::with_router(...).run_traced(...)` — same
/// results, same manifest records, same trace — with per-worker memory
/// bounded by its shard range instead of the whole network.
pub fn run_dist(
    g: &Csr,
    module: impl Fn(u32) -> u32,
    cfg: &SimConfig,
    plan: Option<&FaultPlan>,
    obs: &Obs,
    dc: &DistConfig,
) -> Result<DistRun> {
    let n = g.node_count();
    let (shard_count, shard_size) = shard_layout(n);
    let wcount = (dc.workers.max(1) as usize).min(shard_count);
    if dc.worker_argv.is_empty() {
        return Err(IpgError::Dist {
            worker: u32::MAX,
            cycle: u64::MAX,
            detail: "DistConfig.worker_argv is empty — no worker command to spawn".to_string(),
        });
    }

    let run_span = obs.span("run");
    let track = obs.enabled();
    let track_links = track || dc.trace.is_some();
    let dense = dense_from_env();
    let max_interval = global_max_interval(g, &module, cfg);

    // Contiguous shard ranges, sized as evenly as possible.
    let per = shard_count / wcount;
    let rem = shard_count % wcount;
    let range_of = |w: usize| -> (u32, u32) {
        let lo = w * per + w.min(rem);
        let hi = lo + per + usize::from(w < rem);
        (lo as u32, hi as u32)
    };
    let mut worker_of_shard = vec![0usize; shard_count];
    for w in 0..wcount {
        let (lo, hi) = range_of(w);
        for s in lo..hi {
            worker_of_shard[s as usize] = w;
        }
    }

    // Spawn the fleet and ship Setup + per-shard links.
    let mut ios: Vec<FrameIo> = Vec::with_capacity(wcount);
    let mut fleet = Fleet {
        children: Vec::with_capacity(wcount),
    };
    let faults: Vec<crate::fault::FaultEvent> =
        plan.map(|p| p.events().to_vec()).unwrap_or_default();
    for w in 0..wcount {
        let (io, child) = FrameIo::spawn_worker_process(&dc.worker_argv, w as u32)?;
        io.set_exchange_deadline(Some(dc.read_timeout))?;
        fleet.children.push(child);
        ios.push(io);
    }
    for (w, io) in ios.iter_mut().enumerate() {
        let (lo, hi) = range_of(w);
        io.frame_send(&SetupFrame {
            worker: w as u32,
            workers: wcount as u32,
            n: n as u32,
            shard_size,
            shard_lo: lo,
            shard_hi: hi,
            max_interval,
            window: dc.window,
            track,
            track_links,
            dense,
            faulted: plan.is_some(),
            trace: dc
                .trace
                .as_ref()
                .map(|tc| (tc.interval, tc.capacity as u64)),
            netspec: dc.netspec.clone(),
            cfg: cfg.clone(),
            faults: faults.clone(),
        })?;
        for si in lo..hi {
            let base = si * shard_size;
            let node_count = shard_size.min(n as u32 - base);
            let (link_of, to, interval) = shard_link_arrays(g, &module, cfg, base, node_count);
            io.frame_send(&ShardLinksFrame {
                shard: si,
                base,
                node_count,
                link_of,
                to,
                interval,
            })?;
        }
    }
    for (w, io) in ios.iter_mut().enumerate() {
        let ready: ReadyFrame = io.frame_recv()?;
        if ready.worker != w as u32 {
            return Err(io.fault(format!(
                "worker {w} reported ready as worker {}",
                ready.worker
            )));
        }
    }

    // Register the engine metrics the in-process run registers at run
    // start, so the registry's name set never depends on snapshot
    // timing. Values arrive as worker deltas.
    obs.counter("engine.injected_tagged");
    obs.counter("engine.injected_total");
    obs.counter("engine.dropped_unreachable");
    DeliveryObs::attach(obs);
    let mut prev_metrics: Vec<BTreeMap<String, MetricSnapshot>> =
        (0..wcount).map(|_| BTreeMap::new()).collect();

    let mut engine_tracer = dc
        .trace
        .as_ref()
        .map(|tc| ShardTracer::new(ENGINE_TRACK, tc));
    let mut arrivals: Vec<ArrivalsFrame> = (0..wcount)
        .map(|_| ArrivalsFrame {
            cycle: 0,
            pre: Vec::new(),
            post: Vec::new(),
        })
        .collect();

    let total_cycles = cfg.warmup_cycles + cfg.measure_cycles + cfg.drain_cycles;
    let mut phase_span = Some(obs.span("warmup"));
    for cycle in 0..total_cycles {
        if cycle == cfg.warmup_cycles {
            phase_span.take();
            phase_span = Some(obs.span("measure"));
        }
        if cycle == cfg.warmup_cycles + cfg.measure_cycles {
            phase_span.take();
            phase_span = Some(obs.span("drain"));
        }
        // Read every worker's outbox in worker order; split each
        // message by destination worker, preserving origin-shard order
        // within the `pre` (origins below dest) and `post` (origins
        // above dest) streams.
        let mut moved = 0u32;
        for (w, io) in ios.iter_mut().enumerate() {
            io.note_cycle(u64::from(cycle));
            let ob: OutboxFrame = io.frame_recv()?;
            if ob.cycle != cycle {
                return Err(io.fault(format!(
                    "outbox for cycle {} while coordinating cycle {cycle}",
                    ob.cycle
                )));
            }
            moved += ob.launched_total;
            for msg in ob.msgs {
                let shard = (msg.to / shard_size) as usize;
                let Some(&dw) = worker_of_shard.get(shard) else {
                    return Err(io.fault(format!(
                        "outbox message for node {} maps to shard {shard}, beyond shard count {shard_count}",
                        msg.to
                    )));
                };
                if dw == w {
                    return Err(io.fault(format!(
                        "worker {w} shipped a message for its own shard {shard}"
                    )));
                }
                if dw < w {
                    arrivals[dw].post.push(msg);
                } else {
                    arrivals[dw].pre.push(msg);
                }
            }
        }
        if let Some(t) = engine_tracer.as_mut() {
            if t.sampled(u64::from(cycle)) {
                t.merge(u64::from(cycle), moved);
            }
        }
        for (w, arr) in arrivals.iter_mut().enumerate() {
            arr.cycle = cycle;
            ios[w].frame_send(arr)?;
            arr.pre.clear();
            arr.post.clear();
        }
        if track && dc.window > 0 && (cycle + 1) % dc.window == 0 {
            for w in 0..wcount {
                let snap: SnapshotFrame = ios[w].frame_recv()?;
                if snap.cycle != u64::from(cycle) + 1 {
                    return Err(ios[w].fault(format!(
                        "metric snapshot for cycle {} at window boundary {}",
                        snap.cycle,
                        u64::from(cycle) + 1
                    )));
                }
                absorb_worker_metrics(obs, &mut prev_metrics[w], snap.metrics);
            }
            obs.emit_window(u64::from(cycle) + 1);
        }
    }
    phase_span.take();

    // Final frames, in worker order: totals, metrics, trace events.
    let mut totals = RunTotals::default();
    let mut stats = Vec::with_capacity(wcount);
    let mut worker_events = Vec::new();
    let mut worker_dropped = 0u64;
    for (w, io) in ios.iter_mut().enumerate() {
        io.note_cycle(u64::from(total_cycles));
        let fin: FinalFrame = io.frame_recv()?;
        totals.absorb(&fin.totals);
        absorb_worker_metrics(obs, &mut prev_metrics[w], fin.metrics);
        worker_events.extend(fin.trace_events);
        worker_dropped += fin.trace_dropped;
        obs.emit_dist(w as u32, fin.rss_kb, fin.frames, fin.frame_bytes);
        let (lo, hi) = range_of(w);
        stats.push(DistWorkerStats {
            worker: w as u32,
            shards: hi - lo,
            rss_kb: fin.rss_kb,
            frames: fin.frames,
            frame_bytes: fin.frame_bytes,
        });
    }
    debug_assert_eq!(
        totals.injected,
        totals.delivered + totals.in_flight + totals.dropped
    );
    drop(run_span);

    // Workers exit after their final frame; reap them and surface any
    // abnormal exit even though the protocol completed.
    for (w, child) in fleet.children.iter_mut().enumerate() {
        let status = child.wait().map_err(|e| IpgError::Dist {
            worker: w as u32,
            cycle: u64::from(total_cycles),
            detail: format!("failed to reap worker: {e}"),
        })?;
        if !status.success() {
            return Err(IpgError::Dist {
                worker: w as u32,
                cycle: u64::from(total_cycles),
                detail: format!("worker exited abnormally after completing the run: {status}"),
            });
        }
    }

    // Rebuild the merged trace: worker events are already sorted by
    // cycle with per-cycle shard order; a stable sort over the
    // concatenation (workers in order, then the engine track) restores
    // exactly the in-process collect order.
    let trace = match (dc.trace.as_ref(), engine_tracer) {
        (Some(tc), Some(eng)) => {
            let eng_trace = Trace::collect(tc.interval.max(1), Vec::new(), eng);
            let mut events = worker_events;
            events.extend(eng_trace.events);
            events.sort_by_key(|e| e.cycle);
            Some(Trace {
                shards: shard_count as u16,
                interval: tc.interval.max(1),
                dropped: worker_dropped + eng_trace.dropped,
                events,
            })
        }
        _ => None,
    };

    Ok(DistRun {
        result: totals.into_sim_result(n as u64, cfg.measure_cycles, total_cycles),
        trace,
        workers: stats,
    })
}
