//! The routing abstraction behind the simulation engines.
//!
//! Simulators ask one question per hop: *which neighbor moves this packet
//! one step closer to its destination?* [`Router`] answers it behind a
//! trait so two very different implementations can plug into the same
//! engine:
//!
//! - [`RoutingTable`] — an all-pairs BFS table. Works on **any** CSR, but
//!   costs `O(N²)` memory and `O(N·M)` precompute, which caps it at 65,536
//!   nodes (a 2^20-node CN would need a 4 TB table).
//! - [`ShortestTupleRouter`] — arithmetic routing over
//!   [`ipg_core::TupleNetwork`] codec digits: `O(l!·2^l)` tables built once
//!   from the *nucleus* (size `m`, not `N = m^l`), then `next_hop(u, d)`
//!   is computed per query with **O(1) memory per node pair**. This is what
//!   makes hierarchical networks at paper scale simulatable at all.
//!
//! Both produce exact shortest paths; they may differ in *which* shortest
//! path they pick (the table hash-spreads ties, the codec router uses a
//! fixed neighbor order), so swapping routers changes per-link load
//! patterns but never path lengths.
//!
//! # Fault awareness
//!
//! Under a fault campaign the engines route through
//! [`Router::next_hop_faulted`], which also sees the current
//! [`FaultView`]. The default implementation ignores the view — a
//! fault-*oblivious* router keeps steering packets into dead equipment,
//! which is exactly the non-adaptive baseline the fault sweeps compare
//! against. [`DetourRouter`] is the fault-*aware* implementation: it
//! keeps the inner router's greedy hop whenever that hop is alive and
//! still on a faulted shortest path, and otherwise sidesteps through an
//! alternate neighbor chosen against a cached BFS distance field on the
//! faulted graph.

use ipg_core::algo::UNREACHABLE;
use ipg_core::fault::{bfs_faulted, FaultView};
use ipg_core::graph::Csr;
use ipg_core::tuple_routing::ShortestTupleRouter;
use ipg_core::{IpgError, Result};
use std::collections::VecDeque;
use std::sync::{Arc, PoisonError, RwLock};

use crate::table::RoutingTable;

/// A next-hop oracle over a fixed node-id space. `Sync` because the
/// sharded engine queries it from worker threads concurrently.
pub trait Router: Send + Sync {
    /// Number of nodes in the routed network.
    fn node_count(&self) -> usize;

    /// A neighbor of `u` on a shortest path to `d`, or `None` when `u == d`
    /// or `d` is unreachable from `u`. Must be a pure function of
    /// `(u, d)` — the engine's determinism depends on it.
    fn next_hop(&self, u: u32, d: u32) -> Option<u32>;

    /// Full path `u -> d` (inclusive) by iterating [`Router::next_hop`];
    /// errors with [`IpgError::Unreachable`] when no path exists.
    fn path(&self, u: u32, d: u32) -> Result<Vec<u32>> {
        let mut path = vec![u];
        let mut cur = u;
        while cur != d {
            match self.next_hop(cur, d) {
                Some(next) => {
                    cur = next;
                    path.push(cur);
                }
                None => return Err(IpgError::Unreachable { from: u, to: d }),
            }
        }
        Ok(path)
    }

    /// Next hop under a fault campaign. `None` means the router has no
    /// usable hop — the engines account the packet as dropped-unreachable.
    ///
    /// The default ignores `view`: a fault-oblivious router keeps issuing
    /// its healthy-graph hop even into dead links/nodes (such packets
    /// strand or get dropped at arrival — the non-adaptive baseline).
    /// Must be a pure function of `(u, d, view)`.
    #[inline]
    fn next_hop_faulted(&self, u: u32, d: u32, view: &FaultView) -> Option<u32> {
        let _ = view;
        self.next_hop(u, d)
    }

    /// Full path `u -> d` on the faulted graph by iterating
    /// [`Router::next_hop_faulted`]. Errors with [`IpgError::Unreachable`]
    /// when the router gives up, emits a hop across dead equipment (a
    /// fault-oblivious router will), or fails to arrive within
    /// `node_count()` hops (the bound turns a routing cycle on the
    /// faulted graph into an error instead of a livelock).
    fn path_faulted(&self, u: u32, d: u32, view: &FaultView) -> Result<Vec<u32>> {
        let unreachable = || IpgError::Unreachable { from: u, to: d };
        let mut path = vec![u];
        let mut cur = u;
        while cur != d {
            let next = self
                .next_hop_faulted(cur, d, view)
                .ok_or_else(unreachable)?;
            if !view.arc_usable(cur, next) {
                return Err(unreachable());
            }
            cur = next;
            path.push(cur);
            if path.len() > self.node_count() {
                return Err(unreachable());
            }
        }
        Ok(path)
    }
}

impl<T: Router + ?Sized> Router for Box<T> {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    #[inline]
    fn next_hop(&self, u: u32, d: u32) -> Option<u32> {
        (**self).next_hop(u, d)
    }

    fn path(&self, u: u32, d: u32) -> Result<Vec<u32>> {
        (**self).path(u, d)
    }

    #[inline]
    fn next_hop_faulted(&self, u: u32, d: u32, view: &FaultView) -> Option<u32> {
        (**self).next_hop_faulted(u, d, view)
    }

    fn path_faulted(&self, u: u32, d: u32, view: &FaultView) -> Result<Vec<u32>> {
        (**self).path_faulted(u, d, view)
    }
}

impl Router for RoutingTable {
    fn node_count(&self) -> usize {
        RoutingTable::node_count(self)
    }

    #[inline]
    fn next_hop(&self, u: u32, d: u32) -> Option<u32> {
        // The dense table stores `u` itself as the sentinel for both
        // `u == d` and "unreachable".
        let next = RoutingTable::next_hop(self, u, d);
        if next == u {
            None
        } else {
            Some(next)
        }
    }

    fn path(&self, u: u32, d: u32) -> Result<Vec<u32>> {
        RoutingTable::path(self, u, d)
    }
}

impl Router for ShortestTupleRouter {
    fn node_count(&self) -> usize {
        self.network().node_count()
    }

    #[inline]
    fn next_hop(&self, u: u32, d: u32) -> Option<u32> {
        ShortestTupleRouter::next_hop(self, u, d)
    }

    fn path(&self, u: u32, d: u32) -> Result<Vec<u32>> {
        ShortestTupleRouter::path(self, u, d)
    }
}

/// Per-destination BFS distance fields on the faulted graph, valid for
/// one fault epoch. FIFO-evicted at a fixed entry cap so memory stays
/// bounded and deterministic; entries are pure functions of
/// `(destination, epoch)`, so lock timing can never change a result.
struct DetourCache {
    epoch: u64,
    fields: Vec<Option<Arc<Vec<u32>>>>,
    order: VecDeque<u32>,
}

/// Budget for cached distance fields: ≈ 64 MiB of `u32` entries.
const DETOUR_CACHE_BYTES: usize = 64 << 20;

/// The fault-aware adaptive router: wraps any inner [`Router`] and
/// consults a [`FaultView`] per hop.
///
/// Healthy network (`view.is_empty()`): delegates verbatim to the inner
/// router, so schedules degenerate byte-for-byte to the inner router's.
///
/// Faulted network: looks up (or BFS-recomputes, once per destination per
/// fault epoch) the hop-distance field of the *faulted* graph from the
/// destination, then
///
/// 1. keeps the inner router's greedy hop when that hop is alive and
///    strictly decreases faulted distance (the codec hop survives
///    whenever it can), and otherwise
/// 2. detours through the first alive neighbor — nucleus arcs first, then
///    super-generators, i.e. the CSR neighbor order — that strictly
///    decreases faulted distance.
///
/// Every hop strictly decreases the faulted distance, so paths are exact
/// shortest on the faulted graph (the "detour bound" is zero extra hops)
/// and livelock is impossible. Unreachable destinations (or dead
/// endpoints) yield `None`, which the engines account as
/// dropped-unreachable.
pub struct DetourRouter<R: Router> {
    inner: R,
    graph: Csr,
    cache: RwLock<DetourCache>,
    cache_cap: usize,
}

/// The codec-routing instantiation used for super-IP networks — the
/// `--faults` adaptive router in `ipg simulate`.
pub type DetourTupleRouter = DetourRouter<ShortestTupleRouter>;

impl<R: Router> DetourRouter<R> {
    /// Wrap `inner` with fault awareness over `graph` (the same topology
    /// the inner router answers for). Errors when the node counts
    /// disagree or `graph` is not symmetric — detouring relies on
    /// faulted-graph distances being symmetric.
    pub fn new(inner: R, graph: Csr) -> Result<Self> {
        if inner.node_count() != graph.node_count() {
            return Err(IpgError::InvalidSpec {
                reason: format!(
                    "detour router: inner router covers {} nodes but the graph has {}",
                    inner.node_count(),
                    graph.node_count()
                ),
            });
        }
        if !graph.is_symmetric() {
            return Err(IpgError::InvalidSpec {
                reason: "detour router requires a symmetric (undirected) graph".into(),
            });
        }
        let n = graph.node_count();
        let cache_cap = (DETOUR_CACHE_BYTES / (4 * n.max(1))).clamp(16, n.max(16));
        Ok(DetourRouter {
            inner,
            graph,
            cache: RwLock::new(DetourCache {
                epoch: 0,
                fields: vec![None; n],
                order: VecDeque::new(),
            }),
            cache_cap,
        })
    }

    /// The wrapped fault-oblivious router.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Faulted-graph BFS distances from `d`, cached per fault epoch.
    fn field(&self, d: u32, view: &FaultView) -> Arc<Vec<u32>> {
        {
            let cache = self.cache.read().unwrap_or_else(PoisonError::into_inner);
            if cache.epoch == view.epoch() {
                if let Some(f) = &cache.fields[d as usize] {
                    return Arc::clone(f);
                }
            }
        }
        let mut cache = self.cache.write().unwrap_or_else(PoisonError::into_inner);
        if cache.epoch != view.epoch() {
            // new fault epoch: every cached field is stale
            cache.fields.iter_mut().for_each(|f| *f = None);
            cache.order.clear();
            cache.epoch = view.epoch();
        }
        if let Some(f) = &cache.fields[d as usize] {
            return Arc::clone(f); // raced: another thread computed it
        }
        let field = Arc::new(bfs_faulted(&self.graph, view, d));
        cache.fields[d as usize] = Some(Arc::clone(&field));
        cache.order.push_back(d);
        if cache.order.len() > self.cache_cap {
            if let Some(old) = cache.order.pop_front() {
                cache.fields[old as usize] = None;
            }
        }
        field
    }
}

impl<R: Router> Router for DetourRouter<R> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    #[inline]
    fn next_hop(&self, u: u32, d: u32) -> Option<u32> {
        self.inner.next_hop(u, d)
    }

    fn path(&self, u: u32, d: u32) -> Result<Vec<u32>> {
        self.inner.path(u, d)
    }

    fn next_hop_faulted(&self, u: u32, d: u32, view: &FaultView) -> Option<u32> {
        if view.is_empty() {
            return self.inner.next_hop(u, d);
        }
        if u == d || view.node_dead(u) || view.node_dead(d) {
            return None;
        }
        let df = self.field(d, view);
        let du = df[u as usize];
        if du == UNREACHABLE {
            return None;
        }
        if let Some(h) = self.inner.next_hop(u, d) {
            if view.arc_usable(u, h) && df[h as usize] < du {
                return Some(h);
            }
        }
        self.graph
            .neighbors(u)
            .iter()
            .copied()
            .find(|&v| view.arc_usable(u, v) && df[v as usize] < du)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_core::algo;
    use ipg_core::superip::{NucleusSpec, SuperIpSpec, TupleNetwork};

    #[test]
    fn both_impls_agree_on_path_lengths() {
        let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2));
        let g = spec.fast_undirected_csr().unwrap();
        let table = RoutingTable::new(&g);
        let tn = TupleNetwork::from_spec(&spec).unwrap();
        let codec = ShortestTupleRouter::new(tn).unwrap();
        assert_eq!(Router::node_count(&table), Router::node_count(&codec));
        let n = g.node_count() as u32;
        for u in 0..n {
            let dist = algo::bfs(&g, u);
            for d in 0..n {
                let pt = Router::path(&table, d, u).unwrap();
                let pc = Router::path(&codec, d, u).unwrap();
                assert_eq!(pt.len(), pc.len(), "{d}->{u}");
                assert_eq!(pt.len() - 1, dist[d as usize] as usize);
                for w in pc.windows(2) {
                    assert!(g.has_arc(w[0], w[1]), "codec hop {w:?} not a link");
                }
            }
        }
    }

    #[test]
    fn detour_router_degenerates_and_detours() {
        let g = ipg_networks::classic::ring(8);
        let inner = RoutingTable::new(&g);
        let det = DetourRouter::new(RoutingTable::new(&g), g.clone()).unwrap();

        // zero faults: byte-for-byte the inner router's hops
        let healthy = FaultView::new(8);
        for u in 0..8 {
            for d in 0..8 {
                assert_eq!(
                    det.next_hop_faulted(u, d, &healthy),
                    Router::next_hop(&inner, u, d),
                    "{u}->{d} must degenerate to the inner router"
                );
            }
        }

        // cut {0, 1}: 0 -> 1 must go the long way round, and stay exact
        // shortest on the faulted graph
        let mut cut = FaultView::new(8);
        cut.kill_link(0, 1);
        let p = det.path_faulted(0, 1, &cut).unwrap();
        assert_eq!(p.len(), 8, "7 hops around the ring: {p:?}");
        for w in p.windows(2) {
            assert!(g.has_arc(w[0], w[1]) && cut.arc_usable(w[0], w[1]));
        }

        // a dead endpoint or a severed destination yields None / Unreachable
        let mut dead = FaultView::new(8);
        dead.kill_node(3);
        assert_eq!(det.next_hop_faulted(0, 3, &dead), None);
        assert_eq!(det.next_hop_faulted(3, 0, &dead), None);
        let mut severed = FaultView::new(8);
        severed.kill_link(2, 3);
        severed.kill_link(3, 4);
        assert!(det.path_faulted(0, 3, &severed).is_err());

        // the oblivious default keeps issuing its healthy hop...
        assert_eq!(
            Router::next_hop_faulted(&inner, 0, 1, &cut),
            Router::next_hop(&inner, 0, 1)
        );
        // ...so its faulted path errors instead of livelocking
        assert!(matches!(
            inner.path_faulted(0, 1, &cut),
            Err(IpgError::Unreachable { from: 0, to: 1 })
        ));
    }

    #[test]
    fn detour_router_rejects_mismatched_or_directed_graphs() {
        let ring = ipg_networks::classic::ring(8);
        let small = ipg_networks::classic::ring(4);
        assert!(DetourRouter::new(RoutingTable::new(&ring), small).is_err());
        let directed = ipg_core::Csr::from_fn(4, |u, out| out.push((u + 1) % 4));
        assert!(DetourRouter::new(RoutingTable::new(&directed), directed.clone()).is_err());
    }

    #[test]
    fn table_next_hop_maps_sentinel_to_none() {
        let g = ipg_core::Csr::from_fn(6, |u, out| {
            // two disconnected triangles
            let base = u - u % 3;
            out.push(base + (u + 1) % 3);
            out.push(base + (u + 2) % 3);
        });
        let table = RoutingTable::new(&g);
        assert_eq!(Router::next_hop(&table, 2, 2), None, "self route");
        assert_eq!(Router::next_hop(&table, 0, 4), None, "unreachable");
        assert!(Router::next_hop(&table, 0, 2).is_some());
        assert!(Router::path(&table, 0, 5).is_err());
    }
}
