//! The routing abstraction behind the simulation engines.
//!
//! Simulators ask one question per hop: *which neighbor moves this packet
//! one step closer to its destination?* [`Router`] answers it behind a
//! trait so two very different implementations can plug into the same
//! engine:
//!
//! - [`RoutingTable`] — an all-pairs BFS table. Works on **any** CSR, but
//!   costs `O(N²)` memory and `O(N·M)` precompute, which caps it at 65,536
//!   nodes (a 2^20-node CN would need a 4 TB table).
//! - [`ShortestTupleRouter`] — arithmetic routing over
//!   [`ipg_core::TupleNetwork`] codec digits: `O(l!·2^l)` tables built once
//!   from the *nucleus* (size `m`, not `N = m^l`), then `next_hop(u, d)`
//!   is computed per query with **O(1) memory per node pair**. This is what
//!   makes hierarchical networks at paper scale simulatable at all.
//!
//! Both produce exact shortest paths; they may differ in *which* shortest
//! path they pick (the table hash-spreads ties, the codec router uses a
//! fixed neighbor order), so swapping routers changes per-link load
//! patterns but never path lengths.

use ipg_core::tuple_routing::ShortestTupleRouter;
use ipg_core::{IpgError, Result};

use crate::table::RoutingTable;

/// A next-hop oracle over a fixed node-id space. `Sync` because the
/// sharded engine queries it from worker threads concurrently.
pub trait Router: Send + Sync {
    /// Number of nodes in the routed network.
    fn node_count(&self) -> usize;

    /// A neighbor of `u` on a shortest path to `d`, or `None` when `u == d`
    /// or `d` is unreachable from `u`. Must be a pure function of
    /// `(u, d)` — the engine's determinism depends on it.
    fn next_hop(&self, u: u32, d: u32) -> Option<u32>;

    /// Full path `u -> d` (inclusive) by iterating [`Router::next_hop`];
    /// errors with [`IpgError::Unreachable`] when no path exists.
    fn path(&self, u: u32, d: u32) -> Result<Vec<u32>> {
        let mut path = vec![u];
        let mut cur = u;
        while cur != d {
            match self.next_hop(cur, d) {
                Some(next) => {
                    cur = next;
                    path.push(cur);
                }
                None => return Err(IpgError::Unreachable { from: u, to: d }),
            }
        }
        Ok(path)
    }
}

impl<T: Router + ?Sized> Router for Box<T> {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    #[inline]
    fn next_hop(&self, u: u32, d: u32) -> Option<u32> {
        (**self).next_hop(u, d)
    }

    fn path(&self, u: u32, d: u32) -> Result<Vec<u32>> {
        (**self).path(u, d)
    }
}

impl Router for RoutingTable {
    fn node_count(&self) -> usize {
        RoutingTable::node_count(self)
    }

    #[inline]
    fn next_hop(&self, u: u32, d: u32) -> Option<u32> {
        // The dense table stores `u` itself as the sentinel for both
        // `u == d` and "unreachable".
        let next = RoutingTable::next_hop(self, u, d);
        if next == u {
            None
        } else {
            Some(next)
        }
    }

    fn path(&self, u: u32, d: u32) -> Result<Vec<u32>> {
        RoutingTable::path(self, u, d)
    }
}

impl Router for ShortestTupleRouter {
    fn node_count(&self) -> usize {
        self.network().node_count()
    }

    #[inline]
    fn next_hop(&self, u: u32, d: u32) -> Option<u32> {
        ShortestTupleRouter::next_hop(self, u, d)
    }

    fn path(&self, u: u32, d: u32) -> Result<Vec<u32>> {
        ShortestTupleRouter::path(self, u, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_core::algo;
    use ipg_core::superip::{NucleusSpec, SuperIpSpec, TupleNetwork};

    #[test]
    fn both_impls_agree_on_path_lengths() {
        let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2));
        let g = spec.fast_undirected_csr().unwrap();
        let table = RoutingTable::new(&g);
        let tn = TupleNetwork::from_spec(&spec).unwrap();
        let codec = ShortestTupleRouter::new(tn).unwrap();
        assert_eq!(Router::node_count(&table), Router::node_count(&codec));
        let n = g.node_count() as u32;
        for u in 0..n {
            let dist = algo::bfs(&g, u);
            for d in 0..n {
                let pt = Router::path(&table, d, u).unwrap();
                let pc = Router::path(&codec, d, u).unwrap();
                assert_eq!(pt.len(), pc.len(), "{d}->{u}");
                assert_eq!(pt.len() - 1, dist[d as usize] as usize);
                for w in pc.windows(2) {
                    assert!(g.has_arc(w[0], w[1]), "codec hop {w:?} not a link");
                }
            }
        }
    }

    #[test]
    fn table_next_hop_maps_sentinel_to_none() {
        let g = ipg_core::Csr::from_fn(6, |u, out| {
            // two disconnected triangles
            let base = u - u % 3;
            out.push(base + (u + 1) % 3);
            out.push(base + (u + 2) % 3);
        });
        let table = RoutingTable::new(&g);
        assert_eq!(Router::next_hop(&table, 2, 2), None, "self route");
        assert_eq!(Router::next_hop(&table, 0, 4), None, "unreachable");
        assert!(Router::next_hop(&table, 0, 2).is_some());
        assert!(Router::path(&table, 0, 5).is_err());
    }
}
