//! Per-node deterministic RNG streams.
//!
//! The sharded engine (and the wormhole simulator) draw randomness from one
//! independent stream per node instead of a single global generator. This is
//! what makes parallel cycle execution deterministic: a node's draws depend
//! only on `(config seed, node id, how many draws the node has made)` — never
//! on the order in which shards interleave, the worker count, or which other
//! nodes happened to inject this cycle.
//!
//! This module is the **only** place in `ipg-sim` allowed to name the
//! concrete generator or its seeding API; `ipg-analyze` rule DET004 rejects
//! `SmallRng` / `SeedableRng` / `seed_from_u64` tokens inside `engine.rs`
//! and `wormhole.rs` so a global-RNG regression cannot slip back in.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One node's private generator. A thin newtype over the vendored
/// xoshiro256++ [`SmallRng`] — the wrapper exists so simulation code can
/// hold and pass RNG state without naming the underlying type.
#[derive(Clone, Debug)]
pub struct NodeRng(SmallRng);

impl rand::RngCore for NodeRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Derive node `node`'s stream from the run seed.
///
/// The node id is avalanche-mixed (SplitMix64-style finalizer) before being
/// XORed into the seed so that consecutive node ids land in unrelated
/// regions of the seed space — `seed ^ node` alone would give sibling nodes
/// seeds differing in a couple of low bits, which correlates the first few
/// draws of the underlying generator.
pub fn node_stream(seed: u64, node: u32) -> NodeRng {
    let mut z = (u64::from(node)).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    NodeRng(SmallRng::seed_from_u64(seed ^ z))
}

/// Derive the stream for the undirected link `{u, v}` from the run seed.
///
/// Symmetric in its endpoints (the pair is canonicalized to `min, max`
/// before mixing) so both directions of a link share one stream, and built
/// from the same SplitMix64 finalizer as [`node_stream`] — the pair is
/// packed into one 64-bit word, so two distinct links never alias. The
/// rate-based fault mode draws per-link kill decisions from here; drawing
/// them from a node's stream would perturb that node's injection sequence
/// and break byte-identity against the no-fault run.
pub fn edge_stream(seed: u64, u: u32, v: u32) -> NodeRng {
    let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
    let mut z = ((u64::from(hi) << 32) | u64::from(lo)).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    NodeRng(SmallRng::seed_from_u64(seed ^ !z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a1: Vec<u64> = (0..8)
            .map({
                let mut r = node_stream(7, 3);
                move |_| r.gen::<u64>()
            })
            .collect();
        let a2: Vec<u64> = (0..8)
            .map({
                let mut r = node_stream(7, 3);
                move |_| r.gen::<u64>()
            })
            .collect();
        assert_eq!(a1, a2, "same (seed, node) must replay the same stream");

        let b: Vec<u64> = (0..8)
            .map({
                let mut r = node_stream(7, 4);
                move |_| r.gen::<u64>()
            })
            .collect();
        assert_ne!(a1, b, "adjacent nodes must get unrelated streams");

        let c: Vec<u64> = (0..8)
            .map({
                let mut r = node_stream(8, 3);
                move |_| r.gen::<u64>()
            })
            .collect();
        assert_ne!(a1, c, "different run seeds must change every stream");
    }

    #[test]
    fn edge_streams_are_symmetric_and_distinct() {
        let draws = |mut r: NodeRng| -> Vec<u64> { (0..8).map(|_| r.gen::<u64>()).collect() };
        let uv = draws(edge_stream(7, 3, 9));
        let vu = draws(edge_stream(7, 9, 3));
        assert_eq!(uv, vu, "both directions of a link must share one stream");
        assert_ne!(
            uv,
            draws(edge_stream(7, 3, 10)),
            "different links must get unrelated streams"
        );
        assert_ne!(
            uv,
            draws(edge_stream(8, 3, 9)),
            "different run seeds must change every stream"
        );
        assert_ne!(
            draws(edge_stream(7, 0, 9)),
            draws(node_stream(7, 9)),
            "edge and node domains must not alias"
        );
    }

    #[test]
    fn adjacent_nodes_do_not_correlate_in_early_draws() {
        // With naive `seed ^ node` seeding, nodes 0/1 start from seeds
        // differing in one bit. The mixed scheme must decorrelate the very
        // first Bernoulli draw across a block of consecutive nodes.
        let seed = 0x5eed_1b9a_44c0_ffee;
        let hits = (0..1000u32)
            .filter(|&n| node_stream(seed, n).gen_bool(0.5))
            .count();
        assert!(
            (400..=600).contains(&hits),
            "first draws look biased across nodes: {hits}/1000"
        );
    }
}
