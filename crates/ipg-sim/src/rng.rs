//! Per-node deterministic RNG streams.
//!
//! The sharded engine (and the wormhole simulator) draw randomness from one
//! independent stream per node instead of a single global generator. This is
//! what makes parallel cycle execution deterministic: a node's draws depend
//! only on `(config seed, node id, how many draws the node has made)` — never
//! on the order in which shards interleave, the worker count, or which other
//! nodes happened to inject this cycle.
//!
//! This module is the **only** place in `ipg-sim` allowed to name the
//! concrete generator or its seeding API; `ipg-analyze` rule DET004 rejects
//! `SmallRng` / `SeedableRng` / `seed_from_u64` tokens inside `engine.rs`
//! and `wormhole.rs` so a global-RNG regression cannot slip back in.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One node's private generator. A thin newtype over the vendored
/// xoshiro256++ [`SmallRng`] — the wrapper exists so simulation code can
/// hold and pass RNG state without naming the underlying type.
#[derive(Clone, Debug)]
pub struct NodeRng(SmallRng);

impl rand::RngCore for NodeRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Derive node `node`'s stream from the run seed.
///
/// The node id is avalanche-mixed (SplitMix64-style finalizer) before being
/// XORed into the seed so that consecutive node ids land in unrelated
/// regions of the seed space — `seed ^ node` alone would give sibling nodes
/// seeds differing in a couple of low bits, which correlates the first few
/// draws of the underlying generator.
pub fn node_stream(seed: u64, node: u32) -> NodeRng {
    let mut z = (u64::from(node)).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    NodeRng(SmallRng::seed_from_u64(seed ^ z))
}

/// Derive the stream for the undirected link `{u, v}` from the run seed.
///
/// Symmetric in its endpoints (the pair is canonicalized to `min, max`
/// before mixing) so both directions of a link share one stream, and built
/// from the same SplitMix64 finalizer as [`node_stream`] — the pair is
/// packed into one 64-bit word, so two distinct links never alias. The
/// rate-based fault mode draws per-link kill decisions from here; drawing
/// them from a node's stream would perturb that node's injection sequence
/// and break byte-identity against the no-fault run.
pub fn edge_stream(seed: u64, u: u32, v: u32) -> NodeRng {
    let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
    let mut z = ((u64::from(hi) << 32) | u64::from(lo)).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    NodeRng(SmallRng::seed_from_u64(seed ^ !z))
}

/// Integer Bernoulli threshold: `(next_u64() >> 11) < threshold` decides
/// exactly like `rng.gen::<f64>() < rate` while skipping the int→float
/// conversion and float compare in the hottest loop the engine has (one
/// draw per node per cycle, every cycle).
///
/// Exactness: the vendored `Standard` f64 is `k·2⁻⁵³` with
/// `k = next_u64() >> 11`, and both `k·2⁻⁵³` and `rate` are exact f64
/// values, so `k·2⁻⁵³ < rate  ⟺  k < rate·2⁵³` over the reals. Scaling
/// by `2⁵³` is a pure exponent shift (no rounding), and taking `ceil`
/// makes `k < threshold` match the strict real inequality whether or not
/// `rate·2⁵³` is integral.
#[inline]
pub fn bernoulli_threshold(rate: f64) -> u64 {
    const TWO_53: f64 = 9_007_199_254_740_992.0;
    let t = (rate.max(0.0) * TWO_53).ceil();
    if t >= TWO_53 {
        1u64 << 53 // rate ≥ 1.0: every 53-bit draw passes
    } else {
        t as u64
    }
}

/// One Bernoulli trial against a [`bernoulli_threshold`]: consumes exactly
/// one `next_u64`, same decision as `rng.gen::<f64>() < rate`.
#[inline]
pub fn bernoulli(rng: &mut NodeRng, threshold: u64) -> bool {
    use rand::RngCore;
    (rng.next_u64() >> 11) < threshold
}

/// Cycles covered per [`InjectionSchedule::refill`]. Large enough that a
/// node's generator state stays in registers across a whole chunk of
/// Bernoulli draws (the dense engine re-touches every node's ~32-byte
/// state every cycle — pure memory traffic at low injection rates);
/// small enough that a shard's per-cycle event buckets stay cache-sized.
pub const SCHEDULE_CHUNK: u32 = 256;

/// Chunked injection schedule: the sparse engines' replacement for the
/// per-cycle "every node draws its Bernoulli" loop.
///
/// A node's stream position depends only on how many draws it has made
/// ([`node_stream`]), so its next `SCHEDULE_CHUNK` cycles of injection
/// decisions can be drawn **ahead of time, node-major** — the per-node
/// draw sequence (and therefore every drawn value) is identical to the
/// dense cycle-major order, because streams never interleave across
/// nodes. The refill records `(node, destination)` events bucketed by
/// cycle; the per-cycle hot path then touches only nodes that actually
/// inject.
///
/// Nodes dead at refill time are skipped (they can never draw again —
/// kills are permanent). Nodes that die *mid-chunk* have events already
/// recorded past their death; callers must filter those at execution
/// time with the same `node_dead` check the dense loop used. The extra
/// pre-drawn values are unobservable: a dead node's stream is never
/// consulted again.
#[derive(Default)]
pub struct InjectionSchedule {
    /// First cycle the current chunk covers.
    base: u32,
    /// Cycles covered (0 = nothing buffered; forces a refill).
    span: u32,
    /// Per cycle-offset event buckets: `(local node, destination)` in
    /// node order — the order the dense injection loop used.
    buckets: Vec<Vec<(u32, u32)>>,
}

impl InjectionSchedule {
    /// Forget any buffered chunk (keeps allocations). Call at run start.
    pub fn reset(&mut self) {
        self.base = 0;
        self.span = 0;
        for b in &mut self.buckets {
            b.clear();
        }
    }

    /// Does `cycle` fall outside the buffered chunk?
    #[inline]
    pub fn needs_refill(&self, cycle: u32) -> bool {
        self.span == 0 || cycle < self.base || cycle >= self.base + self.span
    }

    /// Draw injection decisions for the half-open `cycles` range from
    /// each live node's stream. `skip(local)` exempts dead nodes from
    /// drawing; `pick(local, rng)` draws the destination exactly as the
    /// dense path would (returning `None` for self-mapped patterns, which
    /// consume their draws but inject nothing).
    pub fn refill(
        &mut self,
        cycles: core::ops::Range<u32>,
        node_count: u32,
        rate: f64,
        rngs: &mut [NodeRng],
        mut skip: impl FnMut(u32) -> bool,
        mut pick: impl FnMut(u32, &mut NodeRng) -> Option<u32>,
    ) {
        let span = cycles.end - cycles.start;
        self.base = cycles.start;
        self.span = span;
        if self.buckets.len() < span as usize {
            // ipg-analyze: allow(ALLOC001) reason="buckets grow once to the refill-window span, then are cleared and recycled; steady state allocates nothing"
            self.buckets.resize_with(span as usize, Vec::new);
        }
        for b in &mut self.buckets[..span as usize] {
            b.clear();
        }
        let threshold = bernoulli_threshold(rate);
        for local in 0..node_count {
            if skip(local) {
                continue;
            }
            let rng = &mut rngs[local as usize];
            for off in 0..span {
                if !bernoulli(rng, threshold) {
                    continue;
                }
                if let Some(dst) = pick(local, rng) {
                    self.buckets[off as usize].push((local, dst));
                }
            }
        }
    }

    /// The `(local node, destination)` events due at `cycle`, in node
    /// order. Empty when the cycle holds no injections.
    #[inline]
    pub fn due(&self, cycle: u32) -> &[(u32, u32)] {
        debug_assert!(!self.needs_refill(cycle), "schedule not refilled");
        &self.buckets[(cycle - self.base) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a1: Vec<u64> = (0..8)
            .map({
                let mut r = node_stream(7, 3);
                move |_| r.gen::<u64>()
            })
            .collect();
        let a2: Vec<u64> = (0..8)
            .map({
                let mut r = node_stream(7, 3);
                move |_| r.gen::<u64>()
            })
            .collect();
        assert_eq!(a1, a2, "same (seed, node) must replay the same stream");

        let b: Vec<u64> = (0..8)
            .map({
                let mut r = node_stream(7, 4);
                move |_| r.gen::<u64>()
            })
            .collect();
        assert_ne!(a1, b, "adjacent nodes must get unrelated streams");

        let c: Vec<u64> = (0..8)
            .map({
                let mut r = node_stream(8, 3);
                move |_| r.gen::<u64>()
            })
            .collect();
        assert_ne!(a1, c, "different run seeds must change every stream");
    }

    #[test]
    fn edge_streams_are_symmetric_and_distinct() {
        let draws = |mut r: NodeRng| -> Vec<u64> { (0..8).map(|_| r.gen::<u64>()).collect() };
        let uv = draws(edge_stream(7, 3, 9));
        let vu = draws(edge_stream(7, 9, 3));
        assert_eq!(uv, vu, "both directions of a link must share one stream");
        assert_ne!(
            uv,
            draws(edge_stream(7, 3, 10)),
            "different links must get unrelated streams"
        );
        assert_ne!(
            uv,
            draws(edge_stream(8, 3, 9)),
            "different run seeds must change every stream"
        );
        assert_ne!(
            draws(edge_stream(7, 0, 9)),
            draws(node_stream(7, 9)),
            "edge and node domains must not alias"
        );
    }

    #[test]
    fn chunked_schedule_replays_the_dense_cycle_major_order() {
        // Dense reference: cycle-major iteration, one Bernoulli (+ one
        // destination draw on a hit) per node per cycle.
        let seed = 99u64;
        let (nodes, span, rate) = (16u32, 32u32, 0.3f64);
        let pick = |local: u32, rng: &mut NodeRng| -> Option<u32> {
            let mut d = rng.gen_range(0..nodes - 1);
            if d >= local {
                d += 1;
            }
            Some(d)
        };
        let mut dense_rngs: Vec<NodeRng> = (0..nodes).map(|v| node_stream(seed, v)).collect();
        let mut dense: Vec<Vec<(u32, u32)>> = vec![Vec::new(); span as usize];
        for cycle in 0..span {
            for local in 0..nodes {
                let rng = &mut dense_rngs[local as usize];
                if rng.gen::<f64>() < rate {
                    if let Some(d) = pick(local, rng) {
                        dense[cycle as usize].push((local, d));
                    }
                }
            }
        }
        let mut sparse_rngs: Vec<NodeRng> = (0..nodes).map(|v| node_stream(seed, v)).collect();
        let mut sched = InjectionSchedule::default();
        sched.refill(0..span, nodes, rate, &mut sparse_rngs, |_| false, pick);
        for cycle in 0..span {
            assert_eq!(
                sched.due(cycle),
                &dense[cycle as usize][..],
                "cycle {cycle}: node-major chunk must replay the dense order"
            );
        }
        assert!(
            dense.iter().any(|b| !b.is_empty()),
            "test must exercise non-empty buckets"
        );
    }

    #[test]
    fn adjacent_nodes_do_not_correlate_in_early_draws() {
        // With naive `seed ^ node` seeding, nodes 0/1 start from seeds
        // differing in one bit. The mixed scheme must decorrelate the very
        // first Bernoulli draw across a block of consecutive nodes.
        let seed = 0x5eed_1b9a_44c0_ffee;
        let hits = (0..1000u32)
            .filter(|&n| node_stream(seed, n).gen_bool(0.5))
            .count();
        assert!(
            (400..=600).contains(&hits),
            "first draws look biased across nodes: {hits}/1000"
        );
    }
}
