//! Observability must not perturb, and must not be perturbed by, the
//! simulation: the metric dump is a pure function of the computation.
//!
//! The `ipg-obs` contract splits manifest records into two families:
//! `window` and `metrics` records carry only computation-derived values
//! (counters, gauges, histogram summaries) in sorted name order, while
//! wall-clock time is confined to `meta`, `span` and `rate` records.
//! Hence two runs with the same `SimConfig.seed` must produce
//! byte-identical metric dumps — and runs with and without observability
//! attached must report identical simulation results.

use ipg_networks::classic;
use ipg_obs::Obs;
use ipg_sim::engine::{run_uniform, run_uniform_instrumented, SimConfig, SimResult};

fn cfg(seed: u64) -> SimConfig {
    SimConfig {
        injection_rate: 0.08,
        warmup_cycles: 200,
        measure_cycles: 500,
        drain_cycles: 400,
        seed,
        ..SimConfig::default()
    }
}

/// One instrumented run: returns (SimResult, final metric dump, the
/// deterministic record lines of the manifest).
fn run_once(seed: u64) -> (SimResult, String, String) {
    let g = classic::hypercube(6);
    let (obs, mem) = Obs::in_memory();
    let result = run_uniform_instrumented(&g, &cfg(seed), &obs, 100);
    let metrics = obs.metrics_json();
    obs.finish();
    let deterministic: Vec<String> = mem
        .contents()
        .lines()
        .filter(|l| {
            l.starts_with("{\"record\":\"window\"") || l.starts_with("{\"record\":\"metrics\"")
        })
        .map(str::to_string)
        .collect();
    assert!(
        !deterministic.is_empty(),
        "expected window snapshots and a final metrics record"
    );
    (result, metrics, deterministic.join("\n"))
}

#[test]
fn same_seed_gives_byte_identical_metric_dumps() {
    let (r1, m1, lines1) = run_once(42);
    let (r2, m2, lines2) = run_once(42);
    assert_eq!(r1, r2, "simulation results must match");
    assert_eq!(m1, m2, "metric dumps must be byte-identical");
    assert_eq!(
        lines1, lines2,
        "window/metrics records must be byte-identical"
    );
    assert!(!m1.is_empty());
}

#[test]
fn different_seed_changes_the_metric_dump() {
    let (_, m1, _) = run_once(42);
    let (_, m2, _) = run_once(43);
    assert_ne!(m1, m2, "different traffic must show up in the metrics");
}

#[test]
fn observability_does_not_change_results() {
    let g = classic::hypercube(6);
    let plain = run_uniform(&g, &cfg(7));
    let (obs, _mem) = Obs::in_memory();
    let watched = run_uniform_instrumented(&g, &cfg(7), &obs, 50);
    assert_eq!(plain, watched, "attaching obs must not perturb the run");
}

#[test]
fn tracing_does_not_change_results_or_deterministic_records() {
    // The flight recorder must be invisible to both the simulation and
    // the deterministic manifest families: results, the metric dump,
    // and window records are byte-identical with tracing on and off.
    use ipg_obs::TraceConfig;
    let g = classic::hypercube(6);
    let run = |trace: Option<&TraceConfig>| {
        let (obs, mem) = Obs::in_memory();
        let mut sim = ipg_sim::engine::Simulator::new_instrumented(&g, |_| 0, &cfg(7), &obs);
        let (result, trace_out) = sim.run_traced(&cfg(7), &obs, 100, trace);
        let metrics = obs.metrics_json();
        obs.finish();
        let deterministic: Vec<String> = mem
            .contents()
            .lines()
            .filter(|l| {
                l.starts_with("{\"record\":\"window\"") || l.starts_with("{\"record\":\"metrics\"")
            })
            .map(str::to_string)
            .collect();
        (result, metrics, deterministic.join("\n"), trace_out)
    };
    let tc = TraceConfig::with_interval(64);
    let (r_off, m_off, d_off, t_off) = run(None);
    let (r_on, m_on, d_on, t_on) = run(Some(&tc));
    assert!(t_off.is_none());
    assert_eq!(r_off, r_on, "tracing must not change results");
    assert_eq!(m_off, m_on, "tracing must not change the metric dump");
    assert_eq!(d_off, d_on, "tracing must not change window records");
    assert!(!t_on.unwrap().events.is_empty());
}

#[test]
fn accounting_invariant_holds() {
    // a ring saturates easily: 32 nodes at 0.5 inj/node/cycle with avg
    // distance 8 offer ~2 pkts/cycle/link against capacity 1, so the
    // short drain is guaranteed to leave a backlog
    let g = classic::ring(32);
    let heavy = SimConfig {
        injection_rate: 0.5,
        warmup_cycles: 100,
        measure_cycles: 400,
        drain_cycles: 50,
        ..cfg(3)
    };
    let r = run_uniform(&g, &heavy);
    assert_eq!(
        r.injected,
        r.delivered + r.in_flight_at_end,
        "every tagged packet is delivered or still buffered"
    );
    assert!(r.in_flight_at_end > 0, "short drain must leave a backlog");
    assert!(
        r.unmeasured_delivered > 0,
        "warmup traffic drains unmeasured"
    );
}
