//! # ipgraph — index-permutation graphs for hierarchical interconnection networks
//!
//! Umbrella crate for the reproduction of Yeh & Parhami, *"The
//! Index-Permutation Graph Model for Hierarchical Interconnection
//! Networks"* (ICPP 1999). Re-exports the four workspace crates:
//!
//! - [`core`] (`ipg-core`) — the IP-graph model: labels, generators, graph
//!   generation, super-IP machinery, Theorem-4.1 routing, symmetry checks;
//! - [`networks`] (`ipg-networks`) — the interconnection-network zoo;
//! - [`cluster`] (`ipg-cluster`) — module packings and the DD/ID/II cost
//!   metrics of §5;
//! - [`sim`] (`ipg-sim`) — the packet-level simulator behind the §5 delay
//!   claims.
//!
//! See the `examples/` directory for runnable walkthroughs and
//! `crates/ipg-bench/src/bin` for the figure-regeneration binaries.
//!
//! ```
//! use ipgraph::prelude::*;
//!
//! // HSN(2, Q2) — the paper's Figure 1a network — three ways:
//! let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2));
//! let generated = spec.to_ip_spec().generate().unwrap(); // ball game
//! let tuple = TupleNetwork::from_spec(&spec).unwrap();   // tuple form
//! let direct = ipgraph::networks::hier::hcn(2, false);   // HCN(2,2)
//! assert_eq!(generated.node_count(), 16);
//! assert_eq!(tuple.node_count(), 16);
//! assert_eq!(direct.node_count(), 16);
//! ```

pub use ipg_cluster as cluster;
pub use ipg_core as core;
pub use ipg_layout as layout;
pub use ipg_networks as networks;
pub use ipg_sim as sim;

/// One-stop imports for examples and quick scripts.
pub mod prelude {
    pub use ipg_cluster::analytic;
    pub use ipg_cluster::collective;
    pub use ipg_cluster::costs::{summarize, CostSummary};
    pub use ipg_cluster::imetrics;
    pub use ipg_cluster::partition::{self, Partition};
    pub use ipg_core::algo;
    pub use ipg_core::centrality;
    pub use ipg_core::connectivity;
    pub use ipg_core::prelude::*;
    pub use ipg_core::rank;
    pub use ipg_core::routing;
    pub use ipg_core::solve;
    pub use ipg_core::symmetry;
    pub use ipg_core::tuple_routing::TupleRouter;
    pub use ipg_layout::{bisection, grid};
    pub use ipg_networks::{classic, hier, ipdefs};
    pub use ipg_sim::emulate::HostEmulator;
    pub use ipg_sim::engine::{run_clustered, run_uniform, SimConfig, Switching, Traffic};
}
