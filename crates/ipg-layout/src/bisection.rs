//! Bisection width: the minimum number of edges crossing any balanced
//! bipartition. Determines bisection bandwidth (the §5.1 constraint under
//! which low-dimensional tori win) and lower-bounds VLSI layout area in
//! the Thompson model (`area = Ω(B²)`).

use ipg_core::graph::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Count edges crossing the bipartition given by `side` (undirected
/// graphs: each crossing edge counted once).
pub fn cut_size(g: &Csr, side: &[bool]) -> u32 {
    let mut cut = 0u32;
    for (u, v) in g.arcs() {
        if u < v && side[u as usize] != side[v as usize] {
            cut += 1;
        }
    }
    cut
}

/// Exact bisection width by exhausting all balanced bipartitions.
/// `O(C(n, n/2) · m)` — only for `n ≤ ~24`. For odd `n`, parts of sizes
/// `⌈n/2⌉ / ⌊n/2⌋` are used.
pub fn bisection_width_exact(g: &Csr) -> u32 {
    let n = g.node_count();
    assert!(
        (2..=24).contains(&n),
        "exact bisection is exponential; n ≤ 24"
    );
    let half = n / 2;
    let mut best = u32::MAX;
    let mut side = vec![false; n];
    // iterate over subsets of size `half` that contain node 0 (wlog, by
    // symmetry of the two sides when n even; for odd n fix node 0 in the
    // larger side which is also wlog).
    let mut chosen: Vec<usize> = (0..half).collect(); // positions among 1..n
    loop {
        for s in side.iter_mut() {
            *s = false;
        }
        // node 0 on side A (false); chosen nodes (offset by 1) on side B.
        for &c in &chosen {
            side[c + 1] = true;
        }
        best = best.min(cut_size(g, &side));
        // next combination of `half` elements from 0..n-1
        let k = chosen.len();
        let mut i = k;
        loop {
            if i == 0 {
                return best;
            }
            i -= 1;
            if chosen[i] != i + n - 1 - k {
                chosen[i] += 1;
                for j in i + 1..k {
                    chosen[j] = chosen[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Kernighan–Lin heuristic bisection: repeated improvement passes from
/// `restarts` random balanced starts. Returns an upper bound on the
/// bisection width (exact on well-structured graphs in practice; always
/// ≥ the true width).
pub fn bisection_width_kl(g: &Csr, restarts: usize, seed: u64) -> u32 {
    let n = g.node_count();
    assert!(n >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best = u32::MAX;
    for _ in 0..restarts.max(1) {
        let mut side = random_balanced(n, &mut rng);
        kl_passes(g, &mut side);
        best = best.min(cut_size(g, &side));
    }
    best
}

fn random_balanced(n: usize, rng: &mut SmallRng) -> Vec<bool> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    let mut side = vec![false; n];
    for &v in idx.iter().take(n / 2) {
        side[v] = true;
    }
    side
}

/// Classic Kernighan–Lin passes: within a pass, greedily pick the best
/// (possibly negative-gain) swap among unlocked pairs, lock the pair, and
/// record the cumulative gain; at pass end, keep the best prefix of the
/// swap sequence. Repeat while a pass improves the cut. The locked-swap
/// sequence lets the search climb out of the local minima a pure descent
/// gets stuck in (e.g. the 2-D torus wrap structure).
fn kl_passes(g: &Csr, side: &mut [bool]) {
    let n = g.node_count();
    let mut d = vec![0i64; n];
    let recompute_all = |side: &[bool], d: &mut [i64]| {
        for v in 0..n as u32 {
            let mut diff = 0i64;
            for &w in g.neighbors(v) {
                if side[v as usize] == side[w as usize] {
                    diff -= 1;
                } else {
                    diff += 1;
                }
            }
            d[v as usize] = diff;
        }
    };
    loop {
        recompute_all(side, &mut d);
        let mut locked = vec![false; n];
        let mut swaps: Vec<(u32, u32)> = Vec::new();
        let mut gains: Vec<i64> = Vec::new();
        // one full pass: n/2 locked swaps
        for _ in 0..n / 2 {
            let mut best_gain = i64::MIN;
            let mut best_pair: Option<(u32, u32)> = None;
            for a in 0..n as u32 {
                if locked[a as usize] || !side[a as usize] {
                    continue;
                }
                for b in 0..n as u32 {
                    if locked[b as usize] || side[b as usize] {
                        continue;
                    }
                    let c_ab = i64::from(g.has_arc(a, b));
                    let gain = d[a as usize] + d[b as usize] - 2 * c_ab;
                    if gain > best_gain {
                        best_gain = gain;
                        best_pair = Some((a, b));
                    }
                }
            }
            let Some((a, b)) = best_pair else { break };
            // apply tentatively, lock, and update D values incrementally
            side[a as usize] = false;
            side[b as usize] = true;
            locked[a as usize] = true;
            locked[b as usize] = true;
            for &x in [a, b].iter() {
                for &w in g.neighbors(x) {
                    if locked[w as usize] {
                        continue;
                    }
                    // recompute w's D exactly (cheap: degree-bounded)
                    let mut diff = 0i64;
                    for &y in g.neighbors(w) {
                        if side[w as usize] == side[y as usize] {
                            diff -= 1;
                        } else {
                            diff += 1;
                        }
                    }
                    d[w as usize] = diff;
                }
            }
            swaps.push((a, b));
            gains.push(best_gain);
        }
        // best prefix of the pass
        let mut best_sum = 0i64;
        let mut best_k = 0usize;
        let mut run = 0i64;
        for (k, &gn) in gains.iter().enumerate() {
            run += gn;
            if run > best_sum {
                best_sum = run;
                best_k = k + 1;
            }
        }
        // revert swaps past the best prefix
        for &(a, b) in swaps.iter().skip(best_k).rev() {
            side[a as usize] = true;
            side[b as usize] = false;
        }
        if best_sum <= 0 {
            return;
        }
    }
}

/// Known closed forms, used to cross-check the heuristic in tests and to
/// extend figure sweeps: hypercube `N/2`; `k×k` torus `2k` (even `k`);
/// ring `2`; complete graph `⌈n/2⌉·⌊n/2⌋`.
pub mod known {
    /// Bisection width of `Q_n`.
    pub fn hypercube(n: u32) -> u64 {
        1u64 << (n - 1)
    }

    /// Bisection width of a `k × k` torus (even `k`).
    pub fn torus2d(k: u64) -> u64 {
        2 * k
    }

    /// Bisection width of a ring.
    pub fn ring() -> u64 {
        2
    }

    /// Bisection width of `K_n`.
    pub fn complete(n: u64) -> u64 {
        n.div_ceil(2) * (n / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_networks::classic;

    #[test]
    fn exact_ring_and_complete() {
        assert_eq!(bisection_width_exact(&classic::ring(8)), 2);
        assert_eq!(bisection_width_exact(&classic::ring(12)), 2);
        assert_eq!(bisection_width_exact(&classic::complete(6)), 9);
        assert_eq!(bisection_width_exact(&classic::complete(7)), 12);
    }

    #[test]
    fn exact_hypercube() {
        assert_eq!(bisection_width_exact(&classic::hypercube(2)), 2);
        assert_eq!(bisection_width_exact(&classic::hypercube(3)), 4);
        assert_eq!(bisection_width_exact(&classic::hypercube(4)), 8);
    }

    #[test]
    fn exact_torus() {
        assert_eq!(bisection_width_exact(&classic::torus2d(4)), 8);
    }

    #[test]
    fn kl_matches_exact_on_small_graphs() {
        for g in [
            classic::hypercube(4),
            classic::ring(16),
            classic::torus2d(4),
            classic::star(4),
        ] {
            let exact = bisection_width_exact(&g);
            let kl = bisection_width_kl(&g, 20, 7);
            assert!(kl >= exact);
            assert_eq!(kl, exact, "KL should find the optimum on these");
        }
    }

    #[test]
    fn kl_upper_bounds_known_forms() {
        let q6 = classic::hypercube(6);
        let kl = bisection_width_kl(&q6, 30, 3);
        assert!(kl >= known::hypercube(6) as u32);
        assert_eq!(kl, 32, "KL finds the Q6 bisection");

        let t8 = classic::torus2d(8);
        let kl = bisection_width_kl(&t8, 30, 3);
        assert_eq!(kl, known::torus2d(8) as u32);
    }

    #[test]
    fn super_ip_bisection_is_low() {
        // ring-CN(2, Q3): 64 nodes; its swap links limit the bisection far
        // below the hypercube of the same size (32).
        let tn = ipg_networks::hier::ring_cn(2, classic::hypercube(3), "Q3");
        let g = tn.build();
        let kl = bisection_width_kl(&g, 30, 9);
        assert!(kl < 32, "ring-CN bisection {kl} should be below Q6's 32");
    }

    #[test]
    fn cut_size_counts_once() {
        let g = classic::ring(4);
        let cut = cut_size(&g, &[false, false, true, true]);
        assert_eq!(cut, 2);
    }
}
