//! Spectral lower bound on the bisection width.
//!
//! The algebraic connectivity λ₂ (second-smallest Laplacian eigenvalue)
//! bounds every balanced cut: `B ≥ λ₂·n/4`. Together with the
//! Kernighan–Lin upper bound from [`crate::bisection`], this sandwiches
//! the true bisection width — on well-structured networks (hypercubes)
//! the two coincide.
//!
//! λ₂ is computed by shifted power iteration on `cI − L` restricted to
//! the complement of the all-ones vector (`c = 2·Δ ≥ λ_max(L)`), which
//! needs only matrix-vector products — `O(m)` per iteration.

use ipg_core::graph::Csr;

/// Estimate λ₂ of the graph Laplacian by shifted power iteration
/// (deterministic start, `iters` iterations). Accuracy improves with
/// iteration count; 500–2000 suffices for the test-scale graphs here.
pub fn algebraic_connectivity(g: &Csr, iters: usize) -> f64 {
    let n = g.node_count();
    assert!(n >= 2);
    let c = 2.0 * g.max_degree() as f64;
    // deterministic pseudo-random start, orthogonal to 1
    let mut x: Vec<f64> = (0..n)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left(17)
                .wrapping_mul(0xbf58_476d_1ce4_e5b9);
            (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect();
    orthogonalize(&mut x);
    normalize(&mut x);
    let mut y = vec![0.0f64; n];
    for _ in 0..iters {
        // y = (cI − L)x = c·x − D·x + A·x
        for (u, yu) in y.iter_mut().enumerate() {
            let mut acc = (c - g.degree(u as u32) as f64) * x[u];
            for &v in g.neighbors(u as u32) {
                acc += x[v as usize];
            }
            *yu = acc;
        }
        orthogonalize(&mut y);
        normalize(&mut y);
        std::mem::swap(&mut x, &mut y);
    }
    // Rayleigh quotient of L at x
    let mut lx = 0.0f64;
    for u in 0..n {
        let mut acc = g.degree(u as u32) as f64 * x[u];
        for &v in g.neighbors(u as u32) {
            acc -= x[v as usize];
        }
        lx += x[u] * acc;
    }
    lx.max(0.0)
}

fn orthogonalize(x: &mut [f64]) {
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
}

fn normalize(x: &mut [f64]) {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
}

/// Spectral lower bound on the bisection width: `⌈λ₂·n/4⌉` (for even `n`).
pub fn bisection_lower_bound(g: &Csr, iters: usize) -> u64 {
    let lambda2 = algebraic_connectivity(g, iters);
    // guard against tiny numeric overestimates
    ((lambda2 - 1e-9) * g.node_count() as f64 / 4.0)
        .ceil()
        .max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisection::{bisection_width_exact, bisection_width_kl};
    use ipg_networks::classic;

    #[test]
    fn hypercube_lambda2_is_2() {
        for n in 2..=6 {
            let g = classic::hypercube(n);
            let l2 = algebraic_connectivity(&g, 2000);
            assert!((l2 - 2.0).abs() < 1e-3, "Q{n}: λ2 = {l2}");
        }
    }

    #[test]
    fn complete_graph_lambda2_is_n() {
        let g = classic::complete(8);
        let l2 = algebraic_connectivity(&g, 2000);
        assert!((l2 - 8.0).abs() < 1e-3, "λ2 = {l2}");
    }

    #[test]
    fn ring_lambda2_matches_formula() {
        // λ2(C_n) = 2 − 2cos(2π/n)
        let n = 12;
        let g = classic::ring(n);
        let expect = 2.0 - 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos();
        let l2 = algebraic_connectivity(&g, 4000);
        assert!((l2 - expect).abs() < 1e-3, "{l2} vs {expect}");
    }

    #[test]
    fn sandwich_exact_bisection() {
        // spectral lower ≤ exact ≤ KL upper; tight on the hypercube
        for n in 2..=4 {
            let g = classic::hypercube(n);
            let lower = bisection_lower_bound(&g, 2000);
            let exact = bisection_width_exact(&g) as u64;
            let upper = bisection_width_kl(&g, 10, 1) as u64;
            assert!(lower <= exact, "Q{n}: {lower} ≤ {exact}");
            assert!(exact <= upper);
            assert_eq!(lower, exact, "Q{n}: spectral bound is tight");
        }
    }

    #[test]
    fn sandwich_on_super_ip() {
        let tn = ipg_networks::hier::hsn(2, classic::hypercube(3), "Q3");
        let g = tn.build();
        let lower = bisection_lower_bound(&g, 4000);
        let upper = bisection_width_kl(&g, 30, 5) as u64;
        assert!(lower <= upper, "{lower} ≤ {upper}");
        assert!(upper <= 32);
    }
}
