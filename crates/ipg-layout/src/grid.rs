//! 2-D grid layouts with Manhattan wirelength accounting.
//!
//! The recursive scheme follows the spirit of the paper's reference \[31\]
//! (*recursive grid layout for hierarchical networks*): lay the nucleus
//! out once, then place nucleus copies as tiles in a near-square grid,
//! recursively, so that the dense nucleus wiring stays short and only the
//! sparse super-generator wiring spans tiles. Compared in tests and
//! benches against naive row-major placement.

use ipg_core::graph::Csr;
use ipg_core::superip::TupleNetwork;
use serde::Serialize;

/// A placement of every node on integer grid coordinates.
#[derive(Clone, Debug, Serialize)]
pub struct Layout {
    /// Position of each node.
    pub positions: Vec<(i64, i64)>,
}

impl Layout {
    /// Bounding box (width, height).
    pub fn bounding_box(&self) -> (i64, i64) {
        let (mut maxx, mut maxy) = (0i64, 0i64);
        for &(x, y) in &self.positions {
            maxx = maxx.max(x);
            maxy = maxy.max(y);
        }
        (maxx + 1, maxy + 1)
    }

    /// Bounding-box area (node slots).
    pub fn area(&self) -> i64 {
        let (w, h) = self.bounding_box();
        w * h
    }

    /// Total Manhattan wirelength over undirected edges.
    pub fn total_wirelength(&self, g: &Csr) -> u64 {
        let mut total = 0u64;
        for (u, v) in g.arcs() {
            if u < v {
                total += self.edge_length(u, v);
            }
        }
        total
    }

    /// Longest single wire.
    pub fn max_wirelength(&self, g: &Csr) -> u64 {
        let mut worst = 0u64;
        for (u, v) in g.arcs() {
            if u < v {
                worst = worst.max(self.edge_length(u, v));
            }
        }
        worst
    }

    fn edge_length(&self, u: u32, v: u32) -> u64 {
        let (ax, ay) = self.positions[u as usize];
        let (bx, by) = self.positions[v as usize];
        ax.abs_diff(bx) + ay.abs_diff(by)
    }
}

/// Near-square factorization of `n`: the pair `(w, h)` with `w·h ≥ n`,
/// `w ≥ h`, minimizing wasted slots then aspect ratio.
fn near_square(n: usize) -> (usize, usize) {
    let mut h = (n as f64).sqrt() as usize;
    while h > 1 && n.div_ceil(h) * h > n + h {
        h -= 1;
    }
    let h = h.max(1);
    (n.div_ceil(h), h)
}

/// Naive layout: nodes in row-major order on a near-square grid.
pub fn row_major_layout(n: usize) -> Layout {
    let (w, _) = near_square(n);
    Layout {
        positions: (0..n).map(|v| ((v % w) as i64, (v / w) as i64)).collect(),
    }
}

/// Recursive tile layout for a tuple network: lay out the nucleus copies
/// as tiles on a near-square grid of modules; inside each tile, the
/// nucleus nodes are placed row-major. Node ids follow the tuple
/// encoding (coordinate 0 fastest), so a module's nodes are the
/// contiguous id range `[m·M, (m+1)·M)`.
pub fn recursive_layout(tn: &TupleNetwork) -> Layout {
    let m = tn.m_nodes();
    let n = tn.node_count();
    let modules = n / m;
    let (tiles_w, _) = near_square(modules);
    let (tile_w, tile_h) = near_square(m);
    let inner = row_major_layout(m);
    let mut positions = vec![(0i64, 0i64); n];
    for (node, pos) in positions.iter_mut().enumerate() {
        let module = node / m;
        let local = node % m;
        let tile_x = (module % tiles_w) as i64 * (tile_w as i64 + 1);
        let tile_y = (module / tiles_w) as i64 * (tile_h as i64 + 1);
        let (lx, ly) = inner.positions[local];
        *pos = (tile_x + lx, tile_y + ly);
    }
    Layout { positions }
}

/// Thompson-model area lower bound from a bisection width `b`:
/// `(b/2)²` (any layout must route `b` wires across the middle cut in
/// two directions).
pub fn thompson_area_lower_bound(bisection: u64) -> u64 {
    let half = bisection / 2;
    half * half
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_networks::{classic, hier};

    #[test]
    fn near_square_shapes() {
        assert_eq!(near_square(16), (4, 4));
        assert_eq!(near_square(12), (4, 3));
        assert_eq!(near_square(1), (1, 1));
        let (w, h) = near_square(10);
        assert!(w * h >= 10);
    }

    #[test]
    fn row_major_covers_all_nodes_distinctly() {
        let l = row_major_layout(20);
        let mut seen = std::collections::HashSet::new();
        for p in &l.positions {
            assert!(seen.insert(*p), "position reuse at {p:?}");
        }
        assert!(l.area() >= 20);
    }

    #[test]
    fn torus_layout_wirelength() {
        // row-major layout of a 4x4 torus: most edges length 1, wrap
        // edges length 3.
        let g = classic::torus2d(4);
        let l = row_major_layout(16);
        assert_eq!(l.max_wirelength(&g), 3);
        assert!(l.total_wirelength(&g) >= 32);
    }

    #[test]
    fn recursive_layout_positions_are_distinct() {
        let tn = hier::hsn(2, classic::hypercube(3), "Q3");
        let l = recursive_layout(&tn);
        let mut seen = std::collections::HashSet::new();
        for p in &l.positions {
            assert!(seen.insert(*p));
        }
    }

    #[test]
    fn recursive_beats_row_major_on_super_ip_wirelength() {
        // the dense nucleus wiring stays inside tiles: total wirelength
        // should drop vs row-major placement of the same graph.
        let tn = hier::hsn(2, classic::hypercube(4), "Q4");
        let g = tn.build();
        let rec = recursive_layout(&tn);
        let naive = row_major_layout(g.node_count());
        assert!(
            rec.total_wirelength(&g) < naive.total_wirelength(&g),
            "recursive {} vs naive {}",
            rec.total_wirelength(&g),
            naive.total_wirelength(&g)
        );
    }

    #[test]
    fn thompson_bound_below_achieved_area() {
        let g = classic::hypercube(4);
        let l = row_major_layout(16);
        let b = crate::bisection::bisection_width_exact(&g) as u64;
        // area lower bound must not exceed achieved area for a valid layout
        assert!(thompson_area_lower_bound(b) <= l.area() as u64 * 4);
    }
}
