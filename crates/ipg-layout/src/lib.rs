//! # ipg-layout — VLSI layout support for hierarchical networks
//!
//! The paper's §5 weighs networks by hardware constraints — pin counts,
//! bisection bandwidth, on-chip vs off-chip wiring — and cites the
//! *recursive grid layout scheme* \[31\] for laying out hierarchical
//! networks efficiently. This crate provides the measurable pieces:
//!
//! - [`bisection`] — bisection width: exact (exhaustive balanced cuts,
//!   small graphs), a Kernighan–Lin heuristic upper bound for larger
//!   ones, and the known closed forms used for cross-checks;
//! - [`grid`] — 2-D grid layouts: naive row-major placement and the
//!   recursive tile placement natural to super-IP graphs (one nucleus per
//!   tile, tiles arranged recursively), with Manhattan wirelength and
//!   bounding-box accounting;
//! - Thompson-model area reasoning: any layout of a graph with bisection
//!   width `B` needs area `Ω(B²)`, so the reported bounding-box areas can
//!   be compared against `B²/4`.

pub mod bisection;
pub mod grid;
pub mod spectral;

pub use bisection::{bisection_width_exact, bisection_width_kl};
pub use grid::{recursive_layout, row_major_layout, Layout};
