//! Composite figures of merit (paper §5): DD-cost, ID-cost, II-cost.
//!
//! Under unit node capacity and light traffic, packet latency is
//! approximately proportional to **DD-cost** (degree × diameter, Fig. 2);
//! under unit per-node *off-module* capacity it tracks **ID-cost**
//! (I-degree × diameter, Fig. 4); and when off-module links are the
//! bottleneck it tracks **II-cost** (I-degree × I-diameter, Fig. 5).

use crate::imetrics::{self, InterClusterMetrics};
use crate::partition::Partition;
use ipg_core::algo;
use ipg_core::graph::Csr;
use serde::Serialize;

/// Everything §5 measures about one (network, packing) pair.
#[derive(Clone, Debug, Serialize)]
pub struct CostSummary {
    /// Network name.
    pub name: String,
    /// Node count.
    pub nodes: usize,
    /// Maximum degree.
    pub degree: usize,
    /// Exact diameter.
    pub diameter: u32,
    /// Average distance over distinct ordered pairs.
    pub avg_distance: f64,
    /// Max module size of the packing.
    pub module_size: usize,
    /// Inter-cluster degree.
    pub i_degree: f64,
    /// Inter-cluster diameter.
    pub i_diameter: u32,
    /// Average inter-cluster distance.
    pub avg_i_distance: f64,
}

impl CostSummary {
    /// DD-cost = degree × diameter (Fig. 2).
    pub fn dd_cost(&self) -> f64 {
        self.degree as f64 * self.diameter as f64
    }

    /// ID-cost = I-degree × diameter (Fig. 4).
    pub fn id_cost(&self) -> f64 {
        self.i_degree * self.diameter as f64
    }

    /// II-cost = I-degree × I-diameter (Fig. 5).
    pub fn ii_cost(&self) -> f64 {
        self.i_degree * self.i_diameter as f64
    }
}

/// Compute every metric exactly (all-pairs BFS + 0/1 BFS; use only at
/// BFS-feasible sizes).
pub fn summarize(name: impl Into<String>, g: &Csr, part: &Partition) -> CostSummary {
    let InterClusterMetrics {
        i_degree,
        i_diameter,
        avg_i_distance,
    } = imetrics::exact_metrics(g, part);
    CostSummary {
        name: name.into(),
        nodes: g.node_count(),
        degree: g.max_degree(),
        diameter: algo::diameter(g),
        avg_distance: algo::average_distance(g),
        module_size: part.max_module_size(),
        i_degree,
        i_diameter,
        avg_i_distance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition;
    use ipg_networks::classic;

    #[test]
    fn hypercube_summary() {
        let g = classic::hypercube(5);
        let p = partition::subcube_partition(5, 2);
        let s = summarize("Q5", &g, &p);
        assert_eq!(s.nodes, 32);
        assert_eq!(s.degree, 5);
        assert_eq!(s.diameter, 5);
        assert_eq!(s.dd_cost(), 25.0);
        assert_eq!(s.i_diameter, 3);
        assert!((s.i_degree - 3.0).abs() < 1e-12);
        assert_eq!(s.id_cost(), 15.0);
        assert_eq!(s.ii_cost(), 9.0);
        assert_eq!(s.module_size, 4);
    }

    #[test]
    fn cn_beats_hypercube_on_ii_cost() {
        // The paper's headline: cyclic-shift networks have far smaller
        // II-cost than hypercubes of similar size.
        let tn = ipg_networks::hier::ring_cn(3, classic::hypercube(2), "Q2");
        let g = tn.build();
        let p = partition::nucleus_partition(&tn);
        let cn = summarize(&tn.name, &g, &p); // 64 nodes

        let q6 = classic::hypercube(6);
        let pq = partition::subcube_partition(6, 2);
        let cube = summarize("Q6", &q6, &pq); // 64 nodes

        assert!(cn.ii_cost() < cube.ii_cost());
        assert!(cn.id_cost() < cube.id_cost());
    }
}
