//! Closed-form degree / diameter / inter-cluster models per network family.
//!
//! The paper's Figures 2, 4 and 5 sweep network sizes far beyond what
//! all-pairs BFS can touch (10^6+ nodes); these formulas generate those
//! series. Every formula is cross-checked against exact BFS values on
//! small instances in this module's tests (and again in the integration
//! suite).

use serde::Serialize;

/// One analytic sample of a network family at a concrete size.
#[derive(Clone, Debug, Serialize)]
pub struct AnalyticPoint {
    /// Family name (display label of the figure series).
    pub family: String,
    /// Parameter description, e.g. `"n=10"` or `"l=3"`.
    pub param: String,
    /// Node count.
    pub nodes: u64,
    /// Node degree (max).
    pub degree: u32,
    /// Diameter.
    pub diameter: u64,
    /// Inter-cluster degree under the family's §5 packing (None when no
    /// closed form is available — compute exactly instead).
    pub i_degree: Option<f64>,
    /// Inter-cluster diameter under the same packing.
    pub i_diameter: Option<u64>,
}

impl AnalyticPoint {
    /// DD-cost = degree × diameter (Fig. 2).
    pub fn dd_cost(&self) -> f64 {
        self.degree as f64 * self.diameter as f64
    }

    /// ID-cost = I-degree × diameter (Fig. 4).
    pub fn id_cost(&self) -> Option<f64> {
        Some(self.i_degree? * self.diameter as f64)
    }

    /// II-cost = I-degree × I-diameter (Fig. 5).
    pub fn ii_cost(&self) -> Option<f64> {
        Some(self.i_degree? * self.i_diameter? as f64)
    }
}

fn point(
    family: &str,
    param: String,
    nodes: u64,
    degree: u32,
    diameter: u64,
    i_degree: Option<f64>,
    i_diameter: Option<u64>,
) -> AnalyticPoint {
    AnalyticPoint {
        family: family.to_string(),
        param,
        nodes,
        degree,
        diameter,
        i_degree,
        i_diameter,
    }
}

/// Ring `C_n`, packed into contiguous arcs of `c` nodes.
pub fn ring(n: u64, c: u64) -> AnalyticPoint {
    point(
        "ring",
        format!("n={n}"),
        n,
        2,
        n / 2,
        Some(2.0 / c as f64),
        Some((n / c) / 2),
    )
}

/// 2-D torus `k × k`, packed into `b × b` blocks (`b | k`).
pub fn torus2d(k: u64, b: u64) -> AnalyticPoint {
    point(
        "2D-torus",
        format!("k={k}"),
        k * k,
        4,
        2 * (k / 2),
        Some(4.0 / b as f64),
        Some(2 * ((k / b) / 2)),
    )
}

/// Hypercube `Q_n`, packed into `Q_c` subcubes.
pub fn hypercube(n: u32, c: u32) -> AnalyticPoint {
    point(
        "hypercube",
        format!("n={n}"),
        1u64 << n,
        n,
        n as u64,
        Some((n - c) as f64),
        Some((n - c) as u64),
    )
}

/// Folded hypercube `FQ_n`, packed into `Q_c` subcubes (`c < n`): the
/// quotient is `FQ_{n−c}`.
pub fn folded_hypercube(n: u32, c: u32) -> AnalyticPoint {
    point(
        "folded-hypercube",
        format!("n={n}"),
        1u64 << n,
        n + 1,
        (n as u64).div_ceil(2),
        Some((n - c) as f64 + 1.0),
        Some(((n - c) as u64).div_ceil(2)),
    )
}

/// Star graph `S_n`, packed into sub-`S_k` modules. No closed form for the
/// I-diameter; compute it exactly from the quotient when needed.
pub fn star(n: u32, k: u32) -> AnalyticPoint {
    let fact = |x: u32| (1..=x as u64).product::<u64>();
    point(
        "star",
        format!("n={n}"),
        fact(n),
        n - 1,
        (3 * (n as u64 - 1)) / 2,
        Some((n - k) as f64),
        None,
    )
}

/// Cube-connected cycles CCC(n), one cycle per module. The quotient is
/// `Q_n`, so the I-diameter is `n`; each node has exactly one cross link.
pub fn ccc(n: u32) -> AnalyticPoint {
    let diam = if n == 3 {
        6
    } else {
        2 * n as u64 + (n as u64) / 2 - 2
    };
    point(
        "CCC",
        format!("n={n}"),
        (n as u64) << n,
        3,
        diam,
        Some(1.0),
        Some(n as u64),
    )
}

/// Binary de Bruijn graph on `2^n` nodes (undirected view, degree 4),
/// MSB-packed into modules of `2^c` nodes. §5.3: "the maximum number of
/// off-module links per node in a de Bruijn graph is 4". No closed form
/// for the I-diameter.
pub fn debruijn(n: u32, _c: u32) -> AnalyticPoint {
    point(
        "deBruijn",
        format!("n={n}"),
        1u64 << n,
        4,
        n as u64,
        Some(4.0),
        None,
    )
}

/// Shuffle-exchange network on `2^n` nodes.
pub fn shuffle_exchange(n: u32) -> AnalyticPoint {
    point(
        "shuffle-exchange",
        format!("n={n}"),
        1u64 << n,
        3,
        2 * n as u64 - 1,
        None,
        None,
    )
}

/// Static description of a nucleus used by the super-IP families below.
#[derive(Clone, Copy, Debug)]
pub struct NucleusStats {
    /// Display name.
    pub name: &'static str,
    /// Node count `M`.
    pub m: u64,
    /// Degree `d_G`.
    pub degree: u32,
    /// Diameter `D_G`.
    pub diameter: u32,
}

/// `Q_4`: the 16-node hypercube nucleus of the paper's CN/HSN series.
pub const NUC_Q4: NucleusStats = NucleusStats {
    name: "Q4",
    m: 16,
    degree: 4,
    diameter: 4,
};

/// `FQ_4`: the 16-node folded hypercube (degree 5, diameter 2).
pub const NUC_FQ4: NucleusStats = NucleusStats {
    name: "FQ4",
    m: 16,
    degree: 5,
    diameter: 2,
};

/// `Q_7`: the 128-node hypercube (for QCN(l, Q7/Q3)).
pub const NUC_Q7: NucleusStats = NucleusStats {
    name: "Q7",
    m: 128,
    degree: 7,
    diameter: 7,
};

/// The Petersen graph (degree 3, diameter 2) — nucleus of cyclic Petersen
/// networks.
pub const NUC_PETERSEN: NucleusStats = NucleusStats {
    name: "P",
    m: 10,
    degree: 3,
    diameter: 2,
};

/// `Q_2`: 4-node hypercube.
pub const NUC_Q2: NucleusStats = NucleusStats {
    name: "Q2",
    m: 4,
    degree: 2,
    diameter: 2,
};

fn superip_diameter(l: u64, d_g: u32) -> u64 {
    // Corollary 4.2: (D_G + 1)·l − 1.
    (d_g as u64 + 1) * l - 1
}

/// HSN(l, G) with one nucleus per module (Theorem 3.1/3.2, Corollary 4.2).
pub fn hsn(l: u32, nuc: NucleusStats) -> AnalyticPoint {
    point(
        &format!("HSN(l,{})", nuc.name),
        format!("l={l}"),
        nuc.m.pow(l),
        nuc.degree + (l - 1),
        superip_diameter(l as u64, nuc.diameter),
        Some((l - 1) as f64),
        Some((l - 1) as u64),
    )
}

/// HCN(n, n) without diameter links ≡ HSN(2, Q_n).
pub fn hcn(n: u32) -> AnalyticPoint {
    let mut p = hsn(
        2,
        NucleusStats {
            name: "Qn",
            m: 1u64 << n,
            degree: n,
            diameter: n,
        },
    );
    p.family = "HCN(n,n)".into();
    p.param = format!("n={n}");
    p
}

/// ring-CN(l, G): fixed inter-cluster degree 1 (`l = 2`) or 2 (`l ≥ 3`).
pub fn ring_cn(l: u32, nuc: NucleusStats) -> AnalyticPoint {
    let s = if l == 2 { 1 } else { 2 };
    point(
        &format!("ring-CN(l,{})", nuc.name),
        format!("l={l}"),
        nuc.m.pow(l),
        nuc.degree + s,
        superip_diameter(l as u64, nuc.diameter),
        Some(s as f64),
        Some((l - 1) as u64),
    )
}

/// complete-CN(l, G): inter-cluster degree `l − 1`.
pub fn complete_cn(l: u32, nuc: NucleusStats) -> AnalyticPoint {
    point(
        &format!("CN(l,{})", nuc.name),
        format!("l={l}"),
        nuc.m.pow(l),
        nuc.degree + (l - 1),
        superip_diameter(l as u64, nuc.diameter),
        Some((l - 1) as f64),
        Some((l - 1) as u64),
    )
}

/// Super-flip network: inter-cluster degree `l − 1`.
pub fn superflip(l: u32, nuc: NucleusStats) -> AnalyticPoint {
    let mut p = complete_cn(l, nuc);
    p.family = format!("superflip(l,{})", nuc.name);
    p
}

/// Closed-form average distances (over distinct ordered pairs), used to
/// extend Fig-2-adjacent claims ("average distance smaller than that of a
/// similar-size hypercube") beyond BFS-feasible sizes. Each is
/// cross-checked against exact values in tests.
pub mod avg_distance {
    /// Hypercube `Q_n`: each of `n` bits differs with probability ½ over
    /// distinct pairs ⇒ `n·2^(n−1)/(2^n − 1)`.
    pub fn hypercube(n: u32) -> f64 {
        let nn = (1u64 << n) as f64;
        n as f64 * (nn / 2.0) / (nn - 1.0)
    }

    /// Ring `C_n`: mean of `1..⌊n/2⌋` distances (exact for both parities).
    pub fn ring(n: u64) -> f64 {
        let mut total = 0u64;
        for d in 1..=n / 2 {
            let count = if n % 2 == 0 && d == n / 2 { 1 } else { 2 };
            total += d * count;
        }
        total as f64 / (n - 1) as f64
    }

    /// Complete graph: 1.
    pub fn complete() -> f64 {
        1.0
    }

    /// 2-D torus `k × k`: the per-axis ring average doubles.
    pub fn torus2d(k: u64) -> f64 {
        // E[d] over all ordered pairs including same-coordinate axes:
        // each axis contributes ring-average scaled by (k-1)/k ... compute
        // exactly from the axis distance distribution.
        let axis_total: u64 = (0..k).map(|d| d.min(k - d)).sum();
        let per_axis = axis_total as f64 / k as f64; // E over all k offsets
        2.0 * per_axis * (k * k) as f64 / (k * k - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::summarize;
    use crate::partition;
    use ipg_core::algo;
    use ipg_networks::{classic, hier};

    #[test]
    fn avg_distance_forms_match_exact() {
        for n in 2..=8u32 {
            let g = classic::hypercube(n as usize);
            assert!(
                (avg_distance::hypercube(n) - algo::average_distance(&g)).abs() < 1e-9,
                "Q{n}"
            );
        }
        for n in [4u64, 5, 8, 9, 12] {
            let g = classic::ring(n as usize);
            assert!(
                (avg_distance::ring(n) - algo::average_distance(&g)).abs() < 1e-9,
                "C{n}"
            );
        }
        for k in [3u64, 4, 5, 8] {
            let g = classic::torus2d(k as usize);
            assert!(
                (avg_distance::torus2d(k) - algo::average_distance(&g)).abs() < 1e-9,
                "torus {k}"
            );
        }
        assert!(
            (avg_distance::complete() - algo::average_distance(&classic::complete(9))).abs()
                < 1e-12
        );
    }

    #[test]
    fn super_ip_average_distance_beats_hypercube_claim() {
        // §1: star-like networks have "average distance smaller than those
        // of a similar-size hypercube"; at 1024 nodes the HSN(2,Q5) is
        // close to Q10's average with half the degree.
        let hsn = hier::hsn(2, classic::hypercube(5), "Q5").build();
        let hsn_avg = algo::average_distance(&hsn);
        let q10_avg = avg_distance::hypercube(10);
        assert!(hsn_avg < q10_avg * 1.35, "{hsn_avg} vs {q10_avg}");
    }

    #[test]
    fn hypercube_matches_exact() {
        for n in 3..=7u32 {
            let a = hypercube(n, 2);
            let g = classic::hypercube(n as usize);
            let p = partition::subcube_partition(n as usize, 2);
            let s = summarize("q", &g, &p);
            assert_eq!(a.nodes, s.nodes as u64);
            assert_eq!(a.degree as usize, s.degree);
            assert_eq!(a.diameter, s.diameter as u64);
            assert_eq!(a.i_degree.unwrap(), s.i_degree);
            assert_eq!(a.i_diameter.unwrap(), s.i_diameter as u64);
        }
    }

    #[test]
    fn folded_hypercube_matches_exact() {
        for n in 3..=7u32 {
            let a = folded_hypercube(n, 2);
            let g = classic::folded_hypercube(n as usize);
            let p = partition::subcube_partition(n as usize, 2);
            let s = summarize("fq", &g, &p);
            assert_eq!(a.degree as usize, s.degree, "FQ{n} degree");
            assert_eq!(a.diameter, s.diameter as u64, "FQ{n} diameter");
            assert_eq!(a.i_degree.unwrap(), s.i_degree, "FQ{n} i-degree");
            assert_eq!(
                a.i_diameter.unwrap(),
                s.i_diameter as u64,
                "FQ{n} i-diameter"
            );
        }
    }

    #[test]
    fn torus_matches_exact() {
        for k in [4u64, 6, 8] {
            let a = torus2d(k, 2);
            let g = classic::torus2d(k as usize);
            let p = partition::torus_block_partition(k as usize, 2, 2);
            let s = summarize("t", &g, &p);
            assert_eq!(a.diameter, s.diameter as u64, "torus {k} diameter");
            assert_eq!(a.i_degree.unwrap(), s.i_degree, "torus {k} i-degree");
            assert_eq!(
                a.i_diameter.unwrap(),
                s.i_diameter as u64,
                "torus {k} i-diameter"
            );
        }
    }

    #[test]
    fn ccc_matches_exact() {
        for n in [3usize, 4, 5] {
            let a = ccc(n as u32);
            let g = classic::ccc(n);
            let p = partition::ccc_cycle_partition(n);
            let s = summarize("ccc", &g, &p);
            assert_eq!(a.nodes, s.nodes as u64);
            assert_eq!(a.diameter, s.diameter as u64, "CCC({n}) diameter");
            assert_eq!(a.i_degree.unwrap(), s.i_degree);
            assert_eq!(a.i_diameter.unwrap(), s.i_diameter as u64);
        }
    }

    #[test]
    fn star_matches_exact() {
        for n in [4u32, 5, 6] {
            let a = star(n, 3);
            let g = classic::star(n as usize);
            let labels = classic::star_labels(n as usize);
            let p = partition::substar_partition(&labels, 3);
            let s = summarize("s", &g, &p);
            assert_eq!(a.nodes, s.nodes as u64);
            assert_eq!(a.degree as usize, s.degree);
            assert_eq!(a.diameter, s.diameter as u64, "S{n} diameter");
            assert_eq!(a.i_degree.unwrap(), s.i_degree);
        }
    }

    #[test]
    fn hsn_matches_exact() {
        for l in 2..=3usize {
            let a = hsn(l as u32, NUC_Q2);
            let tn = hier::hsn(l, classic::hypercube(2), "Q2");
            let g = tn.build();
            let p = partition::nucleus_partition(&tn);
            let s = summarize("hsn", &g, &p);
            assert_eq!(a.nodes, s.nodes as u64);
            assert_eq!(a.degree as usize, s.degree);
            assert_eq!(a.diameter, s.diameter as u64);
            assert_eq!(a.i_diameter.unwrap(), s.i_diameter as u64);
            // analytic i-degree is the §5.3 bound; the exact average is
            // slightly lower because label-fixing super-generator moves
            // are self-loops, not links.
            assert!(s.i_degree <= a.i_degree.unwrap() + 1e-12);
            assert!(s.i_degree > a.i_degree.unwrap() * 0.7);
        }
    }

    #[test]
    fn ring_cn_matches_exact() {
        for l in 2..=3usize {
            let a = ring_cn(l as u32, NUC_Q2);
            let tn = hier::ring_cn(l, classic::hypercube(2), "Q2");
            let g = tn.build();
            let p = partition::nucleus_partition(&tn);
            let s = summarize("rcn", &g, &p);
            assert_eq!(a.nodes, s.nodes as u64);
            assert_eq!(a.degree as usize, s.degree, "ring-CN({l},Q2) degree");
            assert_eq!(a.diameter, s.diameter as u64, "ring-CN({l},Q2) diameter");
            assert_eq!(a.i_diameter.unwrap(), s.i_diameter as u64);
        }
    }

    #[test]
    fn debruijn_degree_bound() {
        let g = classic::debruijn(8);
        assert!(g.max_degree() <= 4);
        let a = debruijn(8, 3);
        assert_eq!(a.diameter, 8);
    }

    #[test]
    fn cost_orderings_match_paper_story() {
        // At ~10^6 nodes: cyclic-shift networks should beat hypercube and
        // star on DD-cost... the star is actually competitive on DD (the
        // paper: "CNs have DD-cost comparable to the star graph"), while
        // hypercubes and tori lose clearly.
        let cn = complete_cn(5, NUC_Q4); // 16^5 = 2^20 nodes
        let q20 = hypercube(20, 4);
        let t2d = torus2d(1024, 4); // 2^20 nodes
        assert!(cn.dd_cost() < q20.dd_cost());
        assert!(cn.dd_cost() < t2d.dd_cost());
        // ID-cost and II-cost: CNs wint by a wide margin (Figs 4, 5).
        assert!(cn.id_cost().unwrap() < q20.id_cost().unwrap());
        assert!(cn.ii_cost().unwrap() < q20.ii_cost().unwrap());
        let rcn = ring_cn(5, NUC_FQ4);
        assert!(rcn.ii_cost().unwrap() <= cn.ii_cost().unwrap());
    }
}
