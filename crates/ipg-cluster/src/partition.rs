//! Assignments of network nodes to physical modules (clusters).
//!
//! The paper's §5 packings, with the node-id encodings of `ipg-networks`:
//! one nucleus per module for super-IP graphs, subcubes for hypercubes,
//! sub-stars for star graphs, most-significant-bit groups for de Bruijn
//! graphs, and rectangular blocks for tori.

use ipg_core::superip::TupleNetwork;

/// A partition of `0..class.len()` nodes into `count` modules.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Module id of each node.
    pub class: Vec<u32>,
    /// Number of modules.
    pub count: usize,
}

impl Partition {
    /// Build, validating that every class id is `< count`.
    pub fn new(class: Vec<u32>, count: usize) -> Self {
        assert!(
            class.iter().all(|&c| (c as usize) < count),
            "class id out of range"
        );
        Partition { class, count }
    }

    /// Each node in its own module (makes I-metrics collapse to ordinary
    /// degree/diameter — useful for sanity checks).
    pub fn singletons(n: usize) -> Self {
        Partition {
            class: (0..n as u32).collect(),
            count: n,
        }
    }

    /// Everything in one module.
    pub fn single_module(n: usize) -> Self {
        Partition {
            class: vec![0; n],
            count: 1,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.class.len()
    }

    /// Size of each module.
    pub fn module_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.class {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Largest module (the "≤ 16 processors per module" constraints of
    /// Figs. 3–5 bound this).
    pub fn max_module_size(&self) -> usize {
        self.module_sizes().into_iter().max().unwrap_or(0)
    }

    /// Are `u` and `v` in the same module?
    #[inline]
    pub fn same(&self, u: u32, v: u32) -> bool {
        self.class[u as usize] == self.class[v as usize]
    }
}

/// One nucleus copy per module for a (symmetric) super-IP graph — the
/// packing of §5.3 ("place each of the nuclei of a super-IP graph within
/// the same module").
pub fn nucleus_partition(tn: &TupleNetwork) -> Partition {
    let (class, count) = tn.nucleus_partition();
    Partition::new(class, count)
}

/// Subcube packing for a hypercube `Q_n` (node id = bits): modules share
/// the top `n − low_bits` bits, i.e. each module is a `Q_low_bits` subcube.
/// Also serves as the MSB packing the paper uses for de Bruijn graphs
/// ("assigning nodes with the same most significant bits into the same
/// module").
pub fn subcube_partition(n: usize, low_bits: usize) -> Partition {
    assert!(low_bits <= n);
    let nodes = 1usize << n;
    let class: Vec<u32> = (0..nodes as u32).map(|u| u >> low_bits).collect();
    Partition::new(class, nodes >> low_bits)
}

/// Sub-star packing for a star graph `S_n`: nodes whose labels agree on
/// positions `k..n` (0-based) share a module, so each module induces a
/// sub-`S_k` (`k!` nodes). `labels` are the permutation labels in node-id
/// order (see `ipg_networks::classic::star_labels`).
pub fn substar_partition(labels: &[Vec<u8>], k: usize) -> Partition {
    use std::collections::HashMap;
    let mut index: HashMap<&[u8], u32> = HashMap::new();
    let mut class = Vec::with_capacity(labels.len());
    for lab in labels {
        assert!(k <= lab.len());
        let suffix = &lab[k..];
        let next = index.len() as u32;
        let id = *index.entry(suffix).or_insert(next);
        class.push(id);
    }
    let count = index.len();
    Partition::new(class, count)
}

/// Rectangular-block packing for a 2-D torus `k × k` (node id =
/// `x + k·y`): modules are `bx × by` blocks (`k` must be divisible by both).
pub fn torus_block_partition(k: usize, bx: usize, by: usize) -> Partition {
    assert!(k % bx == 0 && k % by == 0);
    let per_row = k / bx;
    let class: Vec<u32> = (0..(k * k) as u32)
        .map(|v| {
            let x = (v as usize) % k;
            let y = (v as usize) / k;
            ((x / bx) + per_row * (y / by)) as u32
        })
        .collect();
    Partition::new(class, per_row * (k / by))
}

/// Cycle packing for CCC(n) (node id = `w·n + i`): each length-`n` cycle is
/// one module.
pub fn ccc_cycle_partition(n: usize) -> Partition {
    let nodes = n << n;
    let class: Vec<u32> = (0..nodes as u32).map(|v| v / n as u32).collect();
    Partition::new(class, 1 << n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_core::superip::{NucleusSpec, SuperIpSpec};

    #[test]
    fn subcube_sizes() {
        let p = subcube_partition(5, 3);
        assert_eq!(p.count, 4);
        assert_eq!(p.max_module_size(), 8);
        assert!(p.same(0b00000, 0b00111));
        assert!(!p.same(0b00000, 0b01000));
    }

    #[test]
    fn substar_sizes() {
        let labels = ipg_networks::classic::star_labels(5);
        let p = substar_partition(&labels, 3);
        assert_eq!(p.node_count(), 120);
        assert_eq!(p.count, 20); // 5!/3!
        assert_eq!(p.max_module_size(), 6);
    }

    #[test]
    fn torus_blocks() {
        let p = torus_block_partition(8, 4, 2);
        assert_eq!(p.count, 8);
        assert_eq!(p.max_module_size(), 8);
        assert!(p.same(0, 3)); // (0,0) and (3,0)
        assert!(!p.same(0, 4)); // (4,0) in the next block
    }

    #[test]
    fn ccc_cycles() {
        let p = ccc_cycle_partition(3);
        assert_eq!(p.count, 8);
        assert_eq!(p.max_module_size(), 3);
    }

    #[test]
    fn nucleus_partition_of_hsn() {
        let spec = SuperIpSpec::hsn(3, NucleusSpec::hypercube(2));
        let tn = ipg_core::superip::TupleNetwork::from_spec(&spec).unwrap();
        let p = nucleus_partition(&tn);
        assert_eq!(p.node_count(), 64);
        assert_eq!(p.count, 16);
        assert_eq!(p.max_module_size(), 4);
    }

    #[test]
    fn singleton_and_single() {
        let p = Partition::singletons(5);
        assert_eq!(p.count, 5);
        assert_eq!(p.max_module_size(), 1);
        let q = Partition::single_module(5);
        assert_eq!(q.count, 1);
        assert_eq!(q.max_module_size(), 5);
    }
}
