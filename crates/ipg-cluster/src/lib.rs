//! # ipg-cluster — module packing and hierarchical cost metrics
//!
//! Section 5 of the paper evaluates networks under the assumption that
//! several nodes share a physical module (chip/board/MCM) and that
//! off-module transmissions are the scarce resource. This crate implements:
//!
//! - [`partition`] — assignments of nodes to modules: one nucleus per
//!   module for super-IP graphs, subcubes for hypercubes, sub-stars for
//!   star graphs, MSB groups for de Bruijn graphs, blocks for tori;
//! - [`imetrics`] — the paper's inter-cluster measures: **I-degree** (max
//!   over modules of the average per-node off-module links), **I-diameter**
//!   (max off-module hops needed between any two nodes) and **average
//!   I-distance**, computed exactly with 0/1-weighted BFS or via the
//!   module quotient graph;
//! - [`costs`] — the composite figures of merit: **DD-cost** (degree ×
//!   diameter, Fig. 2), **ID-cost** (I-degree × diameter, Fig. 4) and
//!   **II-cost** (I-degree × I-diameter, Fig. 5);
//! - [`analytic`] — closed-form degree/diameter/I-metric models per network
//!   family, letting the figure sweeps extend far past BFS-feasible sizes
//!   (each formula is cross-checked against exact values in tests).

pub mod analytic;
pub mod collective;
pub mod costs;
pub mod imetrics;
pub mod partition;

pub use costs::CostSummary;
pub use imetrics::InterClusterMetrics;
pub use partition::Partition;
