//! Collective-communication cost on clustered networks.
//!
//! The paper argues (§1, §5) that on super-IP graphs "the required data
//! movements when performing many important algorithms are largely
//! confined within basic modules". This module makes that measurable:
//! a greedy single-port broadcast scheduler that can prefer on-module
//! links, reporting rounds and on-/off-module transmission counts, plus
//! the total-exchange off-module volume.

use crate::imetrics;
use crate::partition::Partition;
use ipg_core::graph::Csr;
use ipg_obs::Obs;

/// Outcome of a broadcast schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BroadcastStats {
    /// Number of communication rounds until every node is informed.
    pub rounds: u32,
    /// Transmissions that crossed a module boundary.
    pub off_module_sends: u64,
    /// Transmissions inside a module.
    pub on_module_sends: u64,
}

/// Greedy single-port broadcast: each round, every informed node may send
/// to one uninformed neighbor.
///
/// With `hierarchical = false`, senders pick any uninformed neighbor (the
/// naive flood). With `hierarchical = true`, senders prefer an uninformed
/// *on-module* neighbor, and cross a module boundary only to seed a
/// module that has no informed node yet — the paper's
/// keep-data-movements-inside-modules discipline. Total sends are always
/// `N − 1`; the hierarchical policy attains the `#modules − 1` lower
/// bound on off-module sends whenever modules induce connected subgraphs
/// and the module quotient is connected.
pub fn greedy_broadcast(
    g: &Csr,
    part: &Partition,
    root: u32,
    hierarchical: bool,
) -> BroadcastStats {
    greedy_broadcast_instrumented(g, part, root, hierarchical, &Obs::disabled())
}

/// [`greedy_broadcast`] with observability: a `broadcast` span, round and
/// on-/off-module send counters, and a per-round coverage histogram.
pub fn greedy_broadcast_instrumented(
    g: &Csr,
    part: &Partition,
    root: u32,
    hierarchical: bool,
    obs: &Obs,
) -> BroadcastStats {
    let _span = obs.span("broadcast");
    let h_round = obs.histogram("cluster.broadcast_round_sends");
    let n = g.node_count();
    let mut informed = vec![false; n];
    informed[root as usize] = true;
    let mut module_seeded = vec![false; part.count];
    module_seeded[part.class[root as usize] as usize] = true;
    let mut informed_list = vec![root];
    let mut covered = 1usize;
    let mut rounds = 0u32;
    let mut off = 0u64;
    let mut on = 0u64;
    while covered < n {
        rounds += 1;
        let mut new_nodes = Vec::new();
        for &u in &informed_list {
            // pick one uninformed neighbor (single-port)
            let pick = if hierarchical {
                g.neighbors(u)
                    .iter()
                    .copied()
                    .find(|&v| !informed[v as usize] && part.same(u, v))
                    .or_else(|| {
                        g.neighbors(u).iter().copied().find(|&v| {
                            !informed[v as usize] && !module_seeded[part.class[v as usize] as usize]
                        })
                    })
            } else {
                g.neighbors(u)
                    .iter()
                    .copied()
                    .find(|&v| !informed[v as usize])
            };
            if let Some(v) = pick {
                informed[v as usize] = true;
                module_seeded[part.class[v as usize] as usize] = true;
                new_nodes.push(v);
                if part.same(u, v) {
                    on += 1;
                } else {
                    off += 1;
                }
            }
        }
        if new_nodes.is_empty() {
            // disconnected, or the hierarchical policy has nothing legal
            // left to do this round even though nodes remain; the latter
            // cannot happen when modules induce connected subgraphs.
            break;
        }
        h_round.observe(new_nodes.len() as u64);
        covered += new_nodes.len();
        informed_list.extend(new_nodes);
    }
    obs.counter("cluster.broadcast_rounds").add(rounds as u64);
    obs.counter("cluster.broadcast_on_module_sends").add(on);
    obs.counter("cluster.broadcast_off_module_sends").add(off);
    BroadcastStats {
        rounds,
        off_module_sends: off,
        on_module_sends: on,
    }
}

/// Off-module hop volume of a total exchange (all-to-all personalized
/// communication): `Σ over ordered pairs of I-distance(u, v)` — the
/// §5.2 quantity whose per-link share bounds throughput. Computed from
/// the quotient graph.
pub fn total_exchange_off_module_volume(g: &Csr, part: &Partition) -> f64 {
    let n = g.node_count() as f64;
    let (_, avg) = imetrics::quotient_metrics(g, part);
    avg * n * (n - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{nucleus_partition, subcube_partition};
    use ipg_networks::{classic, hier};

    #[test]
    fn broadcast_informs_everyone_in_log_rounds_on_hypercube() {
        let g = classic::hypercube(6);
        let p = subcube_partition(6, 2);
        let s = greedy_broadcast(&g, &p, 0, false);
        assert_eq!(s.on_module_sends + s.off_module_sends, 63);
        // greedy single-port on Q6 doubles coverage every round
        assert_eq!(s.rounds, 6);
    }

    #[test]
    fn prefer_on_module_attains_module_lower_bound() {
        for (g, p) in [
            (classic::hypercube(8), subcube_partition(8, 4)),
            (classic::hypercube(6), subcube_partition(6, 3)),
        ] {
            let s = greedy_broadcast(&g, &p, 0, true);
            assert_eq!(
                s.off_module_sends,
                p.count as u64 - 1,
                "off-module sends should hit the #modules − 1 bound"
            );
        }
        let tn = hier::hsn(3, classic::hypercube(2), "Q2");
        let g = tn.build();
        let p = nucleus_partition(&tn);
        let s = greedy_broadcast(&g, &p, 0, true);
        assert_eq!(s.off_module_sends, p.count as u64 - 1);
    }

    #[test]
    fn naive_policy_wastes_off_module_sends() {
        let tn = hier::hsn(2, classic::hypercube(3), "Q3");
        let g = tn.build();
        let p = nucleus_partition(&tn);
        let naive = greedy_broadcast(&g, &p, 0, false);
        let smart = greedy_broadcast(&g, &p, 0, true);
        assert!(smart.off_module_sends <= naive.off_module_sends);
        assert_eq!(smart.off_module_sends, p.count as u64 - 1);
    }

    #[test]
    fn broadcast_on_disconnected_graph_stops() {
        let g = Csr::from_edges(4, [(0, 1), (2, 3)], true);
        let p = Partition::singletons(4);
        let s = greedy_broadcast(&g, &p, 0, false);
        assert_eq!(s.on_module_sends + s.off_module_sends, 1);
    }

    #[test]
    fn total_exchange_volume_matches_avg() {
        let g = classic::hypercube(4);
        let p = subcube_partition(4, 2);
        let vol = total_exchange_off_module_volume(&g, &p);
        let (_, avg) = imetrics::quotient_metrics(&g, &p);
        assert!((vol - avg * 16.0 * 15.0).abs() < 1e-9);
    }

    #[test]
    fn super_ip_broadcast_beats_hypercube_on_off_module_rounds() {
        // same size (4096), same module cap (16): HSN(3,Q4) needs fewer
        // off-module sends per informed module chain... both reach the
        // modules−1 bound, so compare total rounds instead: they should
        // be within 2x of the log2 lower bound for both.
        let tn = hier::hsn(3, classic::hypercube(4), "Q4");
        let g = tn.build();
        let p = nucleus_partition(&tn);
        let s = greedy_broadcast(&g, &p, 0, true);
        assert!(s.rounds >= 12);
        assert!(s.rounds <= 40, "rounds {}", s.rounds);
        assert_eq!(s.off_module_sends, 255);
    }
}
