//! Inter-cluster (off-module) metrics — paper §5.2–§5.3.
//!
//! - **I-degree**: max over modules of the average per-node off-module
//!   links (§5.3).
//! - **I-distance** between two nodes: the minimum number of off-module
//!   link traversals needed to route between them (on-module hops are
//!   free); **I-diameter** is its maximum and **average I-distance** its
//!   mean over distinct ordered pairs (§5.2).
//!
//! Two computation paths are provided: exact per-source 0/1-weighted BFS,
//! and the *module quotient graph* (contract each module; distances in the
//! quotient equal I-distances whenever modules induce connected subgraphs —
//! true for every packing in this workspace, and asserted in tests).

use crate::partition::Partition;
use ipg_core::algo;
use ipg_core::graph::Csr;
use rayon::prelude::*;

/// The three §5 measures for one (network, packing) pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterClusterMetrics {
    /// Max over modules of average per-node off-module links.
    pub i_degree: f64,
    /// Max I-distance over all node pairs.
    pub i_diameter: u32,
    /// Mean I-distance over distinct ordered pairs.
    pub avg_i_distance: f64,
}

/// I-degree (§5.3): for each module, sum the off-module arc endpoints of
/// its nodes and divide by the module size; take the maximum.
pub fn i_degree(g: &Csr, part: &Partition) -> f64 {
    assert_eq!(g.node_count(), part.node_count());
    let mut off = vec![0u64; part.count];
    for u in 0..g.node_count() as u32 {
        let cu = part.class[u as usize];
        for &v in g.neighbors(u) {
            if part.class[v as usize] != cu {
                off[cu as usize] += 1;
            }
        }
    }
    let sizes = part.module_sizes();
    off.iter()
        .zip(sizes.iter())
        .filter(|&(_, &s)| s > 0)
        .map(|(&o, &s)| o as f64 / s as f64)
        .fold(0.0, f64::max)
}

/// Exact I-distances from `src` (0/1 BFS; off-module arcs cost 1).
pub fn i_distances(g: &Csr, part: &Partition, src: u32) -> Vec<u32> {
    algo::bfs_01(g, src, |u, v| !part.same(u, v))
}

/// Exact I-diameter and average I-distance by all-sources 0/1 BFS
/// (parallel). `O(n·m)` — use [`quotient_metrics`] for large graphs.
///
/// Parallel-reduction audit: `(u32 max, u64 sum, u64 count)` — every
/// component is associative and commutative, so the reduce is exact for
/// any chunking; floats appear only in the final division.
pub fn exact_distance_metrics(g: &Csr, part: &Partition) -> (u32, f64) {
    let n = g.node_count();
    let (max, sum, cnt) = (0..n as u32)
        .into_par_iter()
        .map(|s| {
            let d = i_distances(g, part, s);
            let mut mx = 0u32;
            let mut sm = 0u64;
            let mut ct = 0u64;
            for (v, &dv) in d.iter().enumerate() {
                if v as u32 != s && dv != algo::UNREACHABLE {
                    mx = mx.max(dv);
                    sm += dv as u64;
                    ct += 1;
                }
            }
            (mx, sm, ct)
        })
        // Parallel-reduction audit: `(u32 max, u64 sum, u64 count)` —
        // associative/commutative per component, exact for any chunking.
        .reduce(|| (0, 0, 0), |a, b| (a.0.max(b.0), a.1 + b.1, a.2 + b.2));
    (
        max,
        if cnt == 0 {
            0.0
        } else {
            sum as f64 / cnt as f64
        },
    )
}

/// All three metrics, exactly.
pub fn exact_metrics(g: &Csr, part: &Partition) -> InterClusterMetrics {
    let (i_diameter, avg_i_distance) = exact_distance_metrics(g, part);
    InterClusterMetrics {
        i_degree: i_degree(g, part),
        i_diameter,
        avg_i_distance,
    }
}

/// The module quotient graph (one node per module).
pub fn module_graph(g: &Csr, part: &Partition) -> Csr {
    g.quotient(&part.class, part.count)
}

/// I-diameter and average I-distance via the quotient graph, weighting
/// module pairs by their sizes. Exact whenever every module induces a
/// connected subgraph of `g`; otherwise a lower bound.
///
/// Parallel-reduction audit: `(u32 max, u64 sum)` — associative and
/// commutative, exact for any chunking (same for [`quotient_metrics_on`]).
pub fn quotient_metrics(g: &Csr, part: &Partition) -> (u32, f64) {
    let q = module_graph(g, part);
    let sizes = part.module_sizes();
    let n_total: u64 = sizes.iter().map(|&s| s as u64).sum();
    let (max, sum) = (0..q.node_count() as u32)
        .into_par_iter()
        .map(|a| {
            let d = algo::bfs(&q, a);
            let wa = sizes[a as usize] as u64;
            let mut mx = 0u32;
            let mut sm = 0u64;
            for (b, &db) in d.iter().enumerate() {
                if db == algo::UNREACHABLE {
                    continue;
                }
                mx = mx.max(db);
                sm += db as u64 * wa * sizes[b] as u64;
            }
            (mx, sm)
        })
        // Parallel-reduction audit: `(u32 max, u64 sum)` — associative and
        // commutative, exact for any chunking (see doc comment).
        .reduce(|| (0, 0), |x, y| (x.0.max(y.0), x.1 + y.1));
    let pairs = n_total * (n_total - 1);
    (
        max,
        if pairs == 0 {
            0.0
        } else {
            sum as f64 / pairs as f64
        },
    )
}

/// Quotient-based metrics estimated from a subset of quotient sources
/// (used for multi-million-node sweeps; exact for vertex-transitive
/// quotients with uniform module sizes).
pub fn quotient_metrics_sampled(g: &Csr, part: &Partition, sources: &[u32]) -> (u32, f64) {
    let q = module_graph(g, part);
    quotient_metrics_on(&q, &part.module_sizes(), sources)
}

/// Core of [`quotient_metrics_sampled`], reusable when the quotient graph
/// is constructed directly (without materializing the base network).
pub fn quotient_metrics_on(q: &Csr, sizes: &[usize], sources: &[u32]) -> (u32, f64) {
    let n_total: u64 = sizes.iter().map(|&s| s as u64).sum();
    let (max, sum, denom) = sources
        .par_iter()
        .map(|&a| {
            let d = algo::bfs(q, a);
            let wa = sizes[a as usize] as u64;
            let mut mx = 0u32;
            let mut sm = 0u64;
            for (b, &db) in d.iter().enumerate() {
                if db == algo::UNREACHABLE {
                    continue;
                }
                mx = mx.max(db);
                sm += db as u64 * wa * sizes[b] as u64;
            }
            // ordered pairs with this source module: wa·(N−1) minus the
            // wa·(wa−1) same-module pairs... same-module pairs contribute 0
            // distance but do count in the denominator.
            (mx, sm, wa * (n_total - 1))
        })
        // Parallel-reduction audit: `(u32 max, u64 sum, u64 sum)` —
        // associative/commutative per component, exact for any chunking.
        .reduce(|| (0, 0, 0), |x, y| (x.0.max(y.0), x.1 + y.1, x.2 + y.2));
    (
        max,
        if denom == 0 {
            0.0
        } else {
            sum as f64 / denom as f64
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_core::superip::{NucleusSpec, SuperIpSpec, TupleNetwork};
    use ipg_networks::classic;

    #[test]
    fn singleton_partition_recovers_plain_metrics() {
        let g = classic::hypercube(4);
        let p = Partition::singletons(16);
        let m = exact_metrics(&g, &p);
        assert_eq!(m.i_diameter, 4);
        assert!((m.i_degree - 4.0).abs() < 1e-12);
        assert!((m.avg_i_distance - algo::average_distance(&g)).abs() < 1e-12);
    }

    #[test]
    fn single_module_zeroes_everything() {
        let g = classic::hypercube(3);
        let p = Partition::single_module(8);
        let m = exact_metrics(&g, &p);
        assert_eq!(m.i_diameter, 0);
        assert_eq!(m.i_degree, 0.0);
        assert_eq!(m.avg_i_distance, 0.0);
    }

    #[test]
    fn hypercube_subcube_idegree_matches_section_5_3() {
        // §5.3: a node in a 17-cube has 14 (or 13) off-module links when a
        // 3(or 4)-cube is placed within a module. Check the small analog:
        // Q6 with Q3 modules → 3 off-module links per node.
        let g = classic::hypercube(6);
        let p = crate::partition::subcube_partition(6, 3);
        let m = exact_metrics(&g, &p);
        assert!((m.i_degree - 3.0).abs() < 1e-12);
        assert_eq!(m.i_diameter, 3); // n − k
    }

    #[test]
    fn star_substar_idegree_matches_section_5_3() {
        // §5.3: a node in an 8-star has 6 (or 5) off-module links when a
        // 3(or 4)-star is placed within a module. Small analog: S5 with
        // S3 modules → degree 4, 2 of them inside the sub-star.
        let labels = classic::star_labels(5);
        let g = classic::star(5);
        let p = crate::partition::substar_partition(&labels, 3);
        let m = exact_metrics(&g, &p);
        assert!((m.i_degree - 2.0).abs() < 1e-12); // n − 3 = 2
    }

    #[test]
    fn ring_cn_idegree_matches_section_5_3() {
        // ring-CN: 1 off-module link per node when l = 2, 2 when l ≥ 3
        // (minus the self-loop nodes, which only lower the average below
        // the bound).
        let tn2 = ipg_networks::hier::ring_cn(2, classic::hypercube(2), "Q2");
        let p2 = crate::partition::nucleus_partition(&tn2);
        // With M = 16 one node per module has a swap self-loop, so the
        // exact average is (M−1)/M below the §5.3 bound of 1.
        let d2 = i_degree(&tn2.build(), &p2);
        assert!(d2 <= 1.0 + 1e-12);
        assert!(d2 > 0.7);

        let tn3 = ipg_networks::hier::ring_cn(3, classic::hypercube(2), "Q2");
        let p3 = crate::partition::nucleus_partition(&tn3);
        let d3 = i_degree(&tn3.build(), &p3);
        assert!(d3 <= 2.0 + 1e-12);
        assert!(d3 > 1.7);
    }

    #[test]
    fn hsn_i_diameter_is_t() {
        // With free nucleus moves, the I-diameter of an HSN/CN equals the
        // schedule length t = l − 1.
        for l in 2..=4 {
            let spec = SuperIpSpec::hsn(l, NucleusSpec::hypercube(1));
            let tn = TupleNetwork::from_spec(&spec).unwrap();
            let g = tn.build();
            let p = crate::partition::nucleus_partition(&tn);
            let (idiam, _) = exact_distance_metrics(&g, &p);
            assert_eq!(idiam as usize, l - 1, "HSN({l},Q1)");
        }
    }

    #[test]
    fn quotient_equals_exact_on_connected_modules() {
        for (g, p) in [
            (
                classic::hypercube(6),
                crate::partition::subcube_partition(6, 2),
            ),
            (
                classic::torus2d(8),
                crate::partition::torus_block_partition(8, 2, 2),
            ),
        ] {
            let (de, ae) = exact_distance_metrics(&g, &p);
            let (dq, aq) = quotient_metrics(&g, &p);
            assert_eq!(de, dq);
            assert!((ae - aq).abs() < 1e-9);
        }
        let tn = ipg_networks::hier::hsn(3, classic::hypercube(2), "Q2");
        let g = tn.build();
        let p = crate::partition::nucleus_partition(&tn);
        let (de, ae) = exact_distance_metrics(&g, &p);
        let (dq, aq) = quotient_metrics(&g, &p);
        assert_eq!(de, dq);
        assert!((ae - aq).abs() < 1e-9);
    }

    #[test]
    fn sampled_equals_full_for_vertex_transitive_quotient() {
        let g = classic::hypercube(6);
        let p = crate::partition::subcube_partition(6, 2);
        let (d_full, a_full) = quotient_metrics(&g, &p);
        let (d_s, a_s) = quotient_metrics_sampled(&g, &p, &[0]);
        assert_eq!(d_full, d_s);
        assert!((a_full - a_s).abs() < 1e-9);
    }

    use ipg_core::algo;
}
