//! # ipg-networks — the interconnection-network zoo
//!
//! Direct constructions of every network the paper compares (Figures 2–5)
//! or claims to unify under the IP-graph model (§1–§3):
//!
//! - [`classic`] — baselines: ring, complete graph, tori / k-ary n-cubes,
//!   (folded/generalized) hypercubes, star and pancake graphs, the Petersen
//!   graph, de Bruijn and shuffle-exchange graphs, cube-connected cycles.
//! - [`hier`] — hierarchical networks: HCN (with and without diameter
//!   links), HSN, ring-/complete-CN, super-flip networks, their symmetric
//!   variants, HFN, HHN, RCC/RHSN, HSE, and quotient networks (QCN).
//! - [`ipdefs`] — the IP-graph definitions of networks the paper expresses
//!   with generators (de Bruijn, shuffle-exchange, hypercube, star, ...),
//!   cross-validated against the direct constructions in tests.
//! - [`viz`] — Graphviz/DOT export used to regenerate Figure 1.
//!
//! Node-id encodings are documented per constructor so that partitioning
//! code (crate `ipg-cluster`) can assign nodes to modules.

pub mod classic;
pub mod hier;
pub mod ipdefs;
pub mod viz;

pub use classic::*;
pub use hier::*;
