//! Hierarchical interconnection networks: the super-IP families of §3 and
//! the previously proposed networks the paper unifies (§1): HCN, HFN, HHN,
//! RCC, HSE, plus quotient networks (QCN, Fig. 3).
//!
//! Constructors here use the *tuple* form ([`TupleNetwork`]) over explicit
//! nucleus graphs with documented node encodings, so the results are
//! deterministic and usable by partitioning code. The `ipdefs` module
//! cross-validates them against label-generated IP graphs.

use crate::classic;
use ipg_core::graph::Csr;
use ipg_core::perm::Perm;
use ipg_core::superip::{SeedKind, SuperGen, TupleNetwork};

fn block_perms(l: usize, supers: &[SuperGen]) -> Vec<Perm> {
    supers.iter().map(|s| s.block_perm(l)).collect()
}

/// Super-generator set of an HSN: transpositions `T_2 … T_l`.
pub fn hsn_supers(l: usize) -> Vec<SuperGen> {
    (1..l).map(SuperGen::Transpose).collect()
}

/// Super-generator set of a ring-CN: `L_1` (and `R_1` when `l ≥ 3`).
pub fn ring_cn_supers(l: usize) -> Vec<SuperGen> {
    if l == 2 {
        vec![SuperGen::CyclicL(1)]
    } else {
        vec![SuperGen::CyclicL(1), SuperGen::CyclicR(1)]
    }
}

/// Super-generator set of a complete-CN: `L_1 … L_{l−1}`.
pub fn complete_cn_supers(l: usize) -> Vec<SuperGen> {
    (1..l).map(SuperGen::CyclicL).collect()
}

/// Super-generator set of a super-flip network: `F_2 … F_l`.
pub fn superflip_supers(l: usize) -> Vec<SuperGen> {
    (2..=l).map(SuperGen::Flip).collect()
}

/// Hierarchical swapped network HSN(l, G) over an arbitrary nucleus graph.
/// Node id encodes the tuple `(g_1 … g_l)` in radix `|V(G)|`, coordinate 1
/// (the leftmost super-symbol) least significant.
pub fn hsn(l: usize, nucleus: Csr, nucleus_name: &str) -> TupleNetwork {
    TupleNetwork::new(
        format!("HSN({l},{nucleus_name})"),
        nucleus,
        l,
        block_perms(l, &hsn_supers(l)),
        SeedKind::Repeated,
    )
}

/// Ring cyclic-shift network ring-CN(l, G) (§3.3). Fixed inter-cluster
/// degree: 1 when `l = 2`, 2 when `l ≥ 3` (§5.3).
pub fn ring_cn(l: usize, nucleus: Csr, nucleus_name: &str) -> TupleNetwork {
    TupleNetwork::new(
        format!("ring-CN({l},{nucleus_name})"),
        nucleus,
        l,
        block_perms(l, &ring_cn_supers(l)),
        SeedKind::Repeated,
    )
}

/// Complete cyclic-shift network complete-CN(l, G) (§3.3).
pub fn complete_cn(l: usize, nucleus: Csr, nucleus_name: &str) -> TupleNetwork {
    TupleNetwork::new(
        format!("complete-CN({l},{nucleus_name})"),
        nucleus,
        l,
        block_perms(l, &complete_cn_supers(l)),
        SeedKind::Repeated,
    )
}

/// Super-flip network (§3.4).
pub fn superflip(l: usize, nucleus: Csr, nucleus_name: &str) -> TupleNetwork {
    TupleNetwork::new(
        format!("superflip({l},{nucleus_name})"),
        nucleus,
        l,
        block_perms(l, &superflip_supers(l)),
        SeedKind::Repeated,
    )
}

/// Symmetric variant of any of the above (§3.5): adds the block-order
/// component, multiplying the size by `|H|` (`l!` for HSN/super-flip, `l`
/// for CNs) and making the graph vertex-transitive.
pub fn symmetric(tn: &TupleNetwork) -> TupleNetwork {
    TupleNetwork::new(
        format!("sym-{}", tn.name),
        tn.nucleus.clone(),
        tn.l,
        tn.block_perms.clone(),
        SeedKind::DistinctShifted,
    )
}

/// Hierarchical cubic network HCN(n, n) (Ghose & Desai \[15\]), direct
/// construction. Node id = `J + I·2^n` where `I` is the cube id and `J`
/// the node-in-cube id. Edges:
///
/// - local: `(I, J) ~ (I, J')` for `J ~ J'` in `Q_n`;
/// - non-local: `(I, J) ~ (J, I)` for `I ≠ J`;
/// - diameter links (only if `diameter_links`): `(I, I) ~ (Ī, Ī)`.
///
/// Without diameter links this equals `HSN(2, Q_n)` arc-for-arc.
pub fn hcn(n: usize, diameter_links: bool) -> Csr {
    assert!((1..16).contains(&n));
    let m = 1u32 << n;
    let mask = m - 1;
    Csr::from_fn((m as usize) * (m as usize), |v, out| {
        let j = v & mask;
        let i = v >> n;
        for b in 0..n {
            out.push((j ^ (1 << b)) | (i << n));
        }
        if i != j {
            out.push(i | (j << n));
        } else if diameter_links {
            let ic = i ^ mask;
            out.push((ic << n) | ic);
        }
    })
}

/// Hierarchical folded-hypercube network HFN(n, n) (Duh, Chen & Fang \[13\]):
/// folded hypercubes as basic modules with swap links — the super-IP member
/// `HSN(2, FQ_n)` (the paper lists HFN among the networks the model
/// unifies).
pub fn hfn(n: usize) -> TupleNetwork {
    hsn(2, classic::folded_hypercube(n), &format!("FQ{n}"))
}

/// Hierarchical hypercube network HHN(k) (Yun & Park \[34\]), direct
/// construction: `2^(2^k + k)` nodes. Node id = `J + I·2^k` with
/// `J ∈ {0,1}^k` (node-in-cluster) and `I ∈ {0,1}^(2^k)` (cluster id).
/// Local edges form `Q_k` on `J`; the external edge flips bit `dec(J)`
/// of `I`.
pub fn hhn(k: usize) -> Csr {
    assert!((1..=4).contains(&k), "HHN size is 2^(2^k + k)");
    let inner = 1u32 << k;
    let outer_bits = 1usize << k;
    let n = 1usize << (outer_bits + k);
    Csr::from_fn(n, |v, out| {
        let j = v & (inner - 1);
        let i = v >> k;
        for b in 0..k {
            out.push((j ^ (1 << b)) | (i << k));
        }
        out.push(j | ((i ^ (1 << j)) << k));
    })
}

/// Recursively connected complete network RCC(l, K_m) in its super-IP form:
/// complete-graph nucleus with transposition super-generators (Corollary
/// 4.2 lists RCC with the same `(D_G + 1)·l − 1` diameter, here `2l − 1`).
pub fn rcc(l: usize, m: usize) -> TupleNetwork {
    TupleNetwork::new(
        format!("RCC({l},K{m})"),
        classic::complete(m),
        l,
        block_perms(l, &hsn_supers(l)),
        SeedKind::Repeated,
    )
}

/// Recursive hierarchical swapped network RHSN \[26\]: `levels`-deep
/// recursion of two-block swapped networks, starting from `base`. Level 1
/// is `base` itself; level `i` is `HSN(2, level_{i-1})`. Size `M^(2^(levels-1))`.
pub fn rhsn(levels: usize, base: Csr, base_name: &str) -> TupleNetwork {
    assert!(levels >= 2);
    let mut g = base;
    let mut name = base_name.to_string();
    for _ in 2..levels {
        let tn = hsn(2, g, &name);
        name = tn.name.clone();
        g = tn.build();
    }
    hsn(2, g, &name)
}

/// Hierarchical shuffle-exchange network HSE (Cypher & Sanz \[10\]) in its
/// super-IP form: shuffle-exchange nucleus with cyclic-shift
/// super-generators (the paper lists HSE among the unified networks).
pub fn hse(l: usize, n: usize) -> TupleNetwork {
    ring_cn(l, classic::shuffle_exchange(n), &format!("SE{n}"))
}

/// Cyclic Petersen network CPN(l) \[32\]: the ring cyclic-shift network
/// over the Petersen graph — 10^l nodes, degree 5 (3 + 2), diameter
/// `3l − 1`.
pub fn cyclic_petersen(l: usize) -> TupleNetwork {
    ring_cn(l, classic::petersen(), "P")
}

/// Complete cyclic Petersen network: complete-CN over the Petersen graph.
pub fn complete_cyclic_petersen(l: usize) -> TupleNetwork {
    complete_cn(l, classic::petersen(), "P")
}

/// A quotient network: the result of merging groups of nodes of a base
/// network into single nodes (paper §6: quotient variants minimize
/// off-module transmissions).
#[derive(Clone, Debug)]
pub struct QuotientNetwork {
    /// Display name.
    pub name: String,
    /// The quotient graph.
    pub graph: Csr,
    /// For each quotient node, its module id under the nucleus packing.
    pub module: Vec<u32>,
    /// Number of modules.
    pub modules: usize,
}

/// Quotient cyclic-shift network QCN(l, Q_big / Q_small) (Fig. 3):
/// ring-CN(l, Q_big) with each `Q_small`-subcube of the leftmost
/// super-symbol merged into one node. Each nucleus copy becomes
/// `2^(big−small)` quotient nodes, which form one module.
pub fn qcn(l: usize, big: usize, small: usize) -> QuotientNetwork {
    assert!(small < big);
    let tn = ring_cn(l, classic::hypercube(big), &format!("Q{big}"));
    let base = tn.build();
    // Tuple ids put coordinate 0 (the leftmost block, a Q_big node id) in
    // the least significant `big` bits, so merging a Q_small subcube is a
    // right shift.
    let n = base.node_count();
    let qnodes = n >> small;
    let class: Vec<u32> = (0..n as u32).map(|v| v >> small).collect();
    let graph = base.quotient(&class, qnodes);
    let per_module = 1u32 << (big - small);
    let module: Vec<u32> = (0..qnodes as u32).map(|q| q / per_module).collect();
    QuotientNetwork {
        name: format!("QCN({l},Q{big}/Q{small})"),
        graph,
        module,
        modules: qnodes / per_module as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_core::algo;

    #[test]
    fn hcn_without_diameter_links_equals_hsn2() {
        for n in 1..=3 {
            let direct = hcn(n, false);
            let tuple = hsn(2, classic::hypercube(n), &format!("Q{n}")).build();
            assert_eq!(direct, tuple, "HCN({n},{n}) vs HSN(2,Q{n})");
        }
    }

    #[test]
    fn hcn_with_diameter_links_adds_edges() {
        let without = hcn(2, false);
        let with = hcn(2, true);
        assert_eq!(with.node_count(), without.node_count());
        assert!(with.arc_count() > without.arc_count());
        // diameter links connect (I,I) to (Ī,Ī): node 0b0000 to 0b1111
        assert!(with.has_arc(0b0000, 0b1111));
        assert!(!without.has_arc(0b0000, 0b1111));
    }

    #[test]
    fn fig1a_hsn2_q2_structure() {
        // Paper Fig 1a: HSN(2, Q2) = HCN(2,2) without diameter links:
        // 16 nodes, max degree 3 (2 cube links + 1 swap; the 4 nodes with
        // I = J have degree 2).
        let g = hcn(2, false);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 2);
        assert_eq!(algo::diameter(&g), 5); // (D_G+1)·l − 1 = 3·2 − 1
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn fig1b_hsn3_q2_structure() {
        // Paper Fig 1b: HSN(3, Q2): 64 nodes, degree ≤ 2 + 2 supergens.
        let g = hsn(3, classic::hypercube(2), "Q2").build();
        assert_eq!(g.node_count(), 64);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(algo::diameter(&g), 8); // 3·3 − 1
    }

    #[test]
    fn hfn_size_and_degree() {
        let g = hfn(2).build();
        assert_eq!(g.node_count(), 16);
        // nucleus FQ2 has degree 3; plus one swap link
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn hhn_props() {
        // HHN(2): 2^(4+2) = 64 nodes, degree k+1 = 3.
        let g = hhn(2);
        assert_eq!(g.node_count(), 64);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 3);
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn rcc_props() {
        // RCC(2, K4): 16 nodes, degree 3+1.
        let g = rcc(2, 4).build();
        assert_eq!(g.node_count(), 16);
        assert_eq!(algo::diameter(&g), 3); // 2·1 + 1
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn rhsn_sizes() {
        // levels=2 → HSN(2, base): M^2; levels=3 → (M^2)^2 = M^4.
        let base = classic::hypercube(1);
        assert_eq!(rhsn(2, base.clone(), "Q1").build().node_count(), 4);
        assert_eq!(rhsn(3, base, "Q1").build().node_count(), 16);
    }

    #[test]
    fn hse_props() {
        let g = hse(2, 3).build();
        assert_eq!(g.node_count(), 64);
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn qcn_shapes() {
        // QCN(2, Q3/Q1): ring-CN(2,Q3) has 64 nodes; merging 2-node
        // subcubes gives 32 quotient nodes in 8 modules of 4.
        let q = qcn(2, 3, 1);
        assert_eq!(q.graph.node_count(), 32);
        assert_eq!(q.modules, 8);
        assert!(algo::is_connected(&q.graph));
        let mut counts = vec![0usize; q.modules];
        for &m in &q.module {
            counts[m as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4));
    }

    #[test]
    fn symmetric_variants_are_vertex_transitive() {
        use ipg_core::symmetry::{vertex_transitivity, Transitivity};
        let plain = hsn(2, classic::hypercube(1), "Q1");
        let sym = symmetric(&plain);
        let g = sym.build();
        assert_eq!(g.node_count(), 8); // 2!·2^2
        assert_eq!(vertex_transitivity(&g, 1_000_000), Transitivity::Yes);
        // The plain HSN(2,Q1) is NOT vertex-transitive (swap self-loops
        // make two node classes).
        let gp = plain.build();
        assert_eq!(vertex_transitivity(&gp, 1_000_000), Transitivity::No);
    }

    #[test]
    fn cyclic_petersen_props() {
        // CPN(2): 100 nodes, degree 3 + 1 (L1 = R1 at l = 2),
        // diameter (2+1)·2 − 1 = 5.
        let g = cyclic_petersen(2).build();
        assert_eq!(g.node_count(), 100);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(algo::diameter(&g), 5);
        // CPN(3): 1000 nodes, degree 5, diameter 8.
        let g = cyclic_petersen(3).build();
        assert_eq!(g.node_count(), 1000);
        assert_eq!(g.max_degree(), 5);
        assert_eq!(algo::diameter(&g), 8);
        let g = complete_cyclic_petersen(3).build();
        assert_eq!(g.max_degree(), 5);
        assert_eq!(algo::diameter(&g), 8);
    }

    #[test]
    fn ring_cn_degrees_match_section_5_3() {
        // off-module links per node: 1 when l=2, 2 when l≥3; total degree
        // adds the nucleus degree (Q2: 2).
        let nuc = || classic::hypercube(2);
        let g2 = ring_cn(2, nuc(), "Q2").build();
        assert_eq!(g2.max_degree(), 2 + 1);
        let g3 = ring_cn(3, nuc(), "Q2").build();
        assert_eq!(g3.max_degree(), 2 + 2);
        let g4 = complete_cn(4, nuc(), "Q2").build();
        assert_eq!(g4.max_degree(), 2 + 3);
        let g4f = superflip(4, nuc(), "Q2").build();
        assert_eq!(g4f.max_degree(), 2 + 3);
    }
}
