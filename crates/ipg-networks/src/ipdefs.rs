//! IP-graph definitions of classic networks (paper §2): the same networks
//! as [`crate::classic`], but *generated* from a seed label and a set of
//! permutations — demonstrating that the model captures them. Tests
//! cross-validate each definition against the direct construction.

use ipg_core::label::Label;
use ipg_core::perm::Perm;
use ipg_core::spec::{Generator, IpGraphSpec};

/// Hypercube `Q_n` as an IP graph with *repeated* symbols: seed
/// `12 12 … 12` (`n` pairs); generator `i` swaps pair `i`; the order within
/// each pair encodes one bit. This is the construction used inside the
/// paper's HCN example, where "both halves of the seed element use the same
/// sequence of symbols".
pub fn hypercube_ip(n: usize) -> IpGraphSpec {
    let m = 2 * n;
    let gens = (0..n)
        .map(|i| {
            Generator::new(
                format!("({},{})", 2 * i + 1, 2 * i + 2),
                Perm::transposition(m, 2 * i, 2 * i + 1),
            )
        })
        .collect();
    IpGraphSpec {
        name: format!("ip-Q{n}"),
        seed: Label::repeat_block(&[1, 2], n),
        generators: gens,
    }
}

/// Binary de Bruijn graph as an IP graph (paper §2): seed `12 12 … 12`
/// (`n` pairs); generators
///
/// - `L` — cyclic left shift by one pair (`b_1…b_n → b_2…b_n b_1`), and
/// - `L'` — the same shift followed by a swap of the last pair
///   (`b_1…b_n → b_2…b_n b̄_1`).
///
/// Together the two out-arcs of a node are exactly `b_2…b_n 0` and
/// `b_2…b_n 1` — the de Bruijn arcs. The graph is *directed* (the
/// generator set is not inverse-closed).
pub fn debruijn_ip(n: usize) -> IpGraphSpec {
    let m = 2 * n;
    let shift = Perm::cyclic_left(m, 2);
    let shift_flip = shift.then(&Perm::transposition(m, m - 2, m - 1));
    IpGraphSpec {
        name: format!("ip-DB{n}"),
        seed: Label::repeat_block(&[1, 2], n),
        generators: vec![Generator::new("L", shift), Generator::new("L'", shift_flip)],
    }
}

/// Shuffle-exchange network as an IP graph: seed `12 12 … 12`; generators
/// *shuffle* (cyclic shift by one pair), *unshuffle* (its inverse, so the
/// shuffle links are bidirectional) and *exchange* (swap of the last pair =
/// flip the least-significant bit).
pub fn shuffle_exchange_ip(n: usize) -> IpGraphSpec {
    let m = 2 * n;
    IpGraphSpec {
        name: format!("ip-SE{n}"),
        seed: Label::repeat_block(&[1, 2], n),
        generators: vec![
            Generator::new("S", Perm::cyclic_left(m, 2)),
            Generator::new("S'", Perm::cyclic_right(m, 2)),
            Generator::new("E", Perm::transposition(m, m - 2, m - 1)),
        ],
    }
}

/// Rotator graph (Corbett \[9\]): the directed Cayley graph on `n!`
/// permutations whose generators left-rotate the prefix of length
/// `i = 2..n`. Out-degree `n − 1`, diameter `n − 1`.
pub fn rotator_ip(n: usize) -> IpGraphSpec {
    assert!(n >= 2);
    let gens = (2..=n)
        .map(|i| {
            // prefix rotation: x1 x2 … xi ↦ x2 … xi x1
            let image: Vec<u16> = (0..n)
                .map(|p| {
                    if p < i {
                        ((p + 1) % i) as u16
                    } else {
                        p as u16
                    }
                })
                .collect();
            Generator::new(
                format!("R{i}"),
                // ipg-analyze: allow(PANIC001) reason="a prefix rotation is a bijection by construction"
                Perm::from_image(image).expect("prefix rotation"),
            )
        })
        .collect();
    IpGraphSpec {
        name: format!("rotator-{n}"),
        seed: Label::distinct(n),
        generators: gens,
    }
}

/// Macro-star network MS(ℓ, n) (Yeh & Varvarigos \[29\]): an IP (in fact
/// Cayley) graph on `(nℓ + 1)!` permutations. Position 0 is the pivot;
/// the nucleus generators are the star transpositions `(0, i)` for
/// `i = 1..n` (an `S_{n+1}` on the pivot plus block 1) and the
/// super-generators swap block `j` with block 1. Degree `n + ℓ − 1` —
/// a low-degree alternative to the star graph `S_{nℓ+1}`.
pub fn macro_star_ip(l: usize, n: usize) -> IpGraphSpec {
    assert!(l >= 1 && n >= 1);
    let k = n * l + 1;
    let mut gens: Vec<Generator> = (1..=n)
        .map(|i| Generator::new(format!("S{}", i + 1), Perm::transposition(k, 0, i)))
        .collect();
    for j in 2..=l {
        // swap positions 1..=n with (j−1)n+1..=jn
        let mut image: Vec<u16> = (0..k as u16).collect();
        for r in 0..n {
            image.swap(1 + r, (j - 1) * n + 1 + r);
        }
        gens.push(Generator::new(
            format!("T{j}"),
            // ipg-analyze: allow(PANIC001) reason="swapping disjoint index blocks is a bijection"
            Perm::from_image(image).expect("block swap"),
        ));
    }
    IpGraphSpec {
        name: format!("MS({l},{n})"),
        seed: Label::distinct(k),
        generators: gens,
    }
}

/// Ring `C_n` as an IP graph: one marker symbol rotated left/right.
pub fn ring_ip(n: usize) -> IpGraphSpec {
    let mut seed = vec![0u8; n];
    seed[0] = 1;
    IpGraphSpec {
        name: format!("ip-C{n}"),
        seed: Label::from(seed),
        generators: vec![
            Generator::new("L", Perm::cyclic_left(n, 1)),
            Generator::new("R", Perm::cyclic_right(n, 1)),
        ],
    }
}

/// Cube-connected cycles CCC(n) as an IP graph (a Cayley graph): label =
/// `n` bit-pairs plus `n` cursor slots holding one marker; generators
/// rotate the cursor left/right over the pair blocks, and the *cross*
/// generator swaps the pair at the marker... CCC is a Cayley graph of the
/// wreath-like group `Z_2^n ⋊ Z_n`; here we give the standard one-marker
/// encoding: the label is `n` pairs and a length-`n` marker track appended;
/// rotation shifts pairs *and* marker together is the identity on states,
/// so instead the cursor moves relative to the pairs by rotating only the
/// marker track, and the cross generator swaps the first pair.
///
/// Concretely: positions `0..2n` hold the pairs, positions `2n..3n` hold
/// the marker track. `F` rotates the marker track left, `B` right, and `X`
/// swaps the pair under... since permutations cannot be conditional, we
/// instead rotate the *pairs* while keeping the marker fixed: `F` = rotate
/// pairs left by one pair, `B` = its inverse, `X` = swap pair 0. States are
/// (rotation offset, bits) = exactly CCC(n) when the marker track pins the
/// offset.
pub fn ccc_ip(n: usize) -> IpGraphSpec {
    assert!(n >= 3);
    let k = 2 * n + n; // n pairs + marker track
                       // pairs rotate; marker track static
    let mut f_img: Vec<u16> = Vec::with_capacity(k);
    for j in 0..2 * n {
        f_img.push(((j + 2) % (2 * n)) as u16);
    }
    // marker track rotates the other way to record the offset
    for j in 0..n {
        f_img.push((2 * n + (j + 1) % n) as u16);
    }
    // ipg-analyze: allow(PANIC001) reason="rotation composed with a marker shift is a bijection"
    let f = Perm::from_image(f_img).expect("rotation is a bijection");
    let b = f.inverse();
    let x = Perm::transposition(k, 0, 1);
    let mut seed = Vec::with_capacity(k);
    for _ in 0..n {
        seed.extend_from_slice(&[1, 2]);
    }
    seed.push(3);
    seed.extend(std::iter::repeat_n(0, n - 1));
    IpGraphSpec {
        name: format!("ip-CCC{n}"),
        seed: Label::from(seed),
        generators: vec![
            Generator::new("F", f),
            Generator::new("B", b),
            Generator::new("X", x),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic;
    use ipg_core::algo;
    use ipg_core::builder::IpGraph;
    use ipg_core::symmetry;

    /// Explicitly decode a repeated-pair label into its bit string:
    /// pair `i` = `12` → bit 0, `21` → bit 1.
    fn bits_of(label: &[u8]) -> u32 {
        let mut v = 0u32;
        for (i, pair) in label.chunks_exact(2).enumerate() {
            match pair {
                [1, 2] => {}
                [2, 1] => v |= 1 << i,
                _ => panic!("not a pair label"),
            }
        }
        v
    }

    #[test]
    fn hypercube_ip_matches_direct() {
        for n in 1..=5 {
            let ip = hypercube_ip(n).generate().unwrap();
            assert_eq!(ip.node_count(), 1 << n);
            let direct = classic::hypercube(n);
            // explicit bijection via bit decoding
            let g = ip.to_undirected_csr();
            for u in 0..g.node_count() as u32 {
                let bu = bits_of(ip.label(u).symbols());
                for &v in g.neighbors(u) {
                    let bv = bits_of(ip.label(v).symbols());
                    assert!(direct.has_arc(bu, bv), "Q{n}: {bu:b}~{bv:b}");
                }
            }
            assert_eq!(g.arc_count(), direct.arc_count());
        }
    }

    #[test]
    fn debruijn_ip_matches_direct() {
        for n in 2..=6 {
            let ip = debruijn_ip(n).generate().unwrap();
            assert_eq!(ip.node_count(), 1 << n, "DB{n} node count");
            let direct = classic::debruijn_directed(n);
            let g = ip.to_directed_csr();
            // The de Bruijn bit order: our label pairs rotate left, so the
            // pair that was leftmost becomes the last; decode with pair i as
            // bit n-1-i so that L appends at the low end.
            let decode = |label: &[u8]| -> u32 {
                let raw = bits_of(label);
                let mut v = 0u32;
                for i in 0..n {
                    if raw & (1 << i) != 0 {
                        v |= 1 << (n - 1 - i);
                    }
                }
                v
            };
            for u in 0..g.node_count() as u32 {
                let bu = decode(ip.label(u).symbols());
                for &v in g.neighbors(u) {
                    let bv = decode(ip.label(v).symbols());
                    assert!(
                        direct.has_arc(bu, bv),
                        "DB{n}: {bu:0w$b} -> {bv:0w$b}",
                        w = n
                    );
                }
            }
            // arc counts match after self-loop removal on both sides
            assert_eq!(g.arc_count(), direct.arc_count());
        }
    }

    #[test]
    fn shuffle_exchange_ip_matches_direct() {
        for n in 2..=5 {
            let ip = shuffle_exchange_ip(n).generate().unwrap();
            assert_eq!(ip.node_count(), 1 << n);
            let g = ip.to_undirected_csr();
            let direct = classic::shuffle_exchange(n);
            assert_eq!(
                algo::fingerprint(&g),
                algo::fingerprint(&direct),
                "SE{n} fingerprints"
            );
        }
    }

    #[test]
    fn ring_ip_matches_direct() {
        for n in 3..=8 {
            let ip = ring_ip(n).generate().unwrap();
            let g = ip.to_undirected_csr();
            assert_eq!(g.node_count(), n);
            assert_eq!(algo::diameter(&g), (n / 2) as u32);
        }
    }

    #[test]
    fn ccc_ip_matches_direct() {
        for n in 3..=4 {
            let ip = ccc_ip(n).generate().unwrap();
            assert_eq!(ip.node_count(), n << n, "CCC({n}) node count");
            let g = ip.to_undirected_csr();
            let direct = classic::ccc(n);
            assert_eq!(algo::fingerprint(&g), algo::fingerprint(&direct));
            let iso = symmetry::are_isomorphic(&g, &direct, 50_000_000)
                .expect("budget")
                .expect("isomorphic");
            for u in 0..g.node_count() as u32 {
                for &v in g.neighbors(u) {
                    assert!(direct.has_arc(iso[u as usize], iso[v as usize]));
                }
            }
        }
    }

    #[test]
    fn rotator_props() {
        for n in 3..=5 {
            let ip = rotator_ip(n).generate().unwrap();
            assert_eq!(ip.node_count(), (1..=n as u64).product::<u64>() as usize);
            let g = ip.to_directed_csr();
            assert!(algo::is_strongly_connected(&g));
            assert_eq!(g.max_degree(), n - 1);
            // rotator diameter is n − 1 (directed)
            assert_eq!(algo::diameter(&g), n as u32 - 1, "rotator-{n}");
        }
    }

    #[test]
    fn macro_star_props() {
        // MS(2,2): 120 nodes, degree 3, Cayley (vertex-transitive).
        let ip = macro_star_ip(2, 2).generate().unwrap();
        assert_eq!(ip.node_count(), 120);
        let g = ip.to_undirected_csr();
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 3);
        assert!(algo::is_connected(&g));
        // Cayley graph ⇒ vertex-transitive; a full automorphism search on
        // 120 nodes is slow, so assert the strong necessary conditions
        // (uniform WL color and identical distance histograms) instead.
        assert_ne!(
            symmetry::vertex_transitivity(&g, 10_000),
            symmetry::Transitivity::No
        );
        // degree formula n + l − 1 on another instance
        let ip = macro_star_ip(3, 2).generate().unwrap();
        assert_eq!(ip.node_count(), 5040); // 7!
        assert_eq!(ip.to_undirected_csr().max_degree(), 4);
    }

    #[test]
    fn macro_star_reduces_to_star() {
        // MS(1, n) is exactly the star graph S_{n+1}.
        let ms = macro_star_ip(1, 4).generate().unwrap();
        let s5 = ipg_core::spec::IpGraphSpec::star(5).generate().unwrap();
        assert_eq!(
            algo::fingerprint(&ms.to_undirected_csr()),
            algo::fingerprint(&s5.to_undirected_csr())
        );
    }

    #[test]
    fn star_ip_is_cayley() {
        let ip: IpGraph = ipg_core::spec::IpGraphSpec::star(5).generate().unwrap();
        assert!(ip.spec().seed.has_distinct_symbols());
        let g = ip.to_undirected_csr();
        assert_eq!(
            symmetry::vertex_transitivity(&g, 10_000_000),
            symmetry::Transitivity::Yes
        );
    }
}
