//! Graphviz/DOT export, used by the Figure-1 regeneration binary.

use ipg_core::graph::Csr;
use std::fmt::Write;

/// Render an undirected graph as DOT. `label(v)` supplies node labels
/// (e.g. the paper's radix-4 rankings in Fig. 1).
pub fn to_dot(g: &Csr, name: &str, mut label: impl FnMut(u32) -> String) -> String {
    let mut out = String::new();
    let safe: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    writeln!(out, "graph {safe} {{").unwrap();
    writeln!(out, "  node [shape=circle, fontsize=10];").unwrap();
    for v in 0..g.node_count() as u32 {
        writeln!(out, "  n{v} [label=\"{}\"];", label(v)).unwrap();
    }
    for (u, v) in g.arcs() {
        if u < v {
            writeln!(out, "  n{u} -- n{v};").unwrap();
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_has_all_edges() {
        let g = Csr::from_edges(3, [(0, 1), (1, 2)], true);
        let dot = to_dot(&g, "path 3", |v| format!("{v}"));
        assert!(dot.contains("graph path_3 {"));
        assert!(dot.contains("n0 -- n1;"));
        assert!(dot.contains("n1 -- n2;"));
        assert!(!dot.contains("n1 -- n0;"));
    }
}
