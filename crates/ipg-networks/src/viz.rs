//! Graphviz/DOT export, used by the Figure-1 regeneration binary.

use ipg_core::graph::Csr;

/// Render an undirected graph as DOT. `label(v)` supplies node labels
/// (e.g. the paper's radix-4 rankings in Fig. 1).
pub fn to_dot(g: &Csr, name: &str, mut label: impl FnMut(u32) -> String) -> String {
    let mut out = String::new();
    let safe: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    out.push_str(&format!("graph {safe} {{\n"));
    out.push_str("  node [shape=circle, fontsize=10];\n");
    for v in 0..g.node_count() as u32 {
        out.push_str(&format!("  n{v} [label=\"{}\"];\n", label(v)));
    }
    for (u, v) in g.arcs() {
        if u < v {
            out.push_str(&format!("  n{u} -- n{v};\n"));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_has_all_edges() {
        let g = Csr::from_edges(3, [(0, 1), (1, 2)], true);
        let dot = to_dot(&g, "path 3", |v| format!("{v}"));
        assert!(dot.contains("graph path_3 {"));
        assert!(dot.contains("n0 -- n1;"));
        assert!(dot.contains("n1 -- n2;"));
        assert!(!dot.contains("n1 -- n0;"));
    }
}
