//! Classic interconnection networks used as baselines in the paper's
//! Figures 2–5 and as nuclei for super-IP graphs.
//!
//! All constructors return undirected simple [`Csr`] graphs (directed
//! variants are noted explicitly). Node-id encodings are part of the public
//! contract — partitioning code depends on them.

use ipg_core::graph::Csr;
use ipg_core::spec::IpGraphSpec;

/// Ring `C_n`: node `i` connects to `i ± 1 (mod n)`.
pub fn ring(n: usize) -> Csr {
    assert!(n >= 3);
    Csr::from_fn(n, |u, out| {
        out.push((u + 1) % n as u32);
        out.push((u + n as u32 - 1) % n as u32);
    })
}

/// Path `P_n`: node `i` connects to `i ± 1`.
pub fn path(n: usize) -> Csr {
    Csr::from_fn(n, |u, out| {
        if u > 0 {
            out.push(u - 1);
        }
        if (u as usize) < n - 1 {
            out.push(u + 1);
        }
    })
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Csr {
    Csr::from_fn(n, |u, out| {
        for v in 0..n as u32 {
            if v != u {
                out.push(v);
            }
        }
    })
}

/// Hypercube `Q_n`. Node id = the `n`-bit string; neighbors flip one bit.
pub fn hypercube(n: usize) -> Csr {
    assert!(n < 31);
    Csr::from_fn(1 << n, |u, out| {
        for b in 0..n {
            out.push(u ^ (1 << b));
        }
    })
}

/// Folded hypercube `FQ_n`: `Q_n` plus complement edges. Degree `n + 1`,
/// diameter `⌈n/2⌉`.
pub fn folded_hypercube(n: usize) -> Csr {
    assert!(n < 31);
    let mask = (1u32 << n) - 1;
    Csr::from_fn(1 << n, |u, out| {
        for b in 0..n {
            out.push(u ^ (1 << b));
        }
        out.push(u ^ mask);
    })
}

/// k-ary n-cube (torus): node id in mixed radix `k^n` (digit 0 least
/// significant); neighbors change one digit by ±1 mod k. For `k = 2` this
/// degenerates to the hypercube (±1 coincide and are deduplicated).
pub fn kary_ncube(k: usize, n: usize) -> Csr {
    assert!(k >= 2);
    // ipg-analyze: allow(PANIC001) reason="deliberate overflow guard; the CLI caps sizes before calling"
    let size = k.checked_pow(n as u32).expect("size overflow");
    assert!(size <= u32::MAX as usize);
    Csr::from_fn(size, |u, out| {
        let mut stride = 1u32;
        let mut rest = u;
        for _ in 0..n {
            let digit = (rest / stride) % k as u32;
            let up = (digit + 1) % k as u32;
            let down = (digit + k as u32 - 1) % k as u32;
            out.push(u - digit * stride + up * stride);
            out.push(u - digit * stride + down * stride);
            rest = u;
            stride *= k as u32;
        }
    })
}

/// 2-D torus `k × k` (the "2-D torus" of Figures 2–5).
pub fn torus2d(k: usize) -> Csr {
    kary_ncube(k, 2)
}

/// 3-D torus `k × k × k`.
pub fn torus3d(k: usize) -> Csr {
    kary_ncube(k, 3)
}

/// Generalized hypercube (Bhuyan & Agrawal \[7\]): mixed-radix node id over
/// `radices`; two nodes are adjacent iff they differ in exactly one digit
/// (any value). Degree `Σ (r_i − 1)`, diameter = #dimensions.
pub fn generalized_hypercube(radices: &[usize]) -> Csr {
    let size: usize = radices.iter().product();
    assert!(size <= u32::MAX as usize);
    Csr::from_fn(size, |u, out| {
        let mut stride = 1u32;
        for &r in radices {
            let digit = (u / stride) % r as u32;
            for v in 0..r as u32 {
                if v != digit {
                    out.push(u - digit * stride + v * stride);
                }
            }
            stride *= r as u32;
        }
    })
}

/// Star graph `S_n` (Akers, Harel & Krishnamurthy \[3\]): generated from the
/// IP spec; node 0 is the identity permutation `12…n`, node ids follow the
/// BFS generation order. Use [`star_labels`] to recover the permutation of
/// each node.
pub fn star(n: usize) -> Csr {
    IpGraphSpec::star(n)
        .generate()
        // ipg-analyze: allow(PANIC001) reason="the built-in star spec is always well-formed"
        .expect("star generation")
        .to_undirected_csr()
}

/// The permutation labels of [`star`] nodes, as symbol vectors (symbols
/// `1..=n`), indexed by node id.
pub fn star_labels(n: usize) -> Vec<Vec<u8>> {
    IpGraphSpec::star(n)
        .generate()
        // ipg-analyze: allow(PANIC001) reason="the built-in star spec is always well-formed"
        .expect("star generation")
        .labels()
        .iter()
        .map(|l| l.symbols().to_vec())
        .collect()
}

/// Pancake graph: prefix-reversal Cayley graph on `n!` permutations.
pub fn pancake(n: usize) -> Csr {
    IpGraphSpec::pancake(n)
        .generate()
        // ipg-analyze: allow(PANIC001) reason="the built-in pancake spec is always well-formed"
        .expect("pancake generation")
        .to_undirected_csr()
}

/// Petersen graph (as the Kneser graph K(5,2)): 10 nodes, 3-regular,
/// diameter 2. Appears in Fig. 2 and as the nucleus of cyclic Petersen
/// networks \[32\].
pub fn petersen() -> Csr {
    let pairs: Vec<(u8, u8)> = (0..5u8)
        .flat_map(|i| (i + 1..5).map(move |j| (i, j)))
        .collect();
    Csr::from_fn(10, |u, out| {
        let (a, b) = pairs[u as usize];
        for (v, &(c, d)) in pairs.iter().enumerate() {
            if a != c && a != d && b != c && b != d {
                out.push(v as u32);
            }
        }
    })
}

/// Binary de Bruijn graph `DB(2, n)` as a *directed* graph: arcs
/// `u -> (2u + b) mod 2^n` for `b ∈ {0,1}`. One of the densest known
/// graphs (paper §2).
pub fn debruijn_directed(n: usize) -> Csr {
    assert!((1..31).contains(&n));
    let mask = (1u32 << n) - 1;
    Csr::from_fn(1 << n, |u, out| {
        out.push((u << 1) & mask);
        out.push(((u << 1) | 1) & mask);
    })
}

/// Binary de Bruijn graph, undirected view (symmetrized; degree ≤ 4).
pub fn debruijn(n: usize) -> Csr {
    debruijn_directed(n).symmetrized()
}

/// Shuffle-exchange network on `2^n` nodes: *shuffle* edges
/// `u ~ rotate-left(u)` and *exchange* edges `u ~ u ⊕ 1`. Undirected;
/// degree ≤ 3.
pub fn shuffle_exchange(n: usize) -> Csr {
    assert!((2..31).contains(&n));
    let mask = (1u32 << n) - 1;
    Csr::from_fn(1 << n, |u, out| {
        let rot = ((u << 1) | (u >> (n - 1))) & mask;
        out.push(rot);
        out.push(u ^ 1);
    })
    .symmetrized()
}

/// 2-D mesh `k × k` (torus without wraparound); node id = `x + k·y`.
pub fn mesh2d(k: usize) -> Csr {
    Csr::from_fn(k * k, |v, out| {
        let x = (v as usize) % k;
        let y = (v as usize) / k;
        if x > 0 {
            out.push(v - 1);
        }
        if x + 1 < k {
            out.push(v + 1);
        }
        if y > 0 {
            out.push(v - k as u32);
        }
        if y + 1 < k {
            out.push(v + k as u32);
        }
    })
}

/// Star-connected cycles SCC(n) (Latifi, Azevedo & Bagherzadeh \[20\]): the
/// star graph `S_n` with each node expanded into a cycle of `n − 1`
/// nodes, one per star dimension — the star-graph analogue of CCC. Node
/// id = `star_node·(n−1) + i` for cycle position `i ∈ 0..n−1`; cycle
/// edges `(π,i) ~ (π,i±1)` and one star edge `(π,i) ~ (π·(1,i+2), i)`.
/// 3-regular for `n ≥ 4`.
pub fn star_connected_cycles(n: usize) -> Csr {
    assert!(n >= 3);
    // ipg-analyze: allow(PANIC001) reason="the built-in star spec is always well-formed"
    let ip = IpGraphSpec::star(n).generate().expect("star generation");
    let c = n - 1;
    let nodes = ip.node_count() * c;
    Csr::from_fn(nodes, |v, out| {
        let pi = v / c as u32;
        let i = v % c as u32;
        let node = |p: u32, i: u32| p * c as u32 + i;
        out.push(node(pi, (i + 1) % c as u32));
        out.push(node(pi, (i + c as u32 - 1) % c as u32));
        // star generator i is the transposition (1, i+2)
        out.push(node(ip.arc(pi, i as usize), i));
    })
}

/// Cube-connected cycles CCC(n) (Preparata & Vuillemin \[22\]): node id
/// `w·n + i` for `w ∈ 0..2^n`, `i ∈ 0..n`; cycle edges `(w,i) ~ (w,i±1)`
/// and cross edges `(w,i) ~ (w ⊕ 2^i, i)`. 3-regular for `n ≥ 3`.
pub fn ccc(n: usize) -> Csr {
    assert!((3..28).contains(&n));
    let size = n << n;
    Csr::from_fn(size, |id, out| {
        let w = id / n as u32;
        let i = id % n as u32;
        let node = |w: u32, i: u32| w * n as u32 + i;
        out.push(node(w, (i + 1) % n as u32));
        out.push(node(w, (i + n as u32 - 1) % n as u32));
        out.push(node(w ^ (1 << i), i));
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_core::algo;

    #[test]
    fn hypercube_props() {
        for n in 1..=6 {
            let g = hypercube(n);
            assert_eq!(g.node_count(), 1 << n);
            assert!(g.is_regular());
            assert_eq!(g.max_degree(), n);
            assert_eq!(algo::diameter(&g), n as u32);
        }
    }

    #[test]
    fn folded_hypercube_props() {
        for n in 2..=6 {
            let g = folded_hypercube(n);
            assert!(g.is_regular());
            assert_eq!(g.max_degree(), n + 1);
            assert_eq!(algo::diameter(&g), n.div_ceil(2) as u32);
        }
    }

    #[test]
    fn torus_props() {
        let g = torus2d(5);
        assert_eq!(g.node_count(), 25);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 4);
        assert_eq!(algo::diameter(&g), 4); // 2·⌊5/2⌋

        let g = kary_ncube(4, 3);
        assert_eq!(g.node_count(), 64);
        assert_eq!(g.max_degree(), 6);
        assert_eq!(algo::diameter(&g), 6); // 3·(4/2)
    }

    #[test]
    fn kary_2_is_hypercube() {
        let a = kary_ncube(2, 5);
        let b = hypercube(5);
        assert_eq!(a, b);
    }

    #[test]
    fn generalized_hypercube_props() {
        let g = generalized_hypercube(&[3, 4, 5]);
        assert_eq!(g.node_count(), 60);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 2 + 3 + 4);
        assert_eq!(algo::diameter(&g), 3);
    }

    #[test]
    fn star_props() {
        // S_4: 24 nodes, 3-regular, diameter ⌊3(n−1)/2⌋ = 4.
        let g = star(4);
        assert_eq!(g.node_count(), 24);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 3);
        assert_eq!(algo::diameter(&g), 4);
        // S_5: diameter ⌊3·4/2⌋ = 6.
        assert_eq!(algo::diameter(&star(5)), 6);
    }

    #[test]
    fn pancake_props() {
        let g = pancake(4);
        assert_eq!(g.node_count(), 24);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(algo::diameter(&g), 4);
    }

    #[test]
    fn petersen_props() {
        let g = petersen();
        assert_eq!(g.node_count(), 10);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 3);
        assert_eq!(algo::diameter(&g), 2);
        assert_eq!(algo::girth(&g), Some(5));
    }

    #[test]
    fn debruijn_props() {
        let d = debruijn_directed(4);
        assert_eq!(d.node_count(), 16);
        assert!(ipg_core::algo::is_strongly_connected(&d));
        assert_eq!(algo::diameter(&d), 4); // directed diameter = n
        let g = debruijn(4);
        assert!(g.max_degree() <= 4);
        assert!(algo::diameter(&g) <= 4);
    }

    #[test]
    fn shuffle_exchange_props() {
        let g = shuffle_exchange(3);
        assert_eq!(g.node_count(), 8);
        assert!(g.max_degree() <= 3);
        assert!(algo::is_connected(&g));
        // undirected SE diameter ≤ 2n−1
        assert!(algo::diameter(&g) <= 5);
    }

    #[test]
    fn ccc_props() {
        let g = ccc(3);
        assert_eq!(g.node_count(), 24);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 3);
        // CCC(3) diameter is 6
        assert_eq!(algo::diameter(&g), 6);
    }

    #[test]
    fn mesh_props() {
        let g = mesh2d(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.min_degree(), 2); // corners
        assert_eq!(g.max_degree(), 4);
        assert_eq!(algo::diameter(&g), 6); // 2(k−1)
    }

    #[test]
    fn scc_props() {
        // SCC(4): 24·3 = 72 nodes, 3-regular, connected.
        let g = star_connected_cycles(4);
        assert_eq!(g.node_count(), 72);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 3);
        assert!(algo::is_connected(&g));
        // SCC(5): 120·4 = 480 nodes
        let g = star_connected_cycles(5);
        assert_eq!(g.node_count(), 480);
        assert!(g.is_regular());
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn ring_and_complete() {
        assert_eq!(algo::diameter(&ring(9)), 4);
        assert_eq!(algo::diameter(&complete(7)), 1);
        assert_eq!(algo::diameter(&path(5)), 4);
    }
}
