//! Figure 4: ID-cost (inter-cluster degree × diameter) versus network
//! size, with at most 16 nodes per module.
//!
//! When per-module off-module capacity is fixed, light-traffic
//! packet-switched latency is proportional to ID-cost (§5.4); the figure
//! shows cyclic-shift networks beating hypercubes, tori and the star
//! graph.

use ipg_bench::sweep45::{sweep, MODULE_CAP};
use ipg_bench::{f2, print_table, write_json};

fn main() {
    let pts = sweep();

    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.family.clone(),
                p.param.clone(),
                p.nodes.to_string(),
                f2(p.log2_nodes),
                f2(p.i_degree),
                p.diameter.to_string(),
                f2(p.id_cost),
                p.mode.into(),
            ]
        })
        .collect();
    println!("== Fig 4: ID-cost (I-degree × diameter), ≤ {MODULE_CAP} nodes/module ==");
    print_table(
        &[
            "family", "param", "N", "log2 N", "I-deg", "diam", "ID-cost", "mode",
        ],
        &rows,
    );

    // Claim: at ~2^16 nodes, CNs have considerably smaller ID-cost than
    // the other topologies.
    let best = |family: &str| {
        pts.iter()
            .filter(|p| p.family == family && p.log2_nodes >= 15.0 && p.log2_nodes <= 17.0)
            .map(|p| p.id_cost)
            .fold(f64::INFINITY, f64::min)
    };
    let rcn = best("ring-CN(l,Q4)");
    let rcnf = best("ring-CN(l,FQ4)");
    let cube = best("hypercube");
    let star = pts
        .iter()
        .filter(|p| p.family == "star" && p.log2_nodes >= 15.0)
        .map(|p| p.id_cost)
        .fold(f64::INFINITY, f64::min); // S8 = 40320 ≈ 2^15.3
    assert!(rcn < cube, "ring-CN {rcn} vs hypercube {cube}");
    assert!(
        rcnf <= rcn,
        "FQ4 nucleus should not be worse: {rcnf} vs {rcn}"
    );
    assert!(rcn < star, "ring-CN {rcn} vs star {star}");
    println!();
    println!(
        "claim check @ ~2^16: ID ring-CN(Q4)={rcn:.1} ring-CN(FQ4)={rcnf:.1} hypercube={cube:.1} star={star:.1}"
    );

    write_json("fig4_id_cost", &pts);
}
