//! Figure 1: structures of HSN(l, Q2) for l = 2, 3 with radix-4 node
//! labels — (a) HSN(2, Q2) ≡ HCN(2,2) without diameter links, (b)
//! HSN(3, Q2).
//!
//! Prints the node ranking (radix-4 digit string per node, as in the
//! paper's figure), the adjacency list, structural invariants, and writes
//! DOT renderings plus a JSON summary under `results/`.

use ipg_bench::{print_table, results_dir, write_json};
use ipg_core::algo;
use ipg_core::superip::{NucleusSpec, SuperIpSpec, TupleNetwork};
use ipg_networks::viz::to_dot;
use serde::Serialize;
use std::fs;

#[derive(Serialize)]
struct Fig1Entry {
    name: String,
    nodes: usize,
    edges: usize,
    max_degree: usize,
    min_degree: usize,
    diameter: u32,
    avg_distance: f64,
    radix4_labels: Vec<String>,
}

fn radix4(tn: &TupleNetwork, v: u32, l: usize) -> String {
    let (_, tuple) = tn.decode(v);
    // paper's ranking: leftmost super-symbol is the most significant digit
    tuple
        .iter()
        .rev()
        .map(|d| char::from_digit(*d, 10).expect("radix-4 digit"))
        .collect::<String>()
        + &" ".repeat(3usize.saturating_sub(l))
}

fn build(l: usize) -> (SuperIpSpec, TupleNetwork) {
    // spec: the label/generator view (printed); tn: the tuple view over
    // the bit-encoded Q2 so the radix-4 digits are the natural cube
    // coordinates, as in the paper's figure.
    let spec = SuperIpSpec::hsn(l, NucleusSpec::hypercube(2));
    let tn = ipg_networks::hier::hsn(l, ipg_networks::classic::hypercube(2), "Q2");
    (spec, tn)
}

fn main() {
    let mut summaries = Vec::new();
    for l in [2usize, 3] {
        let (spec, tn) = build(l);
        let g = tn.build();
        println!("== Fig 1{}: {} ==", if l == 2 { 'a' } else { 'b' }, tn.name);
        println!(
            "   generators: {} nucleus + {} super (seed {})",
            spec.nucleus.spec.generators.len(),
            spec.supers.len(),
            spec.to_ip_spec().seed.display_grouped(spec.m()),
        );

        let labels: Vec<String> = (0..g.node_count() as u32)
            .map(|v| radix4(&tn, v, l))
            .collect();

        let rows: Vec<Vec<String>> = (0..g.node_count() as u32)
            .map(|v| {
                vec![
                    v.to_string(),
                    labels[v as usize].trim().to_string(),
                    g.neighbors(v)
                        .iter()
                        .map(|&w| labels[w as usize].trim().to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                ]
            })
            .collect();
        print_table(&["node", "radix-4", "neighbors"], &rows);

        let diameter = algo::diameter(&g);
        println!(
            "   nodes={} edges={} degree {}..{} diameter={} (Cor 4.2 predicts {})",
            g.node_count(),
            g.edge_count_undirected(),
            g.min_degree(),
            g.max_degree(),
            diameter,
            3 * l - 1,
        );
        println!();

        let dot = to_dot(&g, &tn.name, |v| labels[v as usize].trim().to_string());
        let path = results_dir().join(format!("fig1_hsn{l}_q2.dot"));
        fs::write(&path, dot).expect("write dot");
        eprintln!("wrote {}", path.display());

        summaries.push(Fig1Entry {
            name: tn.name.clone(),
            nodes: g.node_count(),
            edges: g.edge_count_undirected(),
            max_degree: g.max_degree(),
            min_degree: g.min_degree(),
            diameter,
            avg_distance: algo::average_distance(&g),
            radix4_labels: labels,
        });
    }
    write_json("fig1_structure", &summaries);
}
