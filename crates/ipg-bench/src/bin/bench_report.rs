//! Distill a `CRITERION_JSON` line file into `results/BENCH_core.json`.
//!
//! `scripts/bench.sh` runs the `addressing` criterion suite with
//! `CRITERION_JSON` pointing at a scratch `.jsonl`, then invokes this
//! binary on it. The report keeps every case's median/min/mean ns per
//! operation and derives the interned-vs-rank build and route speedups
//! per instance — the numbers later PRs regress against.
//!
//! Usage: `bench_report <criterion.jsonl>`

use ipg_bench::write_json;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;

#[derive(Deserialize)]
struct Line {
    group: String,
    id: String,
    median_ns: f64,
    min_ns: f64,
    mean_ns: f64,
    samples: u64,
    iters: u64,
}

#[derive(Serialize)]
struct Case {
    id: String,
    median_ns: f64,
    min_ns: f64,
    mean_ns: f64,
    samples: u64,
    iters: u64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    ipg_threads: String,
    cases: Vec<Case>,
    /// `interned_build` median / `rank_build` median, per instance.
    build_speedup: BTreeMap<String, f64>,
    /// `interned_route` median / `rank_route` median, per instance.
    route_speedup: BTreeMap<String, f64>,
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .expect("usage: bench_report <criterion.jsonl>");
    let data = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));

    let mut cases: Vec<Case> = Vec::new();
    for line in data.lines().filter(|l| !l.trim().is_empty()) {
        let l: Line = serde_json::from_str(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
        cases.push(Case {
            id: format!("{}/{}", l.group, l.id),
            median_ns: l.median_ns,
            min_ns: l.min_ns,
            mean_ns: l.mean_ns,
            samples: l.samples,
            iters: l.iters,
        });
    }
    // later duplicates (re-runs appended to the same file) win
    let median_of = |prefix: &str, instance: &str| -> Option<f64> {
        cases
            .iter()
            .rev()
            .find(|c| c.id == format!("addressing/{prefix}/{instance}"))
            .map(|c| c.median_ns)
    };

    let instances: Vec<String> = cases
        .iter()
        .filter_map(|c| c.id.strip_prefix("addressing/interned_build/"))
        .map(str::to_string)
        .collect();
    let mut build_speedup = BTreeMap::new();
    let mut route_speedup = BTreeMap::new();
    for inst in &instances {
        if let (Some(a), Some(b)) = (
            median_of("interned_build", inst),
            median_of("rank_build", inst),
        ) {
            build_speedup.insert(inst.clone(), a / b);
        }
        if let (Some(a), Some(b)) = (
            median_of("interned_route", inst),
            median_of("rank_route", inst),
        ) {
            route_speedup.insert(inst.clone(), a / b);
        }
    }

    let report = Report {
        bench: "addressing",
        ipg_threads: std::env::var("IPG_THREADS").unwrap_or_default(),
        cases,
        build_speedup,
        route_speedup,
    };
    for (inst, s) in &report.build_speedup {
        println!("build speedup {inst}: {s:.2}x");
    }
    for (inst, s) in &report.route_speedup {
        println!("route speedup {inst}: {s:.2}x");
    }
    write_json("BENCH_core", &report);
}
