//! Theorem table: machine-checks the paper's quantitative statements on a
//! grid of concrete instances and prints paper-vs-measured for each.
//!
//! - Theorem 3.1: degree ≤ #generators; I-degree ≤ #super-generators.
//! - Theorem 3.2 (+ §3.5): N = M^l (repeated seed), N = |H|·M^l
//!   (symmetric seed; l!·M^l for HSN, l·M^l for CN).
//! - Theorem 4.1 / Corollary 4.2: diameter = l·D_G + t = (D_G + 1)·l − 1,
//!   attained by the constructive routing algorithm.
//! - Theorem 4.3: symmetric diameter = l·D_G + t_S.
//! - §5.3 off-module link counts per node.
//! - §3.2: HSN embeds the same-size hypercube with dilation 3.

use ipg_bench::{print_table, report};
use ipg_cluster::imetrics;
use ipg_cluster::partition::nucleus_partition;
use ipg_core::algo;
use ipg_core::routing;
use ipg_core::superip::{NucleusSpec, SuperIpSpec, TupleNetwork};
use serde::Serialize;

#[derive(Serialize)]
struct ThmRow {
    network: String,
    check: String,
    predicted: String,
    measured: String,
    ok: bool,
}

fn check(
    rows: &mut Vec<ThmRow>,
    network: &str,
    check_name: &str,
    predicted: impl ToString,
    measured: impl ToString,
) {
    let p = predicted.to_string();
    let m = measured.to_string();
    let ok = p == m;
    rows.push(ThmRow {
        network: network.into(),
        check: check_name.into(),
        predicted: p,
        measured: m,
        ok,
    });
}

fn main() {
    let rep = report::start("thm_checks", &[]);
    let mut scaling: Vec<(String, rayon::pool::PoolStats)> = Vec::new();
    let mut rows: Vec<ThmRow> = Vec::new();

    let specs: Vec<SuperIpSpec> = vec![
        SuperIpSpec::hsn(2, NucleusSpec::hypercube(2)),
        SuperIpSpec::hsn(3, NucleusSpec::hypercube(2)),
        SuperIpSpec::hsn(2, NucleusSpec::hypercube(3)),
        SuperIpSpec::hsn(2, NucleusSpec::star(4)),
        SuperIpSpec::ring_cn(2, NucleusSpec::hypercube(2)),
        SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(2)),
        SuperIpSpec::ring_cn(4, NucleusSpec::hypercube(1)),
        SuperIpSpec::complete_cn(3, NucleusSpec::hypercube(2)),
        SuperIpSpec::complete_cn(4, NucleusSpec::hypercube(1)),
        SuperIpSpec::superflip(3, NucleusSpec::hypercube(2)),
        SuperIpSpec::superflip(4, NucleusSpec::hypercube(1)),
        SuperIpSpec::hsn(2, NucleusSpec::complete(4)),
        SuperIpSpec::ring_cn(3, NucleusSpec::complete(4)),
        SuperIpSpec::hsn(2, NucleusSpec::hypercube(1)).symmetric(),
        SuperIpSpec::hsn(3, NucleusSpec::hypercube(1)).symmetric(),
        SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(1)).symmetric(),
        SuperIpSpec::ring_cn(4, NucleusSpec::hypercube(1)).symmetric(),
        SuperIpSpec::superflip(3, NucleusSpec::hypercube(1)).symmetric(),
    ];

    for spec in &specs {
        let ip = spec.to_ip_spec().generate().expect("generate");
        let g = ip.to_undirected_csr();

        // Theorem 3.2 / §3.5 size
        check(
            &mut rows,
            &spec.name,
            "Thm 3.2: N",
            spec.expected_size().expect("size"),
            ip.node_count(),
        );

        // Theorem 3.1 degree bound
        let bound = spec.nucleus_generator_count() + spec.super_generator_count();
        check(
            &mut rows,
            &spec.name,
            "Thm 3.1: deg ≤ gens",
            format!("≤ {bound}"),
            format!("≤ {bound}"),
        );
        assert!(
            g.max_degree() <= bound,
            "{}: degree bound violated",
            spec.name
        );

        // Theorem 4.1/4.3 diameter
        let predicted = routing::predicted_diameter(spec).expect("diameter");
        check(
            &mut rows,
            &spec.name,
            "Thm 4.1/4.3: diameter",
            predicted,
            algo::diameter(&g),
        );

        // Theorem 3.1 I-degree bound
        let tn = TupleNetwork::from_spec(spec).expect("tuple");
        let tg = tn.build();
        let part = nucleus_partition(&tn);
        let i_deg = imetrics::i_degree(&tg, &part);
        check(
            &mut rows,
            &spec.name,
            "Thm 3.1: I-deg ≤ supers",
            format!("≤ {}", spec.super_generator_count()),
            format!(
                "{} ({:.2})",
                if i_deg <= spec.super_generator_count() as f64 + 1e-9 {
                    format!("≤ {}", spec.super_generator_count())
                } else {
                    "VIOLATED".into()
                },
                i_deg
            ),
        );
        rows.last_mut().unwrap().ok = i_deg <= spec.super_generator_count() as f64 + 1e-9;
    }
    scaling.push(("theorem_grid".into(), rep.scaling("theorem_grid")));

    // Routing algorithm attains the diameter (worst pair) — HSN(2,Q2)
    {
        let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2));
        let ip = spec.to_ip_spec().generate().unwrap();
        let router = routing::SuperRouter::new(&spec).unwrap();
        let mut worst = 0usize;
        for u in 0..ip.node_count() as u32 {
            for v in 0..ip.node_count() as u32 {
                let p = router.route(ip.label(u), ip.label(v)).unwrap();
                worst = worst.max(p.len() - 1);
            }
        }
        check(
            &mut rows,
            &spec.name,
            "Thm 4.1: routing worst-case",
            routing::predicted_diameter(&spec).unwrap(),
            worst,
        );
    }
    scaling.push((
        "routing_worst_case".into(),
        rep.scaling("routing_worst_case"),
    ));

    // §5.3 off-module links per node (max, under nucleus packing)
    let off_module_max = |tn: &TupleNetwork| -> usize {
        let g = tn.build();
        let (class, _) = tn.nucleus_partition();
        (0..g.node_count() as u32)
            .map(|u| {
                g.neighbors(u)
                    .iter()
                    .filter(|&&v| class[u as usize] != class[v as usize])
                    .count()
            })
            .max()
            .unwrap_or(0)
    };
    use ipg_networks::{classic, hier};
    for (l, want) in [(2usize, 1usize), (3, 2), (4, 2), (5, 2)] {
        let tn = hier::ring_cn(l, classic::hypercube(2), "Q2");
        check(
            &mut rows,
            &tn.name,
            "§5.3: off-module links",
            want,
            off_module_max(&tn),
        );
    }
    for (l, want) in [(2usize, 1usize), (3, 2), (4, 3), (5, 4)] {
        let tn = hier::hsn(l, classic::hypercube(2), "Q2");
        check(
            &mut rows,
            &tn.name,
            "§5.3: off-module links",
            want,
            off_module_max(&tn),
        );
        let tn = hier::complete_cn(l, classic::hypercube(2), "Q2");
        check(
            &mut rows,
            &tn.name,
            "§5.3: off-module links",
            want,
            off_module_max(&tn),
        );
        let tn = hier::superflip(l, classic::hypercube(2), "Q2");
        check(
            &mut rows,
            &tn.name,
            "§5.3: off-module links",
            want,
            off_module_max(&tn),
        );
    }

    scaling.push(("off_module_links".into(), rep.scaling("off_module_links")));

    // §3.2 embedding: HSN(l, Q_n) ⊇ Q_{l·n} with dilation 3
    for (l, n) in [(2usize, 2usize), (2, 3), (3, 2)] {
        let tn = hier::hsn(l, classic::hypercube(n), &format!("Q{n}"));
        let host = tn.build();
        let guest = classic::hypercube(l * n);
        // identity mapping: guest bits = concatenated tuple coordinates
        let map: Vec<u32> = (0..guest.node_count() as u32).collect();
        let dil = ipg_core::embed::dilation(&guest, &host, &map).expect("embedding valid");
        check(
            &mut rows,
            &tn.name,
            format!("§3.2: Q{} dilation ≤ 3", l * n).as_str(),
            "≤ 3".to_string(),
            if dil <= 3 {
                "≤ 3".to_string()
            } else {
                format!("{dil}")
            },
        );
    }
    scaling.push(("embedding".into(), rep.scaling("embedding")));

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.network.clone(),
                r.check.clone(),
                r.predicted.clone(),
                r.measured.clone(),
                if r.ok { "ok" } else { "MISMATCH" }.into(),
            ]
        })
        .collect();
    println!("== Theorem and §5.3 claim checks ==");
    print_table(&["network", "check", "paper", "measured", ""], &table);

    println!();
    println!(
        "== Pool scaling (workers = {}) ==",
        rayon::current_num_threads()
    );
    let scale_table: Vec<Vec<String>> = scaling
        .iter()
        .map(|(phase, st)| {
            vec![
                phase.clone(),
                format!("{:.3}", st.busy_secs()),
                format!("{:.3}", st.wall_secs()),
                format!("{:.2}x", st.effective_parallelism()),
            ]
        })
        .collect();
    print_table(&["phase", "busy s", "wall s", "speedup"], &scale_table);

    let failures = rows.iter().filter(|r| !r.ok).count();
    println!();
    println!("{} checks, {} mismatches", rows.len(), failures);
    rep.json("thm_checks", &rows);
    rep.finish();
    assert_eq!(failures, 0, "paper claims violated");
}
