//! Figure 3: (a) average inter-cluster distance and (b) inter-cluster
//! diameter versus network size, with at most 24 processors per module.
//!
//! Networks: hypercube (subcube modules), HCN(n,n) = HSN(2,Q_n) (nucleus
//! modules, split into 16-node subcubes when the nucleus exceeds 24
//! nodes), HSN(l,Q4), complete-CN(l,Q4), ring-CN(l,Q4), and
//! QCN(2, Q7/Q3) (each 3-subcube of ring-CN(2,Q7) merged into one node;
//! 16 merged nodes per module).
//!
//! All values are exact: I-degree by direct counting, I-diameter and
//! average I-distance via the module quotient graph (equal to the
//! 0/1-BFS values because every module induces a connected subgraph —
//! asserted for the small instances).

use ipg_bench::{capped_nucleus_partition, f2, print_table, sample_sources, write_json};
use ipg_cluster::imetrics;
use ipg_cluster::partition::{subcube_partition, Partition};
use ipg_core::graph::Csr;
use ipg_core::superip::TupleNetwork;
use ipg_networks::{classic, hier};
use serde::Serialize;

const MODULE_CAP: usize = 24;

#[derive(Serialize)]
struct Fig3Point {
    family: String,
    param: String,
    nodes: usize,
    log2_nodes: f64,
    module_size: usize,
    i_degree: f64,
    i_diameter: u32,
    avg_i_distance: f64,
    exact: bool,
}

fn measure(family: &str, param: String, g: &Csr, part: &Partition) -> Fig3Point {
    assert!(
        part.max_module_size() <= MODULE_CAP,
        "{family} module too big"
    );
    let i_degree = imetrics::i_degree(g, part);
    let q = imetrics::module_graph(g, part);
    let exact = q.node_count() <= 8192;
    let (i_diameter, avg) = if exact {
        imetrics::quotient_metrics(g, part)
    } else {
        let sources = sample_sources(&q, 512);
        imetrics::quotient_metrics_on(&q, &part.module_sizes(), &sources)
    };
    // For small graphs, confirm the quotient shortcut against 0/1 BFS.
    if g.node_count() <= 4096 {
        let (de, ae) = imetrics::exact_distance_metrics(g, part);
        assert_eq!(de, i_diameter, "{family} quotient vs exact I-diameter");
        assert!(
            (ae - avg).abs() < 1e-9,
            "{family} quotient vs exact avg I-distance"
        );
    }
    Fig3Point {
        family: family.to_string(),
        param,
        nodes: g.node_count(),
        log2_nodes: (g.node_count() as f64).log2(),
        module_size: part.max_module_size(),
        i_degree,
        i_diameter,
        avg_i_distance: avg,
        exact,
    }
}

fn tuple_point(family: &str, param: String, tn: &TupleNetwork) -> Fig3Point {
    let g = tn.build();
    let (class, count) = capped_nucleus_partition(tn, MODULE_CAP);
    let part = Partition::new(class, count);
    measure(family, param, &g, &part)
}

fn main() {
    let mut pts = Vec::new();

    // hypercube with 16-node subcube modules
    for n in [8usize, 10, 12, 14, 16] {
        let g = classic::hypercube(n);
        let p = subcube_partition(n, 4);
        pts.push(measure("hypercube", format!("n={n}"), &g, &p));
    }

    // HCN(n,n) = HSN(2, Q_n)
    for n in [3usize, 4, 5, 6, 7, 8] {
        let tn = hier::hsn(2, classic::hypercube(n), &format!("Q{n}"));
        pts.push(tuple_point("HCN(n,n)", format!("n={n}"), &tn));
    }

    // HSN(l, Q4), complete-CN(l, Q4), ring-CN(l, Q4)
    for l in 2..=4usize {
        let nuc = || classic::hypercube(4);
        pts.push(tuple_point(
            "HSN(l,Q4)",
            format!("l={l}"),
            &hier::hsn(l, nuc(), "Q4"),
        ));
        pts.push(tuple_point(
            "CN(l,Q4)",
            format!("l={l}"),
            &hier::complete_cn(l, nuc(), "Q4"),
        ));
        pts.push(tuple_point(
            "ring-CN(l,Q4)",
            format!("l={l}"),
            &hier::ring_cn(l, nuc(), "Q4"),
        ));
    }

    // QCN(2, Q7/Q3): 16 quotient nodes per module
    {
        let q = hier::qcn(2, 7, 3);
        let part = Partition::new(q.module.clone(), q.modules);
        pts.push(measure("QCN(l,Q7/Q3)", "l=2".into(), &q.graph, &part));
    }

    pts.sort_by(|a, b| a.family.cmp(&b.family).then(a.nodes.cmp(&b.nodes)));

    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.family.clone(),
                p.param.clone(),
                p.nodes.to_string(),
                f2(p.log2_nodes),
                p.module_size.to_string(),
                f2(p.i_degree),
                p.i_diameter.to_string(),
                f2(p.avg_i_distance),
                if p.exact { "exact" } else { "sampled" }.into(),
            ]
        })
        .collect();
    println!("== Fig 3: inter-cluster metrics (≤ {MODULE_CAP} nodes/module) ==");
    print_table(
        &[
            "family",
            "param",
            "N",
            "log2 N",
            "mod",
            "I-deg",
            "I-diam",
            "avg I-dist",
            "mode",
        ],
        &rows,
    );

    // Claim checks (the figure's visual story): at comparable sizes the
    // super-IP families need far fewer off-module transmissions than the
    // hypercube.
    let find = |family: &str, nodes: usize| {
        pts.iter()
            .find(|p| p.family == family && p.nodes == nodes)
            .unwrap_or_else(|| panic!("{family} at {nodes} missing"))
    };
    let cube16 = find("hypercube", 65536);
    let hsn4 = find("HSN(l,Q4)", 65536);
    let cn4 = find("CN(l,Q4)", 65536);
    assert!(hsn4.i_diameter < cube16.i_diameter);
    assert!(cn4.i_diameter < cube16.i_diameter);
    assert!(hsn4.avg_i_distance < cube16.avg_i_distance);
    assert!(cn4.avg_i_distance < cube16.avg_i_distance);
    println!();
    println!(
        "claim check @ 2^16 nodes: I-diam cube={} HSN={} CN={}; avg I-dist cube={:.2} HSN={:.2} CN={:.2}",
        cube16.i_diameter,
        hsn4.i_diameter,
        cn4.i_diameter,
        cube16.avg_i_distance,
        hsn4.avg_i_distance,
        cn4.avg_i_distance
    );

    write_json("fig3_icost", &pts);
}
