//! VLSI layout experiment (extension; paper §5.1 discusses the
//! bisection-bandwidth constraint and cites the recursive grid layout
//! scheme \[31\] for hierarchical networks).
//!
//! For same-size networks, reports the Kernighan–Lin bisection width
//! (cross-checked against closed forms), the Thompson-model area lower
//! bound, and the wirelength of naive row-major vs recursive tile
//! layouts.

use ipg_bench::{print_table, write_json};
use ipg_core::graph::Csr;
use ipg_core::superip::TupleNetwork;
use ipg_layout::bisection::{bisection_width_kl, known};
use ipg_layout::grid::{recursive_layout, row_major_layout, thompson_area_lower_bound};
use ipg_networks::{classic, hier};
use serde::Serialize;

#[derive(Serialize)]
struct LayoutRow {
    network: String,
    nodes: usize,
    bisection_kl: u32,
    thompson_area_lb: u64,
    naive_wirelength: u64,
    recursive_wirelength: Option<u64>,
    improvement: Option<f64>,
}

fn main() {
    let mut rows = Vec::new();
    let nets: Vec<(String, Csr, Option<TupleNetwork>)> = vec![
        ("hypercube Q8".into(), classic::hypercube(8), None),
        ("2D torus 16x16".into(), classic::torus2d(16), None),
        {
            let tn = hier::hsn(2, classic::hypercube(4), "Q4");
            (tn.name.clone(), tn.build(), Some(tn))
        },
        {
            let tn = hier::ring_cn(2, classic::hypercube(4), "Q4");
            (tn.name.clone(), tn.build(), Some(tn))
        },
        {
            let tn = hier::superflip(2, classic::hypercube(4), "Q4");
            (tn.name.clone(), tn.build(), Some(tn))
        },
    ];

    for (name, g, tn) in &nets {
        let b = bisection_width_kl(g, 24, 0xb15ec);
        let naive = row_major_layout(g.node_count());
        let rec = tn.as_ref().map(recursive_layout);
        let naive_wl = naive.total_wirelength(g);
        let rec_wl = rec.as_ref().map(|l| l.total_wirelength(g));
        rows.push(LayoutRow {
            network: name.clone(),
            nodes: g.node_count(),
            bisection_kl: b,
            thompson_area_lb: thompson_area_lower_bound(b as u64),
            naive_wirelength: naive_wl,
            recursive_wirelength: rec_wl,
            improvement: rec_wl.map(|r| naive_wl as f64 / r as f64),
        });
    }

    println!("== layout costs, 256-node networks ==");
    print_table(
        &[
            "network",
            "N",
            "bisection (KL)",
            "Thompson area ≥",
            "naive WL",
            "recursive WL",
            "gain",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.network.clone(),
                    r.nodes.to_string(),
                    r.bisection_kl.to_string(),
                    r.thompson_area_lb.to_string(),
                    r.naive_wirelength.to_string(),
                    r.recursive_wirelength
                        .map(|w| w.to_string())
                        .unwrap_or_else(|| "-".into()),
                    r.improvement
                        .map(|i| format!("{i:.2}x"))
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // cross-checks
    let cube = rows.iter().find(|r| r.network.contains("Q8")).unwrap();
    assert_eq!(cube.bisection_kl as u64, known::hypercube(8));
    let torus = rows.iter().find(|r| r.network.contains("torus")).unwrap();
    assert_eq!(torus.bisection_kl as u64, known::torus2d(16));
    // super-IP bisection is far smaller than the hypercube's (that is the
    // §5.1 trade-off: CNs win under pin constraints, lose under constant
    // bisection bandwidth)
    for r in rows.iter().filter(|r| r.recursive_wirelength.is_some()) {
        assert!(r.bisection_kl < cube.bisection_kl);
        assert!(
            r.improvement.unwrap() > 1.0,
            "{}: recursive layout should shorten wires",
            r.network
        );
    }
    println!();
    println!(
        "claim check: super-IP bisections < hypercube's {} (the §5.1 trade-off), and the",
        cube.bisection_kl
    );
    println!("recursive tile layout shortens total wirelength on every super-IP network.");

    write_json("layout_cost", &rows);
}
