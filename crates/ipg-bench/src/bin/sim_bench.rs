//! Simulation-engine throughput: table-backed vs table-free routing.
//!
//! Four experiments, distilled into `results/BENCH_sim.json`:
//!
//! 1. *common config* — the largest network both backends can load
//!    (symmetric ring-CN(2,Q6), 8192 nodes). The table backend pays the
//!    all-pairs BFS precompute the pre-sharding engine always paid; the
//!    codec backend routes arithmetically on tuple digits. Both run the
//!    same cycle schedule, so the end-to-end ratio is the user-visible
//!    `ipg simulate` speedup and the steady-state ratio isolates the
//!    per-cycle cost.
//! 2. *beyond the table* — CN(5,Q4) at 2^20 nodes. The dense next-hop
//!    table would need N² · 4 B = 4 TiB (and ~N·M BFS work), so the
//!    table engine cannot load this network at all; the codec backend
//!    simulates it directly. Recorded with the table's memory bound so
//!    the claim is auditable. `codec.cycles_per_sec` here is the sparse
//!    worklist kernel — the headline steady-state number.
//! 3. *sparse vs dense* — the same 2^20-node schedule run through the
//!    dense oracle (`Simulator::set_dense`) and the default worklist
//!    kernel on one `Simulator`, asserting the two `SimResult`s are
//!    identical (DESIGN.md §13's byte-identity contract) and recording
//!    the speedup. At injection 0.002 only ~0.2% of links carry traffic
//!    in a given cycle, which is exactly the regime the worklists target.
//! 4. *flight-recorder overhead* — the common config rerun with the
//!    per-shard trace rings attached at the default sampling interval,
//!    against an untraced run of the same schedule. The arms are
//!    interleaved and each reports its *median* over `TRACE_SAMPLES`
//!    runs; the signed delta is compared against the within-arm spread
//!    (`noise_floor_pct`) so a sub-noise reading — positive or negative —
//!    is reported as insignificant rather than as a real cost. The
//!    `within_budget` flag is the ≤ 5% commitment from DESIGN.md §11.
//!
//! 5. *multi-process sharding* — the beyond-table CN(5,Q4) schedule run
//!    through `dist::run_dist` at 1/2/4 workers (delivered counts must
//!    match the in-process run), then CN(2,Q11) at 2^22 nodes — past
//!    the in-process CLI cap — both distributed and in-process, so the
//!    per-worker vs single-process peak-RSS split is on record. On a
//!    1-core host the win is the *memory ceiling*, not cycles/sec: see
//!    EXPERIMENTS.md. RSS readings come from `VmHWM`, a monotone
//!    per-process high-water mark, so harness-side snapshots are
//!    ordered smallest-arm-first and each bounds everything before it;
//!    worker processes are fresh per run and their readings are exact.
//!
//! All timing goes through `Obs` spans (`Span::elapsed_secs`) — the
//! DET003 lint keeps raw `Instant` reads out of this crate.

use ipg_bench::{f2, print_table, report};
use ipg_core::graph::Csr;
use ipg_core::tuple_routing::ShortestTupleRouter;
use ipg_networks::{classic, hier};
use ipg_obs::{Obs, TraceConfig};
use ipg_sim::dist::{run_dist, worker_main, DistConfig, WorkerSetup};
use ipg_sim::engine::{SimConfig, Simulator};
use ipg_sim::table::RoutingTable;
use ipg_sim::Router;
use serde::Serialize;

#[derive(Serialize, Clone, Copy)]
struct BackendTiming {
    build_secs: f64,
    run_secs: f64,
    total_secs: f64,
    /// Simulated cycles per wall second, steady state (run only).
    cycles_per_sec: f64,
    /// Simulated cycles per wall second including router construction —
    /// what `ipg simulate` actually delivers.
    end_to_end_cycles_per_sec: f64,
}

#[derive(Serialize)]
struct CommonCase {
    network: String,
    nodes: usize,
    cycles: u32,
    injection_rate: f64,
    delivered_match: bool,
    table: BackendTiming,
    codec: BackendTiming,
    speedup_end_to_end: f64,
    speedup_steady_state: f64,
}

#[derive(Serialize)]
struct BeyondTableCase {
    network: String,
    nodes: usize,
    cycles: u32,
    injection_rate: f64,
    /// Bytes the dense next-hop table would need (N² · 4) — why the
    /// table backend cannot load this network.
    table_bytes_required: u64,
    delivered: u64,
    codec: BackendTiming,
}

#[derive(Serialize)]
struct SparseVsDenseCase {
    network: String,
    nodes: usize,
    cycles: u32,
    injection_rate: f64,
    /// Dense oracle (`set_dense(true)`): every link and node visited
    /// every cycle — the pre-worklist engine.
    dense_cycles_per_sec: f64,
    /// Default worklist kernel on the identical schedule.
    sparse_cycles_per_sec: f64,
    speedup: f64,
    /// The two runs must produce equal `SimResult`s (the sparse kernel's
    /// contract is byte-identity, not approximation).
    results_identical: bool,
}

#[derive(Serialize)]
struct TraceOverheadCase {
    network: String,
    nodes: usize,
    cycles: u32,
    injection_rate: f64,
    /// Sampling interval in cycles (the `TraceConfig` default).
    trace_interval: u32,
    /// Interleaved samples per arm; each arm reports its median.
    samples: u32,
    untraced_cycles_per_sec: f64,
    traced_cycles_per_sec: f64,
    /// Signed steady-state delta of the traced arm, in percent: positive
    /// means tracing slowed the run, small negatives are timer noise.
    overhead_pct: f64,
    /// Largest within-arm spread (max−min over median), in percent — the
    /// run-to-run noise on this machine. An `overhead_pct` below this is
    /// not distinguishable from zero.
    noise_floor_pct: f64,
    /// Does `overhead_pct` exceed the noise floor?
    significant: bool,
    /// The DESIGN.md §11 commitment: overhead ≤ 5% at the default
    /// interval, where "overhead" means a *significant* positive delta.
    within_budget: bool,
    trace_events: usize,
    dropped_events: u64,
    /// Tracing must not perturb the simulation.
    delivered_match: bool,
}

#[derive(Serialize)]
struct DistArm {
    workers: u32,
    run_secs: f64,
    cycles_per_sec: f64,
    /// Distributed delivered count equals the in-process run's.
    delivered_match: bool,
    /// Each worker process's `VmHWM` in KiB (fresh process per run,
    /// so these are exact, not watermarked by earlier arms).
    worker_rss_kb: Vec<u64>,
    frames: u64,
    frame_bytes: u64,
}

#[derive(Serialize)]
struct DistBeyondCase {
    network: String,
    nodes: usize,
    cycles: u32,
    injection_rate: f64,
    workers: u32,
    delivered: u64,
    /// The distributed run and the in-process run of the same network
    /// delivered identical packet counts.
    delivered_match: bool,
    dist_run_secs: f64,
    inproc_run_secs: f64,
    /// Harness `VmHWM` right after the distributed run: the
    /// coordinator-side peak (graph + transient link frames, no shard
    /// state). Monotone — also bounds the earlier, smaller arms.
    coordinator_rss_kb: u64,
    /// Harness `VmHWM` after the in-process run of the same network:
    /// the single-process peak the worker split is measured against.
    single_process_rss_kb: u64,
    /// Per-worker `VmHWM` — the headline: each worker holds a shard
    /// range and a codec router, never the graph or the full wheel.
    worker_rss_kb: Vec<u64>,
}

#[derive(Serialize)]
struct DistCase {
    network: String,
    nodes: usize,
    cycles: u32,
    injection_rate: f64,
    /// In-process steady-state baseline on the same schedule (the
    /// beyond-table codec arm).
    inproc_cycles_per_sec: f64,
    arms: Vec<DistArm>,
    beyond: DistBeyondCase,
}

#[derive(Serialize)]
struct SimBench {
    bench: &'static str,
    ipg_threads: usize,
    common: CommonCase,
    beyond_table: BeyondTableCase,
    sparse_vs_dense: SparseVsDenseCase,
    trace_overhead: TraceOverheadCase,
    dist: DistCase,
}

/// Build the router for one of the fixed bench networks inside a worker
/// process. Tags instead of CLI specs: ipg-bench sits below ipg-cli and
/// cannot use its parser.
fn bench_router(ws: &WorkerSetup) -> Result<Box<dyn Router>, String> {
    let tn = match ws.netspec.as_str() {
        "bench:cn5q4" => hier::complete_cn(5, classic::hypercube(4), "Q4"),
        "bench:cn2q11" => hier::complete_cn(2, classic::hypercube(11), "Q11"),
        other => return Err(format!("unknown bench netspec `{other}`")),
    };
    Ok(Box::new(
        ShortestTupleRouter::new(tn).map_err(|e| e.to_string())?,
    ))
}

/// Peak resident set size of this process in KiB (`VmHWM` — a monotone
/// per-process high-water mark). 0 where procfs is unavailable.
fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn cfg(rate: f64, warmup: u32, measure: u32, drain: u32) -> SimConfig {
    SimConfig {
        injection_rate: rate,
        warmup_cycles: warmup,
        measure_cycles: measure,
        drain_cycles: drain,
        seed: 7,
        ..SimConfig::default()
    }
}

fn total_cycles(c: &SimConfig) -> u32 {
    c.warmup_cycles + c.measure_cycles + c.drain_cycles
}

/// Time one backend: `build` constructs the router, then the engine runs
/// `cfg`'s schedule. Returns the timing plus the run's delivered count.
fn time_backend<R: Router>(
    obs: &Obs,
    label: &str,
    g: &Csr,
    class: &[u32],
    c: &SimConfig,
    build: impl FnOnce() -> R,
) -> (BackendTiming, u64) {
    let build_span = obs.span(&format!("{label}/build"));
    let router = build();
    let build_secs = build_span.elapsed_secs().unwrap_or(0.0);
    drop(build_span);
    let mut sim = Simulator::with_router(router, g, |v| class[v as usize], c);
    let run_span = obs.span(&format!("{label}/run"));
    let r = sim.run(c);
    let run_secs = run_span.elapsed_secs().unwrap_or(0.0).max(1e-9);
    drop(run_span);
    let cycles = f64::from(total_cycles(c));
    (
        BackendTiming {
            build_secs,
            run_secs,
            total_secs: build_secs + run_secs,
            cycles_per_sec: cycles / run_secs,
            end_to_end_cycles_per_sec: cycles / (build_secs + run_secs).max(1e-9),
        },
        r.delivered,
    )
}

fn main() {
    // Hidden worker mode: the dist coordinator re-execs this binary with
    // `__dist-worker`, so the bench is self-contained — no ipg install.
    if std::env::args().nth(1).as_deref() == Some("__dist-worker") {
        if let Err(e) = worker_main(bench_router, vm_hwm_kb) {
            eprintln!("sim_bench dist worker: {e}");
            std::process::exit(1);
        }
        return;
    }

    let common_cfg = cfg(0.02, 200, 800, 500);
    let big_cfg = cfg(0.002, 20, 60, 60);
    let rep = report::start(
        "sim_bench",
        &[
            ("common_network", "ring-CN(2,Q6) symmetric".into()),
            ("beyond_network", "CN(5,Q4)".into()),
            ("common_injection_rate", common_cfg.injection_rate.into()),
            ("beyond_injection_rate", big_cfg.injection_rate.into()),
            ("seed", 7u64.into()),
        ],
    );

    // -- common config: both backends ------------------------------------
    let tn = hier::symmetric(&hier::ring_cn(2, classic::hypercube(6), "Q6"));
    let g = tn.build();
    let (class, _) = tn.nucleus_partition();
    eprintln!("common config: {} ({} nodes)", tn.name, g.node_count());
    let (table, delivered_t) = time_backend(rep.obs(), "table", &g, &class, &common_cfg, || {
        RoutingTable::new(&g)
    });
    let tn_for_router = tn.clone();
    let (codec, delivered_c) = time_backend(rep.obs(), "codec", &g, &class, &common_cfg, || {
        ShortestTupleRouter::new(tn_for_router).expect("l=2 is within the codec router bound")
    });
    let common = CommonCase {
        network: tn.name.clone(),
        nodes: g.node_count(),
        cycles: total_cycles(&common_cfg),
        injection_rate: common_cfg.injection_rate,
        // Same injection streams, both routers exact-shortest: the tagged
        // delivered counts must agree even though tie-breaks differ.
        delivered_match: delivered_t == delivered_c,
        table,
        codec,
        speedup_end_to_end: table.total_secs / codec.total_secs.max(1e-9),
        speedup_steady_state: table.run_secs / codec.run_secs.max(1e-9),
    };

    // -- beyond the table: 2^20-node CN ----------------------------------
    let big = hier::complete_cn(5, classic::hypercube(4), "Q4");
    let n_big = big.node_count() as u64;
    let table_bytes = n_big * n_big * 4;
    eprintln!(
        "beyond-table config: {} ({} nodes; dense table would need {} GiB)",
        big.name,
        n_big,
        table_bytes >> 30
    );
    let g_big = big.build();
    let (class_big, _) = big.nucleus_partition();
    let name_big = big.name.clone();
    let big_for_router = big.clone();
    let (codec_big, delivered_big) = time_backend(
        rep.obs(),
        "beyond/codec",
        &g_big,
        &class_big,
        &big_cfg,
        || ShortestTupleRouter::new(big_for_router).expect("l=5 is within the codec router bound"),
    );
    let beyond = BeyondTableCase {
        network: name_big.clone(),
        nodes: n_big as usize,
        cycles: total_cycles(&big_cfg),
        injection_rate: big_cfg.injection_rate,
        table_bytes_required: table_bytes,
        delivered: delivered_big,
        codec: codec_big,
    };

    // -- sparse worklist kernel vs dense oracle on the same schedule ------
    eprintln!("sparse-vs-dense config: {} ({} nodes)", name_big, n_big);
    let router = ShortestTupleRouter::new(big).expect("l=5 is within the codec router bound");
    let mut sim = Simulator::with_router(router, &g_big, |v| class_big[v as usize], &big_cfg);
    let cycles_big = f64::from(total_cycles(&big_cfg));
    sim.set_dense(true);
    let span = rep.obs().span("sparse_vs_dense/dense");
    let r_dense = sim.run(&big_cfg);
    let dense_secs = span.elapsed_secs().unwrap_or(0.0).max(1e-9);
    drop(span);
    sim.set_dense(false);
    let span = rep.obs().span("sparse_vs_dense/sparse");
    let r_sparse = sim.run(&big_cfg);
    let sparse_secs = span.elapsed_secs().unwrap_or(0.0).max(1e-9);
    drop(span);
    let sparse_vs_dense = SparseVsDenseCase {
        network: name_big,
        nodes: n_big as usize,
        cycles: total_cycles(&big_cfg),
        injection_rate: big_cfg.injection_rate,
        dense_cycles_per_sec: cycles_big / dense_secs,
        sparse_cycles_per_sec: cycles_big / sparse_secs,
        speedup: dense_secs / sparse_secs,
        results_identical: r_dense == r_sparse,
    };
    assert!(
        sparse_vs_dense.results_identical,
        "sparse kernel diverged from the dense oracle on {}",
        sparse_vs_dense.network
    );

    // -- flight-recorder overhead on the common config --------------------
    const TRACE_SAMPLES: u32 = 5;
    let trace_cfg = TraceConfig::default();
    eprintln!(
        "trace-overhead config: {} at interval {} ({} samples/arm)",
        tn.name, trace_cfg.interval, TRACE_SAMPLES
    );
    // Both arms go through `run_traced`, so the untraced baseline pays the
    // identical call path and only the recorder itself is measured. The
    // arms are interleaved (off, on, off, on, …) so slow thermal /
    // frequency drift cancels instead of landing entirely on whichever
    // arm ran second. Each arm reports its median — best-of-N compares
    // two lucky outliers and routinely produced a *negative* "overhead"
    // when the traced arm drew the luckier scheduler slot.
    let one_run = |label: &str, sample: u32, trace: Option<&TraceConfig>| {
        let router =
            ShortestTupleRouter::new(tn.clone()).expect("l=2 is within the codec router bound");
        let mut sim = Simulator::with_router(router, &g, |v| class[v as usize], &common_cfg);
        let span = rep.obs().span(&format!("trace/{label}/{sample}"));
        let (r, t) = sim.run_traced(&common_cfg, &Obs::disabled(), 0, trace);
        let secs = span.elapsed_secs().unwrap_or(0.0).max(1e-9);
        drop(span);
        (secs, r, t)
    };
    let mut secs_off = Vec::with_capacity(TRACE_SAMPLES as usize);
    let mut secs_on = Vec::with_capacity(TRACE_SAMPLES as usize);
    let mut delivered_off = 0u64;
    let mut delivered_on = 0u64;
    let mut trace_events = 0usize;
    let mut dropped_events = 0u64;
    for sample in 0..TRACE_SAMPLES {
        let (secs, r, _) = one_run("off", sample, None);
        secs_off.push(secs);
        delivered_off = r.delivered;
        let (secs, r, t) = one_run("on", sample, Some(&trace_cfg));
        secs_on.push(secs);
        delivered_on = r.delivered;
        if let Some(t) = t {
            trace_events = t.events.len();
            dropped_events = t.dropped;
        }
    }
    fn median(samples: &mut [f64]) -> f64 {
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    }
    fn spread_pct(samples: &[f64], med: f64) -> f64 {
        let (lo, hi) = samples
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &s| {
                (lo.min(s), hi.max(s))
            });
        (hi - lo) / med.max(1e-9) * 100.0
    }
    let (med_off, med_on) = (median(&mut secs_off), median(&mut secs_on));
    let noise_floor_pct = spread_pct(&secs_off, med_off).max(spread_pct(&secs_on, med_on));
    let cycles_common = f64::from(total_cycles(&common_cfg));
    let (untraced_cps, traced_cps) = (cycles_common / med_off, cycles_common / med_on);
    let overhead_pct = (med_on / med_off.max(1e-9) - 1.0) * 100.0;
    let significant = overhead_pct.abs() > noise_floor_pct;
    let trace_overhead = TraceOverheadCase {
        network: tn.name.clone(),
        nodes: g.node_count(),
        cycles: total_cycles(&common_cfg),
        injection_rate: common_cfg.injection_rate,
        trace_interval: trace_cfg.interval,
        samples: TRACE_SAMPLES,
        untraced_cycles_per_sec: untraced_cps,
        traced_cycles_per_sec: traced_cps,
        overhead_pct,
        noise_floor_pct,
        significant,
        // A delta buried in the noise floor cannot break the budget; a
        // significant one must sit at or under 5%.
        within_budget: !significant || overhead_pct <= 5.0,
        trace_events,
        dropped_events,
        delivered_match: delivered_off == delivered_on,
    };

    // -- multi-process sharding on the beyond-table schedule --------------
    let worker_argv = vec![
        std::env::current_exe()
            .expect("current_exe must resolve to spawn workers")
            .display()
            .to_string(),
        "__dist-worker".to_string(),
    ];
    let dist_dc = |netspec: &str, workers: u32| DistConfig {
        workers,
        worker_argv: worker_argv.clone(),
        netspec: netspec.to_string(),
        window: 0,
        trace: None,
        read_timeout: std::time::Duration::from_secs(600),
    };
    let mut arms = Vec::new();
    for workers in [1u32, 2, 4] {
        eprintln!(
            "dist config: {} ({} nodes), {} workers",
            beyond.network, n_big, workers
        );
        let span = rep.obs().span(&format!("dist/w{workers}"));
        let run = run_dist(
            &g_big,
            |v| class_big[v as usize],
            &big_cfg,
            None,
            &Obs::disabled(),
            &dist_dc("bench:cn5q4", workers),
        )
        .expect("distributed run on the beyond-table network");
        let run_secs = span.elapsed_secs().unwrap_or(0.0).max(1e-9);
        drop(span);
        assert_eq!(
            run.result.delivered, delivered_big,
            "distributed run diverged from the in-process engine at {workers} workers"
        );
        arms.push(DistArm {
            workers,
            run_secs,
            cycles_per_sec: cycles_big / run_secs,
            delivered_match: run.result.delivered == delivered_big,
            worker_rss_kb: run.workers.iter().map(|w| w.rss_kb).collect(),
            frames: run.workers.iter().map(|w| w.frames).sum(),
            frame_bytes: run.workers.iter().map(|w| w.frame_bytes).sum(),
        });
    }

    // -- beyond a single process: 2^22 nodes, past the in-process CLI cap --
    // Dist first, then in-process: VmHWM is monotone, so the later (larger)
    // in-process run cannot contaminate the coordinator-side snapshot.
    let huge = hier::complete_cn(2, classic::hypercube(11), "Q11");
    let n_huge = huge.node_count();
    eprintln!(
        "dist beyond config: {} ({} nodes), 4 workers",
        huge.name, n_huge
    );
    let g_huge = huge.build();
    let (class_huge, _) = huge.nucleus_partition();
    let span = rep.obs().span("dist/beyond/dist");
    let run_huge = run_dist(
        &g_huge,
        |v| class_huge[v as usize],
        &big_cfg,
        None,
        &Obs::disabled(),
        &dist_dc("bench:cn2q11", 4),
    )
    .expect("distributed run on the 2^22-node network");
    let dist_secs = span.elapsed_secs().unwrap_or(0.0).max(1e-9);
    drop(span);
    let coordinator_rss_kb = vm_hwm_kb();
    let router_huge =
        ShortestTupleRouter::new(huge.clone()).expect("l=2 is within the codec router bound");
    let mut sim_huge =
        Simulator::with_router(router_huge, &g_huge, |v| class_huge[v as usize], &big_cfg);
    let span = rep.obs().span("dist/beyond/inproc");
    let r_huge = sim_huge.run(&big_cfg);
    let inproc_secs = span.elapsed_secs().unwrap_or(0.0).max(1e-9);
    drop(span);
    let single_process_rss_kb = vm_hwm_kb();
    assert_eq!(
        run_huge.result.delivered, r_huge.delivered,
        "distributed run diverged from the in-process engine on {}",
        huge.name
    );
    let dist = DistCase {
        network: beyond.network.clone(),
        nodes: n_big as usize,
        cycles: total_cycles(&big_cfg),
        injection_rate: big_cfg.injection_rate,
        inproc_cycles_per_sec: beyond.codec.cycles_per_sec,
        arms,
        beyond: DistBeyondCase {
            network: huge.name.clone(),
            nodes: n_huge,
            cycles: total_cycles(&big_cfg),
            injection_rate: big_cfg.injection_rate,
            workers: run_huge.workers.len() as u32,
            delivered: run_huge.result.delivered,
            delivered_match: run_huge.result.delivered == r_huge.delivered,
            dist_run_secs: dist_secs,
            inproc_run_secs: inproc_secs,
            coordinator_rss_kb,
            single_process_rss_kb,
            worker_rss_kb: run_huge.workers.iter().map(|w| w.rss_kb).collect(),
        },
    };

    let out = SimBench {
        bench: "sim_bench",
        ipg_threads: rayon::current_num_threads(),
        common,
        beyond_table: beyond,
        sparse_vs_dense,
        trace_overhead,
        dist,
    };

    println!("== Simulation engine: table vs table-free routing ==");
    print_table(
        &[
            "case",
            "nodes",
            "build s",
            "run s",
            "total s",
            "cycles/s",
            "e2e cycles/s",
        ],
        &[
            vec![
                "common/table".into(),
                out.common.nodes.to_string(),
                f2(out.common.table.build_secs),
                f2(out.common.table.run_secs),
                f2(out.common.table.total_secs),
                format!("{:.0}", out.common.table.cycles_per_sec),
                format!("{:.0}", out.common.table.end_to_end_cycles_per_sec),
            ],
            vec![
                "common/codec".into(),
                out.common.nodes.to_string(),
                f2(out.common.codec.build_secs),
                f2(out.common.codec.run_secs),
                f2(out.common.codec.total_secs),
                format!("{:.0}", out.common.codec.cycles_per_sec),
                format!("{:.0}", out.common.codec.end_to_end_cycles_per_sec),
            ],
            vec![
                "beyond/codec".into(),
                out.beyond_table.nodes.to_string(),
                f2(out.beyond_table.codec.build_secs),
                f2(out.beyond_table.codec.run_secs),
                f2(out.beyond_table.codec.total_secs),
                format!("{:.0}", out.beyond_table.codec.cycles_per_sec),
                format!("{:.0}", out.beyond_table.codec.end_to_end_cycles_per_sec),
            ],
        ],
    );
    println!(
        "  end-to-end speedup {:.2}x, steady-state {:.2}x; dense table for {} would need {} GiB",
        out.common.speedup_end_to_end,
        out.common.speedup_steady_state,
        out.beyond_table.network,
        out.beyond_table.table_bytes_required >> 30
    );
    println!(
        "  sparse worklist kernel on {}: {:.1} -> {:.1} cycles/s ({:.2}x, results_identical={})",
        out.sparse_vs_dense.network,
        out.sparse_vs_dense.dense_cycles_per_sec,
        out.sparse_vs_dense.sparse_cycles_per_sec,
        out.sparse_vs_dense.speedup,
        out.sparse_vs_dense.results_identical
    );
    println!(
        "  flight recorder @ interval {}: {:.0} -> {:.0} cycles/s ({:+.2}% overhead, \
         noise floor {:.2}%, significant={}, within_budget={}, {} events, {} dropped, \
         delivered_match={})",
        out.trace_overhead.trace_interval,
        out.trace_overhead.untraced_cycles_per_sec,
        out.trace_overhead.traced_cycles_per_sec,
        out.trace_overhead.overhead_pct,
        out.trace_overhead.noise_floor_pct,
        out.trace_overhead.significant,
        out.trace_overhead.within_budget,
        out.trace_overhead.trace_events,
        out.trace_overhead.dropped_events,
        out.trace_overhead.delivered_match
    );
    for arm in &out.dist.arms {
        println!(
            "  dist {} @ {} worker(s): {:.1} cycles/s (in-process {:.1}), delivered_match={}, \
             worker VmHWM {:?} KiB, {} frames / {} bytes",
            out.dist.network,
            arm.workers,
            arm.cycles_per_sec,
            out.dist.inproc_cycles_per_sec,
            arm.delivered_match,
            arm.worker_rss_kb,
            arm.frames,
            arm.frame_bytes
        );
    }
    let b = &out.dist.beyond;
    println!(
        "  dist beyond the in-process cap: {} ({} nodes) @ {} workers: delivered_match={}; \
         single-process VmHWM {} KiB vs per-worker {:?} KiB (coordinator {} KiB)",
        b.network,
        b.nodes,
        b.workers,
        b.delivered_match,
        b.single_process_rss_kb,
        b.worker_rss_kb,
        b.coordinator_rss_kb
    );

    rep.json("BENCH_sim", &out);
    rep.finish();
}
