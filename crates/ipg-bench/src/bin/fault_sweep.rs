//! Fault-injection sweep (extension; the paper's §1 motivates Cayley
//! networks partly by their "fault tolerance properties").
//!
//! Three parts:
//!
//! 1. **Exact connectivity** of small instances: vertex connectivity κ and
//!    edge connectivity λ, against the maximal-fault-tolerance yardstick
//!    κ = δ (minimum degree).
//! 2. **Dynamic fault sweep** at 4096 nodes: a rate-drawn link-kill
//!    campaign lands at cycle 0 and the packet engine runs the same
//!    workload twice — once with the fault-oblivious shortest-path router
//!    (packets strand on or are refused at dead links) and once with the
//!    fault-aware `DetourRouter` (greedy hop checked against the fault
//!    view, faulted-BFS detour otherwise). Emits delivered-fraction and
//!    latency-degradation curves to `results/BENCH_faults.json`; the
//!    adaptive router must strictly dominate the oblivious one at every
//!    nonzero fault rate.
//! 3. **Empirical connectivity threshold**: raise the link fault rate on
//!    the static graph until the largest alive component falls below half
//!    the nodes — the percolation-style budget an adaptive router has to
//!    work within.

use ipg_bench::{f2, print_table, report};
use ipg_core::connectivity::{edge_connectivity, vertex_connectivity};
use ipg_core::fault::{largest_alive_component, FaultView};
use ipg_core::graph::Csr;
use ipg_core::tuple_routing::ShortestTupleRouter;
use ipg_networks::{classic, hier};
use ipg_sim::engine::{SimConfig, SimResult, Simulator};
use ipg_sim::fault::{FaultPlan, FaultSpec};
use ipg_sim::router::{DetourRouter, Router};
use ipg_sim::table::RoutingTable;
use serde::Serialize;

#[derive(Serialize)]
struct ConnRow {
    network: String,
    nodes: usize,
    min_degree: usize,
    kappa: u32,
    lambda: u32,
    maximally_fault_tolerant: bool,
}

#[derive(Serialize)]
struct SweepRow {
    network: String,
    router: &'static str,
    link_fault_rate: f64,
    injected: u64,
    delivered: u64,
    dropped_unreachable: u64,
    in_flight_at_end: u64,
    delivered_fraction: f64,
    avg_latency: f64,
    /// Mean latency relative to the same arm's fault-free run.
    latency_degradation: f64,
}

#[derive(Serialize)]
struct ThresholdRow {
    network: String,
    /// First grid rate at which the largest alive component holds < 50%
    /// of the nodes (1.0 = never reached within the grid).
    threshold_link_rate: f64,
    grid_step: f64,
}

#[derive(Serialize)]
struct FaultReport {
    sweep: Vec<SweepRow>,
    thresholds: Vec<ThresholdRow>,
}

const LINK_RATES: &[f64] = &[0.0, 0.02, 0.05, 0.10, 0.15];
const FAULT_SEED: u64 = 7;

/// A 4096-node sweep subject: the graph plus a factory for its
/// fault-oblivious router (built fresh per arm — the detour wrapper takes
/// ownership of the inner router).
struct Subject {
    name: String,
    graph: Csr,
    make_router: Box<dyn Fn() -> Box<dyn Router>>,
}

fn subjects() -> Vec<Subject> {
    let hc = classic::hypercube(12);
    let hc_table = hc.clone();
    let mut out = vec![Subject {
        name: "hypercube Q12".into(),
        graph: hc,
        make_router: Box::new(move || Box::new(RoutingTable::new(&hc_table))),
    }];
    for tn in [
        hier::ring_cn(3, classic::hypercube(4), "Q4"),
        hier::hsn(3, classic::hypercube(4), "Q4"),
    ] {
        let graph = tn.build();
        out.push(Subject {
            name: tn.name.clone(),
            graph,
            make_router: Box::new(move || {
                Box::new(
                    ShortestTupleRouter::new(tn.clone())
                        .expect("l=3 is within the codec router bound"),
                )
            }),
        });
    }
    out
}

fn sweep_cfg() -> SimConfig {
    SimConfig {
        injection_rate: 0.02,
        warmup_cycles: 300,
        measure_cycles: 1_200,
        drain_cycles: 2_000,
        seed: FAULT_SEED,
        ..SimConfig::default()
    }
}

/// One engine run: `rate` of the links die at cycle 0 (expanded
/// deterministically from per-edge streams), routed adaptively or not.
fn run_arm(subject: &Subject, adaptive: bool, rate: f64, cfg: &SimConfig) -> SimResult {
    let base = (subject.make_router)();
    let router: Box<dyn Router> = if adaptive {
        Box::new(DetourRouter::new(base, subject.graph.clone()).expect("symmetric graph"))
    } else {
        base
    };
    let mut sim = Simulator::with_router(router, &subject.graph, |_| 0, cfg);
    if rate > 0.0 {
        let spec = FaultSpec::parse(&format!("rate:links={rate},at=0")).expect("fault spec");
        let plan = FaultPlan::compile(&spec, &subject.graph, cfg.seed).expect("fault plan");
        sim.set_fault_plan(Some(plan));
    }
    sim.run(cfg)
}

/// Empirical connectivity threshold: smallest grid rate whose surviving
/// largest component holds less than half the nodes.
fn threshold_estimate(name: &str, g: &Csr) -> ThresholdRow {
    let step = 0.02;
    let n = g.node_count();
    let mut threshold = 1.0;
    for k in 1..50 {
        let rate = k as f64 * step;
        let spec = FaultSpec::parse(&format!("rate:links={rate},at=0")).expect("fault spec");
        let plan = FaultPlan::compile(&spec, g, FAULT_SEED).expect("fault plan");
        let mut view = FaultView::new(n);
        let mut cursor = 0usize;
        plan.apply_due(&mut cursor, u32::MAX, &mut view);
        if (largest_alive_component(g, &view) as f64) < 0.5 * n as f64 {
            threshold = rate;
            break;
        }
    }
    ThresholdRow {
        network: name.into(),
        threshold_link_rate: (threshold * 100.0).round() / 100.0,
        grid_step: step,
    }
}

fn main() {
    let rep = report::start(
        "fault_tolerance",
        &[
            ("sweep_nodes", 4096u64.into()),
            ("link_fault_rates", "0.00,0.02,0.05,0.10,0.15".into()),
            ("fault_seed", FAULT_SEED.into()),
        ],
    );
    // Part 1: exact connectivities
    let conn_span = rep.obs().span("connectivity");
    let mut conn_rows = Vec::new();
    let cases: Vec<(String, Csr)> = vec![
        ("Q4".into(), classic::hypercube(4)),
        ("Q6".into(), classic::hypercube(6)),
        ("star-5".into(), classic::star(5)),
        ("Petersen".into(), classic::petersen()),
        ("CCC(3)".into(), classic::ccc(3)),
        ("HSN(2,Q2)".into(), hier::hcn(2, false)),
        ("HSN(2,Q3)".into(), hier::hcn(3, false)),
        (
            "ring-CN(3,Q2)".into(),
            hier::ring_cn(3, classic::hypercube(2), "Q2").build(),
        ),
        (
            "CN(3,Q2)".into(),
            hier::complete_cn(3, classic::hypercube(2), "Q2").build(),
        ),
        ("CPN(2)".into(), hier::cyclic_petersen(2).build()),
    ];
    for (name, g) in &cases {
        let _case_span = rep.obs().span(name);
        let kappa = vertex_connectivity(g);
        let lambda = edge_connectivity(g);
        conn_rows.push(ConnRow {
            network: name.clone(),
            nodes: g.node_count(),
            min_degree: g.min_degree(),
            kappa,
            lambda,
            maximally_fault_tolerant: kappa as usize == g.min_degree(),
        });
    }
    println!("== connectivity (κ = vertex, λ = edge; max fault tolerance ⇔ κ = δ) ==");
    print_table(
        &["network", "N", "δ", "κ", "λ", "κ=δ"],
        &conn_rows
            .iter()
            .map(|r| {
                vec![
                    r.network.clone(),
                    r.nodes.to_string(),
                    r.min_degree.to_string(),
                    r.kappa.to_string(),
                    r.lambda.to_string(),
                    if r.maximally_fault_tolerant {
                        "yes"
                    } else {
                        "no"
                    }
                    .into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    // sanity: Menger consistency and the classic values
    assert!(conn_rows.iter().all(|r| r.kappa <= r.lambda));
    assert!(conn_rows.iter().all(|r| r.lambda as usize <= r.min_degree));
    assert_eq!(
        conn_rows.iter().find(|r| r.network == "Q6").unwrap().kappa,
        6
    );

    drop(conn_span);

    // Part 2: dynamic fault sweep, adaptive vs oblivious routing
    let sweep_span = rep.obs().span("fault_sweep");
    let cfg = sweep_cfg();
    let subjects = subjects();
    let mut sweep_rows: Vec<SweepRow> = Vec::new();
    for subject in &subjects {
        let _net_span = rep.obs().span(&subject.name);
        for &adaptive in &[false, true] {
            let arm = if adaptive { "adaptive" } else { "oblivious" };
            let mut base_latency = 0.0f64;
            for &rate in LINK_RATES {
                rep.obs().counter("bench.fault_runs").incr();
                let r = run_arm(subject, adaptive, rate, &cfg);
                if rate == 0.0 {
                    base_latency = r.avg_latency;
                }
                sweep_rows.push(SweepRow {
                    network: subject.name.clone(),
                    router: arm,
                    link_fault_rate: rate,
                    injected: r.injected,
                    delivered: r.delivered,
                    dropped_unreachable: r.dropped_unreachable,
                    in_flight_at_end: r.in_flight_at_end,
                    delivered_fraction: r.delivered as f64 / r.injected.max(1) as f64,
                    avg_latency: r.avg_latency,
                    latency_degradation: if base_latency > 0.0 {
                        r.avg_latency / base_latency
                    } else {
                        1.0
                    },
                });
            }
        }
    }
    println!();
    println!("== link-kill sweep, 4096-node networks (rate drawn at cycle 0) ==");
    print_table(
        &[
            "network",
            "router",
            "rate",
            "injected",
            "delivered",
            "frac",
            "dropped",
            "stuck",
            "lat x",
        ],
        &sweep_rows
            .iter()
            .map(|r| {
                vec![
                    r.network.clone(),
                    r.router.into(),
                    format!("{:.0}%", r.link_fault_rate * 100.0),
                    r.injected.to_string(),
                    r.delivered.to_string(),
                    f2(r.delivered_fraction),
                    r.dropped_unreachable.to_string(),
                    r.in_flight_at_end.to_string(),
                    f2(r.latency_degradation),
                ]
            })
            .collect::<Vec<_>>(),
    );
    // claims: (a) with zero faults the detour wrapper degenerates to the
    // inner router exactly; (b) at every nonzero rate the adaptive router
    // strictly dominates the oblivious one on delivered fraction.
    for subject in &subjects {
        let find = |arm: &str, rate: f64| {
            sweep_rows
                .iter()
                .find(|r| r.network == subject.name && r.router == arm && r.link_fault_rate == rate)
                .unwrap()
        };
        assert_eq!(
            find("adaptive", 0.0).delivered,
            find("oblivious", 0.0).delivered,
            "{}: zero-fault detour run must match the oblivious run",
            subject.name
        );
        for &rate in LINK_RATES.iter().filter(|&&r| r > 0.0) {
            let (a, o) = (find("adaptive", rate), find("oblivious", rate));
            assert!(
                a.delivered_fraction > o.delivered_fraction,
                "{} @ {}: adaptive {} must strictly beat oblivious {}",
                subject.name,
                rate,
                a.delivered_fraction,
                o.delivered_fraction
            );
        }
    }

    drop(sweep_span);

    // Part 3: empirical connectivity threshold on the static graph
    let thr_span = rep.obs().span("connectivity_threshold");
    let threshold_rows: Vec<ThresholdRow> = subjects
        .iter()
        .map(|s| threshold_estimate(&s.name, &s.graph))
        .collect();
    println!();
    println!("== empirical connectivity threshold (largest alive component < 50%) ==");
    print_table(
        &["network", "link-kill rate", "grid"],
        &threshold_rows
            .iter()
            .map(|r| {
                vec![
                    r.network.clone(),
                    format!("{:.0}%", r.threshold_link_rate * 100.0),
                    format!("±{:.0}%", r.grid_step * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    // every subject must hold together far beyond the simulated 15%
    for r in &threshold_rows {
        assert!(
            r.threshold_link_rate > 0.3,
            "{}: threshold {} implausibly low",
            r.network,
            r.threshold_link_rate
        );
    }

    drop(thr_span);
    rep.json("fault_tolerance_conn", &conn_rows);
    rep.json(
        "BENCH_faults",
        &FaultReport {
            sweep: sweep_rows,
            thresholds: threshold_rows,
        },
    );
    rep.finish();
}
