//! Wormhole experiment: virtual channels, deadlock, and the payoff of
//! small diameters.
//!
//! With hop-indexed VC allocation (deadlock-free when `vcs ≥ longest
//! route`), the number of VCs a router must implement for *guaranteed*
//! deadlock freedom equals the network diameter — so the low-diameter
//! super-IP graphs need cheaper routers than rings/tori of the same
//! size, and the §5 wormhole discussion becomes concrete hardware.

use ipg_bench::{f2, print_table, report};
use ipg_core::algo;
use ipg_core::graph::Csr;
use ipg_networks::{classic, hier};
use ipg_sim::wormhole::{VcPolicy, WormTraffic, WormholeConfig, WormholeOutcome, WormholeSim};
use serde::Serialize;

#[derive(Serialize)]
struct WormRow {
    network: String,
    nodes: usize,
    diameter: u32,
    vcs_needed: u32,
    delivered_pct: f64,
    avg_latency: f64,
}

fn main() {
    let rep = report::start(
        "wormhole_vcs",
        &[
            ("part1_ring_nodes", 8u64.into()),
            ("part2_nodes", 64u64.into()),
            ("part2_injection_rate", 0.01.into()),
            ("part2_cycles", 8_000u64.into()),
        ],
    );
    // Part 1: single-VC wormhole deadlocks on cyclic dependencies, and
    // hop-indexed VCs fix it.
    let ring = classic::ring(8);
    let sim = WormholeSim::new(&ring);
    let fixed: Vec<u32> = (0..8u32).map(|i| (i + 3) % 8).collect();
    let base = WormholeConfig {
        vcs: 1,
        buffer_flits: 1,
        packet_flits: 8,
        injection_rate: 0.5,
        cycles: 20_000,
        deadlock_threshold: 300,
        policy: VcPolicy::Single,
        traffic: WormTraffic::Fixed(fixed),
        ..WormholeConfig::default()
    };
    let wedged = {
        let _span = rep.obs().span("single-vc deadlock demo");
        sim.run_instrumented(&base, rep.obs(), 0)
    };
    assert!(wedged.is_deadlocked(), "single-VC ring must wedge");
    let fixed_run = sim.run_instrumented(
        &WormholeConfig {
            vcs: 3,
            policy: VcPolicy::HopIndexed,
            ..base
        },
        rep.obs(),
        0,
    );
    assert!(!fixed_run.is_deadlocked());
    println!("single-VC 8-ring under cyclic traffic: DEADLOCK (as theory predicts);");
    println!(
        "hop-indexed with 3 VCs: {} packets delivered, no deadlock\n",
        fixed_run.stats().delivered
    );

    // Part 2: VCs needed for guaranteed deadlock freedom = diameter
    // (longest shortest-path route), measured per network at 64 nodes.
    let nets: Vec<(String, Csr)> = vec![
        ("ring C64".into(), classic::ring(64)),
        ("2D torus 8x8".into(), classic::torus2d(8)),
        ("hypercube Q6".into(), classic::hypercube(6)),
        (
            "HSN(3,Q2)".into(),
            hier::hsn(3, classic::hypercube(2), "Q2").build(),
        ),
        (
            "ring-CN(3,Q2)".into(),
            hier::ring_cn(3, classic::hypercube(2), "Q2").build(),
        ),
    ];
    let mut rows = Vec::new();
    for (name, g) in &nets {
        let _net_span = rep.obs().span(name);
        let diameter = algo::diameter(g);
        let sim = WormholeSim::new(g);
        let cfg = WormholeConfig {
            vcs: diameter as usize,
            buffer_flits: 2,
            packet_flits: 4,
            injection_rate: 0.01,
            cycles: 8_000,
            deadlock_threshold: 1_000,
            policy: VcPolicy::HopIndexed,
            traffic: WormTraffic::Uniform,
            ..WormholeConfig::default()
        };
        let out = sim.run_instrumented(&cfg, rep.obs(), 0);
        let (pct, lat) = match &out {
            WormholeOutcome::Completed(s) => (
                100.0 * s.delivered as f64 / s.injected.max(1) as f64,
                s.avg_latency,
            ),
            WormholeOutcome::Deadlocked { .. } => (0.0, f64::NAN),
        };
        assert!(!out.is_deadlocked(), "{name}: hop-indexed must be clean");
        rows.push(WormRow {
            network: name.clone(),
            nodes: g.node_count(),
            diameter,
            vcs_needed: diameter,
            delivered_pct: pct,
            avg_latency: lat,
        });
    }
    println!("== hop-indexed wormhole at 64 nodes: VCs for guaranteed deadlock freedom ==");
    print_table(
        &[
            "network",
            "N",
            "diameter",
            "VCs needed",
            "delivered %",
            "avg latency",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.network.clone(),
                    r.nodes.to_string(),
                    r.diameter.to_string(),
                    r.vcs_needed.to_string(),
                    f2(r.delivered_pct),
                    f2(r.avg_latency),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let ring_vcs = rows[0].vcs_needed;
    let hsn_vcs = rows
        .iter()
        .find(|r| r.network.contains("HSN"))
        .unwrap()
        .vcs_needed;
    assert!(hsn_vcs * 3 <= ring_vcs);
    println!();
    println!(
        "claim check: HSN(3,Q2) needs {hsn_vcs} VCs vs the ring's {ring_vcs} — small diameters"
    );
    println!("buy cheap deadlock-free wormhole routers (the §5 hardware argument).");

    rep.json("wormhole_vcs", &rows);
    rep.finish();
}
