//! Figure 2: DD-cost (node degree × network diameter) versus network size
//! for the paper's cast: ring, 2-D torus, hypercube, folded hypercube,
//! star graph, CCC, de Bruijn, shuffle-exchange, HCN(n,n), HSN(l,Q4),
//! complete-CN(l,Q4), ring-CN(l,Q4), ring-CN(l,FQ4), ring-CN(l,P) and
//! super-flip(l,Q4).
//!
//! Series are generated from the closed-form models of
//! `ipg_cluster::analytic` (each cross-checked against exact BFS values in
//! the test suites); this binary additionally re-verifies a few points
//! exactly before printing.

use ipg_bench::{f2, print_table, report};
use ipg_cluster::analytic::{self, AnalyticPoint, NUC_FQ4, NUC_PETERSEN, NUC_Q4};
use ipg_core::algo;
use ipg_networks::classic;
use serde::Serialize;

#[derive(Serialize)]
struct Fig2Point {
    family: String,
    param: String,
    nodes: u64,
    log2_nodes: f64,
    degree: u32,
    diameter: u64,
    dd_cost: f64,
}

fn out(p: &AnalyticPoint) -> Fig2Point {
    Fig2Point {
        family: p.family.clone(),
        param: p.param.clone(),
        nodes: p.nodes,
        log2_nodes: (p.nodes as f64).log2(),
        degree: p.degree,
        diameter: p.diameter,
        dd_cost: p.dd_cost(),
    }
}

fn exact_check() {
    // a few exact spot checks so the analytic series can be trusted
    let cases: Vec<(&str, ipg_core::graph::Csr, AnalyticPoint)> = vec![
        ("Q8", classic::hypercube(8), analytic::hypercube(8, 3)),
        (
            "FQ6",
            classic::folded_hypercube(6),
            analytic::folded_hypercube(6, 3),
        ),
        (
            "torus 16x16",
            classic::torus2d(16),
            analytic::torus2d(16, 4),
        ),
        ("star-6", classic::star(6), analytic::star(6, 3)),
        ("CCC(4)", classic::ccc(4), analytic::ccc(4)),
    ];
    for (name, g, a) in cases {
        let d = algo::diameter(&g);
        assert_eq!(d as u64, a.diameter, "{name} diameter");
        assert_eq!(g.max_degree() as u32, a.degree, "{name} degree");
    }
    let tn = ipg_networks::hier::ring_cn(3, classic::hypercube(4), "Q4");
    let g = tn.build();
    let a = analytic::ring_cn(3, NUC_Q4);
    assert_eq!(
        algo::diameter(&g) as u64,
        a.diameter,
        "ring-CN(3,Q4) diameter"
    );
    assert_eq!(g.max_degree() as u32, a.degree, "ring-CN(3,Q4) degree");
    eprintln!("exact spot checks passed");
}

fn main() {
    let rep = report::start("fig2_dd_cost", &[]);
    exact_check();
    let st = rep.scaling("exact_spot_checks");
    eprintln!(
        "spot-check pool usage: workers={} busy={:.3}s wall={:.3}s speedup={:.2}x",
        rayon::current_num_threads(),
        st.busy_secs(),
        st.wall_secs(),
        st.effective_parallelism(),
    );

    let mut pts: Vec<Fig2Point> = Vec::new();

    for n in [64u64, 256, 1024, 4096, 16384, 65536, 1 << 20] {
        pts.push(out(&analytic::ring(n, 4)));
    }
    for k in [8u64, 16, 32, 64, 128, 256, 1024] {
        pts.push(out(&analytic::torus2d(k, 4)));
    }
    for n in 6..=22u32 {
        pts.push(out(&analytic::hypercube(n, 4)));
        pts.push(out(&analytic::folded_hypercube(n, 4)));
    }
    for n in 5..=10u32 {
        pts.push(out(&analytic::star(n, 3)));
    }
    for n in 4..=16u32 {
        pts.push(out(&analytic::ccc(n)));
        pts.push(out(&analytic::debruijn(n + 4, 4)));
        pts.push(out(&analytic::shuffle_exchange(n + 4)));
    }
    for n in 3..=11u32 {
        pts.push(out(&analytic::hcn(n)));
    }
    for l in 2..=6u32 {
        pts.push(out(&analytic::hsn(l, NUC_Q4)));
        pts.push(out(&analytic::complete_cn(l, NUC_Q4)));
        pts.push(out(&analytic::ring_cn(l, NUC_Q4)));
        pts.push(out(&analytic::ring_cn(l, NUC_FQ4)));
        pts.push(out(&analytic::ring_cn(l, NUC_PETERSEN)));
        pts.push(out(&analytic::superflip(l, NUC_Q4)));
    }

    pts.sort_by(|a, b| a.family.cmp(&b.family).then(a.nodes.cmp(&b.nodes)));

    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.family.clone(),
                p.param.clone(),
                p.nodes.to_string(),
                f2(p.log2_nodes),
                p.degree.to_string(),
                p.diameter.to_string(),
                f2(p.dd_cost),
            ]
        })
        .collect();
    println!("== Fig 2: DD-cost (degree × diameter) vs network size ==");
    print_table(
        &["family", "param", "N", "log2 N", "deg", "diam", "DD-cost"],
        &rows,
    );

    // The paper's qualitative claims, asserted on the generated series.
    let dd_at = |family: &str, lo: f64, hi: f64| -> f64 {
        pts.iter()
            .filter(|p| p.family == family && p.log2_nodes >= lo && p.log2_nodes <= hi)
            .map(|p| p.dd_cost)
            .fold(f64::INFINITY, f64::min)
    };
    // around 2^20 nodes: CNs and the star graph are comparable and beat
    // hypercube / torus / ring decisively
    // best cyclic-shift variant in the size band (the paper plots several;
    // ring-CN over the dense FQ4 nucleus is the strongest)
    let cn = ["CN(l,Q4)", "ring-CN(l,Q4)", "ring-CN(l,FQ4)"]
        .iter()
        .map(|f| dd_at(f, 19.0, 21.0))
        .fold(f64::INFINITY, f64::min);
    let star = dd_at("star", 18.0, 22.0);
    let cube = dd_at("hypercube", 19.0, 21.0);
    let torus = dd_at("2D-torus", 19.0, 21.0);
    assert!(cn < cube, "CN ({cn}) should beat hypercube ({cube})");
    assert!(cn < torus, "CN ({cn}) should beat torus ({torus})");
    assert!(
        cn < star * 1.5 && star < cn * 1.5,
        "CN ({cn}) and star ({star}) should be comparable"
    );
    println!();
    println!(
        "claim check @ ~2^20 nodes: DD(CN)={cn:.0} DD(star)={star:.0} DD(hypercube)={cube:.0} DD(torus)={torus:.0}"
    );

    rep.json("fig2_dd_cost", &pts);
    rep.finish();
}
