//! Link-utilization experiment: §5.2 assumes off-module links are
//! *uniformly utilized* when relating throughput to the average
//! I-distance. This binary verifies the assumption with exact edge
//! betweenness (shortest-path load per link, Brandes), split into
//! on-module and off-module link classes.

use ipg_bench::{print_table, report};
use ipg_core::centrality::load_split;
use ipg_core::graph::Csr;
use ipg_networks::{classic, hier};
use serde::Serialize;

#[derive(Serialize)]
struct UtilRow {
    network: String,
    nodes: usize,
    on_min: f64,
    on_max: f64,
    on_mean: f64,
    off_min: f64,
    off_max: f64,
    off_mean: f64,
    off_imbalance: f64, // max / mean
}

fn main() {
    let rep = report::start(
        "link_utilization",
        &[("method", "edge betweenness (Brandes)".into())],
    );
    let mut rows = Vec::new();
    let nets: Vec<(String, Csr, Vec<u32>)> = vec![
        {
            let g = classic::hypercube(10);
            let class: Vec<u32> = (0..1024u32).map(|u| u >> 4).collect();
            ("hypercube Q10".into(), g, class)
        },
        {
            let tn = hier::hsn(2, classic::hypercube(5), "Q5");
            let g = tn.build();
            let (class, _) = tn.nucleus_partition();
            (tn.name.clone(), g, class)
        },
        {
            let tn = hier::ring_cn(3, classic::hypercube(3), "Q3");
            let g = tn.build();
            let (class, _) = tn.nucleus_partition();
            (tn.name.clone(), g, class)
        },
        {
            // note: at l = 3 complete-CN coincides with ring-CN, so use
            // l = 4 where the extra shift generators matter
            let tn = hier::complete_cn(4, classic::hypercube(2), "Q2");
            let g = tn.build();
            let (class, _) = tn.nucleus_partition();
            (tn.name.clone(), g, class)
        },
    ];
    for (name, g, class) in &nets {
        let _net_span = rep.obs().span(name);
        rep.obs()
            .counter("bench.nodes_analyzed")
            .add(g.node_count() as u64);
        rep.obs()
            .counter("bench.arcs_analyzed")
            .add(g.arc_count() as u64);
        let s = load_split(g, class);
        rows.push(UtilRow {
            network: name.clone(),
            nodes: g.node_count(),
            on_min: s.on_module.0,
            on_max: s.on_module.1,
            on_mean: s.on_module.2,
            off_min: s.off_module.0,
            off_max: s.off_module.1,
            off_mean: s.off_module.2,
            off_imbalance: if s.off_module.2 > 0.0 {
                s.off_module.1 / s.off_module.2
            } else {
                1.0
            },
        });
    }

    println!("== shortest-path link loads (edge betweenness), nucleus/subcube packing ==");
    print_table(
        &[
            "network",
            "N",
            "on min..max (mean)",
            "off min..max (mean)",
            "off max/mean",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.network.clone(),
                    r.nodes.to_string(),
                    format!("{:.0}..{:.0} ({:.0})", r.on_min, r.on_max, r.on_mean),
                    format!("{:.0}..{:.0} ({:.0})", r.off_min, r.off_max, r.off_mean),
                    format!("{:.2}", r.off_imbalance),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // claims: the hypercube's links are perfectly uniform (edge
    // transitivity); super-IP off-module links stay within a small factor
    // of their mean — the §5.2 assumption is sound for all of them.
    let cube = &rows[0];
    assert!((cube.off_imbalance - 1.0).abs() < 1e-9);
    assert!((cube.on_max - cube.on_min).abs() < 1e-6);
    for r in &rows {
        assert!(
            r.off_imbalance < 1.6,
            "{}: off-module load imbalance {:.2}",
            r.network,
            r.off_imbalance
        );
    }
    println!();
    println!("claim check: off-module loads within 1.6x of their mean on every network");
    println!("(§5.2's uniform-utilization assumption holds for shortest-path routing).");

    rep.json("link_utilization", &rows);
    rep.finish();
}
