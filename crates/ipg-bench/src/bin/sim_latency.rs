//! Simulation experiment (§5 delay claims): packet latency of several
//! 4096-node networks under three link-speed regimes, checked against the
//! DD/ID/II cost orderings.
//!
//! 1. *uniform* — all links equal: light-load latency tracks the average
//!    distance (and family ordering tracks DD-cost);
//! 2. *slow off-module* — off-module links 4× slower: latency ordering
//!    tracks II-cost (the paper's "on-chip links can be driven at a
//!    considerably higher clock rate" regime);
//! 3. *throughput* — heavy load, uniform links: accepted throughput is
//!    inversely related to average distance.

use ipg_bench::{f2, print_table, report};
use ipg_cluster::imetrics;
use ipg_cluster::partition::{subcube_partition, torus_block_partition, Partition};
use ipg_core::algo;
use ipg_core::graph::Csr;
use ipg_networks::{classic, hier};
use ipg_sim::engine::{run_clustered_instrumented, SimConfig};
use serde::Serialize;

#[derive(Serialize)]
struct SimRow {
    network: String,
    nodes: usize,
    avg_distance: f64,
    avg_i_distance: f64,
    latency_uniform: f64,
    latency_slow_off: f64,
    throughput_heavy: f64,
}

fn light(seed: u64) -> SimConfig {
    SimConfig {
        injection_rate: 0.002,
        warmup_cycles: 1_000,
        measure_cycles: 3_000,
        drain_cycles: 8_000,
        on_module_interval: 1,
        off_module_interval: 1,
        seed,
        ..SimConfig::default()
    }
}

fn networks() -> Vec<(String, Csr, Partition)> {
    let mut out = Vec::new();
    // 4096-node instances of four families, 16-node modules
    out.push((
        "hypercube Q12".to_string(),
        classic::hypercube(12),
        subcube_partition(12, 4),
    ));
    out.push((
        "2D torus 64x64".to_string(),
        classic::torus2d(64),
        torus_block_partition(64, 4, 4),
    ));
    {
        let tn = hier::ring_cn(3, classic::hypercube(4), "Q4");
        let g = tn.build();
        let (class, count) = tn.nucleus_partition();
        out.push((tn.name.clone(), g, Partition::new(class, count)));
    }
    {
        let tn = hier::hsn(3, classic::hypercube(4), "Q4");
        let g = tn.build();
        let (class, count) = tn.nucleus_partition();
        out.push((tn.name.clone(), g, Partition::new(class, count)));
    }
    out
}

fn main() {
    let rep = report::start(
        "sim_latency",
        &[
            ("nodes", 4096u64.into()),
            ("light_injection_rate", 0.002.into()),
            ("heavy_injection_rate", 0.3.into()),
            ("slow_off_module_interval", 4u64.into()),
            ("seed", 7u64.into()),
        ],
    );
    let mut rows = Vec::new();
    for (name, g, part) in networks() {
        eprintln!("simulating {name} ...");
        let _net_span = rep.obs().span(&name);
        let avg_distance = {
            // sampled average distance (sufficient at 4096 nodes)
            let sources: Vec<u32> = (0..64u32)
                .map(|i| i * (g.node_count() as u32 / 64))
                .collect();
            algo::average_distance_from_sources(&g, &sources)
        };
        let (_, avg_i) = imetrics::quotient_metrics(&g, &part);

        let uniform = run_clustered_instrumented(&g, &part.class, &light(7), rep.obs(), 0);
        let slow_cfg = SimConfig {
            off_module_interval: 4,
            ..light(7)
        };
        let slow = run_clustered_instrumented(&g, &part.class, &slow_cfg, rep.obs(), 0);
        let heavy_cfg = SimConfig {
            injection_rate: 0.3,
            warmup_cycles: 1_000,
            measure_cycles: 2_000,
            drain_cycles: 2_000,
            ..light(7)
        };
        let heavy = run_clustered_instrumented(&g, &part.class, &heavy_cfg, rep.obs(), 0);

        rows.push(SimRow {
            network: name,
            nodes: g.node_count(),
            avg_distance,
            avg_i_distance: avg_i,
            latency_uniform: uniform.avg_latency,
            latency_slow_off: slow.avg_latency,
            throughput_heavy: heavy.throughput,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.network.clone(),
                r.nodes.to_string(),
                f2(r.avg_distance),
                f2(r.avg_i_distance),
                f2(r.latency_uniform),
                f2(r.latency_slow_off),
                format!("{:.4}", r.throughput_heavy),
            ]
        })
        .collect();
    println!("== Simulation: 4096-node networks, 16-node modules ==");
    print_table(
        &[
            "network",
            "N",
            "avg dist",
            "avg I-dist",
            "latency (uniform)",
            "latency (off 4x)",
            "throughput (heavy)",
        ],
        &table,
    );

    // Claims:
    // 1. light-load uniform latency ≈ avg distance (within queueing noise)
    for r in &rows {
        assert!(
            (r.latency_uniform - r.avg_distance).abs() < 0.15 * r.avg_distance + 1.0,
            "{}: latency {} vs avg distance {}",
            r.network,
            r.latency_uniform,
            r.avg_distance
        );
    }
    // 2. with slow off-module links, the low-I-distance networks suffer least
    let slow_penalty = |r: &SimRow| r.latency_slow_off - r.latency_uniform;
    let by_name = |n: &str| rows.iter().find(|r| r.network.contains(n)).unwrap();
    let cube = by_name("hypercube");
    let rcn = by_name("ring-CN");
    let hsn = by_name("HSN");
    assert!(
        slow_penalty(rcn) < slow_penalty(cube),
        "ring-CN penalty {} vs hypercube {}",
        slow_penalty(rcn),
        slow_penalty(cube)
    );
    assert!(slow_penalty(hsn) < slow_penalty(cube));
    println!();
    println!(
        "claim check: off-module slowdown penalty ring-CN={:.2} HSN={:.2} hypercube={:.2}",
        slow_penalty(rcn),
        slow_penalty(hsn),
        slow_penalty(cube)
    );

    rep.json("sim_latency", &rows);
    rep.finish();
}
