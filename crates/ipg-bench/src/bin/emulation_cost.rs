//! Emulation/embedding experiment (paper §1/§3.2: "suitably constructed
//! super-IP graphs can emulate a corresponding higher-degree network, such
//! as a hypercube, with asymptotically optimal slowdown"; "a variety of
//! important network topologies can also be embedded in super-IP graphs
//! with constant dilation").
//!
//! Embeds `Q_{l·n}` into `HSN(l, Q_n)` (and related guests) under the
//! natural bit-identity map and measures dilation, edge congestion, and
//! the dilation×congestion slowdown estimate.

use ipg_bench::{print_table, write_json};
use ipg_core::embed;
use ipg_networks::{classic, hier};
use serde::Serialize;

#[derive(Serialize)]
struct EmbRow {
    guest: String,
    host: String,
    nodes: usize,
    dilation: u32,
    congestion: u32,
    slowdown_estimate: u32,
}

fn main() {
    let mut rows = Vec::new();

    // hypercubes into HSNs (paper: dilation 3)
    for (l, n) in [(2usize, 2usize), (2, 3), (2, 4), (2, 5), (3, 2), (3, 3)] {
        let host = hier::hsn(l, classic::hypercube(n), &format!("Q{n}"));
        let host_g = host.build();
        let guest = classic::hypercube(l * n);
        let map: Vec<u32> = (0..guest.node_count() as u32).collect();
        let (d, c, s) =
            embed::emulation_slowdown(&guest, &host_g, &map).expect("identity embedding valid");
        rows.push(EmbRow {
            guest: format!("Q{}", l * n),
            host: host.name.clone(),
            nodes: guest.node_count(),
            dilation: d,
            congestion: c,
            slowdown_estimate: s,
        });
    }

    // k-ary n-cube into HSN over a k-ary nucleus (product-network case)
    {
        let host = hier::hsn(2, classic::kary_ncube(4, 2), "44torus");
        let host_g = host.build();
        let guest = classic::kary_ncube(4, 4);
        let map: Vec<u32> = (0..guest.node_count() as u32).collect();
        let (d, c, s) = embed::emulation_slowdown(&guest, &host_g, &map).expect("valid");
        rows.push(EmbRow {
            guest: "4-ary 4-cube".into(),
            host: host.name.clone(),
            nodes: guest.node_count(),
            dilation: d,
            congestion: c,
            slowdown_estimate: s,
        });
    }

    // control: hypercube into ring-CN (cyclic-shift super-generators are
    // weaker for this embedding; dilation grows with l)
    for l in [2usize, 3] {
        let host = hier::ring_cn(l, classic::hypercube(2), "Q2");
        let host_g = host.build();
        let guest = classic::hypercube(2 * l);
        let map: Vec<u32> = (0..guest.node_count() as u32).collect();
        let (d, c, s) = embed::emulation_slowdown(&guest, &host_g, &map).expect("valid");
        rows.push(EmbRow {
            guest: format!("Q{}", 2 * l),
            host: host.name.clone(),
            nodes: guest.node_count(),
            dilation: d,
            congestion: c,
            slowdown_estimate: s,
        });
    }

    println!("== embeddings under the identity (bit-concatenation) map ==");
    print_table(
        &["guest", "host", "N", "dilation", "congestion", "dil×cong"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.guest.clone(),
                    r.host.clone(),
                    r.nodes.to_string(),
                    r.dilation.to_string(),
                    r.congestion.to_string(),
                    r.slowdown_estimate.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // claims: HSN hosts keep dilation ≤ 3 at every size (constant
    // dilation, §3.2). Congestion necessarily scales with the guest
    // degree — the guest has ~l·n links per node where the host has
    // n + l − 1, and all block-j flips share the same super-generator
    // links — so the emulation slowdown is Θ(guest degree), i.e.
    // asymptotically optimal given the degree ratio (§1's claim).
    for r in rows.iter().filter(|r| r.host.starts_with("HSN")) {
        assert!(r.dilation <= 3, "{}: dilation {}", r.host, r.dilation);
        let guest_degree = (r.nodes as f64).log2() as u32; // Q_k / 4-ary cubes used here
        assert!(
            r.congestion <= guest_degree.max(4),
            "{}: congestion {} vs guest degree {}",
            r.host,
            r.congestion,
            guest_degree
        );
    }
    println!();
    println!(
        "claim check: every HSN host has dilation ≤ 3 (paper §3.2); congestion ≤ guest degree"
    );

    write_json("emulation_cost", &rows);
}
