//! Figure 5: II-cost (inter-cluster degree × inter-cluster diameter)
//! versus network size, with at most 16 nodes per module.
//!
//! When off-module links are the bottleneck (slower clocks, pin limits),
//! packet latency is proportional to II-cost (§5.4); cyclic-shift networks
//! dominate every baseline, and the margin grows with module size.

use ipg_bench::sweep45::{sweep, MODULE_CAP};
use ipg_bench::{f2, print_table, write_json};

fn main() {
    let pts = sweep();

    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.family.clone(),
                p.param.clone(),
                p.nodes.to_string(),
                f2(p.log2_nodes),
                f2(p.i_degree),
                p.i_diameter.to_string(),
                f2(p.ii_cost),
                p.mode.into(),
            ]
        })
        .collect();
    println!("== Fig 5: II-cost (I-degree × I-diameter), ≤ {MODULE_CAP} nodes/module ==");
    print_table(
        &[
            "family", "param", "N", "log2 N", "I-deg", "I-diam", "II-cost", "mode",
        ],
        &rows,
    );

    // Claim: CN II-cost beats hypercube, torus and star by a wide margin
    // at comparable sizes.
    let best = |family: &str, lo: f64, hi: f64| {
        pts.iter()
            .filter(|p| p.family == family && p.log2_nodes >= lo && p.log2_nodes <= hi)
            .map(|p| p.ii_cost)
            .fold(f64::INFINITY, f64::min)
    };
    let rcn = best("ring-CN(l,Q4)", 15.0, 17.0);
    let cube = best("hypercube", 15.0, 17.0);
    let torus = best("2D-torus", 15.0, 17.0);
    let star = best("star", 15.0, 16.0);
    assert!(rcn * 3.0 <= cube, "ring-CN {rcn} vs hypercube {cube}");
    assert!(rcn * 3.0 <= torus, "ring-CN {rcn} vs torus {torus}");
    assert!(rcn * 3.0 <= star, "ring-CN {rcn} vs star {star}");
    println!();
    println!(
        "claim check @ ~2^16: II ring-CN(Q4)={rcn:.1} hypercube={cube:.1} torus={torus:.1} star={star:.1}"
    );

    write_json("fig5_ii_cost", &pts);
}
