//! Fault-tolerance experiment (extension; the paper's §1 motivates Cayley
//! networks partly by their "fault tolerance properties").
//!
//! Two parts:
//!
//! 1. **Exact connectivity** of small instances: vertex connectivity κ and
//!    edge connectivity λ, against the maximal-fault-tolerance yardstick
//!    κ = δ (minimum degree).
//! 2. **Random-fault degradation** at 4096 nodes: kill a fraction of
//!    nodes and measure the surviving largest component and its diameter,
//!    comparing the hypercube with super-IP networks of the same size.

use ipg_bench::{f2, print_table, report};
use ipg_core::algo;
use ipg_core::connectivity::{edge_connectivity, vertex_connectivity};
use ipg_core::graph::Csr;
use ipg_networks::{classic, hier};
use serde::Serialize;

#[derive(Serialize)]
struct ConnRow {
    network: String,
    nodes: usize,
    min_degree: usize,
    kappa: u32,
    lambda: u32,
    maximally_fault_tolerant: bool,
}

#[derive(Serialize)]
struct FaultRow {
    network: String,
    nodes: usize,
    failed_fraction: f64,
    largest_component_fraction: f64,
    surviving_diameter: u32,
}

/// Deterministic pseudo-random fault set (splitmix-style hash).
fn fault_set(n: usize, fraction: f64, seed: u64) -> Vec<bool> {
    let mut dead = vec![false; n];
    let mut x = seed;
    let target = (n as f64 * fraction) as usize;
    let mut count = 0;
    while count < target {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = ((x >> 33) as usize) % n;
        if !dead[v] {
            dead[v] = true;
            count += 1;
        }
    }
    dead
}

/// The surviving subgraph after node faults.
fn survive(g: &Csr, dead: &[bool]) -> Csr {
    // relabel survivors densely
    let mut id = vec![u32::MAX; g.node_count()];
    let mut next = 0u32;
    for v in 0..g.node_count() {
        if !dead[v] {
            id[v] = next;
            next += 1;
        }
    }
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); next as usize];
    for (u, v) in g.arcs() {
        if !dead[u as usize] && !dead[v as usize] {
            adj[id[u as usize] as usize].push(id[v as usize]);
        }
    }
    Csr::from_adj(adj)
}

fn largest_component(g: &Csr) -> (usize, u32) {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut best_size = 0usize;
    let mut best_rep = 0u32;
    for s in 0..n as u32 {
        if seen[s as usize] {
            continue;
        }
        let d = algo::bfs(g, s);
        let members: Vec<u32> = (0..n as u32)
            .filter(|&v| d[v as usize] != algo::UNREACHABLE)
            .collect();
        for &m in &members {
            seen[m as usize] = true;
        }
        if members.len() > best_size {
            best_size = members.len();
            best_rep = s;
        }
    }
    // eccentricity from the representative as a diameter proxy (cheap and
    // within 2x; good enough for the degradation trend)
    let ecc = algo::bfs(g, best_rep)
        .into_iter()
        .filter(|&d| d != algo::UNREACHABLE)
        .max()
        .unwrap_or(0);
    (best_size, ecc)
}

fn main() {
    let rep = report::start(
        "fault_tolerance",
        &[
            ("degradation_nodes", 4096u64.into()),
            ("fault_fractions", "0.01,0.05,0.10,0.20".into()),
        ],
    );
    // Part 1: exact connectivities
    let conn_span = rep.obs().span("connectivity");
    let mut conn_rows = Vec::new();
    let cases: Vec<(String, Csr)> = vec![
        ("Q4".into(), classic::hypercube(4)),
        ("Q6".into(), classic::hypercube(6)),
        ("star-5".into(), classic::star(5)),
        ("Petersen".into(), classic::petersen()),
        ("CCC(3)".into(), classic::ccc(3)),
        ("HSN(2,Q2)".into(), hier::hcn(2, false)),
        ("HSN(2,Q3)".into(), hier::hcn(3, false)),
        (
            "ring-CN(3,Q2)".into(),
            hier::ring_cn(3, classic::hypercube(2), "Q2").build(),
        ),
        (
            "CN(3,Q2)".into(),
            hier::complete_cn(3, classic::hypercube(2), "Q2").build(),
        ),
        ("CPN(2)".into(), hier::cyclic_petersen(2).build()),
    ];
    for (name, g) in &cases {
        let _case_span = rep.obs().span(name);
        let kappa = vertex_connectivity(g);
        let lambda = edge_connectivity(g);
        conn_rows.push(ConnRow {
            network: name.clone(),
            nodes: g.node_count(),
            min_degree: g.min_degree(),
            kappa,
            lambda,
            maximally_fault_tolerant: kappa as usize == g.min_degree(),
        });
    }
    println!("== connectivity (κ = vertex, λ = edge; max fault tolerance ⇔ κ = δ) ==");
    print_table(
        &["network", "N", "δ", "κ", "λ", "κ=δ"],
        &conn_rows
            .iter()
            .map(|r| {
                vec![
                    r.network.clone(),
                    r.nodes.to_string(),
                    r.min_degree.to_string(),
                    r.kappa.to_string(),
                    r.lambda.to_string(),
                    if r.maximally_fault_tolerant {
                        "yes"
                    } else {
                        "no"
                    }
                    .into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    // sanity: Menger consistency and the classic values
    assert!(conn_rows.iter().all(|r| r.kappa <= r.lambda));
    assert!(conn_rows.iter().all(|r| r.lambda as usize <= r.min_degree));
    assert_eq!(
        conn_rows.iter().find(|r| r.network == "Q6").unwrap().kappa,
        6
    );

    drop(conn_span);

    // Part 2: random-fault degradation at 4096 nodes
    let fault_span = rep.obs().span("degradation");
    let mut fault_rows = Vec::new();
    let nets: Vec<(String, Csr)> = vec![
        ("hypercube Q12".into(), classic::hypercube(12)),
        (
            "ring-CN(3,Q4)".into(),
            hier::ring_cn(3, classic::hypercube(4), "Q4").build(),
        ),
        (
            "HSN(3,Q4)".into(),
            hier::hsn(3, classic::hypercube(4), "Q4").build(),
        ),
    ];
    for (name, g) in &nets {
        let _net_span = rep.obs().span(name);
        for fraction in [0.01, 0.05, 0.10, 0.20] {
            rep.obs().counter("bench.fault_trials").incr();
            let dead = fault_set(
                g.node_count(),
                fraction,
                0xfau64 + (fraction * 100.0) as u64,
            );
            let s = survive(g, &dead);
            let (size, diam) = largest_component(&s);
            fault_rows.push(FaultRow {
                network: name.clone(),
                nodes: g.node_count(),
                failed_fraction: fraction,
                largest_component_fraction: size as f64 / s.node_count() as f64,
                surviving_diameter: diam,
            });
        }
    }
    println!();
    println!("== random node faults, 4096-node networks ==");
    print_table(
        &["network", "failed", "largest comp", "diam (ecc proxy)"],
        &fault_rows
            .iter()
            .map(|r| {
                vec![
                    r.network.clone(),
                    format!("{:.0}%", r.failed_fraction * 100.0),
                    f2(r.largest_component_fraction),
                    r.surviving_diameter.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    // claim: all three stay essentially connected at 10% faults
    for r in fault_rows.iter().filter(|r| r.failed_fraction <= 0.10) {
        assert!(
            r.largest_component_fraction > 0.98,
            "{} fell apart at {}",
            r.network,
            r.failed_fraction
        );
    }

    drop(fault_span);
    rep.json("fault_tolerance_conn", &conn_rows);
    rep.json("fault_tolerance_faults", &fault_rows);
    rep.finish();
}
