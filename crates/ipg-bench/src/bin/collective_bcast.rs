//! Collective-communication experiment (paper §1: on super-IP graphs
//! "the required data movements when performing many important algorithms
//! are largely confined within basic modules").
//!
//! Runs single-port broadcast on same-size networks with the naive
//! any-neighbor policy and the hierarchical (module-aware) policy, and
//! reports rounds plus on-/off-module transmission counts; also prints
//! each network's total-exchange off-module volume.

use ipg_bench::{print_table, write_json};
use ipg_cluster::collective::{greedy_broadcast, total_exchange_off_module_volume};
use ipg_cluster::partition::{nucleus_partition, subcube_partition, Partition};
use ipg_core::graph::Csr;
use ipg_networks::{classic, hier};
use serde::Serialize;

#[derive(Serialize)]
struct BcastRow {
    network: String,
    nodes: usize,
    modules: usize,
    naive_rounds: u32,
    naive_off: u64,
    hier_rounds: u32,
    hier_off: u64,
    off_lower_bound: u64,
    total_exchange_off_volume: f64,
}

fn main() {
    let nets: Vec<(String, Csr, Partition)> = vec![
        {
            let g = classic::hypercube(12);
            let p = subcube_partition(12, 4);
            ("hypercube Q12".into(), g, p)
        },
        {
            let tn = hier::hsn(3, classic::hypercube(4), "Q4");
            let g = tn.build();
            let p = nucleus_partition(&tn);
            (tn.name.clone(), g, p)
        },
        {
            let tn = hier::ring_cn(3, classic::hypercube(4), "Q4");
            let g = tn.build();
            let p = nucleus_partition(&tn);
            (tn.name.clone(), g, p)
        },
        {
            let tn = hier::complete_cn(3, classic::hypercube(4), "Q4");
            let g = tn.build();
            let p = nucleus_partition(&tn);
            (tn.name.clone(), g, p)
        },
    ];

    let mut rows = Vec::new();
    for (name, g, part) in &nets {
        let naive = greedy_broadcast(g, part, 0, false);
        let hier_ = greedy_broadcast(g, part, 0, true);
        assert_eq!(
            naive.on_module_sends + naive.off_module_sends,
            g.node_count() as u64 - 1
        );
        assert_eq!(
            hier_.on_module_sends + hier_.off_module_sends,
            g.node_count() as u64 - 1
        );
        rows.push(BcastRow {
            network: name.clone(),
            nodes: g.node_count(),
            modules: part.count,
            naive_rounds: naive.rounds,
            naive_off: naive.off_module_sends,
            hier_rounds: hier_.rounds,
            hier_off: hier_.off_module_sends,
            off_lower_bound: part.count as u64 - 1,
            total_exchange_off_volume: total_exchange_off_module_volume(g, part),
        });
    }

    println!("== single-port broadcast, 4096-node networks, 16-node modules ==");
    print_table(
        &[
            "network",
            "modules",
            "naive rounds",
            "naive off-sends",
            "hier rounds",
            "hier off-sends",
            "off bound",
            "tot-exch off-volume",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.network.clone(),
                    r.modules.to_string(),
                    r.naive_rounds.to_string(),
                    r.naive_off.to_string(),
                    r.hier_rounds.to_string(),
                    r.hier_off.to_string(),
                    r.off_lower_bound.to_string(),
                    format!("{:.2e}", r.total_exchange_off_volume),
                ]
            })
            .collect::<Vec<_>>(),
    );

    for r in &rows {
        assert_eq!(
            r.hier_off, r.off_lower_bound,
            "{}: hierarchical policy should hit the off-module lower bound",
            r.network
        );
        assert!(r.hier_off <= r.naive_off);
    }
    let cube = rows.iter().find(|r| r.network.contains("Q12")).unwrap();
    let hsn = rows.iter().find(|r| r.network.contains("HSN")).unwrap();
    assert!(
        hsn.total_exchange_off_volume < cube.total_exchange_off_volume / 1.5,
        "super-IP total exchange should need far fewer off-module hops"
    );
    println!();
    println!(
        "claim check: hierarchical broadcast hits the #modules−1 off-module bound everywhere;"
    );
    println!(
        "total-exchange off-module volume: HSN {:.2e} vs hypercube {:.2e} ({}x)",
        hsn.total_exchange_off_volume,
        cube.total_exchange_off_volume,
        (cube.total_exchange_off_volume / hsn.total_exchange_off_volume).round()
    );

    write_json("collective_bcast", &rows);
}
